/**
 * @file
 * Section 4.3 ablation: method inlining and profile consistency. After
 * inlining, several compiled branches map to one bytecode-level
 * branch and PEP updates the shared counters. This bench enables the
 * optimizing compiler's leaf inliner and reports, per benchmark:
 *
 *   speedup     — execution-time effect of inlining (call overhead
 *                 removed; replay iteration 2, no profiler attached)
 *   pep-acc     — PEP(64,17)'s edge-profile accuracy against ground
 *                 truth *with inlining on* (both sides mapped through
 *                 block origins); the paper's consistency requirement
 *                 is that this stays as high as the non-inlined case
 *   sites       — call sites inlined across compiled methods
 */

#include <cstdio>
#include <memory>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "vm/inliner.hh"

using namespace pep;

int
main()
{
    vm::SimParams base_params = bench::defaultParams();
    vm::SimParams inline_params = base_params;
    inline_params.enableInlining = true;

    support::Table table;
    table.header({"benchmark", "speedup", "pep-acc(inl)",
                  "pep-acc(base)", "sites"});

    std::vector<double> speedups;
    std::vector<double> acc_inlined;
    std::vector<double> acc_base;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double speedup = 0.0;
        double accInlined = 0.0;
        double accBase = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, base_params);

            // Execution effect, without profilers.
            bench::ReplayRun plain(prepared, base_params);
            const double base_cycles =
                static_cast<double>(plain.runStandard());
            bench::ReplayRun inlined(prepared, inline_params);
            const double inlined_cycles =
                static_cast<double>(inlined.runStandard());

            std::size_t sites = 0;
            for (std::size_t m = 0;
                 m < inlined.machine().numMethods(); ++m) {
                const vm::CompiledMethod *cm =
                    inlined.machine().currentVersion(
                        static_cast<bytecode::MethodId>(m));
                if (cm && cm->inlinedBody)
                    sites += cm->inlinedBody->inlinedSites;
            }

            // PEP accuracy with and without inlining.
            auto pep_accuracy = [&](const vm::SimParams &params) {
                bench::ReplayRun run(prepared, params);
                core::PepProfiler &pep = run.attachPep(
                    std::make_unique<core::SimplifiedArnoldGrove>(
                        64, 17));
                run.runCompileIteration();
                run.clearCollectedProfiles();
                run.runMeasuredIteration();
                return metrics::relativeOverlap(
                    bench::allCfgs(run.machine()),
                    run.machine().truthEdges(), pep.edgeProfile());
            };

            BenchRow result;
            result.speedup = base_cycles / inlined_cycles;
            result.accInlined = pep_accuracy(inline_params);
            result.accBase = pep_accuracy(base_params);
            result.cells = {
                spec.name,
                support::formatFixed(result.speedup, 4),
                bench::pct(result.accInlined),
                bench::pct(result.accBase),
                std::to_string(sites)};
            return result;
        });
    for (const BenchRow &result : rows) {
        speedups.push_back(result.speedup);
        acc_inlined.push_back(result.accInlined);
        acc_base.push_back(result.accBase);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average",
               support::formatFixed(support::mean(speedups), 4),
               bench::pct(support::mean(acc_inlined)),
               bench::pct(support::mean(acc_base)), ""});

    std::printf("Section 4.3 ablation: leaf inlining and bytecode-"
                "level profile consistency\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("claim:    inlined IR branches share the bytecode "
                "branch's counters, so PEP accuracy is preserved\n");
    std::printf("measured: accuracy %s (inlined) vs %s (no inlining); "
                "inlining speeds execution %.2fx\n",
                bench::pct(support::mean(acc_inlined)).c_str(),
                bench::pct(support::mean(acc_base)).c_str(),
                support::mean(speedups));
    return 0;
}
