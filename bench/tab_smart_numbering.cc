/**
 * @file
 * Section 3.4 ablation: the effect of instrumentation placement on
 * PEP's execution overhead. Smart path numbering zeroes the hottest
 * outgoing edge of every block (no instrumentation there); plain
 * Ball-Larus numbering ignores frequency; inverted smart numbering
 * deliberately zeroes the *coldest* edge, putting instrumentation on
 * hot edges.
 *
 * Paper headline: hot-edge placement raises instrumentation overhead
 * from 1.1% to 2.5% (a modest 1.4% — PEP's low overhead comes mainly
 * from the instrumentation/sampling split, not placement).
 */

#include <cstdio>
#include <memory>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    struct Config
    {
        std::string label;
        profile::NumberingScheme scheme;
        profile::PlacementKind placement =
            profile::PlacementKind::Direct;
    };
    const std::vector<Config> configs = {
        {"smart(cold)", profile::NumberingScheme::Smart},
        {"ball-larus", profile::NumberingScheme::BallLarus},
        {"inverted(hot)", profile::NumberingScheme::SmartInverted},
        // Ball-Larus event counting: increments only on the chords of
        // a max-frequency spanning tree (the classic alternative to
        // smart numbering's zero-on-hot-edges placement).
        {"spanning-tree", profile::NumberingScheme::BallLarus,
         profile::PlacementKind::SpanningTree},
    };
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    {
        std::vector<std::string> header = {"benchmark"};
        for (const Config &config : configs)
            header.push_back(config.label);
        table.header(std::move(header));
    }

    std::vector<std::vector<double>> ratios(configs.size());

    struct BenchRow
    {
        std::vector<std::string> cells;
        std::vector<double> ratios;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            bench::ReplayRun base_run(prepared, params);
            const double base =
                static_cast<double>(base_run.runStandard());

            BenchRow result;
            result.cells = {spec.name};
            for (const Config &config : configs) {
                bench::ReplayRun run(prepared, params);
                core::PepOptions options;
                options.scheme = config.scheme;
                options.placement = config.placement;
                run.attachPep(std::make_unique<core::NeverSample>(),
                              options);
                const double cycles =
                    static_cast<double>(run.runStandard());
                result.ratios.push_back(cycles / base);
                result.cells.push_back(
                    bench::overheadPct(cycles / base));
            }
            return result;
        });
    for (const BenchRow &result : rows) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            ratios[c].push_back(result.ratios[c]);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    {
        std::vector<std::string> avg = {"average"};
        for (auto &r : ratios)
            avg.push_back(bench::overheadPct(support::mean(r)));
        table.row(std::move(avg));
    }

    std::printf("Section 3.4: instrumentation placement ablation "
                "(PEP instrumentation only, no sampling)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    smart 1.1%% -> hot-edge placement 2.5%%\n");
    std::printf("measured: smart %s -> hot-edge placement %s "
                "(ball-larus %s)\n",
                bench::overheadPct(support::mean(ratios[0])).c_str(),
                bench::overheadPct(support::mean(ratios[2])).c_str(),
                bench::overheadPct(support::mean(ratios[1])).c_str());
    return 0;
}
