/**
 * @file
 * Sample-transport table: the SPSC ring pipeline under sustained load,
 * emitted as BENCH_PR7.json. Four measurements:
 *
 *   1. sustained run — a million-request stream (PEP_BENCH_SCALE
 *      scales it down) sharded over >= 16 OS workers recording through
 *      the ring transport: requests/second, drop accounting (the
 *      conservation law produced == consumed + dropped is a hard
 *      failure), windowed-profile staleness, and memory flatness (peak
 *      RSS after a short warm-up run vs. after the full run — a
 *      transport whose footprint grows with request count fails the
 *      point of bounded rings and pruned windows);
 *   2. drop rate vs. ring capacity — the same workload swept across
 *      ring sizes: how much capacity buys how much fidelity;
 *   3. aggregation comparison — ring vs. sharded vs. mutex
 *      requests/second at the sustained worker count;
 *   4. drop-free identity — at a scale where the ample ring provably
 *      cannot fill, the ring totals must match mutex (and sharded)
 *      count for count; divergence is a hard failure.
 *
 * Usage: tab_transport [output.json]   (default BENCH_PR7.json)
 * PEP_BENCH_SCALE scales the request counts.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.hh"
#include "runtime/request_stream.hh"
#include "runtime/throughput.hh"

using namespace pep;

namespace {

double
benchScale()
{
    double scale = 1.0;
    if (const char *env = std::getenv("PEP_BENCH_SCALE")) {
        scale = std::atof(env);
        if (scale <= 0.0 || scale > 1.0)
            scale = 1.0;
    }
    return scale;
}

/** Peak resident set (VmHWM) in kB; 0 where /proc is unavailable.
 *  The peak — not the current RSS — is what a leaky transport moves. */
std::uint64_t
peakRssKb()
{
    FILE *status = std::fopen("/proc/self/status", "r");
    if (!status)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof line, status)) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            kb = std::strtoull(line + 6, nullptr, 10);
            break;
        }
    }
    std::fclose(status);
    return kb;
}

bool
edgesIdentical(const profile::EdgeProfileSet &a,
               const profile::EdgeProfileSet &b)
{
    if (a.perMethod.size() != b.perMethod.size())
        return false;
    for (std::size_t m = 0; m < a.perMethod.size(); ++m)
        if (a.perMethod[m].counts() != b.perMethod[m].counts())
            return false;
    return true;
}

struct SweepRow
{
    std::uint32_t capacity = 0;
    double requestsPerSecond = 0.0;
    double dropRate = 0.0;
    std::uint64_t consumed = 0;
    double stalenessEpochs = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_PR7.json";
    const double scale = benchScale();

    const std::uint32_t workers = std::max<std::uint32_t>(
        16, std::thread::hardware_concurrency());
    const auto sustained_requests = std::max<std::uint32_t>(
        8192, static_cast<std::uint32_t>(1'000'000 * scale));

    vm::SimParams params = bench::defaultParams();
    params.tickCycles = 10'000;
    params.rngSeed = 701 ^ 0x7ead5eedull;

    runtime::RequestStreamSpec spec;
    spec.seed = 701;
    spec.requests = sustained_requests;
    const runtime::RequestStream stream(spec);

    runtime::ThroughputOptions options;
    options.workers = workers;
    options.epochRequests = 64;
    options.params = params;
    options.aggregation = runtime::ThroughputOptions::Aggregation::Ring;
    options.ring.capacity = 1u << 14;
    options.ring.windowDecay = 0.5;

    bool ok = true;
    const auto checkConservation =
        [&ok](const runtime::ThroughputResult &result,
              const char *label) {
            if (result.transport.produced !=
                result.transport.consumed + result.transport.dropped) {
                std::printf("  %s: conservation VIOLATED — produced "
                            "%llu != consumed %llu + dropped %llu\n",
                            label,
                            static_cast<unsigned long long>(
                                result.transport.produced),
                            static_cast<unsigned long long>(
                                result.transport.consumed),
                            static_cast<unsigned long long>(
                                result.transport.dropped));
                ok = false;
            }
        };

    // ---- sustained run ----------------------------------------------
    // Warm-up at 1/8 scale pins the high-water mark a bounded
    // transport should already be near; the full run then must not
    // move it by much (rings are fixed arrays, windows are pruned —
    // only path-total tables may still creep toward their bounded
    // universe of distinct paths).
    std::printf("tab_transport: %u requests over %u workers "
                "(ring capacity %u)...\n",
                sustained_requests, workers, options.ring.capacity);
    runtime::RequestStreamSpec warm_spec = spec;
    warm_spec.requests = std::max<std::uint32_t>(
        1024, sustained_requests / 8);
    {
        const runtime::RequestStream warm(warm_spec);
        (void)runtime::runThroughput(warm, options);
    }
    const std::uint64_t rss_warm_kb = peakRssKb();

    const runtime::ThroughputResult sustained =
        runtime::runThroughput(stream, options);
    const std::uint64_t rss_after_kb = peakRssKb();
    const std::int64_t rss_growth_kb =
        static_cast<std::int64_t>(rss_after_kb) -
        static_cast<std::int64_t>(rss_warm_kb);
    checkConservation(sustained, "sustained");
    if (sustained.requestsCompleted != sustained_requests) {
        std::printf("  sustained: completed %llu of %u requests\n",
                    static_cast<unsigned long long>(
                        sustained.requestsCompleted),
                    sustained_requests);
        ok = false;
    }
    std::printf("  sustained: %9.0f req/s  drop-rate %.4f%%  "
                "staleness %.3f epochs  rss %llu -> %llu kB "
                "(%+lld kB)\n",
                sustained.requestsPerSecond,
                100.0 * sustained.transport.dropRate(),
                sustained.windowStalenessEpochs,
                static_cast<unsigned long long>(rss_warm_kb),
                static_cast<unsigned long long>(rss_after_kb),
                static_cast<long long>(rss_growth_kb));

    // ---- drop rate vs ring capacity ---------------------------------
    const std::uint32_t sweep_capacities[] = {
        1u << 8, 1u << 10, 1u << 12, 1u << 14, 1u << 16};
    runtime::RequestStreamSpec sweep_spec = spec;
    sweep_spec.requests = std::max<std::uint32_t>(
        2048, sustained_requests / 8);
    const runtime::RequestStream sweep_stream(sweep_spec);
    std::vector<SweepRow> sweep;
    std::printf("tab_transport: capacity sweep (%u requests)...\n",
                sweep_spec.requests);
    for (const std::uint32_t capacity : sweep_capacities) {
        options.ring.capacity = capacity;
        const runtime::ThroughputResult result =
            runtime::runThroughput(sweep_stream, options);
        checkConservation(result, "sweep");
        SweepRow row;
        row.capacity = capacity;
        row.requestsPerSecond = result.requestsPerSecond;
        row.dropRate = result.transport.dropRate();
        row.consumed = result.transport.consumed;
        row.stalenessEpochs = result.windowStalenessEpochs;
        sweep.push_back(row);
        std::printf("  capacity %6u  %9.0f req/s  drop-rate %7.4f%%\n",
                    capacity, row.requestsPerSecond,
                    100.0 * row.dropRate);
    }
    options.ring.capacity = 1u << 14;

    // ---- aggregation comparison -------------------------------------
    runtime::RequestStreamSpec agg_spec = spec;
    agg_spec.requests = std::max<std::uint32_t>(
        2048, sustained_requests / 8);
    const runtime::RequestStream agg_stream(agg_spec);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Sharded;
    const runtime::ThroughputResult sharded =
        runtime::runThroughput(agg_stream, options);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Mutex;
    const runtime::ThroughputResult mutex_global =
        runtime::runThroughput(agg_stream, options);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Ring;
    const runtime::ThroughputResult ring_agg =
        runtime::runThroughput(agg_stream, options);
    checkConservation(ring_agg, "aggregation");
    std::printf("tab_transport: ring %9.0f vs sharded %9.0f vs "
                "mutex %9.0f req/s\n",
                ring_agg.requestsPerSecond, sharded.requestsPerSecond,
                mutex_global.requestsPerSecond);

    // ---- drop-free identity -----------------------------------------
    // Small enough that each worker's whole record volume fits in the
    // ample ring even if the collector never runs mid-production: the
    // merged totals must equal the synchronous baselines exactly.
    runtime::RequestStreamSpec id_spec = spec;
    id_spec.requests = 4096;
    const runtime::RequestStream id_stream(id_spec);
    runtime::ThroughputOptions id_options = options;
    id_options.ring.capacity = 1u << 17;
    id_options.aggregation =
        runtime::ThroughputOptions::Aggregation::Ring;
    const runtime::ThroughputResult id_ring =
        runtime::runThroughput(id_stream, id_options);
    id_options.aggregation =
        runtime::ThroughputOptions::Aggregation::Mutex;
    const runtime::ThroughputResult id_mutex =
        runtime::runThroughput(id_stream, id_options);
    id_options.aggregation =
        runtime::ThroughputOptions::Aggregation::Sharded;
    const runtime::ThroughputResult id_sharded =
        runtime::runThroughput(id_stream, id_options);
    checkConservation(id_ring, "identity");

    const bool drop_free = id_ring.transport.dropped == 0;
    const bool ring_matches =
        drop_free && edgesIdentical(id_ring.edges, id_mutex.edges) &&
        id_ring.paths == id_mutex.paths;
    const bool sharded_matches =
        edgesIdentical(id_sharded.edges, id_mutex.edges) &&
        id_sharded.paths == id_mutex.paths;
    std::printf("tab_transport: identity at %u requests — ring "
                "dropped %llu, ring %s, sharded %s\n",
                id_spec.requests,
                static_cast<unsigned long long>(
                    id_ring.transport.dropped),
                ring_matches ? "matches mutex" : "DIVERGES",
                sharded_matches ? "matches mutex" : "DIVERGES");
    if (!drop_free || !ring_matches || !sharded_matches)
        ok = false;

    // ---- JSON -------------------------------------------------------
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "tab_transport: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"sustained\": {\n");
    std::fprintf(json, "    \"workers\": %u,\n", workers);
    std::fprintf(json, "    \"requests\": %u,\n", sustained_requests);
    std::fprintf(json, "    \"ring_capacity\": %u,\n", 1u << 14);
    std::fprintf(json, "    \"window_decay\": %.2f,\n",
                 options.ring.windowDecay);
    std::fprintf(json, "    \"wall_seconds\": %.6f,\n",
                 sustained.wallSeconds);
    std::fprintf(json, "    \"requests_per_sec\": %.1f,\n",
                 sustained.requestsPerSecond);
    std::fprintf(json, "    \"produced\": %llu,\n",
                 static_cast<unsigned long long>(
                     sustained.transport.produced));
    std::fprintf(json, "    \"consumed\": %llu,\n",
                 static_cast<unsigned long long>(
                     sustained.transport.consumed));
    std::fprintf(json, "    \"dropped\": %llu,\n",
                 static_cast<unsigned long long>(
                     sustained.transport.dropped));
    std::fprintf(json, "    \"drop_rate\": %.6f,\n",
                 sustained.transport.dropRate());
    std::fprintf(json, "    \"epoch_marks\": %llu,\n",
                 static_cast<unsigned long long>(
                     sustained.transport.epochMarks));
    std::fprintf(json, "    \"window_advances\": %llu,\n",
                 static_cast<unsigned long long>(
                     sustained.windowAdvances));
    std::fprintf(json, "    \"window_staleness_epochs\": %.6f,\n",
                 sustained.windowStalenessEpochs);
    std::fprintf(json, "    \"window_mass\": %.1f,\n",
                 sustained.windowMass);
    std::fprintf(json, "    \"peak_rss_warm_kb\": %llu,\n",
                 static_cast<unsigned long long>(rss_warm_kb));
    std::fprintf(json, "    \"peak_rss_after_kb\": %llu,\n",
                 static_cast<unsigned long long>(rss_after_kb));
    std::fprintf(json, "    \"peak_rss_growth_kb\": %lld\n",
                 static_cast<long long>(rss_growth_kb));
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"capacity_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepRow &row = sweep[i];
        std::fprintf(json,
                     "    {\"capacity\": %u, "
                     "\"requests_per_sec\": %.1f, "
                     "\"drop_rate\": %.6f, "
                     "\"consumed\": %llu, "
                     "\"window_staleness_epochs\": %.6f}%s\n",
                     row.capacity, row.requestsPerSecond, row.dropRate,
                     static_cast<unsigned long long>(row.consumed),
                     row.stalenessEpochs,
                     i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"aggregation\": {\n");
    std::fprintf(json, "    \"workers\": %u,\n", workers);
    std::fprintf(json, "    \"ring_requests_per_sec\": %.1f,\n",
                 ring_agg.requestsPerSecond);
    std::fprintf(json, "    \"sharded_requests_per_sec\": %.1f,\n",
                 sharded.requestsPerSecond);
    std::fprintf(json, "    \"mutex_requests_per_sec\": %.1f,\n",
                 mutex_global.requestsPerSecond);
    std::fprintf(json, "    \"ring_drop_rate\": %.6f\n",
                 ring_agg.transport.dropRate());
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"identity\": {\n");
    std::fprintf(json, "    \"requests\": %u,\n", id_spec.requests);
    std::fprintf(json, "    \"ring_dropped\": %llu,\n",
                 static_cast<unsigned long long>(
                     id_ring.transport.dropped));
    std::fprintf(json, "    \"ring_matches_mutex\": %s,\n",
                 ring_matches ? "true" : "false");
    std::fprintf(json, "    \"sharded_matches_mutex\": %s\n",
                 sharded_matches ? "true" : "false");
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"conservation_ok\": %s\n",
                 ok ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("tab_transport: wrote %s\n", json_path.c_str());

    return ok ? 0 : 1;
}
