/**
 * @file
 * Concurrency table: profiling under the concurrent runtime, emitted
 * as BENCH_PR4.json. Three measurements:
 *
 *   1. cooperative scaling — a request stream run under the
 *      cooperative scheduler with K = 1, 2, 4, 8 virtual mutator
 *      threads: PEP overhead (simulated cycles with the profiler
 *      attached vs. a bare run of the same interleaving) and
 *      edge-profile accuracy (relative / absolute overlap of PEP's
 *      continuous profile against the run's own ground truth),
 *      compared against the K = 1 baseline. Each PEP run executes
 *      twice and must serialize byte-identically (the determinism
 *      contract of docs/RUNTIME.md);
 *   2. throughput worker scaling — the same stream sharded over
 *      1..N OS worker threads with the sharded, cache-line-padded
 *      aggregator: requests/second per worker count;
 *   3. sharded vs. mutex-global aggregation at N workers — the
 *      throughput ratio, plus a count-for-count identity check of the
 *      merged edge and path profiles (divergence is a hard failure) —
 *      and a ring-transport row (requests/second, drop rate, and the
 *      produced == consumed + dropped conservation law, also a hard
 *      failure; tab_transport / BENCH_PR7.json measures the ring in
 *      depth).
 *
 * Usage: tab_concurrency [output.json]   (default BENCH_PR4.json)
 * PEP_BENCH_SCALE scales the request count.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "runtime/coop_scheduler.hh"
#include "runtime/request_stream.hh"
#include "runtime/throughput.hh"
#include "vm/machine.hh"

using namespace pep;

namespace {

double
benchScale()
{
    double scale = 1.0;
    if (const char *env = std::getenv("PEP_BENCH_SCALE")) {
        scale = std::atof(env);
        if (scale <= 0.0 || scale > 1.0)
            scale = 1.0;
    }
    return scale;
}

/** Everything observable about one cooperative run, serialized; two
 *  runs with identical seeds must compare equal byte for byte. */
std::string
serializeRun(const vm::Machine &machine, const core::PepProfiler &pep,
             const runtime::CoopStats &stats)
{
    std::ostringstream os;
    const auto dump = [&os](const profile::EdgeProfileSet &set) {
        for (const auto &method : set.perMethod) {
            for (const auto &per_block : method.counts())
                for (std::uint64_t count : per_block)
                    os << count << ' ';
            os << '\n';
        }
    };
    dump(machine.truthEdges());
    dump(pep.edgeProfile());
    for (const auto &[key, vp] : pep.versionProfiles()) {
        std::map<std::uint64_t, std::uint64_t> ordered;
        for (const auto &[number, record] : vp->paths.paths())
            ordered[number] = record.count;
        os << key.first << '/' << key.second << ':';
        for (const auto &[number, count] : ordered)
            os << ' ' << number << '=' << count;
        os << '\n';
    }
    os << stats.contextSwitches << ' ' << stats.requestsCompleted
       << ' ' << machine.stats().instructionsExecuted << ' '
       << machine.now() << '\n';
    return os.str();
}

struct CoopRow
{
    std::uint32_t threads = 1;
    std::uint64_t baseCycles = 0;
    std::uint64_t pepCycles = 0;
    double overhead = 0.0; // (pep - base) / base
    double relativeOverlap = 0.0;
    double absoluteOverlap = 0.0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t samplesRecorded = 0;
    bool deterministic = false;
};

CoopRow
runCoopCell(const runtime::RequestStream &stream,
            const vm::SimParams &params, std::uint32_t threads)
{
    CoopRow row;
    row.threads = threads;

    const auto drive = [&](vm::Machine &machine) {
        runtime::CoopOptions coop;
        coop.threads = threads;
        coop.seed = stream.spec().seed;
        runtime::CoopScheduler scheduler(machine, coop);
        scheduler.assignRoundRobin(stream);
        scheduler.run();
        if (scheduler.stats().requestsCompleted !=
            stream.requests().size()) {
            std::fprintf(stderr,
                         "tab_concurrency: K=%u completed %llu of "
                         "%zu requests\n",
                         threads,
                         static_cast<unsigned long long>(
                             scheduler.stats().requestsCompleted),
                         stream.requests().size());
            std::exit(1);
        }
        return scheduler.stats();
    };

    // Bare run: the same interleaving with no profiler attached gives
    // the cost baseline for this K.
    {
        vm::Machine machine(stream.program(), params);
        drive(machine);
        row.baseCycles = machine.now();
    }

    // PEP run, twice: overhead + accuracy from the first, determinism
    // from byte-comparing the second against it.
    std::string first_blob;
    for (int run = 0; run < 2; ++run) {
        vm::Machine machine(stream.program(), params);
        core::SimplifiedArnoldGrove controller(64, 17);
        core::PepProfiler pep(machine, controller);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);
        const runtime::CoopStats stats = drive(machine);

        if (run == 0) {
            row.pepCycles = machine.now();
            row.overhead =
                row.baseCycles > 0
                    ? (static_cast<double>(row.pepCycles) -
                       static_cast<double>(row.baseCycles)) /
                          static_cast<double>(row.baseCycles)
                    : 0.0;
            const std::vector<bytecode::MethodCfg> cfgs =
                bench::allCfgs(machine);
            row.relativeOverlap = metrics::relativeOverlap(
                cfgs, machine.truthEdges(), pep.edgeProfile());
            row.absoluteOverlap = metrics::absoluteOverlap(
                machine.truthEdges(), pep.edgeProfile());
            row.contextSwitches = stats.contextSwitches;
            row.samplesRecorded = pep.pepStats().samplesRecorded;
            first_blob = serializeRun(machine, pep, stats);
        } else {
            row.deterministic =
                serializeRun(machine, pep, stats) == first_blob;
        }
    }
    return row;
}

struct ThroughputRow
{
    std::uint32_t workers = 1;
    double wallSeconds = 0.0;
    double requestsPerSecond = 0.0;
    std::uint64_t pathRecords = 0;
    std::uint64_t flushedEdgeCount = 0;
};

bool
edgesIdentical(const profile::EdgeProfileSet &a,
               const profile::EdgeProfileSet &b)
{
    if (a.perMethod.size() != b.perMethod.size())
        return false;
    for (std::size_t m = 0; m < a.perMethod.size(); ++m)
        if (a.perMethod[m].counts() != b.perMethod[m].counts())
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_PR4.json";

    runtime::RequestStreamSpec spec;
    spec.seed = 401;
    spec.requests = std::max<std::uint32_t>(
        64, static_cast<std::uint32_t>(4096 * benchScale()));
    const runtime::RequestStream stream(spec);

    vm::SimParams params = bench::defaultParams();
    // Short tick period relative to a request's length, so the timer
    // actually drives context switches and sampling on this stream.
    params.tickCycles = 10'000;
    params.rngSeed = spec.seed ^ 0x7ead5eedull;

    // ---- cooperative scaling ----------------------------------------
    std::printf("tab_concurrency: %u requests, cooperative runs...\n",
                spec.requests);
    const std::uint32_t kValues[] = {1, 2, 4, 8};
    std::vector<CoopRow> coop;
    bool all_deterministic = true;
    for (const std::uint32_t k : kValues) {
        coop.push_back(runCoopCell(stream, params, k));
        const CoopRow &row = coop.back();
        all_deterministic = all_deterministic && row.deterministic;
        std::printf("  K=%u  base %10llu  pep %10llu  overhead %6s  "
                    "rel %.4f  abs %.4f  switches %6llu  %s\n",
                    row.threads,
                    static_cast<unsigned long long>(row.baseCycles),
                    static_cast<unsigned long long>(row.pepCycles),
                    bench::pct(row.overhead).c_str(),
                    row.relativeOverlap, row.absoluteOverlap,
                    static_cast<unsigned long long>(
                        row.contextSwitches),
                    row.deterministic ? "deterministic"
                                      : "NON-DETERMINISTIC");
    }

    // ---- throughput worker scaling ----------------------------------
    const std::uint32_t max_workers = std::clamp(
        std::thread::hardware_concurrency(), 2u, 8u);
    std::printf("tab_concurrency: throughput scaling to %u "
                "workers...\n",
                max_workers);
    runtime::ThroughputOptions t_options;
    t_options.epochRequests = 64;
    t_options.params = params;

    std::vector<ThroughputRow> scaling;
    for (std::uint32_t w = 1; w <= max_workers; ++w) {
        t_options.workers = w;
        t_options.aggregation =
            runtime::ThroughputOptions::Aggregation::Sharded;
        const runtime::ThroughputResult r =
            runtime::runThroughput(stream, t_options);
        ThroughputRow row;
        row.workers = w;
        row.wallSeconds = r.wallSeconds;
        row.requestsPerSecond = r.requestsPerSecond;
        row.pathRecords = r.pathRecords;
        row.flushedEdgeCount = r.edges.totalCount();
        scaling.push_back(row);
        std::printf("  workers=%u  %9.0f req/s  (%.4f s wall)\n", w,
                    row.requestsPerSecond, row.wallSeconds);
    }

    // ---- sharded vs mutex at max workers ----------------------------
    t_options.workers = max_workers;
    t_options.aggregation =
        runtime::ThroughputOptions::Aggregation::Sharded;
    const runtime::ThroughputResult sharded =
        runtime::runThroughput(stream, t_options);
    t_options.aggregation =
        runtime::ThroughputOptions::Aggregation::Mutex;
    const runtime::ThroughputResult mutex_global =
        runtime::runThroughput(stream, t_options);
    t_options.aggregation =
        runtime::ThroughputOptions::Aggregation::Ring;
    const runtime::ThroughputResult ring =
        runtime::runThroughput(stream, t_options);

    const bool identical =
        edgesIdentical(sharded.edges, mutex_global.edges) &&
        sharded.paths == mutex_global.paths;
    // The ring transport's own invariant: every sample offered is
    // either applied or counted as dropped (see docs/RUNTIME.md).
    const bool ring_conserved =
        ring.transport.produced ==
        ring.transport.consumed + ring.transport.dropped;
    const double agg_speedup =
        mutex_global.requestsPerSecond > 0.0
            ? sharded.requestsPerSecond /
                  mutex_global.requestsPerSecond
            : 0.0;
    std::printf("  sharded %9.0f req/s vs mutex %9.0f req/s "
                "(%.2fx), profiles %s\n",
                sharded.requestsPerSecond,
                mutex_global.requestsPerSecond, agg_speedup,
                identical ? "identical" : "DIVERGE");
    std::printf("  ring    %9.0f req/s (drop-rate %.4f%%, "
                "conservation %s)\n",
                ring.requestsPerSecond,
                100.0 * ring.transport.dropRate(),
                ring_conserved ? "ok" : "VIOLATED");

    // ---- JSON -------------------------------------------------------
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "tab_concurrency: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"requests\": %u,\n", spec.requests);
    std::fprintf(json, "  \"coop\": [\n");
    for (std::size_t i = 0; i < coop.size(); ++i) {
        const CoopRow &row = coop[i];
        std::fprintf(json,
                     "    {\"virtual_threads\": %u, "
                     "\"base_cycles\": %llu, "
                     "\"pep_cycles\": %llu, "
                     "\"overhead\": %.6f, "
                     "\"relative_overlap\": %.6f, "
                     "\"absolute_overlap\": %.6f, "
                     "\"context_switches\": %llu, "
                     "\"samples_recorded\": %llu, "
                     "\"deterministic\": %s}%s\n",
                     row.threads,
                     static_cast<unsigned long long>(row.baseCycles),
                     static_cast<unsigned long long>(row.pepCycles),
                     row.overhead, row.relativeOverlap,
                     row.absoluteOverlap,
                     static_cast<unsigned long long>(
                         row.contextSwitches),
                     static_cast<unsigned long long>(
                         row.samplesRecorded),
                     row.deterministic ? "true" : "false",
                     i + 1 < coop.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"throughput_scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        const ThroughputRow &row = scaling[i];
        std::fprintf(json,
                     "    {\"workers\": %u, "
                     "\"wall_seconds\": %.6f, "
                     "\"requests_per_sec\": %.1f, "
                     "\"path_records\": %llu, "
                     "\"edge_count\": %llu}%s\n",
                     row.workers, row.wallSeconds,
                     row.requestsPerSecond,
                     static_cast<unsigned long long>(row.pathRecords),
                     static_cast<unsigned long long>(
                         row.flushedEdgeCount),
                     i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"aggregation\": {\n");
    std::fprintf(json, "    \"workers\": %u,\n", max_workers);
    std::fprintf(json, "    \"sharded_requests_per_sec\": %.1f,\n",
                 sharded.requestsPerSecond);
    std::fprintf(json, "    \"mutex_requests_per_sec\": %.1f,\n",
                 mutex_global.requestsPerSecond);
    std::fprintf(json, "    \"sharded_speedup\": %.4f,\n",
                 agg_speedup);
    std::fprintf(json, "    \"profiles_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(json, "    \"ring_requests_per_sec\": %.1f,\n",
                 ring.requestsPerSecond);
    std::fprintf(json, "    \"ring_drop_rate\": %.6f,\n",
                 ring.transport.dropRate());
    std::fprintf(json, "    \"ring_window_staleness_epochs\": %.6f,\n",
                 ring.windowStalenessEpochs);
    std::fprintf(json, "    \"ring_conservation_ok\": %s\n",
                 ring_conserved ? "true" : "false");
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"coop_deterministic\": %s\n",
                 all_deterministic ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("tab_concurrency: wrote %s\n", json_path.c_str());

    return (identical && ring_conserved && all_deterministic) ? 0 : 1;
}
