/**
 * @file
 * google-benchmark microbenchmarks for PEP's building blocks: P-DAG
 * construction, path numbering, greedy reconstruction (first-sample
 * slow path vs the cached common case), sampling controllers, and raw
 * interpreter throughput. These quantify design choices the paper
 * relies on qualitatively (e.g., caching a path's edge expansion after
 * its first sample, Section 4.3).
 */

#include <benchmark/benchmark.h>

#include "bytecode/cfg_builder.hh"
#include "core/sampling.hh"
#include "profile/instr_plan.hh"
#include "profile/numbering.hh"
#include "profile/path_profile.hh"
#include "profile/pdag.hh"
#include "profile/reconstruct.hh"
#include "support/rng.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"
#include "workload/synthetic.hh"

using namespace pep;

namespace {

/** A reasonably branchy method to exercise the algorithms. */
const bytecode::Method &
sampleMethod()
{
    static const bytecode::Program program = [] {
        workload::WorkloadSpec spec = workload::standardSuite()[4];
        return workload::generateWorkload(spec);
    }();
    bytecode::MethodId id = 0;
    program.findMethod("hot_0", id);
    return program.methods[id];
}

struct PreparedMethod
{
    bytecode::MethodCfg cfg;
    profile::PDag pdag;
    profile::Numbering numbering;
    std::unique_ptr<profile::PathReconstructor> reconstructor;
};

const PreparedMethod &
preparedMethod()
{
    static const PreparedMethod prepared = [] {
        PreparedMethod p;
        p.cfg = bytecode::buildCfg(sampleMethod());
        p.pdag =
            profile::buildPDag(p.cfg, profile::DagMode::HeaderSplit);
        p.numbering = profile::numberPaths(
            p.pdag, profile::NumberingScheme::BallLarus);
        p.reconstructor = std::make_unique<profile::PathReconstructor>(
            p.cfg, p.pdag, p.numbering);
        return p;
    }();
    return prepared;
}

void
BM_BuildCfg(benchmark::State &state)
{
    const bytecode::Method &method = sampleMethod();
    for (auto _ : state)
        benchmark::DoNotOptimize(bytecode::buildCfg(method));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(method.code.size()));
}
BENCHMARK(BM_BuildCfg);

void
BM_BuildPDag(benchmark::State &state)
{
    const auto mode = state.range(0) == 0
                          ? profile::DagMode::HeaderSplit
                          : profile::DagMode::BackEdgeTruncate;
    const bytecode::MethodCfg cfg = bytecode::buildCfg(sampleMethod());
    for (auto _ : state)
        benchmark::DoNotOptimize(profile::buildPDag(cfg, mode));
}
BENCHMARK(BM_BuildPDag)->Arg(0)->Arg(1);

void
BM_NumberPaths(benchmark::State &state)
{
    const bytecode::MethodCfg cfg = bytecode::buildCfg(sampleMethod());
    const profile::PDag pdag =
        profile::buildPDag(cfg, profile::DagMode::HeaderSplit);
    if (state.range(0) == 0) {
        for (auto _ : state) {
            benchmark::DoNotOptimize(profile::numberPaths(
                pdag, profile::NumberingScheme::BallLarus));
        }
    } else {
        // Smart numbering with uniform frequencies.
        profile::DagEdgeFreqs freqs(pdag.dag.numBlocks());
        for (cfg::BlockId v = 0; v < pdag.dag.numBlocks(); ++v)
            freqs[v].assign(pdag.dag.succs(v).size(), 1.0);
        for (auto _ : state) {
            benchmark::DoNotOptimize(profile::numberPaths(
                pdag, profile::NumberingScheme::Smart, &freqs));
        }
    }
}
BENCHMARK(BM_NumberPaths)->Arg(0)->Arg(1);

void
BM_ReconstructPath(benchmark::State &state)
{
    const PreparedMethod &p = preparedMethod();
    support::Rng rng(7);
    const std::uint64_t total = p.numbering.totalPaths;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            p.reconstructor->reconstruct(rng.nextBounded(total)));
    }
}
BENCHMARK(BM_ReconstructPath);

/** The paper's first-sample vs cached-sample asymmetry (Section 4.3):
 *  arg 0 = expand every time; arg 1 = cache in the path record. */
void
BM_SampleRecording(benchmark::State &state)
{
    const PreparedMethod &p = preparedMethod();
    const bool cached = state.range(0) == 1;
    support::Rng rng(7);
    const std::uint64_t total = p.numbering.totalPaths;
    // Pre-draw a sample stream with realistic repetition (few hot
    // paths dominate).
    std::vector<std::uint64_t> stream;
    std::vector<std::uint64_t> hot;
    for (int i = 0; i < 8; ++i)
        hot.push_back(rng.nextBounded(total));
    for (int i = 0; i < 4096; ++i) {
        stream.push_back(rng.nextBool(0.9)
                             ? hot[rng.nextBounded(hot.size())]
                             : rng.nextBounded(total));
    }

    profile::MethodPathProfile paths;
    std::size_t i = 0;
    for (auto _ : state) {
        const std::uint64_t number = stream[i++ & 4095];
        profile::PathRecord &record = paths.addSample(number);
        if (!record.expanded || !cached) {
            profile::expandRecord(record, *p.reconstructor, number);
        }
        benchmark::DoNotOptimize(record.count);
    }
}
BENCHMARK(BM_SampleRecording)->Arg(0)->Arg(1);

void
BM_SamplingControllers(benchmark::State &state)
{
    core::SimplifiedArnoldGrove simplified(64, 17);
    core::FullArnoldGrove full(64, 17);
    core::SamplingController &controller =
        state.range(0) == 0
            ? static_cast<core::SamplingController &>(simplified)
            : static_cast<core::SamplingController &>(full);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            controller.onOpportunity((i++ & 1023) == 0));
    }
}
BENCHMARK(BM_SamplingControllers)->Arg(0)->Arg(1);

void
BM_InterpreterThroughput(benchmark::State &state)
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    spec.outerIterations = 20;
    const bytecode::Program program = workload::generateWorkload(spec);
    for (auto _ : state) {
        vm::Machine machine(program, vm::SimParams{});
        machine.runIteration();
        state.SetIterationTime(0); // measured by wall time below
        benchmark::DoNotOptimize(machine.stats().instructionsExecuted);
    }
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
