/**
 * @file
 * k-BLPP table (docs/KBLPP.md), emitted as BENCH_PR8.json: what
 * multi-iteration windows buy on the loop-heavy suite. For each
 * benchmark and k in {1, 2, 4, 8} a zero-cost windowed profiler runs
 * under replay and we measure:
 *
 *   - distinct k-paths vs distinct acyclic paths — how much cyclic
 *     structure 1-BLPP was conflating (the paper's core claim is that
 *     this ratio is substantial on loopy code);
 *   - the fraction of recorded windows that are composite (length > 1),
 *     i.e. actually cross a loop-header boundary;
 *   - hot-path concentration (weight of the ten hottest ids) — longer
 *     windows should spread weight over more distinct contexts;
 *   - agreement between the k-path-derived edge profile and the
 *     machine's ground-truth edges. Windowing regroups segments but
 *     never invents or loses flow, so this must not move with k —
 *     a k-dependent divergence is a correctness failure, not a
 *     finding;
 *   - measured-iteration cycles with a cost-charging windowed profiler,
 *     relative to k=1 — the runtime price of window bookkeeping on top
 *     of identical instrumentation (the plan never depends on k).
 *
 * Usage: tab_kiter [output.json]   (default BENCH_PR8.json)
 * PEP_BENCH_SCALE scales the suite.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/harness.hh"
#include "metrics/overlap.hh"
#include "support/table.hh"

using namespace pep;

namespace {

constexpr std::uint32_t kValues[] = {1, 2, 4, 8};

struct KRow
{
    std::uint64_t distinct = 0;
    std::uint64_t windows = 0;
    double compositeFraction = 0.0;
    double top10Coverage = 0.0;
    double edgeAgreement = 0.0;
    std::uint64_t chargedCycles = 0;
};

struct BenchResult
{
    std::string name;
    KRow rows[std::size(kValues)];
};

/** Zero-cost windowed run: profile shape + derived-edge agreement. */
KRow
measureShape(const bench::Prepared &prepared,
             const vm::SimParams &params, std::uint32_t k)
{
    bench::ReplayRun run(prepared, params);
    core::FullPathProfiler full(
        run.machine(), profile::DagMode::HeaderSplit,
        /*charge_costs=*/false, profile::NumberingScheme::BallLarus,
        core::PathStoreKind::Hash, profile::PlacementKind::Direct, k);
    run.machine().addHooks(&full);
    run.machine().addCompileObserver(&full);

    run.runCompileIteration();
    run.clearCollectedProfiles();
    full.clearPathProfiles();
    run.runMeasuredIteration();

    KRow row;
    std::vector<std::uint64_t> counts;
    std::uint64_t composite_weight = 0;
    for (const auto &[key, vp] : full.versionProfiles()) {
        if (!vp->state->plan.enabled)
            continue;
        const profile::KPathScheme &kpath = vp->state->kpath;
        for (const auto &[id, record] : vp->paths.paths()) {
            ++row.distinct;
            row.windows += record.count;
            counts.push_back(record.count);
            if (id >= kpath.base())
                composite_weight += record.count;
        }
    }
    if (row.windows > 0) {
        row.compositeFraction =
            static_cast<double>(composite_weight) /
            static_cast<double>(row.windows);
        std::sort(counts.rbegin(), counts.rend());
        std::uint64_t top = 0;
        for (std::size_t i = 0; i < counts.size() && i < 10; ++i)
            top += counts[i];
        row.top10Coverage = static_cast<double>(top) /
                            static_cast<double>(row.windows);
    }
    row.edgeAgreement = metrics::relativeOverlap(
        bench::allCfgs(run.machine()), run.machine().truthEdges(),
        core::edgeProfileFromPaths(run.machine(), full));
    return row;
}

/** Cost-charging run: the price of window bookkeeping. */
std::uint64_t
measureCharged(const bench::Prepared &prepared,
               const vm::SimParams &params, std::uint32_t k)
{
    bench::ReplayRun run(prepared, params);
    core::FullPathProfiler full(
        run.machine(), profile::DagMode::HeaderSplit,
        /*charge_costs=*/true, profile::NumberingScheme::BallLarus,
        core::PathStoreKind::Hash, profile::PlacementKind::Direct, k);
    run.machine().addHooks(&full);
    run.machine().addCompileObserver(&full);
    run.runCompileIteration();
    run.clearCollectedProfiles();
    full.clearPathProfiles();
    return run.runMeasuredIteration();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_PR8.json";
    const vm::SimParams params = bench::defaultParams();

    const std::vector<BenchResult> results = bench::mapSuite(
        bench::benchSuite(), [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);
            BenchResult result;
            result.name = spec.name;
            for (std::size_t i = 0; i < std::size(kValues); ++i) {
                result.rows[i] =
                    measureShape(prepared, params, kValues[i]);
                result.rows[i].chargedCycles =
                    measureCharged(prepared, params, kValues[i]);
            }
            return result;
        });

    support::Table table;
    table.header({"benchmark", "k", "distinct", "windows",
                  "composite", "top10", "edge-agree", "overhead"});
    std::vector<double> ratios[std::size(kValues)];
    for (const BenchResult &result : results) {
        const KRow &base = result.rows[0];
        for (std::size_t i = 0; i < std::size(kValues); ++i) {
            const KRow &row = result.rows[i];
            const double overhead =
                base.chargedCycles > 0
                    ? static_cast<double>(row.chargedCycles) /
                          static_cast<double>(base.chargedCycles)
                    : 1.0;
            const double refinement =
                base.distinct > 0
                    ? static_cast<double>(row.distinct) /
                          static_cast<double>(base.distinct)
                    : 1.0;
            ratios[i].push_back(refinement);
            table.row({i == 0 ? result.name : "",
                       std::to_string(kValues[i]),
                       std::to_string(row.distinct),
                       std::to_string(row.windows),
                       bench::pct(row.compositeFraction),
                       bench::pct(row.top10Coverage),
                       bench::pct(row.edgeAgreement, 2),
                       std::to_string(overhead).substr(0, 5) + "x"});
        }
    }
    std::printf("k-BLPP: multi-iteration path windows vs classic "
                "BLPP (docs/KBLPP.md)\n\n%s\n",
                table.str().c_str());

    FILE *json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "tab_kiter: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n  \"benchmarks\": [\n");
    for (std::size_t b = 0; b < results.size(); ++b) {
        const BenchResult &result = results[b];
        std::fprintf(json, "    {\"name\": \"%s\", \"rows\": [\n",
                     result.name.c_str());
        for (std::size_t i = 0; i < std::size(kValues); ++i) {
            const KRow &row = result.rows[i];
            std::fprintf(
                json,
                "      {\"k\": %u, \"distinct_paths\": %llu, "
                "\"windows\": %llu, \"composite_fraction\": %.6f, "
                "\"top10_coverage\": %.6f, \"edge_agreement\": %.6f, "
                "\"charged_cycles\": %llu}%s\n",
                kValues[i],
                static_cast<unsigned long long>(row.distinct),
                static_cast<unsigned long long>(row.windows),
                row.compositeFraction, row.top10Coverage,
                row.edgeAgreement,
                static_cast<unsigned long long>(row.chargedCycles),
                i + 1 < std::size(kValues) ? "," : "");
        }
        std::fprintf(json, "    ]}%s\n",
                     b + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"refinement_avg\": {");
    for (std::size_t i = 0; i < std::size(kValues); ++i) {
        double sum = 0.0;
        for (const double r : ratios[i])
            sum += r;
        const double avg =
            ratios[i].empty() ? 1.0 : sum / ratios[i].size();
        std::fprintf(json, "\"k%u\": %.4f%s", kValues[i], avg,
                     i + 1 < std::size(kValues) ? ", " : "");
    }
    std::fprintf(json, "}\n}\n");
    std::fclose(json);
    std::printf("tab_kiter: results in %s\n", json_path.c_str());
    return 0;
}
