/**
 * @file
 * Continuous reoptimization table (docs/OPT.md), emitted as
 * BENCH_PR9.json: the paper's Figures 10-11 run *live*. A
 * phase-shifting workload executes under five layout policies:
 *
 *   - none        no profile; every branch keeps the built-in
 *                 fall-through prediction;
 *   - perfect     an oracle swaps in the current phase's true profile
 *                 at every phase boundary (upper bound);
 *   - one-time    the paper's one-time profile: phase A's profile
 *                 applied once and never refreshed — right until the
 *                 shift, stale after it;
 *   - continuous  the real subsystem: a windowed (EWMA) profile fed
 *                 from live execution drives the reoptimization
 *                 driver, which re-runs chain layout + cloning through
 *                 ordinary recompiles when the phase flips;
 *   - flipped     the anti-oracle (Section 6.5): each phase's profile
 *                 with every branch inverted — maximally wrong, and a
 *                 check that optimization is accuracy-sensitive.
 *
 * Gates (exit nonzero on violation):
 *   1. layout and cloning never change observable behaviour: globals,
 *      invocation counts, and bytecode-level branch counts are
 *      identical across all five policies and across both execution
 *      engines;
 *   2. perfect beats none;
 *   3. continuous recovers at least 80% of perfect's win over none;
 *   4. one-time degrades after the shift (its phase-B execution is
 *      worse than both its phase-A and continuous's phase-B) and loses
 *      to continuous overall;
 *   5. flipped is strictly the worst policy.
 *
 * Cycle comparisons use execution cycles (total minus compile), so the
 * adaptation *cost* — recompiles and their cycles — is reported
 * separately instead of blurring the layout effect.
 *
 * Usage: tab_relayout [output.json]   (default BENCH_PR9.json)
 * PEP_BENCH_SCALE scales the iteration count.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "opt/pipeline.hh"
#include "opt/profile_consumer.hh"
#include "opt/reopt_driver.hh"
#include "profile/edge_profile.hh"
#include "runtime/profile_window.hh"
#include "support/table.hh"
#include "vm/machine.hh"

using namespace pep;

namespace {

/** Iterations per phase boundary, from PEP_BENCH_SCALE. */
struct Shape
{
    std::uint32_t total = 60;
    std::uint32_t split = 30;
    std::uint32_t inner = 2000;
};

Shape
benchShape()
{
    double scale = 1.0;
    if (const char *env = std::getenv("PEP_BENCH_SCALE")) {
        const double parsed = std::atof(env);
        if (parsed > 0.0 && parsed <= 1.0)
            scale = parsed;
    }
    Shape shape;
    shape.total = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(60.0 * scale));
    shape.split = shape.total / 2;
    shape.inner = std::max<std::uint32_t>(
        200, static_cast<std::uint32_t>(2000.0 * scale));
    return shape;
}

/**
 * The phase-shifting workload. Each main invocation bumps g0 and runs
 * a hot inner loop with two opposed phase-biased diamonds: diamond 1
 * takes while g0 <= SPLIT (phase A), diamond 2 takes after (phase B).
 * The built-in prediction (fall-through) is right on exactly one of
 * them in each phase, a current profile on both, a stale or flipped
 * one on neither.
 */
bytecode::Program
phasedProgram(const Shape &shape)
{
    char source[1024];
    std::snprintf(source, sizeof source, R"(
.globals 2
.method main 0 1
    iconst 0
    gload
    iconst 1
    iadd
    iconst 0
    gstore
    iconst %u
    istore 0
loop:
    iload 0
    ifle done
    iconst 0
    gload
    iconst %u
    if_icmple take1
    iconst 1
    gload
    iconst 3
    iadd
    iconst 1
    gstore
    goto join1
take1:
    iconst 1
    gload
    iconst 2
    iadd
    iconst 1
    gstore
join1:
    iconst 0
    gload
    iconst %u
    if_icmpgt take2
    iconst 1
    gload
    iconst 1
    iadd
    iconst 1
    gstore
    goto join2
take2:
    iconst 1
    gload
    iconst 5
    iadd
    iconst 1
    gstore
join2:
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)",
                  shape.inner, shape.split, shape.split);
    const bytecode::AssembleResult assembled =
        bytecode::assemble(source);
    if (!assembled.ok) {
        std::fprintf(stderr, "tab_relayout: bad program: %s\n",
                     assembled.error.c_str());
        std::exit(1);
    }
    return assembled.program;
}

/** Serves whatever snapshot is currently plugged in. */
class SnapshotConsumer final : public opt::ProfileConsumer
{
  public:
    void use(const profile::EdgeProfileSet *set) { set_ = set; }

    const profile::MethodEdgeProfile *
    edges(bytecode::MethodId method) override
    {
        if (set_ == nullptr || method >= set_->perMethod.size())
            return nullptr;
        const profile::MethodEdgeProfile &p = set_->perMethod[method];
        return p.totalCount() > 0 ? &p : nullptr;
    }

  private:
    const profile::EdgeProfileSet *set_ = nullptr;
};

/** counts(after) - counts(before), as a profile set. */
profile::EdgeProfileSet
diffProfiles(const std::vector<const bytecode::MethodCfg *> &cfgs,
             const profile::EdgeProfileSet &before,
             const profile::EdgeProfileSet &after)
{
    profile::EdgeProfileSet delta(cfgs);
    for (std::size_t m = 0; m < cfgs.size(); ++m) {
        const auto &a = after.perMethod[m].counts();
        const auto &b = before.perMethod[m].counts();
        for (cfg::BlockId blk = 0; blk < a.size(); ++blk) {
            for (std::uint32_t i = 0; i < a[blk].size(); ++i) {
                const std::uint64_t d = a[blk][i] - b[blk][i];
                if (d > 0)
                    delta.perMethod[m].addEdge(cfg::EdgeRef{blk, i}, d);
            }
        }
    }
    return delta;
}

profile::EdgeProfileSet
flipProfiles(const std::vector<const bytecode::MethodCfg *> &cfgs,
             const profile::EdgeProfileSet &set)
{
    profile::EdgeProfileSet flipped;
    for (std::size_t m = 0; m < cfgs.size(); ++m)
        flipped.perMethod.push_back(
            set.perMethod[m].flipped(*cfgs[m]));
    return flipped;
}

enum class Policy
{
    None,
    Perfect,
    OneTime,
    Continuous,
    Flipped,
};

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::None: return "none";
      case Policy::Perfect: return "perfect";
      case Policy::OneTime: return "one-time";
      case Policy::Continuous: return "continuous";
      case Policy::Flipped: return "flipped";
    }
    return "?";
}

struct PolicyResult
{
    std::uint64_t phaseAExec = 0;
    std::uint64_t phaseBExec = 0;
    std::uint64_t compileCycles = 0;
    std::uint64_t layoutMisses = 0;
    std::uint64_t recompiles = 0;
    std::uint64_t clones = 0;

    /** Observable state, for the identity gates. */
    std::vector<std::int32_t> globals;
    std::uint64_t invocations = 0;
    std::vector<std::vector<std::uint64_t>> branchCounts;

    std::uint64_t
    totalExec() const
    {
        return phaseAExec + phaseBExec;
    }
};

/** Per-branch-block ground-truth rows (well-defined under cloning:
 *  synthesized frames record exactly these rows). */
std::vector<std::vector<std::uint64_t>>
branchRows(const vm::Machine &machine)
{
    std::vector<std::vector<std::uint64_t>> rows;
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const auto method = static_cast<bytecode::MethodId>(m);
        const bytecode::MethodCfg &cfg = machine.info(method).cfg;
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            const auto kind = cfg.terminator[b];
            if (kind == bytecode::TerminatorKind::Cond ||
                kind == bytecode::TerminatorKind::Switch) {
                rows.push_back(
                    machine.truthEdges().perMethod[m].counts()[b]);
            }
        }
    }
    return rows;
}

PolicyResult
runPolicy(Policy policy, const bytecode::Program &program,
          const Shape &shape, vm::EngineKind engine,
          const profile::EdgeProfileSet &phaseA,
          const profile::EdgeProfileSet &phaseB)
{
    vm::SimParams params;
    params.engine = engine;
    vm::Machine machine(program, params);

    std::vector<const bytecode::MethodCfg *> cfgs;
    for (std::size_t m = 0; m < machine.numMethods(); ++m)
        cfgs.push_back(
            &machine.info(static_cast<bytecode::MethodId>(m)).cfg);

    const profile::EdgeProfileSet phaseAFlipped =
        flipProfiles(cfgs, phaseA);
    const profile::EdgeProfileSet phaseBFlipped =
        flipProfiles(cfgs, phaseB);

    SnapshotConsumer snapshots;
    runtime::WindowedProfile window(cfgs, /*decay=*/0.5);
    opt::WindowedProfileConsumer windowed(machine, window);

    const bool uses_pipeline = policy != Policy::None;
    opt::ProfileConsumer &consumer =
        policy == Policy::Continuous
            ? static_cast<opt::ProfileConsumer &>(windowed)
            : static_cast<opt::ProfileConsumer &>(snapshots);
    opt::OptPipeline pipeline(consumer);
    if (uses_pipeline)
        machine.addCompilePass(&pipeline);

    switch (policy) {
      case Policy::Perfect:
      case Policy::OneTime:
        snapshots.use(&phaseA);
        break;
      case Policy::Flipped:
        snapshots.use(&phaseAFlipped);
        break;
      default:
        break;
    }
    machine.compileNow(program.mainMethod, vm::OptLevel::Opt2);

    opt::ReoptDriver driver(machine, window, {});

    PolicyResult result;
    profile::EdgeProfileSet lastTruth = machine.truthEdges();
    std::uint64_t exec_mark = 0;
    std::uint64_t compile_mark = machine.stats().compileCycles;
    for (std::uint32_t it = 0; it < shape.total; ++it) {
        if (it == shape.split) {
            // Phase boundary: the oracle (and the anti-oracle) swap in
            // the new phase's profile; continuous must *discover* the
            // shift from its window instead.
            if (policy == Policy::Perfect) {
                snapshots.use(&phaseB);
                machine.compileNow(program.mainMethod,
                                   vm::OptLevel::Opt2);
            } else if (policy == Policy::Flipped) {
                snapshots.use(&phaseBFlipped);
                machine.compileNow(program.mainMethod,
                                   vm::OptLevel::Opt2);
            }
            const std::uint64_t compiled = machine.stats().compileCycles;
            result.phaseAExec = exec_mark;
            exec_mark = 0;
            compile_mark = compiled;
        }
        const std::uint64_t cycles = machine.runIteration();
        const std::uint64_t compiled = machine.stats().compileCycles;
        exec_mark += cycles - (compiled - compile_mark);
        compile_mark = compiled;

        if (policy == Policy::Continuous) {
            // Feed the window from this iteration's executed edges —
            // the deterministic stand-in for a transport drain — and
            // let the driver look for a phase change.
            const profile::EdgeProfileSet now = machine.truthEdges();
            const profile::EdgeProfileSet delta =
                diffProfiles(cfgs, lastTruth, now);
            for (std::size_t m = 0; m < cfgs.size(); ++m) {
                const auto &counts = delta.perMethod[m].counts();
                for (cfg::BlockId b = 0; b < counts.size(); ++b)
                    for (std::uint32_t i = 0; i < counts[b].size(); ++i)
                        if (counts[b][i] > 0)
                            window.addEdge(
                                static_cast<bytecode::MethodId>(m),
                                cfg::EdgeRef{b, i}, counts[b][i]);
            }
            window.advance();
            driver.poll();
            // Recompiles inside poll() land in the cycle counter but
            // in no iteration's return; resync so the next iteration's
            // compile delta matches what its return actually charged.
            compile_mark = machine.stats().compileCycles;
            lastTruth = std::move(now);
        }
    }
    result.phaseBExec = exec_mark;

    result.compileCycles = machine.stats().compileCycles;
    result.layoutMisses = machine.stats().layoutMisses;
    result.recompiles = policy == Policy::Continuous
                            ? driver.stats().recompiles
                            : machine.stats().compiles;
    result.clones = pipeline.stats().clonesApplied;
    result.globals = machine.globals();
    result.invocations = machine.stats().methodInvocations;
    result.branchCounts = branchRows(machine);
    return result;
}

bool
sameObservables(const PolicyResult &a, const PolicyResult &b)
{
    return a.globals == b.globals && a.invocations == b.invocations &&
           a.branchCounts == b.branchCounts;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_PR9.json";
    const Shape shape = benchShape();
    const bytecode::Program program = phasedProgram(shape);

    // Oracle profiles: one plain run, split at the phase boundary.
    std::vector<const bytecode::MethodCfg *> cfgs;
    profile::EdgeProfileSet phaseA;
    profile::EdgeProfileSet phaseB;
    {
        vm::Machine probe(program, vm::SimParams{});
        for (std::size_t m = 0; m < probe.numMethods(); ++m)
            cfgs.push_back(
                &probe.info(static_cast<bytecode::MethodId>(m)).cfg);
        for (std::uint32_t it = 0; it < shape.split; ++it)
            probe.runIteration();
        phaseA = probe.truthEdges();
        for (std::uint32_t it = shape.split; it < shape.total; ++it)
            probe.runIteration();
        phaseB = diffProfiles(cfgs, phaseA, probe.truthEdges());
    }

    const Policy policies[] = {Policy::None, Policy::Perfect,
                               Policy::OneTime, Policy::Continuous,
                               Policy::Flipped};
    PolicyResult results[std::size(policies)];
    for (std::size_t p = 0; p < std::size(policies); ++p) {
        results[p] =
            runPolicy(policies[p], program, shape,
                      vm::EngineKind::Switch, phaseA, phaseB);
    }
    const PolicyResult &none = results[0];
    const PolicyResult &perfect = results[1];
    const PolicyResult &onetime = results[2];
    const PolicyResult &continuous = results[3];
    const PolicyResult &flipped = results[4];

    support::Table table;
    table.header({"policy", "phaseA", "phaseB", "total", "misses",
                  "recompiles", "clones", "compile"});
    for (std::size_t p = 0; p < std::size(policies); ++p) {
        const PolicyResult &r = results[p];
        table.row({policyName(policies[p]),
                   std::to_string(r.phaseAExec),
                   std::to_string(r.phaseBExec),
                   std::to_string(r.totalExec()),
                   std::to_string(r.layoutMisses),
                   std::to_string(r.recompiles),
                   std::to_string(r.clones),
                   std::to_string(r.compileCycles)});
    }
    std::printf("continuous reoptimization: live Figures 10-11 "
                "(docs/OPT.md)\n\n%s\n",
                table.str().c_str());

    int failures = 0;
    const auto gate = [&](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "tab_relayout: GATE FAILED: %s\n",
                         what);
            ++failures;
        }
    };

    // Gate 1: layout is a performance plan, never semantics.
    for (std::size_t p = 1; p < std::size(policies); ++p)
        gate(sameObservables(results[0], results[p]),
             "policies diverge in observable behaviour");
    const PolicyResult threaded =
        runPolicy(Policy::Continuous, program, shape,
                  vm::EngineKind::Threaded, phaseA, phaseB);
    gate(sameObservables(continuous, threaded),
         "engines diverge under continuous reoptimization");

    // Gate 2: a correct profile wins.
    gate(perfect.totalExec() < none.totalExec(),
         "perfect does not beat none");

    // Gate 3: continuous recovers >= 80% of perfect's win. The
    // driver's adaptation lag is a fixed few epochs (warm-up plus the
    // two-step crossing of the window), so the recovery fraction is
    // only meaningful when the phases are long enough to amortize it;
    // at smoke scale the gate degrades to "still beats none".
    const double perfect_win =
        static_cast<double>(none.totalExec()) -
        static_cast<double>(perfect.totalExec());
    const double continuous_win =
        static_cast<double>(none.totalExec()) -
        static_cast<double>(continuous.totalExec());
    if (shape.total >= 40) {
        gate(perfect_win > 0 && continuous_win >= 0.8 * perfect_win,
             "continuous recovers < 80% of perfect's win");
    } else {
        gate(perfect_win > 0 && continuous_win > 0,
             "continuous does not beat none");
    }

    // Gate 4: the one-time profile goes stale at the shift.
    gate(onetime.phaseBExec > onetime.phaseAExec,
         "one-time did not degrade after the phase shift");
    gate(onetime.phaseBExec > continuous.phaseBExec,
         "one-time is not worse than continuous after the shift");
    gate(onetime.totalExec() > continuous.totalExec(),
         "one-time is not worse than continuous overall");

    // Gate 5: a maximally wrong profile is strictly the worst.
    for (std::size_t p = 0; p + 1 < std::size(policies); ++p)
        gate(flipped.totalExec() > results[p].totalExec(),
             "flipped is not strictly the worst policy");

    FILE *json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "tab_relayout: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n  \"iterations\": %u,\n  \"phase_split\": %u,\n"
                 "  \"inner_loop\": %u,\n  \"policies\": [\n",
                 shape.total, shape.split, shape.inner);
    for (std::size_t p = 0; p < std::size(policies); ++p) {
        const PolicyResult &r = results[p];
        std::fprintf(
            json,
            "    {\"policy\": \"%s\", \"phase_a_cycles\": %llu, "
            "\"phase_b_cycles\": %llu, \"total_cycles\": %llu, "
            "\"layout_misses\": %llu, \"recompiles\": %llu, "
            "\"clones\": %llu, \"compile_cycles\": %llu}%s\n",
            policyName(policies[p]),
            static_cast<unsigned long long>(r.phaseAExec),
            static_cast<unsigned long long>(r.phaseBExec),
            static_cast<unsigned long long>(r.totalExec()),
            static_cast<unsigned long long>(r.layoutMisses),
            static_cast<unsigned long long>(r.recompiles),
            static_cast<unsigned long long>(r.clones),
            static_cast<unsigned long long>(r.compileCycles),
            p + 1 < std::size(policies) ? "," : "");
    }
    const double recovery =
        perfect_win > 0 ? continuous_win / perfect_win : 0.0;
    std::fprintf(json,
                 "  ],\n  \"continuous_recovery\": %.4f,\n"
                 "  \"gates_failed\": %d\n}\n",
                 recovery, failures);
    std::fclose(json);
    std::printf("tab_relayout: continuous recovered %.1f%% of "
                "perfect's win; results in %s\n",
                100.0 * recovery, json_path.c_str());
    return failures == 0 ? 0 : 1;
}
