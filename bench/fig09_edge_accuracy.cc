/**
 * @file
 * Figure 9: edge-profile accuracy (relative overlap — branch bias
 * agreement weighted by actual branch frequency) per sampling
 * configuration, against the perfect edge profile derived from
 * instrumentation-based *path* profiling. The "vs edge-instr" column
 * reproduces the paper's note that comparing against
 * instrumentation-based edge profiling instead lowers accuracy
 * slightly (2% in the paper, due to uninterruptible loop headers; our
 * VM has no uninterruptible methods, so the gap here is ~0).
 *
 * Paper headline: PEP(64,17) 96% average.
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

namespace {

struct Config
{
    std::string label;
    std::uint32_t samples;
    std::uint32_t stride;
    bool fullAg;
};

} // namespace

int
main()
{
    const std::vector<Config> configs = {
        {"PEP(1,1)", 1, 1, false},     {"PEP(16,17)", 16, 17, false},
        {"PEP(64,17)", 64, 17, false}, {"PEP(256,17)", 256, 17, false},
        {"PEP(1024,17)", 1024, 17, false},
        {"AG(64,17)", 64, 17, true},
    };
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    {
        std::vector<std::string> header = {"benchmark"};
        for (const Config &config : configs)
            header.push_back(config.label);
        header.push_back("(64,17) vs edge-instr");
        table.header(std::move(header));
    }

    std::vector<std::vector<double>> accuracy(configs.size());
    std::vector<double> vs_edge_instr;

    struct BenchRow
    {
        std::vector<std::string> cells;
        std::vector<double> accuracy;
        double vsEdgeInstr = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);
            BenchRow result;
            result.cells = {spec.name};
            for (const Config &config : configs) {
                const bench::AccuracyResult run = bench::runAccuracy(
                    prepared, params, config.samples, config.stride,
                    config.fullAg);
                const double overlap = metrics::relativeOverlap(
                    run.cfgs, run.perfectEdges, run.pepEdges);
                result.accuracy.push_back(overlap);
                result.cells.push_back(bench::pct(overlap));
                if (config.label == "PEP(64,17)") {
                    result.vsEdgeInstr = metrics::relativeOverlap(
                        run.cfgs, run.instrEdges, run.pepEdges);
                }
            }
            result.cells.push_back(bench::pct(result.vsEdgeInstr));
            return result;
        });
    for (const BenchRow &result : rows) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            accuracy[c].push_back(result.accuracy[c]);
        vs_edge_instr.push_back(result.vsEdgeInstr);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    {
        std::vector<std::string> avg = {"average"};
        std::vector<std::string> min = {"min"};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            avg.push_back(bench::pct(support::mean(accuracy[c])));
            min.push_back(bench::pct(support::minOf(accuracy[c])));
        }
        avg.push_back(bench::pct(support::mean(vs_edge_instr)));
        min.push_back(bench::pct(support::minOf(vs_edge_instr)));
        table.row(std::move(avg));
        table.row(std::move(min));
    }

    std::printf("Figure 9: edge-profile accuracy "
                "(relative overlap vs perfect path-derived edges)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    PEP(64,17) 96%% avg\n");
    std::printf("measured: PEP(64,17) %s avg\n",
                bench::pct(support::mean(accuracy[2])).c_str());
    return 0;
}
