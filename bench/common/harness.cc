#include "common/harness.hh"

#include <cstdlib>

#include "support/panic.hh"
#include "support/stats.hh"

namespace pep::bench {

std::vector<workload::WorkloadSpec>
benchSuite()
{
    double scale = 1.0;
    if (const char *env = std::getenv("PEP_BENCH_SCALE")) {
        scale = std::atof(env);
        if (scale <= 0.0 || scale > 1.0) {
            support::warn("ignoring invalid PEP_BENCH_SCALE");
            scale = 1.0;
        }
    }
    std::vector<workload::WorkloadSpec> suite =
        workload::scaledSuite(scale);
    if (const char *only = std::getenv("PEP_BENCH_ONLY")) {
        std::erase_if(suite, [&](const workload::WorkloadSpec &spec) {
            return spec.name != only;
        });
    }
    return suite;
}

vm::SimParams
defaultParams()
{
    return vm::SimParams{};
}

Prepared
prepare(const workload::WorkloadSpec &spec, const vm::SimParams &params)
{
    Prepared prepared;
    prepared.spec = spec;
    prepared.program = workload::generateWorkload(spec);
    vm::Machine recorder(prepared.program, params);
    recorder.runIteration();
    prepared.advice = recorder.recordAdvice();
    return prepared;
}

ReplayRun::ReplayRun(const Prepared &prepared,
                     const vm::SimParams &params)
    : advice_(prepared.advice)
{
    machine_ = std::make_unique<vm::Machine>(prepared.program, params);
    machine_->enableReplay(&advice_);
}

core::PepProfiler &
ReplayRun::attachPep(std::unique_ptr<core::SamplingController> controller,
                     const core::PepOptions &options,
                     bool drives_optimization)
{
    controllers_.push_back(std::move(controller));
    peps_.push_back(std::make_unique<core::PepProfiler>(
        *machine_, *controllers_.back(), options));
    core::PepProfiler &pep = *peps_.back();
    machine_->addHooks(&pep);
    machine_->addCompileObserver(&pep);
    if (drives_optimization)
        machine_->setLayoutSource(&pep);
    return pep;
}

core::FullPathProfiler &
ReplayRun::attachFullPath(profile::DagMode mode, bool charge_costs,
                          core::PathStoreKind store)
{
    fulls_.push_back(std::make_unique<core::FullPathProfiler>(
        *machine_, mode, charge_costs,
        profile::NumberingScheme::BallLarus, store));
    core::FullPathProfiler &profiler = *fulls_.back();
    machine_->addHooks(&profiler);
    machine_->addCompileObserver(&profiler);
    return profiler;
}

core::InstrEdgeProfiler &
ReplayRun::attachInstrEdge(bool charge_costs)
{
    instrEdges_.push_back(std::make_unique<core::InstrEdgeProfiler>(
        *machine_, charge_costs));
    core::InstrEdgeProfiler &profiler = *instrEdges_.back();
    machine_->addHooks(&profiler);
    return profiler;
}

void
ReplayRun::setLayoutSource(vm::LayoutSource *source)
{
    machine_->setLayoutSource(source);
}

std::uint64_t
ReplayRun::runCompileIteration()
{
    return machine_->runIteration();
}

void
ReplayRun::clearCollectedProfiles()
{
    for (auto &pep : peps_)
        pep->clearProfiles();
    for (auto &full : fulls_)
        full->clearPathProfiles();
    for (auto &instr_edge : instrEdges_)
        instr_edge->clear();
    machine_->clearTruth();
}

std::uint64_t
ReplayRun::runMeasuredIteration()
{
    return machine_->runIteration();
}

std::uint64_t
ReplayRun::runStandard()
{
    runCompileIteration();
    clearCollectedProfiles();
    return runMeasuredIteration();
}

std::vector<bytecode::MethodCfg>
allCfgs(const vm::Machine &machine)
{
    std::vector<bytecode::MethodCfg> cfgs;
    cfgs.reserve(machine.numMethods());
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        cfgs.push_back(
            machine.info(static_cast<bytecode::MethodId>(m)).cfg);
    }
    return cfgs;
}

AccuracyResult
runAccuracy(const Prepared &prepared, const vm::SimParams &params,
            std::uint32_t samples, std::uint32_t stride,
            bool full_arnold_grove)
{
    ReplayRun run(prepared, params);
    std::unique_ptr<core::SamplingController> controller;
    if (full_arnold_grove) {
        controller =
            std::make_unique<core::FullArnoldGrove>(samples, stride);
    } else {
        controller = std::make_unique<core::SimplifiedArnoldGrove>(
            samples, stride);
    }
    core::PepProfiler &pep = run.attachPep(std::move(controller));
    core::FullPathProfiler &truth = run.attachFullPath(
        profile::DagMode::HeaderSplit, /*charge_costs=*/false);
    core::InstrEdgeProfiler &instr_edge =
        run.attachInstrEdge(/*charge_costs=*/false);

    run.runCompileIteration();
    run.clearCollectedProfiles();
    run.runMeasuredIteration();

    AccuracyResult result;
    result.pepPaths = metrics::canonicalize(pep);
    result.truthPaths = metrics::canonicalize(truth);
    result.pepEdges = pep.edgeProfile();
    result.perfectEdges = core::edgeProfileFromPaths(run.machine(),
                                                     truth);
    result.instrEdges = instr_edge.edges();
    result.cfgs = allCfgs(run.machine());
    result.pepStats = pep.pepStats();
    return result;
}

std::string
pct(double fraction, int decimals)
{
    return support::formatPercent(fraction, decimals);
}

std::string
overheadPct(double ratio)
{
    return support::formatOverhead(ratio);
}

} // namespace pep::bench
