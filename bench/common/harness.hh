#ifndef PEP_BENCH_COMMON_HARNESS_HH
#define PEP_BENCH_COMMON_HARNESS_HH

/**
 * @file
 * Shared benchmark-harness plumbing. Each fig* / tab* binary follows
 * the paper's replay methodology (Section 5):
 *
 *   1. an adaptive *record* run produces advice (final opt levels plus
 *      the baseline one-time edge profile);
 *   2. a *replay* run compiles each method at its final level on first
 *      invocation. Iteration 1 includes compile cost (Figure 7);
 *      iteration 2 measures application execution only (Figures 6,
 *      8-10).
 *
 * Scale the suite with PEP_BENCH_SCALE (0 < s <= 1, default 1) to trade
 * fidelity for wall-clock time, e.g. PEP_BENCH_SCALE=0.2 for smoke
 * runs. Set PEP_BENCH_ONLY=<name> to run a single benchmark.
 */

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"
#include "workload/parallel_runner.hh"
#include "workload/suite.hh"

namespace pep::bench {

/** Suite scaled per the PEP_BENCH_SCALE environment variable. */
std::vector<workload::WorkloadSpec> benchSuite();

/** The default simulation parameters used by every harness. */
vm::SimParams defaultParams();

/** A workload plus the advice recorded from its adaptive run. */
struct Prepared
{
    workload::WorkloadSpec spec;
    bytecode::Program program;
    vm::ReplayAdvice advice;
};

/** Generate the program and record replay advice. */
Prepared prepare(const workload::WorkloadSpec &spec,
                 const vm::SimParams &params);

/**
 * One replay experiment: a machine plus owned profilers. Construct,
 * attach profilers, then run iteration 1 (compile + execute), clear
 * collected profiles, and run iteration 2 (measure).
 */
class ReplayRun
{
  public:
    ReplayRun(const Prepared &prepared, const vm::SimParams &params);

    /** Attach a PEP profiler with the given controller (both owned).
     *  Does NOT route layout decisions through PEP (use
     *  drivesOptimization=true for Figure 11 style runs). */
    core::PepProfiler &attachPep(
        std::unique_ptr<core::SamplingController> controller,
        const core::PepOptions &options = {},
        bool drives_optimization = false);

    /** Attach a store-every-path profiler (owned). */
    core::FullPathProfiler &attachFullPath(
        profile::DagMode mode, bool charge_costs,
        core::PathStoreKind store = core::PathStoreKind::Hash);

    /** Attach instrumentation-based edge profiling (owned). */
    core::InstrEdgeProfiler &attachInstrEdge(bool charge_costs = true);

    /** Override the layout profile source (not owned). */
    void setLayoutSource(vm::LayoutSource *source);

    vm::Machine &machine() { return *machine_; }

    /** Iteration 1: compile + execute; returns its cycles. */
    std::uint64_t runCompileIteration();

    /** Clear all collected profiles (PEP, full profilers, machine
     *  ground truth) before the measured iteration. */
    void clearCollectedProfiles();

    /** Iteration 2: measured execution; returns its cycles. */
    std::uint64_t runMeasuredIteration();

    /** Convenience: iteration 1, clear, iteration 2; returns the
     *  measured cycles. */
    std::uint64_t runStandard();

  private:
    vm::ReplayAdvice advice_;
    std::unique_ptr<vm::Machine> machine_;
    std::vector<std::unique_ptr<core::SamplingController>> controllers_;
    std::vector<std::unique_ptr<core::PepProfiler>> peps_;
    std::vector<std::unique_ptr<core::FullPathProfiler>> fulls_;
    std::vector<std::unique_ptr<core::InstrEdgeProfiler>> instrEdges_;
};

/** Copies of all method CFGs (metrics helpers need them). */
std::vector<bytecode::MethodCfg> allCfgs(const vm::Machine &machine);

/**
 * Evaluate fn over every suite entry, fanned out over the cores
 * (PEP_BENCH_THREADS overrides the worker count; 1 runs serially),
 * and return the results in suite order. Each call of fn builds its
 * own Machines and shares nothing, so the output a caller renders from
 * the returned vector is byte-identical to running the loop serially.
 */
template <typename Fn>
auto
mapSuite(const std::vector<workload::WorkloadSpec> &suite, Fn &&fn)
    -> std::vector<decltype(fn(suite[0]))>
{
    using Result = decltype(fn(suite[0]));
    std::vector<std::optional<Result>> slots(suite.size());
    const workload::ParallelRunner runner;
    runner.run(suite.size(), [&](std::size_t i) {
        slots[i].emplace(fn(suite[i]));
    });
    std::vector<Result> results;
    results.reserve(slots.size());
    for (std::optional<Result> &slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

/** Profiles collected by one accuracy measurement run. */
struct AccuracyResult
{
    /** Canonicalized sampled / perfect path profiles. */
    metrics::CanonicalPathProfile pepPaths;
    metrics::CanonicalPathProfile truthPaths;

    /** PEP's continuous edge profile and the perfect edge profile
     *  derived from instrumentation-based path profiling. */
    profile::EdgeProfileSet pepEdges;
    profile::EdgeProfileSet perfectEdges;

    /** Edge profile from instrumentation-based *edge* profiling. */
    profile::EdgeProfileSet instrEdges;

    std::vector<bytecode::MethodCfg> cfgs;
    core::PepStats pepStats;
};

/**
 * Replay-run a benchmark with PEP(samples, stride) plus zero-cost
 * perfect profilers; measure iteration 2 and return the collected
 * profiles. `full_arnold_grove` selects the unsimplified controller.
 */
AccuracyResult runAccuracy(const Prepared &prepared,
                           const vm::SimParams &params,
                           std::uint32_t samples, std::uint32_t stride,
                           bool full_arnold_grove = false);

/** Format helpers shared by the harness mains. */
std::string pct(double fraction, int decimals = 1);
std::string overheadPct(double ratio);

} // namespace pep::bench

#endif // PEP_BENCH_COMMON_HARNESS_HH
