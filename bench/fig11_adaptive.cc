/**
 * @file
 * Figure 11: end-to-end cost/benefit of PEP under the *adaptive*
 * methodology. Base is a normal adaptive run whose optimizing
 * compilations are guided by the one-time baseline edge profile; the
 * PEP configuration additionally runs PEP(64,17) and lets its
 * continuous edge profile drive every (re)compilation's layout.
 *
 * Paper headline: PEP costs 1.3% average / 3.2% max net — the costs
 * (instrumentation, sampling, compile passes) outweigh the benefit on
 * these predictable programs, because Jikes RVM's optimizations do not
 * speculate aggressively on runtime information.
 */

#include <cstdio>
#include <memory>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "base(Mcyc)", "PEP(64,17)+drive"});

    std::vector<double> ratios;

    // Adaptive runs are sensitive to tick timing (the paper reports
    // high variability and takes the median of 25 trials); we take the
    // median over several trials with varied input seeds.
    constexpr int kTrials = 7;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double ratio = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bytecode::Program program =
                workload::generateWorkload(spec);

            std::vector<double> trial_ratios;
            double base_mcycles = 0;
            for (int trial = 0; trial < kTrials; ++trial) {
                vm::SimParams trial_params = params;
                trial_params.rngSeed =
                    params.rngSeed + static_cast<std::uint64_t>(trial);

                // Base: plain adaptive run.
                double base_cycles = 0;
                {
                    vm::Machine machine(program, trial_params);
                    base_cycles =
                        static_cast<double>(machine.runIteration());
                }

                // PEP collects profiles *and* drives optimization.
                double pep_cycles = 0;
                {
                    vm::Machine machine(program, trial_params);
                    core::SimplifiedArnoldGrove controller(64, 17);
                    core::PepProfiler pep(machine, controller);
                    machine.addHooks(&pep);
                    machine.addCompileObserver(&pep);
                    machine.setLayoutSource(&pep);
                    pep_cycles =
                        static_cast<double>(machine.runIteration());
                }

                trial_ratios.push_back(pep_cycles / base_cycles);
                base_mcycles = base_cycles / 1e6;
            }

            BenchRow result;
            result.ratio = support::median(trial_ratios);
            result.cells = {spec.name,
                            support::formatFixed(base_mcycles, 1),
                            support::formatFixed(result.ratio, 4)};
            return result;
        });
    for (const BenchRow &result : rows) {
        ratios.push_back(result.ratio);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", "",
               bench::overheadPct(support::mean(ratios))});
    table.row({"max", "",
               bench::overheadPct(support::maxOf(ratios))});

    std::printf("Figure 11: PEP collecting profiles and driving "
                "optimization (adaptive methodology)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    +1.3%% avg / +3.2%% max\n");
    std::printf("measured: %s avg / %s max\n",
                bench::overheadPct(support::mean(ratios)).c_str(),
                bench::overheadPct(support::maxOf(ratios)).c_str());
    return 0;
}
