/**
 * @file
 * Figure 8: path-profile accuracy under the Wall weight-matching
 * scheme with branch flow and the 0.125% hot threshold, per sampling
 * configuration. The ablation column "AG(64,17)" uses the original
 * (unsimplified) Arnold-Grove controller for comparison with
 * PEP(64,17).
 *
 * Paper headline numbers: timer-based PEP(1,1) 53% average;
 * PEP(64,17) 94% average, with small gains at higher rates.
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

namespace {

struct Config
{
    std::string label;
    std::uint32_t samples;
    std::uint32_t stride;
    bool fullAg;
};

} // namespace

int
main()
{
    const std::vector<Config> configs = {
        {"PEP(1,1)", 1, 1, false},     {"PEP(16,17)", 16, 17, false},
        {"PEP(64,17)", 64, 17, false}, {"PEP(256,17)", 256, 17, false},
        {"PEP(1024,17)", 1024, 17, false},
        {"AG(64,17)", 64, 17, true},
    };
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    {
        std::vector<std::string> header = {"benchmark", "hot-paths"};
        for (const Config &config : configs)
            header.push_back(config.label);
        table.header(std::move(header));
    }

    std::vector<std::vector<double>> accuracy(configs.size());

    struct BenchRow
    {
        std::vector<std::string> cells;
        std::vector<double> accuracy;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);
            BenchRow result;
            result.cells = {spec.name, "?"};
            for (const Config &config : configs) {
                const bench::AccuracyResult run = bench::runAccuracy(
                    prepared, params, config.samples, config.stride,
                    config.fullAg);
                const metrics::WallAccuracy wall =
                    metrics::wallPathAccuracy(run.truthPaths,
                                              run.pepPaths);
                result.accuracy.push_back(wall.accuracy);
                result.cells.push_back(bench::pct(wall.accuracy));
                result.cells[1] = std::to_string(wall.numHotPaths);
            }
            return result;
        });
    for (const BenchRow &result : rows) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            accuracy[c].push_back(result.accuracy[c]);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    {
        std::vector<std::string> avg = {"average", ""};
        std::vector<std::string> min = {"min", ""};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            avg.push_back(bench::pct(support::mean(accuracy[c])));
            min.push_back(bench::pct(support::minOf(accuracy[c])));
        }
        table.row(std::move(avg));
        table.row(std::move(min));
    }

    std::printf("Figure 8: hot-path prediction accuracy "
                "(Wall weight-matching, branch flow, 0.125%%)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    PEP(1,1) 53%% avg; PEP(64,17) 94%% avg\n");
    std::printf("measured: PEP(1,1) %s avg; PEP(64,17) %s avg\n",
                bench::pct(support::mean(accuracy[0])).c_str(),
                bench::pct(support::mean(accuracy[2])).c_str());
    return 0;
}
