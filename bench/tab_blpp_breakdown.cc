/**
 * @file
 * Sections 2.2 / 3.1 / 3.2: classic Ball-Larus profiling costs and the
 * decomposition claim PEP is built on — that computing the path number
 * (register additions) is cheap while storing the path (count[r]++) is
 * what costs.
 *
 * Columns:
 *   blpp-path  — classic BLPP: paths end at back edges, array
 *                count[r]++ at every path end (paper: 31% average on
 *                SPEC95, up to 97%)
 *   bl-edge    — instrumentation-based edge profiling (paper: 16% on
 *                SPEC95 / 10% in the paper's own VM)
 *   pep-instr  — PEP's register-only instrumentation (paper: 1.1%)
 *   store-frac — fraction of blpp-path's overhead attributable to the
 *                store step (Section 3.2's "bulk of the overhead")
 */

#include <cstdio>
#include <memory>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "blpp-path", "bl-edge", "pep-instr",
                  "store-frac"});

    std::vector<double> blpp_ratios;
    std::vector<double> edge_ratios;
    std::vector<double> instr_ratios;
    std::vector<double> store_fracs;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double blppRatio = 0.0;
        double edgeRatio = 0.0;
        double instrRatio = 0.0;
        double storeFrac = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            bench::ReplayRun base_run(prepared, params);
            const double base =
                static_cast<double>(base_run.runStandard());

            // Classic BLPP: back-edge truncation, Ball-Larus
            // numbering, array store at every path end.
            bench::ReplayRun blpp_run(prepared, params);
            blpp_run.attachFullPath(profile::DagMode::BackEdgeTruncate,
                                    /*charge_costs=*/true,
                                    core::PathStoreKind::Array);
            const double blpp =
                static_cast<double>(blpp_run.runStandard());

            bench::ReplayRun edge_run(prepared, params);
            edge_run.attachInstrEdge(/*charge_costs=*/true);
            const double edge =
                static_cast<double>(edge_run.runStandard());

            // Register ops only: the same BLPP instrumentation with
            // the store suppressed — i.e., PEP's instrumentation.
            bench::ReplayRun instr_run(prepared, params);
            instr_run.attachPep(std::make_unique<core::NeverSample>());
            const double instr =
                static_cast<double>(instr_run.runStandard());

            const double blpp_overhead = blpp - base;
            const double instr_overhead = instr - base;

            BenchRow result;
            result.blppRatio = blpp / base;
            result.edgeRatio = edge / base;
            result.instrRatio = instr / base;
            result.storeFrac =
                blpp_overhead > 0.0
                    ? (blpp_overhead - instr_overhead) / blpp_overhead
                    : 0.0;
            result.cells = {spec.name,
                            bench::overheadPct(result.blppRatio),
                            bench::overheadPct(result.edgeRatio),
                            bench::overheadPct(result.instrRatio),
                            bench::pct(result.storeFrac)};
            return result;
        });
    for (const BenchRow &result : rows) {
        blpp_ratios.push_back(result.blppRatio);
        edge_ratios.push_back(result.edgeRatio);
        instr_ratios.push_back(result.instrRatio);
        store_fracs.push_back(result.storeFrac);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", bench::overheadPct(support::mean(blpp_ratios)),
               bench::overheadPct(support::mean(edge_ratios)),
               bench::overheadPct(support::mean(instr_ratios)),
               bench::pct(support::mean(store_fracs))});
    table.row({"max", bench::overheadPct(support::maxOf(blpp_ratios)),
               bench::overheadPct(support::maxOf(edge_ratios)),
               bench::overheadPct(support::maxOf(instr_ratios)),
               bench::pct(support::maxOf(store_fracs))});

    std::printf("Sections 2.2/3.2: Ball-Larus profiling costs and the "
                "compute/store split\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    BLPP path 31%% avg (max 97%%); BL edge "
                "16%%; PEP instr 1.1%%; store dominates\n");
    std::printf("measured: BLPP path %s avg (max %s); BL edge %s; "
                "PEP instr %s; store-frac %s\n",
                bench::overheadPct(support::mean(blpp_ratios)).c_str(),
                bench::overheadPct(support::maxOf(blpp_ratios)).c_str(),
                bench::overheadPct(support::mean(edge_ratios)).c_str(),
                bench::overheadPct(support::mean(instr_ratios)).c_str(),
                bench::pct(support::mean(store_fracs)).c_str());
    return 0;
}
