/**
 * @file
 * Figure 10: performance of driving edge-profile-guided optimization
 * (branch layout) with a *perfect continuous* profile, a *one-time*
 * baseline profile, and a *flipped* continuous profile, measured on
 * the second iteration of replay compilation and normalized to the
 * one-time configuration.
 *
 * Paper headline: continuous beats one-time by 0.9% on average (small,
 * because these programs' initial behaviour predicts the whole run
 * well); flipped degrades performance significantly, showing that the
 * optimizations really are profile-sensitive.
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "vm/layout.hh"

using namespace pep;

namespace {

/** Ground-truth (perfect continuous) edge profile of a full run. */
profile::EdgeProfileSet
perfectProfileOf(const bench::Prepared &prepared,
                 const vm::SimParams &params)
{
    bench::ReplayRun run(prepared, params);
    run.runCompileIteration();
    run.machine().clearTruth();
    run.runMeasuredIteration();
    return run.machine().truthEdges();
}

} // namespace

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "one-time(Mcyc)", "continuous",
                  "flipped"});

    std::vector<double> continuous_ratios;
    std::vector<double> flipped_ratios;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double continuousRatio = 0.0;
        double flippedRatio = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            // Perfect continuous profile (from an identical prior
            // run) and its flipped counterpart.
            const profile::EdgeProfileSet perfect =
                perfectProfileOf(prepared, params);

            // One-time: the default layout source (baseline profile).
            bench::ReplayRun onetime_run(prepared, params);
            const double onetime =
                static_cast<double>(onetime_run.runStandard());

            // Continuous: layout driven by the perfect whole-run
            // profile.
            vm::FixedLayoutSource continuous_source(perfect);
            bench::ReplayRun continuous_run(prepared, params);
            continuous_run.setLayoutSource(&continuous_source);
            const double continuous =
                static_cast<double>(continuous_run.runStandard());

            // Flipped: every branch bias inverted.
            profile::EdgeProfileSet flipped = perfect;
            {
                bench::ReplayRun probe(prepared, params);
                const auto cfgs = bench::allCfgs(probe.machine());
                for (std::size_t m = 0; m < cfgs.size(); ++m) {
                    flipped.perMethod[m] =
                        flipped.perMethod[m].flipped(cfgs[m]);
                }
            }
            vm::FixedLayoutSource flipped_source(std::move(flipped));
            bench::ReplayRun flipped_run(prepared, params);
            flipped_run.setLayoutSource(&flipped_source);
            const double flipped_cycles =
                static_cast<double>(flipped_run.runStandard());

            BenchRow result;
            result.continuousRatio = continuous / onetime;
            result.flippedRatio = flipped_cycles / onetime;
            result.cells = {
                spec.name, support::formatFixed(onetime / 1e6, 1),
                support::formatFixed(continuous / onetime, 4),
                support::formatFixed(flipped_cycles / onetime, 4)};
            return result;
        });
    for (const BenchRow &result : rows) {
        continuous_ratios.push_back(result.continuousRatio);
        flipped_ratios.push_back(result.flippedRatio);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", "",
               bench::overheadPct(support::mean(continuous_ratios)),
               bench::overheadPct(support::mean(flipped_ratios))});

    std::printf("Figure 10: driving optimization with continuous / "
                "one-time / flipped edge profiles\n"
                "(replay iteration 2, normalized to one-time; lower is "
                "better)\n\n");
    std::printf("%s\n", table.str().c_str());
    const double gain =
        1.0 - support::mean(continuous_ratios);
    std::printf("paper:    continuous 0.9%% faster than one-time on "
                "average; flipped significantly slower\n");
    std::printf("measured: continuous %.1f%% faster; flipped %s "
                "slower\n",
                gain * 100.0,
                bench::overheadPct(
                    support::mean(flipped_ratios)).c_str());
    return 0;
}
