/**
 * @file
 * Section 5.1: runtime overhead of the *perfect* (instrumentation-
 * based) profilers used as accuracy baselines — path profiling that
 * updates the path profile with a hash call at every yieldpoint, and
 * edge profiling that updates a taken/not-taken counter at every
 * branch.
 *
 * Paper headline: instrumentation-based path profiling 92% average
 * (8-407%); instrumentation-based edge profiling 10% average (0-34%).
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "base(Mcyc)", "instr-path",
                  "instr-edge"});

    std::vector<double> path_ratios;
    std::vector<double> edge_ratios;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double pathRatio = 0.0;
        double edgeRatio = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            bench::ReplayRun base_run(prepared, params);
            const double base =
                static_cast<double>(base_run.runStandard());

            bench::ReplayRun path_run(prepared, params);
            path_run.attachFullPath(profile::DagMode::HeaderSplit,
                                    /*charge_costs=*/true);
            const double path_cycles =
                static_cast<double>(path_run.runStandard());

            bench::ReplayRun edge_run(prepared, params);
            edge_run.attachInstrEdge(/*charge_costs=*/true);
            const double edge_cycles =
                static_cast<double>(edge_run.runStandard());

            BenchRow result;
            result.pathRatio = path_cycles / base;
            result.edgeRatio = edge_cycles / base;
            result.cells = {
                spec.name, support::formatFixed(base / 1e6, 1),
                bench::overheadPct(result.pathRatio),
                bench::overheadPct(result.edgeRatio)};
            return result;
        });
    for (const BenchRow &result : rows) {
        path_ratios.push_back(result.pathRatio);
        edge_ratios.push_back(result.edgeRatio);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", "",
               bench::overheadPct(support::mean(path_ratios)),
               bench::overheadPct(support::mean(edge_ratios))});
    table.row({"min", "",
               bench::overheadPct(support::minOf(path_ratios)),
               bench::overheadPct(support::minOf(edge_ratios))});
    table.row({"max", "",
               bench::overheadPct(support::maxOf(path_ratios)),
               bench::overheadPct(support::maxOf(edge_ratios))});

    std::printf("Section 5.1: overhead of perfect instrumentation-"
                "based profiling (replay iteration 2)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    path 92%% avg (8-407%%); edge 10%% avg "
                "(0-34%%)\n");
    std::printf("measured: path %s avg (%s-%s); edge %s avg "
                "(%s-%s)\n",
                bench::overheadPct(support::mean(path_ratios)).c_str(),
                bench::overheadPct(support::minOf(path_ratios)).c_str(),
                bench::overheadPct(support::maxOf(path_ratios)).c_str(),
                bench::overheadPct(support::mean(edge_ratios)).c_str(),
                bench::overheadPct(support::minOf(edge_ratios)).c_str(),
                bench::overheadPct(support::maxOf(edge_ratios)).c_str());
    return 0;
}
