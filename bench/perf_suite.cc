/**
 * @file
 * Harness performance suite: times the simulator itself (not the
 * simulated programs) and emits BENCH_PR2.json, the perf trajectory
 * for this repository.
 *
 * Four measurements:
 *   1. flatten microbenchmark — per-edge action dispatch through the
 *      pre-flattening data structures (nested vector-of-vectors tables
 *      plus an ordered-map version lookup) vs. the flattened hot path
 *      (contiguous EdgeAction array + dense edge ids + vector-indexed
 *      version lookup), over an identical deterministic edge trace;
 *   2. engine dispatch microbenchmark — identical replay runs under
 *      the switch interpreter and the pre-decoded threaded engine
 *      (docs/ENGINE.md): ns per retired instruction and CFG edges
 *      traversed per second, with a byte-identity check of every
 *      observable (profiles, cycles, engine-independent stats);
 *   3. serial suite run — every (benchmark, config) cell on one
 *      worker: wall-clock seconds and simulated cycles per second;
 *   4. parallel suite run — the same cells fanned out over the cores
 *      via ParallelRunner, with a byte-identity check of the composed
 *      output against the serial order.
 *
 * Usage: perf_suite [output.json] [engine-output.json]
 *        (defaults BENCH_PR2.json and BENCH_PR5.json — measurements
 *        1, 3, 4 land in the first file, measurement 2 in the second)
 * PEP_BENCH_SCALE / PEP_BENCH_ONLY / PEP_BENCH_THREADS apply.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "common/harness.hh"
#include "core/path_engine.hh"
#include "support/stats.hh"
#include "workload/parallel_runner.hh"
#include "workload/synthetic.hh"

using namespace pep;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Optimization barrier: stops the compiler collapsing repeated
 *  measurement passes into one (google-benchmark's ClobberMemory). */
inline void
clobberMemory()
{
    asm volatile("" ::: "memory");
}

/** Make a checksum observable so no timed repeat is dead code even
 *  when a later repeat overwrites it (google-benchmark's
 *  DoNotOptimize). */
inline void
keepValue(std::uint64_t &value)
{
    asm volatile("" : "+r"(value));
}

// ---- flatten microbenchmark -----------------------------------------

/** One simulated optimized-method invocation: a version lookup
 *  followed by a stream of taken CFG edges. */
struct TraceCall
{
    std::uint32_t method = 0;
    std::uint32_t version = 0;
    std::vector<cfg::EdgeRef> edges;
};

struct FlattenBench
{
    double nestedNsPerEdge = 0.0;
    double flatNsPerEdge = 0.0;
    double speedup = 0.0;
    std::size_t edgesPerPass = 0;
};

/**
 * Time the two dispatch styles over the same trace. The nested runner
 * reproduces the pre-flattening hot path: an ordered-map lookup per
 * call (the old std::map<VersionKey, ...> at method entry) and a
 * vector-of-vectors walk per edge. The flat runner is the new one:
 * vector-indexed version lookup, then the cached base pointers.
 */
FlattenBench
runFlattenBench(const bytecode::Program &program)
{
    std::vector<bytecode::MethodCfg> cfgs;
    std::vector<std::unique_ptr<core::MethodProfilingState>> states;
    cfgs.reserve(program.methods.size());
    for (const bytecode::Method &method : program.methods)
        cfgs.push_back(bytecode::buildCfg(method));
    for (std::size_t m = 0; m < cfgs.size(); ++m) {
        states.push_back(core::buildProfilingState(
            cfgs[m], static_cast<bytecode::MethodId>(m), 0,
            profile::DagMode::HeaderSplit,
            profile::NumberingScheme::BallLarus, nullptr));
    }

    // The engine keeps one profile per (method, version); recompiles
    // mean several live versions per method, and the old map spanned
    // all of them. Mirror that shape so the lookup cost is realistic.
    constexpr std::uint32_t kVersions = 4;
    using Key = std::pair<std::uint32_t, std::uint32_t>;
    std::map<Key, const profile::InstrumentationPlan *> by_map;
    std::vector<std::vector<const profile::InstrumentationPlan *>>
        by_vector(states.size());
    for (std::size_t m = 0; m < states.size(); ++m) {
        if (!states[m]->plan.enabled)
            continue;
        for (std::uint32_t v = 0; v < kVersions; ++v) {
            by_map[{static_cast<std::uint32_t>(m), v}] =
                &states[m]->plan;
            by_vector[m].push_back(&states[m]->plan);
        }
    }

    // Deterministic edge trace: round-robin the methods, walking each
    // CFG from entry with an LCG choosing successors, bounded per
    // call. Every edge taken exists in both table representations.
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    auto next_rand = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(lcg >> 33);
    };
    std::vector<TraceCall> trace;
    std::size_t total_edges = 0;
    constexpr std::size_t kCalls = 4096;
    constexpr std::size_t kMaxEdgesPerCall = 64;
    for (std::size_t c = 0; c < kCalls; ++c) {
        const std::uint32_t m =
            static_cast<std::uint32_t>(c % states.size());
        if (by_vector[m].empty())
            continue;
        TraceCall call;
        call.method = m;
        call.version = next_rand() % kVersions;
        const cfg::Graph &graph = cfgs[m].graph;
        cfg::BlockId at = graph.entry();
        for (std::size_t step = 0; step < kMaxEdgesPerCall; ++step) {
            const auto &succs = graph.succs(at);
            if (succs.empty())
                break;
            const std::uint32_t i = next_rand() %
                static_cast<std::uint32_t>(succs.size());
            call.edges.push_back(cfg::EdgeRef{at, i});
            at = succs[i];
        }
        total_edges += call.edges.size();
        trace.push_back(std::move(call));
    }

    constexpr int kPasses = 400;
    constexpr int kRepeats = 3; // best-of to shed scheduler noise
    std::uint64_t nested_sum = 0;
    std::uint64_t flat_sum = 0;

    auto run_nested = [&] {
        nested_sum = 0;
        const auto start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < kPasses; ++pass) {
            for (const TraceCall &call : trace) {
                const profile::InstrumentationPlan *plan =
                    by_map.find({call.method, call.version})->second;
                for (const cfg::EdgeRef &e : call.edges) {
                    const profile::EdgeAction &action =
                        plan->edgeActions[e.src][e.index];
                    nested_sum += action.increment + action.endAdd;
                }
            }
            clobberMemory();
        }
        keepValue(nested_sum);
        return secondsSince(start);
    };
    auto run_flat = [&] {
        flat_sum = 0;
        const auto start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < kPasses; ++pass) {
            for (const TraceCall &call : trace) {
                const profile::InstrumentationPlan *plan =
                    by_vector[call.method][call.version];
                const profile::EdgeAction *actions =
                    plan->flatEdgeActions.data();
                const std::uint32_t *base = plan->edgeBase.data();
                for (const cfg::EdgeRef &e : call.edges) {
                    const profile::EdgeAction &action =
                        actions[base[e.src] + e.index];
                    flat_sum += action.increment + action.endAdd;
                }
            }
            clobberMemory();
        }
        keepValue(flat_sum);
        return secondsSince(start);
    };

    double nested_seconds = run_nested();
    double flat_seconds = run_flat();
    for (int r = 1; r < kRepeats; ++r) {
        nested_seconds = std::min(nested_seconds, run_nested());
        flat_seconds = std::min(flat_seconds, run_flat());
    }

    if (nested_sum != flat_sum) {
        std::fprintf(stderr,
                     "perf_suite: dispatch checksums diverge "
                     "(%llu vs %llu)\n",
                     static_cast<unsigned long long>(nested_sum),
                     static_cast<unsigned long long>(flat_sum));
        std::exit(1);
    }

    const double total =
        static_cast<double>(total_edges) * kPasses;
    FlattenBench result;
    result.edgesPerPass = total_edges;
    result.nestedNsPerEdge = nested_seconds * 1e9 / total;
    result.flatNsPerEdge = flat_seconds * 1e9 / total;
    result.speedup = flat_seconds > 0.0
                         ? nested_seconds / flat_seconds
                         : 0.0;
    return result;
}

// ---- engine dispatch microbenchmark ---------------------------------

struct EngineBench
{
    double switchSeconds = 0.0;
    double threadedSeconds = 0.0;
    double switchNsPerInstr = 0.0;
    double threadedNsPerInstr = 0.0;
    double switchEdgesPerSec = 0.0;
    double threadedEdgesPerSec = 0.0;
    /** Threaded edges/sec over switch edges/sec. */
    double speedup = 0.0;
    std::uint64_t instructionsPerRun = 0;
    std::uint64_t edgesPerRun = 0;
    bool outputsIdentical = false;
};

/**
 * Serialize everything a run may legitimately observe: ground-truth
 * and one-time edge profiles, the simulated clock, and the
 * engine-independent machine counters. methodsDecoded and
 * templateInvalidations are deliberately excluded — they describe the
 * harness's translation cache, not simulated behaviour, and differ
 * between engines by design.
 */
std::string
serializeObservables(const vm::Machine &machine)
{
    std::string out;
    char line[192];
    const auto dump_set = [&](const profile::EdgeProfileSet &set,
                              const char *tag) {
        for (std::size_t m = 0; m < set.perMethod.size(); ++m) {
            const auto &counts = set.perMethod[m].counts();
            for (std::size_t b = 0; b < counts.size(); ++b) {
                for (std::size_t i = 0; i < counts[b].size(); ++i) {
                    if (counts[b][i] == 0)
                        continue;
                    std::snprintf(line, sizeof(line),
                                  "%s %zu %zu %zu %llu\n", tag, m, b, i,
                                  static_cast<unsigned long long>(
                                      counts[b][i]));
                    out += line;
                }
            }
        }
    };
    dump_set(machine.truthEdges(), "truth");
    dump_set(machine.oneTimeEdges(), "one-time");
    const vm::MachineStats &s = machine.stats();
    std::snprintf(line, sizeof(line),
                  "clock %llu\nstats %llu %llu %llu %llu %llu %llu "
                  "%llu %llu %llu\n",
                  static_cast<unsigned long long>(machine.now()),
                  static_cast<unsigned long long>(
                      s.instructionsExecuted),
                  static_cast<unsigned long long>(s.methodInvocations),
                  static_cast<unsigned long long>(
                      s.yieldpointsExecuted),
                  static_cast<unsigned long long>(s.timerTicks),
                  static_cast<unsigned long long>(s.compileCycles),
                  static_cast<unsigned long long>(s.compiles),
                  static_cast<unsigned long long>(s.osrs),
                  static_cast<unsigned long long>(s.layoutMisses),
                  static_cast<unsigned long long>(s.branchesExecuted));
    out += line;
    return out;
}

struct EngineRunResult
{
    double seconds = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t edges = 0;
    std::string blob;
};

/**
 * Time one engine over the replay workload: iteration 1 compiles every
 * method at its final level (untimed), then kEngineIters measured
 * iterations run under the pinned engine with no profilers attached,
 * so the timed region is pure interpreter dispatch plus the always-on
 * ground-truth edge recording. Best-of kRepeats fresh machines.
 */
EngineRunResult
runEngineBench(const bench::Prepared &prepared,
               const vm::SimParams &base_params, vm::EngineKind kind)
{
    constexpr int kEngineIters = 3;
    constexpr int kRepeats = 3;

    vm::SimParams params = base_params;
    params.engine = kind;

    EngineRunResult result;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
        bench::ReplayRun run(prepared, params);
        run.runCompileIteration();
        run.clearCollectedProfiles();
        const vm::MachineStats before = run.machine().stats();
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kEngineIters; ++i)
            run.runMeasuredIteration();
        const double seconds = secondsSince(start);
        const vm::MachineStats &after = run.machine().stats();
        if (repeat == 0 || seconds < result.seconds)
            result.seconds = seconds;
        result.instructions =
            after.instructionsExecuted - before.instructionsExecuted;
        result.edges = run.machine().truthEdges().totalCount();
        result.blob = serializeObservables(run.machine());
    }
    return result;
}

EngineBench
runEngineDispatchBench(const workload::WorkloadSpec &spec,
                       const vm::SimParams &params)
{
    // One shared record run: advice is an observable, so it is
    // engine-independent; both timed runs replay the same decisions.
    const bench::Prepared prepared = bench::prepare(spec, params);
    const EngineRunResult sw =
        runEngineBench(prepared, params, vm::EngineKind::Switch);
    const EngineRunResult th =
        runEngineBench(prepared, params, vm::EngineKind::Threaded);

    EngineBench result;
    result.switchSeconds = sw.seconds;
    result.threadedSeconds = th.seconds;
    result.instructionsPerRun = sw.instructions;
    result.edgesPerRun = sw.edges;
    result.switchNsPerInstr =
        sw.seconds * 1e9 / static_cast<double>(sw.instructions);
    result.threadedNsPerInstr =
        th.seconds * 1e9 / static_cast<double>(th.instructions);
    result.switchEdgesPerSec =
        static_cast<double>(sw.edges) / sw.seconds;
    result.threadedEdgesPerSec =
        static_cast<double>(th.edges) / th.seconds;
    result.speedup = th.seconds > 0.0
                         ? result.threadedEdgesPerSec /
                               result.switchEdgesPerSec
                         : 0.0;
    result.outputsIdentical = sw.blob == th.blob;
    if (!result.outputsIdentical)
        std::fprintf(stderr,
                     "perf_suite: switch and threaded engines "
                     "disagree on observable state\n");
    return result;
}

// ---- suite timing ----------------------------------------------------

/** Output text plus simulated cycles of one suite cell. */
struct CellResult
{
    std::string text;
    std::uint64_t cycles = 0;
};

CellResult
runCell(const workload::WorkloadSpec &spec, const vm::SimParams &params)
{
    const bench::Prepared prepared = bench::prepare(spec, params);

    bench::ReplayRun base_run(prepared, params);
    const std::uint64_t base = base_run.runStandard();

    bench::ReplayRun pep_run(prepared, params);
    pep_run.attachPep(
        std::make_unique<core::SimplifiedArnoldGrove>(64, 17));
    const std::uint64_t with_pep = pep_run.runStandard();

    char line[160];
    std::snprintf(line, sizeof(line), "%-12s %14llu %14llu %8.4f\n",
                  spec.name.c_str(),
                  static_cast<unsigned long long>(base),
                  static_cast<unsigned long long>(with_pep),
                  static_cast<double>(with_pep) /
                      static_cast<double>(base));
    CellResult result;
    result.text = line;
    result.cycles = base + with_pep;
    return result;
}

struct SuiteRun
{
    double wallSeconds = 0.0;
    std::uint64_t simulatedCycles = 0;
    std::string output;
};

SuiteRun
runSuite(const std::vector<workload::WorkloadSpec> &suite,
         const vm::SimParams &params, unsigned workers)
{
    std::vector<CellResult> slots(suite.size());
    const workload::ParallelRunner runner(workers);
    const auto start = std::chrono::steady_clock::now();
    runner.run(suite.size(), [&](std::size_t i) {
        slots[i] = runCell(suite[i], params);
    });
    SuiteRun result;
    result.wallSeconds = secondsSince(start);
    for (const CellResult &cell : slots) {
        result.output += cell.text;
        result.simulatedCycles += cell.cycles;
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_PR2.json";
    const std::string engine_json_path =
        argc > 2 ? argv[2] : "BENCH_PR5.json";
    const vm::SimParams params = bench::defaultParams();
    const std::vector<workload::WorkloadSpec> suite =
        bench::benchSuite();
    // At least two workers even on a single-core box, so the threaded
    // fan-out and the byte-identity check are actually exercised (the
    // speedup field then honestly reports ~1.0).
    const unsigned workers = std::max(
        2u, workload::ParallelRunner::defaultWorkers());

    std::printf("perf_suite: flatten microbenchmark...\n");
    const bytecode::Program micro_program =
        workload::generateWorkload(suite[0]);
    const FlattenBench flatten = runFlattenBench(micro_program);
    std::printf("  nested+map dispatch: %.2f ns/edge\n",
                flatten.nestedNsPerEdge);
    std::printf("  flat+cached dispatch: %.2f ns/edge  (%.2fx)\n",
                flatten.flatNsPerEdge, flatten.speedup);

    std::printf("perf_suite: engine dispatch microbenchmark...\n");
    const EngineBench engine =
        runEngineDispatchBench(suite[0], params);
    std::printf("  switch dispatch:   %.2f ns/instr, %.3g edges/s\n",
                engine.switchNsPerInstr, engine.switchEdgesPerSec);
    std::printf("  threaded dispatch: %.2f ns/instr, %.3g edges/s  "
                "(%.2fx, output %s)\n",
                engine.threadedNsPerInstr, engine.threadedEdgesPerSec,
                engine.speedup,
                engine.outputsIdentical ? "identical" : "DIVERGES");

    std::printf("perf_suite: serial suite (1 worker)...\n");
    const SuiteRun serial = runSuite(suite, params, 1);
    std::printf("perf_suite: parallel suite (%u workers)...\n",
                workers);
    const SuiteRun parallel = runSuite(suite, params, workers);

    const bool identical = serial.output == parallel.output;
    const double serial_cps =
        static_cast<double>(serial.simulatedCycles) /
        serial.wallSeconds;
    const double parallel_cps =
        static_cast<double>(parallel.simulatedCycles) /
        parallel.wallSeconds;

    std::printf("\nbenchmark        base(cyc)       pep(cyc)    "
                "ratio\n%s\n",
                serial.output.c_str());
    std::printf("serial:   %.3f s wall, %.3g simulated cycles/s\n",
                serial.wallSeconds, serial_cps);
    std::printf("parallel: %.3f s wall, %.3g simulated cycles/s "
                "(%.2fx, output %s)\n",
                parallel.wallSeconds, parallel_cps,
                serial.wallSeconds / parallel.wallSeconds,
                identical ? "identical" : "DIVERGES");

    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "perf_suite: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"suite_cells\": %zu,\n", suite.size());
    std::fprintf(json, "  \"workers\": %u,\n", workers);
    std::fprintf(json, "  \"flatten\": {\n");
    std::fprintf(json, "    \"nested_ns_per_edge\": %.4f,\n",
                 flatten.nestedNsPerEdge);
    std::fprintf(json, "    \"flat_ns_per_edge\": %.4f,\n",
                 flatten.flatNsPerEdge);
    std::fprintf(json, "    \"edges_per_pass\": %zu,\n",
                 flatten.edgesPerPass);
    std::fprintf(json, "    \"flatten_speedup\": %.4f\n",
                 flatten.speedup);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"serial\": {\n");
    std::fprintf(json, "    \"wall_seconds\": %.6f,\n",
                 serial.wallSeconds);
    std::fprintf(json, "    \"simulated_cycles\": %llu,\n",
                 static_cast<unsigned long long>(
                     serial.simulatedCycles));
    std::fprintf(json, "    \"simulated_cycles_per_sec\": %.1f\n",
                 serial_cps);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"parallel\": {\n");
    std::fprintf(json, "    \"wall_seconds\": %.6f,\n",
                 parallel.wallSeconds);
    std::fprintf(json, "    \"simulated_cycles\": %llu,\n",
                 static_cast<unsigned long long>(
                     parallel.simulatedCycles));
    std::fprintf(json, "    \"simulated_cycles_per_sec\": %.1f,\n",
                 parallel_cps);
    std::fprintf(json, "    \"parallel_speedup\": %.4f\n",
                 serial.wallSeconds / parallel.wallSeconds);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"output_identical\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("perf_suite: wrote %s\n", json_path.c_str());

    FILE *engine_json = std::fopen(engine_json_path.c_str(), "w");
    if (!engine_json) {
        std::fprintf(stderr, "perf_suite: cannot write %s\n",
                     engine_json_path.c_str());
        return 1;
    }
    std::fprintf(engine_json, "{\n");
    std::fprintf(engine_json, "  \"workload\": \"%s\",\n",
                 suite[0].name.c_str());
    std::fprintf(engine_json, "  \"instructions_per_run\": %llu,\n",
                 static_cast<unsigned long long>(
                     engine.instructionsPerRun));
    std::fprintf(engine_json, "  \"edges_per_run\": %llu,\n",
                 static_cast<unsigned long long>(engine.edgesPerRun));
    std::fprintf(engine_json, "  \"switch\": {\n");
    std::fprintf(engine_json, "    \"wall_seconds\": %.6f,\n",
                 engine.switchSeconds);
    std::fprintf(engine_json, "    \"ns_per_instr\": %.4f,\n",
                 engine.switchNsPerInstr);
    std::fprintf(engine_json, "    \"edges_per_sec\": %.1f\n",
                 engine.switchEdgesPerSec);
    std::fprintf(engine_json, "  },\n");
    std::fprintf(engine_json, "  \"threaded\": {\n");
    std::fprintf(engine_json, "    \"wall_seconds\": %.6f,\n",
                 engine.threadedSeconds);
    std::fprintf(engine_json, "    \"ns_per_instr\": %.4f,\n",
                 engine.threadedNsPerInstr);
    std::fprintf(engine_json, "    \"edges_per_sec\": %.1f\n",
                 engine.threadedEdgesPerSec);
    std::fprintf(engine_json, "  },\n");
    std::fprintf(engine_json,
                 "  \"threaded_speedup_edges_per_sec\": %.4f,\n",
                 engine.speedup);
    std::fprintf(engine_json, "  \"outputs_identical\": %s\n",
                 engine.outputsIdentical ? "true" : "false");
    std::fprintf(engine_json, "}\n");
    std::fclose(engine_json);
    std::printf("perf_suite: wrote %s\n", engine_json_path.c_str());

    return identical && engine.outputsIdentical ? 0 : 1;
}
