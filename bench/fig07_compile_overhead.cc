/**
 * @file
 * Figure 7: combined compilation + execution overhead of PEP(64,17),
 * measured on the *first* iteration of replay compilation (which
 * performs all the compiles, including PEP's three instrumentation
 * passes).
 *
 * Paper headline: 1.6% average, 4.6% max — slightly above the
 * execution-only overhead, since PEP adds proportionally more to
 * compilation than to execution; short-running programs (jack) feel it
 * most.
 */

#include <cstdio>
#include <memory>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "base(Mcyc)", "compile-frac",
                  "PEP(64,17)"});

    std::vector<double> ratios;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double ratio = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            bench::ReplayRun base_run(prepared, params);
            const double base =
                static_cast<double>(base_run.runCompileIteration());
            const double compile_frac =
                static_cast<double>(
                    base_run.machine().stats().compileCycles) /
                base;

            bench::ReplayRun pep_run(prepared, params);
            pep_run.attachPep(
                std::make_unique<core::SimplifiedArnoldGrove>(64, 17));
            const double with_pep =
                static_cast<double>(pep_run.runCompileIteration());

            BenchRow result;
            result.ratio = with_pep / base;
            result.cells = {spec.name,
                            support::formatFixed(base / 1e6, 1),
                            bench::pct(compile_frac),
                            support::formatFixed(result.ratio, 4)};
            return result;
        });
    for (const BenchRow &result : rows) {
        ratios.push_back(result.ratio);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", "", "",
               bench::overheadPct(support::mean(ratios))});
    table.row({"max", "", "",
               bench::overheadPct(support::maxOf(ratios))});

    std::printf("Figure 7: compilation + execution overhead of "
                "PEP(64,17) (replay iteration 1)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    1.6%% avg / 4.6%% max\n");
    std::printf("measured: %s avg / %s max\n",
                bench::overheadPct(support::mean(ratios)).c_str(),
                bench::overheadPct(support::maxOf(ratios)).c_str());
    return 0;
}
