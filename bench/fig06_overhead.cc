/**
 * @file
 * Figure 6: execution-time overhead of PEP instrumentation alone and
 * with the sampling configurations, measured on the second iteration
 * of replay compilation and normalized to Base (no PEP).
 *
 * Paper headline numbers: instrumentation alone 1.1% average / 5.4%
 * max; PEP(1,1) adds nothing detectable; PEP(64,17) adds 0.1% for
 * 1.2% average / 4.3% max total; the remaining configurations add
 * 0.8-2.3% on average.
 */

#include <cstdio>
#include <memory>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

namespace {

struct Config
{
    std::string label;
    std::uint32_t samples; // 0 = instrumentation only
    std::uint32_t stride;
};

std::unique_ptr<core::SamplingController>
makeController(const Config &config)
{
    if (config.samples == 0)
        return std::make_unique<core::NeverSample>();
    return std::make_unique<core::SimplifiedArnoldGrove>(config.samples,
                                                         config.stride);
}

} // namespace

int
main()
{
    const std::vector<Config> configs = {
        {"instr", 0, 0},        {"PEP(1,1)", 1, 1},
        {"PEP(16,17)", 16, 17}, {"PEP(64,17)", 64, 17},
        {"PEP(256,17)", 256, 17}, {"PEP(1024,17)", 1024, 17},
    };

    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    {
        std::vector<std::string> header = {"benchmark", "base(Mcyc)"};
        for (const Config &config : configs)
            header.push_back(config.label);
        table.header(std::move(header));
    }

    std::vector<std::vector<double>> ratios(configs.size());

    struct BenchRow
    {
        std::vector<std::string> cells;
        std::vector<double> ratios;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            bench::ReplayRun base_run(prepared, params);
            const double base =
                static_cast<double>(base_run.runStandard());

            BenchRow result;
            result.cells = {
                spec.name,
                support::formatFixed(base / 1e6, 1),
            };
            for (const Config &config : configs) {
                bench::ReplayRun run(prepared, params);
                run.attachPep(makeController(config));
                const double cycles =
                    static_cast<double>(run.runStandard());
                const double ratio = cycles / base;
                result.ratios.push_back(ratio);
                result.cells.push_back(
                    support::formatFixed(ratio, 4));
            }
            return result;
        });
    for (const BenchRow &result : rows) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            ratios[c].push_back(result.ratios[c]);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    {
        std::vector<std::string> avg_row = {"average", ""};
        std::vector<std::string> max_row = {"max", ""};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            avg_row.push_back(
                bench::overheadPct(support::mean(ratios[c])));
            max_row.push_back(
                bench::overheadPct(support::maxOf(ratios[c])));
        }
        table.row(std::move(avg_row));
        table.row(std::move(max_row));
    }

    std::printf("Figure 6: PEP execution overhead "
                "(normalized to Base, replay iteration 2)\n\n");
    std::printf("%s\n", table.str().c_str());

    const double instr_avg = support::mean(ratios[0]);
    const double instr_max = support::maxOf(ratios[0]);
    const double pep64_avg = support::mean(ratios[3]);
    const double pep64_max = support::maxOf(ratios[3]);
    std::printf("paper:    instr alone 1.1%% avg / 5.4%% max; "
                "PEP(64,17) total 1.2%% avg / 4.3%% max\n");
    std::printf("measured: instr alone %s avg / %s max; "
                "PEP(64,17) total %s avg / %s max\n",
                bench::overheadPct(instr_avg).c_str(),
                bench::overheadPct(instr_max).c_str(),
                bench::overheadPct(pep64_avg).c_str(),
                bench::overheadPct(pep64_max).c_str());
    return 0;
}
