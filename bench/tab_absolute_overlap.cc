/**
 * @file
 * Section 6.4: edge-profile accuracy using *absolute overlap*
 * (normalized edge-frequency agreement) instead of relative overlap.
 * Predicting an edge's share of total flow is harder than predicting
 * branch bias, so absolute overlap is lower and grows with sampling
 * rate.
 *
 * Paper headline: PEP(64,17) 83%, PEP(256,17) 87%, PEP(1024,17) 88%.
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const std::vector<std::uint32_t> sample_configs = {64, 256, 1024};
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    {
        std::vector<std::string> header = {"benchmark"};
        for (std::uint32_t samples : sample_configs) {
            header.push_back("PEP(" + std::to_string(samples) +
                             ",17)");
        }
        table.header(std::move(header));
    }

    std::vector<std::vector<double>> overlaps(sample_configs.size());

    for (const workload::WorkloadSpec &spec : bench::benchSuite()) {
        const bench::Prepared prepared = bench::prepare(spec, params);
        std::vector<std::string> row = {spec.name};
        for (std::size_t c = 0; c < sample_configs.size(); ++c) {
            const bench::AccuracyResult result = bench::runAccuracy(
                prepared, params, sample_configs[c], 17);
            const double overlap = metrics::absoluteOverlap(
                result.perfectEdges, result.pepEdges);
            overlaps[c].push_back(overlap);
            row.push_back(bench::pct(overlap));
        }
        table.row(std::move(row));
    }

    table.separator();
    {
        std::vector<std::string> avg = {"average"};
        for (auto &o : overlaps)
            avg.push_back(bench::pct(support::mean(o)));
        table.row(std::move(avg));
    }

    std::printf("Section 6.4: absolute overlap of PEP edge profiles\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    83%% / 87%% / 88%% for (64,17) / (256,17) / "
                "(1024,17)\n");
    std::printf("measured: %s / %s / %s\n",
                bench::pct(support::mean(overlaps[0])).c_str(),
                bench::pct(support::mean(overlaps[1])).c_str(),
                bench::pct(support::mean(overlaps[2])).c_str());
    return 0;
}
