/**
 * @file
 * Section 6.4: edge-profile accuracy using *absolute overlap*
 * (normalized edge-frequency agreement) instead of relative overlap.
 * Predicting an edge's share of total flow is harder than predicting
 * branch bias, so absolute overlap is lower and grows with sampling
 * rate.
 *
 * Paper headline: PEP(64,17) 83%, PEP(256,17) 87%, PEP(1024,17) 88%.
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const std::vector<std::uint32_t> sample_configs = {64, 256, 1024};
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    {
        std::vector<std::string> header = {"benchmark"};
        for (std::uint32_t samples : sample_configs) {
            header.push_back("PEP(" + std::to_string(samples) +
                             ",17)");
        }
        table.header(std::move(header));
    }

    std::vector<std::vector<double>> overlaps(sample_configs.size());

    struct BenchRow
    {
        std::vector<std::string> cells;
        std::vector<double> overlaps;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);
            BenchRow result;
            result.cells = {spec.name};
            for (std::uint32_t samples : sample_configs) {
                const bench::AccuracyResult run =
                    bench::runAccuracy(prepared, params, samples, 17);
                const double overlap = metrics::absoluteOverlap(
                    run.perfectEdges, run.pepEdges);
                result.overlaps.push_back(overlap);
                result.cells.push_back(bench::pct(overlap));
            }
            return result;
        });
    for (const BenchRow &result : rows) {
        for (std::size_t c = 0; c < sample_configs.size(); ++c)
            overlaps[c].push_back(result.overlaps[c]);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    {
        std::vector<std::string> avg = {"average"};
        for (auto &o : overlaps)
            avg.push_back(bench::pct(support::mean(o)));
        table.row(std::move(avg));
    }

    std::printf("Section 6.4: absolute overlap of PEP edge profiles\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    83%% / 87%% / 88%% for (64,17) / (256,17) / "
                "(1024,17)\n");
    std::printf("measured: %s / %s / %s\n",
                bench::pct(support::mean(overlaps[0])).c_str(),
                bench::pct(support::mean(overlaps[1])).c_str(),
                bench::pct(support::mean(overlaps[2])).c_str());
    return 0;
}
