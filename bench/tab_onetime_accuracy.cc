/**
 * @file
 * Section 6.5 (first part): accuracy (relative overlap) of the
 * one-time edge profile collected by baseline-compiled code, compared
 * to a perfect continuous edge profile of the whole run. High accuracy
 * here means initial behaviour predicts whole-program behaviour, which
 * bounds how much continuous profiling can help these programs.
 *
 * Paper headline: 97% average, 86% worst.
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "one-time accuracy"});

    std::vector<double> overlaps;

    struct BenchRow
    {
        std::vector<std::string> cells;
        double overlap = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            // Whole-run ground truth from a full replay run.
            bench::ReplayRun run(prepared, params);
            run.runCompileIteration();
            run.machine().clearTruth();
            run.runMeasuredIteration();

            BenchRow result;
            result.overlap = metrics::relativeOverlap(
                bench::allCfgs(run.machine()),
                run.machine().truthEdges(),
                prepared.advice.oneTimeEdges);
            result.cells = {spec.name, bench::pct(result.overlap)};
            return result;
        });
    for (const BenchRow &result : rows) {
        overlaps.push_back(result.overlap);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", bench::pct(support::mean(overlaps))});
    table.row({"worst", bench::pct(support::minOf(overlaps))});

    std::printf("Section 6.5: one-time edge profile accuracy vs "
                "perfect continuous\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    97%% avg, 86%% worst\n");
    std::printf("measured: %s avg, %s worst\n",
                bench::pct(support::mean(overlaps)).c_str(),
                bench::pct(support::minOf(overlaps)).c_str());
    return 0;
}
