/**
 * @file
 * Superinstruction and hot-trace dispatch benchmark: times identical
 * replay runs across the PEP_ENGINE x PEP_FUSE matrix and emits
 * BENCH_PR10.json.
 *
 * Four cells, all over the same recorded advice (docs/ENGINE.md):
 *
 *   switch-none           the reference interpreter;
 *   threaded-none         the pre-decoded threaded engine, plain
 *                         per-opcode templates — methodologically the
 *                         same measurement as BENCH_PR5's "threaded"
 *                         cell, so it is the speedup baseline;
 *   threaded-pairs        superinstruction pairs/triples with
 *                         burned-in operands (PEP_FUSE=pairs);
 *   threaded-pairs-traces pairs plus straightened hot-trace segments
 *                         with guarded exits and batched per-trace
 *                         accounting (PEP_FUSE=pairs,traces).
 *
 * Reported per cell: ns per retired instruction and CFG edges
 * traversed per second, plus a static breakdown of the fused cells'
 * template streams (how many dispatches fusion and tracing removed).
 *
 * Two gates decide the exit status:
 *   - identity: every observable (profiles, clock, stats) must be
 *     byte-identical across all four cells — always enforced;
 *   - speedup: the fully fused cell must reach >= 1.20x the
 *     threaded-none baseline in edges/sec — enforced at full scale
 *     only (PEP_BENCH_SCALE < 1 runs are smoke tests on noisy CI
 *     boxes, where wall-clock gates would flake).
 *
 * Usage: tab_fusion [output.json]   (default BENCH_PR10.json)
 * PEP_BENCH_SCALE / PEP_BENCH_ONLY apply.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/harness.hh"
#include "vm/decoded_method.hh"
#include "vm/engine.hh"
#include "vm/machine.hh"
#include "workload/synthetic.hh"

using namespace pep;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Serialize everything a run may legitimately observe (the same blob
 * perf_suite's engine microbenchmark compares): ground-truth and
 * one-time edge profiles, the simulated clock, and the
 * engine-independent machine counters. methodsDecoded and
 * templateInvalidations are deliberately excluded — they describe the
 * harness's translation cache, not simulated behaviour, and differ
 * across the matrix by design.
 */
std::string
serializeObservables(const vm::Machine &machine)
{
    std::string out;
    char line[192];
    const auto dump_set = [&](const profile::EdgeProfileSet &set,
                              const char *tag) {
        for (std::size_t m = 0; m < set.perMethod.size(); ++m) {
            const auto &counts = set.perMethod[m].counts();
            for (std::size_t b = 0; b < counts.size(); ++b) {
                for (std::size_t i = 0; i < counts[b].size(); ++i) {
                    if (counts[b][i] == 0)
                        continue;
                    std::snprintf(line, sizeof(line),
                                  "%s %zu %zu %zu %llu\n", tag, m, b, i,
                                  static_cast<unsigned long long>(
                                      counts[b][i]));
                    out += line;
                }
            }
        }
    };
    dump_set(machine.truthEdges(), "truth");
    dump_set(machine.oneTimeEdges(), "one-time");
    const vm::MachineStats &s = machine.stats();
    std::snprintf(line, sizeof(line),
                  "clock %llu\nstats %llu %llu %llu %llu %llu %llu "
                  "%llu %llu %llu\n",
                  static_cast<unsigned long long>(machine.now()),
                  static_cast<unsigned long long>(
                      s.instructionsExecuted),
                  static_cast<unsigned long long>(s.methodInvocations),
                  static_cast<unsigned long long>(
                      s.yieldpointsExecuted),
                  static_cast<unsigned long long>(s.timerTicks),
                  static_cast<unsigned long long>(s.compileCycles),
                  static_cast<unsigned long long>(s.compiles),
                  static_cast<unsigned long long>(s.osrs),
                  static_cast<unsigned long long>(s.layoutMisses),
                  static_cast<unsigned long long>(s.branchesExecuted));
    out += line;
    return out;
}

/** Static anatomy of one cell's translated template streams. */
struct StreamBreakdown
{
    std::uint64_t templates = 0;
    /** Fused superinstruction templates / constituent instructions
     *  they cover (guards excluded). */
    std::uint64_t fusedTemplates = 0;
    std::uint64_t fusedConstituents = 0;
    std::uint64_t guardTemplates = 0;
    std::uint64_t traces = 0;
    std::uint64_t traceBlocks = 0;
    /** Dispatches a fully sequential walk of the streams saves vs.
     *  one template per instruction: sum of (fuseLen - 1). */
    std::uint64_t dispatchesSaved = 0;
};

/** Walk every current version's cached stream under the cell's fuse
 *  options (streams are deterministic, so any repeat's machine gives
 *  the same answer). */
StreamBreakdown
analyzeStreams(vm::Machine &machine, std::size_t num_methods)
{
    StreamBreakdown out;
    for (std::size_t m = 0; m < num_methods; ++m) {
        const vm::CompiledMethod *cm =
            machine.currentVersion(static_cast<bytecode::MethodId>(m));
        if (!cm)
            continue;
        const vm::DecodedMethod &decoded = machine.decodedFor(*cm);
        out.templates += decoded.stream.size();
        for (const vm::Template &tpl : decoded.stream) {
            if (vm::isFusedTop(tpl.op)) {
                ++out.fusedTemplates;
                out.fusedConstituents += tpl.fuseLen;
            }
            if (vm::isGuardTop(tpl.op))
                ++out.guardTemplates;
            if (tpl.fuseLen > 1)
                out.dispatchesSaved += tpl.fuseLen - 1u;
        }
        out.traces += decoded.traces.size();
        for (const std::vector<cfg::BlockId> &trace : decoded.traces)
            out.traceBlocks += trace.size();
    }
    return out;
}

struct Cell
{
    const char *label;
    vm::EngineKind engine;
    vm::FuseOptions fuse;
};

struct CellResult
{
    double seconds = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t edges = 0;
    double nsPerInstr = 0.0;
    double edgesPerSec = 0.0;
    std::string blob;
    StreamBreakdown streams;
};

/**
 * Time one cell over the replay workload, exactly like perf_suite's
 * engine microbenchmark: iteration 1 compiles every method at its
 * final level (untimed), then kEngineIters measured iterations run
 * under the pinned engine and fusion selection with no profilers
 * attached. Best-of kRepeats fresh machines.
 */
CellResult
runCellBench(const bench::Prepared &prepared,
             const vm::SimParams &base_params, const Cell &cell)
{
    constexpr int kEngineIters = 3;
    constexpr int kRepeats = 3;

    vm::SimParams params = base_params;
    params.engine = cell.engine;
    params.fuse = cell.fuse;

    CellResult result;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
        bench::ReplayRun run(prepared, params);
        run.runCompileIteration();
        run.clearCollectedProfiles();
        const vm::MachineStats before = run.machine().stats();
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kEngineIters; ++i)
            run.runMeasuredIteration();
        const double seconds = secondsSince(start);
        const vm::MachineStats &after = run.machine().stats();
        if (repeat == 0 || seconds < result.seconds)
            result.seconds = seconds;
        result.instructions =
            after.instructionsExecuted - before.instructionsExecuted;
        result.edges = run.machine().truthEdges().totalCount();
        result.blob = serializeObservables(run.machine());
        if (repeat == kRepeats - 1)
            result.streams = analyzeStreams(
                run.machine(), prepared.program.methods.size());
    }
    result.nsPerInstr = result.seconds * 1e9 /
                        static_cast<double>(result.instructions);
    result.edgesPerSec =
        static_cast<double>(result.edges) / result.seconds;
    return result;
}

double
benchScale()
{
    const char *env = std::getenv("PEP_BENCH_SCALE");
    if (!env || !*env)
        return 1.0;
    return std::atof(env);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_PR10.json";
    const vm::SimParams params = bench::defaultParams();
    const std::vector<workload::WorkloadSpec> suite =
        bench::benchSuite();

    const Cell cells[] = {
        {"switch-none", vm::EngineKind::Switch, {false, false}},
        {"threaded-none", vm::EngineKind::Threaded, {false, false}},
        {"threaded-pairs", vm::EngineKind::Threaded, {true, false}},
        {"threaded-pairs-traces", vm::EngineKind::Threaded,
         {true, true}},
    };
    constexpr std::size_t kCells = sizeof(cells) / sizeof(cells[0]);
    constexpr std::size_t kBaseline = 1; // threaded-none
    constexpr std::size_t kFused = 3;    // threaded-pairs-traces
    constexpr double kSpeedupGate = 1.20;

    // One shared record run: advice is an observable, so it is
    // engine- and fusion-independent; all four timed cells replay the
    // same decisions.
    std::printf("tab_fusion: workload %s, %zu cells...\n",
                suite[0].name.c_str(), kCells);
    const bench::Prepared prepared = bench::prepare(suite[0], params);

    CellResult results[kCells];
    for (std::size_t c = 0; c < kCells; ++c) {
        results[c] = runCellBench(prepared, params, cells[c]);
        std::printf("  %-22s %7.2f ns/instr, %10.3g edges/s"
                    " (%llu fused tpl, %llu traces)\n",
                    cells[c].label, results[c].nsPerInstr,
                    results[c].edgesPerSec,
                    static_cast<unsigned long long>(
                        results[c].streams.fusedTemplates),
                    static_cast<unsigned long long>(
                        results[c].streams.traces));
    }

    bool identical = true;
    for (std::size_t c = 1; c < kCells; ++c) {
        if (results[c].blob != results[0].blob) {
            identical = false;
            std::fprintf(stderr,
                         "tab_fusion: observables of %s diverge from "
                         "%s\n",
                         cells[c].label, cells[0].label);
        }
    }

    const double pairs_speedup =
        results[kBaseline].edgesPerSec > 0.0
            ? results[2].edgesPerSec / results[kBaseline].edgesPerSec
            : 0.0;
    const double fused_speedup =
        results[kBaseline].edgesPerSec > 0.0
            ? results[kFused].edgesPerSec /
                  results[kBaseline].edgesPerSec
            : 0.0;
    const double scale = benchScale();
    const bool enforce_speedup = scale >= 1.0;
    const bool speedup_ok = fused_speedup >= kSpeedupGate;

    std::printf("  pairs speedup:        %.3fx vs threaded-none\n",
                pairs_speedup);
    std::printf("  pairs+traces speedup: %.3fx vs threaded-none "
                "(gate %.2fx, %s)\n",
                fused_speedup, kSpeedupGate,
                enforce_speedup ? "enforced" : "reported only");
    std::printf("  observables: %s\n",
                identical ? "identical" : "DIVERGE");

    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "tab_fusion: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"workload\": \"%s\",\n",
                 suite[0].name.c_str());
    std::fprintf(json, "  \"instructions_per_run\": %llu,\n",
                 static_cast<unsigned long long>(
                     results[0].instructions));
    std::fprintf(json, "  \"edges_per_run\": %llu,\n",
                 static_cast<unsigned long long>(results[0].edges));
    std::fprintf(json, "  \"cells\": {\n");
    for (std::size_t c = 0; c < kCells; ++c) {
        const CellResult &r = results[c];
        std::fprintf(json, "    \"%s\": {\n", cells[c].label);
        std::fprintf(json, "      \"engine\": \"%s\",\n",
                     vm::engineKindName(cells[c].engine));
        std::fprintf(json, "      \"fuse\": \"%s\",\n",
                     vm::fuseOptionsName(cells[c].fuse));
        std::fprintf(json, "      \"wall_seconds\": %.6f,\n",
                     r.seconds);
        std::fprintf(json, "      \"ns_per_instr\": %.4f,\n",
                     r.nsPerInstr);
        std::fprintf(json, "      \"edges_per_sec\": %.1f,\n",
                     r.edgesPerSec);
        std::fprintf(json, "      \"templates\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.streams.templates));
        std::fprintf(json, "      \"fused_templates\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.streams.fusedTemplates));
        std::fprintf(json, "      \"fused_constituents\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.streams.fusedConstituents));
        std::fprintf(json, "      \"guard_templates\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.streams.guardTemplates));
        std::fprintf(json, "      \"traces\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.streams.traces));
        std::fprintf(json, "      \"trace_blocks\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.streams.traceBlocks));
        std::fprintf(json, "      \"dispatches_saved\": %llu\n",
                     static_cast<unsigned long long>(
                         r.streams.dispatchesSaved));
        std::fprintf(json, "    }%s\n", c + 1 < kCells ? "," : "");
    }
    std::fprintf(json, "  },\n");
    std::fprintf(json,
                 "  \"baseline\": \"threaded-none (BENCH_PR5 "
                 "threaded methodology)\",\n");
    std::fprintf(json,
                 "  \"pairs_speedup_edges_per_sec\": %.4f,\n",
                 pairs_speedup);
    std::fprintf(json,
                 "  \"fused_speedup_edges_per_sec\": %.4f,\n",
                 fused_speedup);
    std::fprintf(json, "  \"speedup_gate\": %.2f,\n", kSpeedupGate);
    std::fprintf(json, "  \"speedup_gate_enforced\": %s,\n",
                 enforce_speedup ? "true" : "false");
    std::fprintf(json, "  \"outputs_identical\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("tab_fusion: wrote %s\n", json_path.c_str());

    if (!identical)
        return 1;
    if (enforce_speedup && !speedup_ok) {
        std::fprintf(stderr,
                     "tab_fusion: fused speedup %.3fx below the "
                     "%.2fx gate\n",
                     fused_speedup, kSpeedupGate);
        return 1;
    }
    return 0;
}
