/**
 * @file
 * Section 3.2 ablation: PEP ends paths at loop *headers* (where the
 * yieldpoints are) instead of loop *back edges* as classic BLPP does.
 * The paper argues the difference is minor — it only affects the first
 * path through a loop. This bench quantifies that: for each benchmark
 * it collects ground-truth path profiles under both truncation schemes
 * and compares (a) distinct/hot path counts, (b) total path
 * completions, and (c) the edge profiles derived from each (which
 * should agree almost exactly, since both expansions cover the same
 * executed edges).
 */

#include <cstdio>

#include "common/harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace pep;

int
main()
{
    const vm::SimParams params = bench::defaultParams();

    support::Table table;
    table.header({"benchmark", "paths(hdr)", "paths(back)",
                  "hot(hdr)", "hot(back)", "edge-agreement",
                  "pep-acc(hdr)", "pep-acc(back)"});

    std::vector<double> agreements;
    std::vector<double> path_ratio;
    std::vector<double> pep_header_acc;
    std::vector<double> pep_back_acc;

    // PEP(64,17) accuracy with the matching yieldpoint placement: the
    // default header placement vs the Section 3.2 back-edge
    // alternative (yieldpoints on back edges + BLPP truncation).
    auto sampled_accuracy = [&](const bench::Prepared &prepared,
                                bool back_edges) {
        vm::SimParams run_params = params;
        run_params.yieldpointsOnBackEdges = back_edges;
        bench::ReplayRun run(prepared, run_params);
        core::PepOptions options;
        options.mode = back_edges ? profile::DagMode::BackEdgeTruncate
                                  : profile::DagMode::HeaderSplit;
        core::PepProfiler &pep = run.attachPep(
            std::make_unique<core::SimplifiedArnoldGrove>(64, 17),
            options);
        core::FullPathProfiler &truth =
            run.attachFullPath(options.mode, /*charge_costs=*/false);
        run.runCompileIteration();
        run.clearCollectedProfiles();
        run.runMeasuredIteration();
        metrics::CanonicalPathProfile truth_paths =
            metrics::canonicalize(truth);
        metrics::CanonicalPathProfile pep_paths =
            metrics::canonicalize(pep);
        return metrics::wallPathAccuracy(truth_paths, pep_paths)
            .accuracy;
    };

    struct BenchRow
    {
        std::vector<std::string> cells;
        double agreement = 0.0;
        double pathRatio = 0.0;
        double headerAcc = 0.0;
        double backAcc = 0.0;
    };
    const std::vector<BenchRow> rows = bench::mapSuite(
        bench::benchSuite(),
        [&](const workload::WorkloadSpec &spec) {
            const bench::Prepared prepared =
                bench::prepare(spec, params);

            bench::ReplayRun run(prepared, params);
            core::FullPathProfiler &header_truth = run.attachFullPath(
                profile::DagMode::HeaderSplit, /*charge_costs=*/false);
            core::FullPathProfiler &back_truth = run.attachFullPath(
                profile::DagMode::BackEdgeTruncate,
                /*charge_costs=*/false);
            run.runCompileIteration();
            run.clearCollectedProfiles();
            run.runMeasuredIteration();

            metrics::CanonicalPathProfile header_paths =
                metrics::canonicalize(header_truth);
            metrics::CanonicalPathProfile back_paths =
                metrics::canonicalize(back_truth);

            const metrics::WallAccuracy hot_header =
                metrics::wallPathAccuracy(header_paths, header_paths);
            const metrics::WallAccuracy hot_back =
                metrics::wallPathAccuracy(back_paths, back_paths);

            const profile::EdgeProfileSet header_edges =
                core::edgeProfileFromPaths(run.machine(),
                                           header_truth);
            const profile::EdgeProfileSet back_edges =
                core::edgeProfileFromPaths(run.machine(), back_truth);
            const auto cfgs = bench::allCfgs(run.machine());

            BenchRow result;
            result.agreement = metrics::relativeOverlap(
                cfgs, header_edges, back_edges);
            result.pathRatio =
                static_cast<double>(header_paths.paths.size()) /
                static_cast<double>(back_paths.paths.size());
            result.headerAcc = sampled_accuracy(prepared, false);
            result.backAcc = sampled_accuracy(prepared, true);
            result.cells = {spec.name,
                            std::to_string(header_paths.paths.size()),
                            std::to_string(back_paths.paths.size()),
                            std::to_string(hot_header.numHotPaths),
                            std::to_string(hot_back.numHotPaths),
                            bench::pct(result.agreement, 2),
                            bench::pct(result.headerAcc),
                            bench::pct(result.backAcc)};
            return result;
        });
    for (const BenchRow &result : rows) {
        agreements.push_back(result.agreement);
        path_ratio.push_back(result.pathRatio);
        pep_header_acc.push_back(result.headerAcc);
        pep_back_acc.push_back(result.backAcc);
        table.row(std::vector<std::string>(result.cells));
    }

    table.separator();
    table.row({"average", "", "", "", "",
               bench::pct(support::mean(agreements), 2),
               bench::pct(support::mean(pep_header_acc)),
               bench::pct(support::mean(pep_back_acc))});

    std::printf("Section 3.2 ablation: paths end at headers (PEP) vs "
                "back edges (BLPP)\n\n");
    std::printf("%s\n", table.str().c_str());
    std::printf("paper:    the difference is minor (affects only the "
                "first path through a loop)\n");
    std::printf("measured: derived edge profiles agree to %s on "
                "average; distinct-path counts differ by %.2fx; "
                "PEP(64,17) accuracy %s (headers) vs %s (back "
                "edges)\n",
                bench::pct(support::mean(agreements), 2).c_str(),
                support::mean(path_ratio),
                bench::pct(support::mean(pep_header_acc)).c_str(),
                bench::pct(support::mean(pep_back_acc)).c_str());
    return 0;
}
