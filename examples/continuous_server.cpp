/**
 * @file
 * Continuous profiling on a phased "server" workload — the scenario
 * the paper's introduction motivates: program behaviour changes at run
 * time, a one-time profile goes stale, and a continuous profile keeps
 * the dynamic optimizer honest.
 *
 * The example builds a pseudojbb-like transaction workload whose
 * branch mix shifts partway through, runs it under the adaptive
 * system twice — once with the stock one-time profile driving layout
 * and once with PEP(64,17) attached and driving layout — and reports
 * the stale-profile penalty (layout misses) and the net cycle
 * difference.
 */

#include <cstdio>

#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace pep;

    // A strongly phased workload: 30% of branches invert their bias a
    // third of the way in.
    workload::WorkloadSpec spec = workload::suiteSpec("pseudojbb");
    spec.name = "phased-server";
    spec.driftFraction = 0.30;
    spec.driftMagnitude = 0.6;
    spec.phaseSwitchAt = 0.33;
    const bytecode::Program program = workload::generateWorkload(spec);

    const vm::SimParams params;

    // --- Run 1: stock adaptive system (one-time profile only) ---------
    std::uint64_t base_cycles = 0;
    std::uint64_t base_misses = 0;
    profile::EdgeProfileSet one_time;
    {
        vm::Machine machine(program, params);
        base_cycles = machine.runIteration();
        base_misses = machine.stats().layoutMisses;
        one_time = machine.oneTimeEdges();

        const auto cfgs = [&] {
            std::vector<bytecode::MethodCfg> result;
            for (std::size_t m = 0; m < machine.numMethods(); ++m) {
                result.push_back(machine.info(
                    static_cast<bytecode::MethodId>(m)).cfg);
            }
            return result;
        }();
        const double staleness = metrics::relativeOverlap(
            cfgs, machine.truthEdges(), one_time);
        std::printf("one-time profile accuracy vs whole run: %.1f%%\n",
                    100.0 * staleness);
    }

    // --- Run 2: PEP collects continuously and drives recompilation ----
    std::uint64_t pep_cycles = 0;
    std::uint64_t pep_misses = 0;
    core::PepStats pep_stats;
    {
        vm::Machine machine(program, params);
        core::SimplifiedArnoldGrove controller(64, 17);
        core::PepProfiler pep(machine, controller);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);
        machine.setLayoutSource(&pep); // continuous profile drives opt
        pep_cycles = machine.runIteration();
        pep_misses = machine.stats().layoutMisses;
        pep_stats = pep.pepStats();
    }

    std::printf("\n                   cycles(M)   layout misses\n");
    std::printf("one-time profile   %9.2f   %13llu\n",
                base_cycles / 1e6,
                static_cast<unsigned long long>(base_misses));
    std::printf("PEP continuous     %9.2f   %13llu\n",
                pep_cycles / 1e6,
                static_cast<unsigned long long>(pep_misses));

    const double delta =
        (static_cast<double>(pep_cycles) / base_cycles - 1.0) * 100.0;
    std::printf("\nnet effect of continuous profiling: %+.2f%% cycles, "
                "%+lld layout misses\n",
                delta,
                static_cast<long long>(pep_misses) -
                    static_cast<long long>(base_misses));
    std::printf("(PEP recorded %llu path samples while the app ran)\n",
                static_cast<unsigned long long>(
                    pep_stats.samplesRecorded));
    std::printf("\nWith this much phase drift, fresher layouts offset "
                "PEP's costs;\nthe paper's predictable benchmarks "
                "(Figure 11) sit on the other side\nof that trade.\n");
    return 0;
}
