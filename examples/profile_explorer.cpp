/**
 * @file
 * Profile explorer: a pedagogical tool that shows PEP's machinery on a
 * method — the CFG, the P-DAG with its dummy edges, the path numbering
 * (Ball-Larus and smart), the instrumentation plan, and the complete
 * enumeration of acyclic paths with their numbers.
 *
 * Usage:
 *   ./build/examples/profile_explorer             # built-in sample
 *   ./build/examples/profile_explorer file.pepasm # your own program
 *   ./build/examples/profile_explorer file.pepasm --dot  # Graphviz
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/disassembler.hh"
#include "cfg/dot.hh"
#include "profile/instr_plan.hh"
#include "profile/reconstruct.hh"

namespace {

/** The paper's Figure 1 / Figure 3 shape: an if-else inside a loop. */
const char *kSample = R"(
.globals 1
.method main 0 2
    iconst 6
    istore 0
header:
    iload 0
    ifle exit
    irnd
    iconst 1
    iand
    ifeq right
    iinc 1 2
    goto join
right:
    iinc 1 5
join:
    iinc 0 -1
    goto header
exit:
    return
.end
.main main
)";

const char *
roleName(pep::profile::NodeRole role)
{
    using pep::profile::NodeRole;
    switch (role) {
      case NodeRole::Entry:
        return "ENTRY";
      case NodeRole::Exit:
        return "EXIT";
      case NodeRole::Plain:
        return "block";
      case NodeRole::HeaderTop:
        return "hdrTop";
      case NodeRole::HeaderRest:
        return "hdrRest";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pep;

    std::string source = kSample;
    bool dot = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dot") {
            dot = true;
        } else {
            std::ifstream in(arg);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", arg.c_str());
                return 1;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            source = buffer.str();
        }
    }

    const bytecode::Program program = bytecode::assembleOrDie(source);
    const bytecode::Method &method =
        program.methods[program.mainMethod];
    const bytecode::MethodCfg cfg = bytecode::buildCfg(method);

    std::printf("== method %s: %zu instructions, %zu blocks, %zu loop "
                "header(s), %s ==\n\n",
                method.name.c_str(), method.code.size(),
                cfg.graph.numBlocks(), cfg.numLoopHeaders(),
                cfg.reducible ? "reducible" : "IRREDUCIBLE");

    if (dot) {
        cfg::DotOptions options;
        options.name = "cfg";
        options.blockLabel = [&](cfg::BlockId b) {
            if (b == cfg.graph.entry())
                return std::string("ENTRY");
            if (b == cfg.graph.exit())
                return std::string("EXIT");
            std::ostringstream os;
            os << "B" << b << " [" << cfg.firstPc[b] << ".."
               << cfg.lastPc[b] << "]";
            if (cfg.isLoopHeader[b])
                os << " HDR";
            return os.str();
        };
        std::printf("%s\n", cfg::toDot(cfg.graph, options).c_str());
        return 0;
    }

    // Blocks.
    std::printf("-- CFG blocks --\n");
    for (cfg::BlockId b = 2; b < cfg.graph.numBlocks(); ++b) {
        std::printf("  B%-2u pc %2u..%-2u %s", b, cfg.firstPc[b],
                    cfg.lastPc[b],
                    cfg.isLoopHeader[b] ? "[loop header]" : "");
        std::printf(" -> ");
        for (cfg::BlockId succ : cfg.graph.succs(b)) {
            if (succ == cfg.graph.exit())
                std::printf("EXIT ");
            else
                std::printf("B%u ", succ);
        }
        std::printf("\n");
    }

    // P-DAG in both modes.
    for (const auto mode : {profile::DagMode::HeaderSplit,
                            profile::DagMode::BackEdgeTruncate}) {
        const bool split = mode == profile::DagMode::HeaderSplit;
        std::printf("\n-- P-DAG (%s) --\n",
                    split ? "HeaderSplit: PEP, paths end at headers"
                          : "BackEdgeTruncate: classic BLPP");
        const profile::PDag pdag = profile::buildPDag(cfg, mode);
        const profile::Numbering numbering = profile::numberPaths(
            pdag, profile::NumberingScheme::BallLarus);
        if (numbering.overflow) {
            std::printf("  (path count overflow; skipping)\n");
            continue;
        }
        std::printf("  %llu acyclic paths\n",
                    static_cast<unsigned long long>(
                        numbering.totalPaths));

        for (cfg::BlockId node = 0; node < pdag.dag.numBlocks();
             ++node) {
            const auto &succs = pdag.dag.succs(node);
            for (std::uint32_t i = 0; i < succs.size(); ++i) {
                const auto &meta = pdag.meta(cfg::EdgeRef{node, i});
                const char *kind =
                    meta.kind == profile::DagEdgeKind::Real
                        ? ""
                        : (meta.kind ==
                                   profile::DagEdgeKind::DummyEntry
                               ? " (dummy-entry)"
                               : " (dummy-exit)");
                std::printf("  %6s#%-2u -> %6s#%-2u  val=%llu%s\n",
                            roleName(pdag.role[node]), node,
                            roleName(pdag.role[succs[i]]), succs[i],
                            static_cast<unsigned long long>(
                                numbering.val[node][i]),
                            kind);
            }
        }

        // Enumerate every path.
        const profile::PathReconstructor reconstructor(cfg, pdag,
                                                       numbering);
        std::printf("  paths:\n");
        for (std::uint64_t n = 0; n < numbering.totalPaths; ++n) {
            const profile::ReconstructedPath path =
                reconstructor.reconstruct(n);
            std::printf("    #%llu: ",
                        static_cast<unsigned long long>(n));
            if (path.startHeader != cfg::kInvalidBlock)
                std::printf("[starts at hdr B%u] ", path.startHeader);
            for (const cfg::EdgeRef &e : path.cfgEdges) {
                const cfg::BlockId dst = cfg.graph.edgeDst(e);
                if (e.src == cfg.graph.entry())
                    std::printf("ENTRY");
                else
                    std::printf("B%u", e.src);
                std::printf("->");
                if (dst == cfg.graph.exit())
                    std::printf("EXIT");
                else
                    std::printf("B%u", dst);
                std::printf(" ");
            }
            if (path.endHeader != cfg::kInvalidBlock)
                std::printf("[ends at hdr B%u]", path.endHeader);
            std::printf(" (%u branches)\n", path.numBranches);
        }

        // The instrumentation plan.
        const profile::InstrumentationPlan plan =
            profile::buildInstrumentationPlan(cfg, pdag, numbering);
        std::printf("  instrumentation: %zu edge increment(s)\n",
                    plan.numInstrumentedEdges);
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            for (std::uint32_t i = 0;
                 i < cfg.graph.succs(b).size(); ++i) {
                const profile::EdgeAction &action =
                    plan.edgeActions[b][i];
                if (action.increment != 0) {
                    std::printf("    edge B%u->B%u: r += %llu\n", b,
                                cfg.graph.succs(b)[i],
                                static_cast<unsigned long long>(
                                    action.increment));
                }
                if (action.endsPath) {
                    std::printf("    back edge B%u->B%u: count[r+%llu]"
                                "++, r = %llu\n",
                                b, cfg.graph.succs(b)[i],
                                static_cast<unsigned long long>(
                                    action.endAdd),
                                static_cast<unsigned long long>(
                                    action.restart));
                }
            }
            const profile::HeaderAction &header =
                plan.headerActions[b];
            if (header.endsPath) {
                std::printf("    header B%u yieldpoint: sample r+%llu,"
                            " then r = %llu\n",
                            b,
                            static_cast<unsigned long long>(
                                header.endAdd),
                            static_cast<unsigned long long>(
                                header.restart));
            }
        }
    }
    return 0;
}
