/**
 * @file
 * pep_run: a command-line driver that loads a .pepasm program, runs it
 * under a chosen profiler, and reports profiles — the closest thing to
 * "using PEP as a tool". Also exercises the advice-file workflow: a
 * first run can record advice that a later run replays, exactly like
 * the paper's replay methodology.
 *
 * Usage:
 *   pep_run <program.pepasm> [options]
 *     --profiler pep|perfect|blpp|none    (default: pep)
 *     --samples N                          (default: 64)
 *     --stride N                           (default: 17)
 *     --iterations N                       (default: 2)
 *     --tick CYCLES                        (default: 300000)
 *     --osr                                enable on-stack replacement
 *     --inline                             inline leaf calls at opt tiers
 *     --record-advice FILE                 write advice after the run
 *     --replay-advice FILE                 replay a recorded run
 *     --top N                              paths/branches to print
 *
 * Examples:
 *   pep_run examples/programs/sort.pepasm
 *   pep_run examples/programs/rle.pepasm --profiler perfect --top 10
 *   pep_run examples/programs/sort.pepasm --record-advice /tmp/adv
 *   pep_run examples/programs/sort.pepasm --replay-advice /tmp/adv
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "bytecode/assembler.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/path_accuracy.hh"
#include "vm/advice_io.hh"
#include "vm/machine.hh"

namespace {

struct Options
{
    std::string programPath;
    std::string profiler = "pep";
    std::uint32_t samples = 64;
    std::uint32_t stride = 17;
    int iterations = 2;
    std::uint64_t tick = 300'000;
    bool osr = false;
    bool inlining = false;
    std::string recordAdvice;
    std::string replayAdvice;
    std::size_t top = 8;
};

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--profiler") {
            const char *v = next();
            if (!v)
                return false;
            options.profiler = v;
        } else if (arg == "--samples") {
            const char *v = next();
            if (!v)
                return false;
            options.samples =
                static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg == "--stride") {
            const char *v = next();
            if (!v)
                return false;
            options.stride = static_cast<std::uint32_t>(std::atoi(v));
        } else if (arg == "--iterations") {
            const char *v = next();
            if (!v)
                return false;
            options.iterations = std::atoi(v);
        } else if (arg == "--tick") {
            const char *v = next();
            if (!v)
                return false;
            options.tick = static_cast<std::uint64_t>(std::atoll(v));
        } else if (arg == "--osr") {
            options.osr = true;
        } else if (arg == "--inline") {
            options.inlining = true;
        } else if (arg == "--record-advice") {
            const char *v = next();
            if (!v)
                return false;
            options.recordAdvice = v;
        } else if (arg == "--replay-advice") {
            const char *v = next();
            if (!v)
                return false;
            options.replayAdvice = v;
        } else if (arg == "--top") {
            const char *v = next();
            if (!v)
                return false;
            options.top = static_cast<std::size_t>(std::atoi(v));
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        } else {
            options.programPath = arg;
        }
    }
    return !options.programPath.empty();
}

void
printPathReport(const pep::bytecode::Program &program,
                pep::metrics::CanonicalPathProfile paths,
                std::size_t top)
{
    const auto ranked = pep::metrics::rankByFlow(paths, top);
    std::printf("  %zu distinct paths, total flow %.0f\n",
                paths.paths.size(), paths.totalFlow());
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        std::printf("   %2zu. %-12s %3zu edges  %6.2f%% of flow\n",
                    i + 1,
                    program.methods[ranked[i].key->method]
                        .name.c_str(),
                    ranked[i].key->edges.size(),
                    100.0 * ranked[i].flowShare);
    }
}

void
printBranchReport(const pep::vm::Machine &machine,
                  const pep::profile::EdgeProfileSet &edges,
                  std::size_t top)
{
    struct Row
    {
        std::string label;
        double bias;
        std::uint64_t total;
    };
    std::vector<Row> rows;
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const auto id = static_cast<pep::bytecode::MethodId>(m);
        const auto &cfg = machine.info(id).cfg;
        for (pep::cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (cfg.terminator[b] !=
                pep::bytecode::TerminatorKind::Cond) {
                continue;
            }
            const auto counts = edges.perMethod[m].branch(b);
            if (counts.total() == 0)
                continue;
            std::ostringstream os;
            os << machine.program().methods[m].name << "@pc"
               << cfg.branchPc(b);
            rows.push_back(
                Row{os.str(), counts.takenBias(), counts.total()});
        }
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.total > b.total;
                     });
    for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
        std::printf("   %-24s taken %5.1f%%  (%llu)\n",
                    rows[i].label.c_str(), 100.0 * rows[i].bias,
                    static_cast<unsigned long long>(rows[i].total));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pep;

    Options options;
    if (!parseArgs(argc, argv, options)) {
        std::fprintf(stderr,
                     "usage: pep_run <program.pepasm> [--profiler "
                     "pep|perfect|blpp|none] [--samples N] [--stride "
                     "N] [--iterations N] [--tick C] [--osr] "
                     "[--record-advice F] [--replay-advice F] "
                     "[--top N]\n");
        return 1;
    }

    std::ifstream in(options.programPath);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n",
                     options.programPath.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const bytecode::Program program =
        bytecode::assembleOrDie(buffer.str());

    vm::SimParams params;
    params.tickCycles = options.tick;
    params.enableOsr = options.osr;
    params.enableInlining = options.inlining;
    vm::Machine machine(program, params);

    // Advice replay, if requested.
    vm::ReplayAdvice advice;
    if (!options.replayAdvice.empty()) {
        std::vector<bytecode::MethodCfg> cfgs;
        for (std::size_t m = 0; m < machine.numMethods(); ++m) {
            cfgs.push_back(machine.info(
                static_cast<bytecode::MethodId>(m)).cfg);
        }
        vm::ParseAdviceResult parsed =
            vm::loadAdviceFile(options.replayAdvice, cfgs);
        if (!parsed.ok) {
            std::fprintf(stderr, "%s\n", parsed.error.c_str());
            return 1;
        }
        advice = std::move(parsed.advice);
        machine.enableReplay(&advice);
        std::printf("replaying advice from %s\n",
                    options.replayAdvice.c_str());
    }

    // Profiler selection.
    std::unique_ptr<core::SamplingController> controller;
    std::unique_ptr<core::PepProfiler> pep;
    std::unique_ptr<core::FullPathProfiler> full;
    if (options.profiler == "pep") {
        controller = std::make_unique<core::SimplifiedArnoldGrove>(
            options.samples, options.stride);
        pep = std::make_unique<core::PepProfiler>(machine, *controller);
        machine.addHooks(pep.get());
        machine.addCompileObserver(pep.get());
    } else if (options.profiler == "perfect") {
        full = std::make_unique<core::FullPathProfiler>(
            machine, profile::DagMode::HeaderSplit, true);
        machine.addHooks(full.get());
        machine.addCompileObserver(full.get());
    } else if (options.profiler == "blpp") {
        full = std::make_unique<core::FullPathProfiler>(
            machine, profile::DagMode::BackEdgeTruncate, true,
            profile::NumberingScheme::BallLarus,
            core::PathStoreKind::Array);
        machine.addHooks(full.get());
        machine.addCompileObserver(full.get());
    } else if (options.profiler != "none") {
        std::fprintf(stderr, "unknown profiler %s\n",
                     options.profiler.c_str());
        return 1;
    }

    // Run.
    for (int i = 0; i < options.iterations; ++i) {
        const std::uint64_t cycles = machine.runIteration();
        std::printf("iteration %d: %.2f Mcycles (%llu instructions, "
                    "%llu ticks so far)\n",
                    i + 1, cycles / 1e6,
                    static_cast<unsigned long long>(
                        machine.stats().instructionsExecuted),
                    static_cast<unsigned long long>(
                        machine.stats().timerTicks));
    }
    std::printf("engine %s: %llu versions translated, %llu template "
                "invalidations\n",
                vm::engineKindName(machine.params().engine),
                static_cast<unsigned long long>(
                    machine.stats().methodsDecoded),
                static_cast<unsigned long long>(
                    machine.stats().templateInvalidations));

    // Reports.
    if (pep) {
        std::printf("\npep: %llu samples recorded (%llu paths "
                    "completed)\n",
                    static_cast<unsigned long long>(
                        pep->pepStats().samplesRecorded),
                    static_cast<unsigned long long>(
                        pep->pepStats().pathsCompleted));
        printPathReport(program, metrics::canonicalize(*pep),
                        options.top);
        std::printf("\n  hottest branches (continuous profile):\n");
        printBranchReport(machine, pep->edgeProfile(), options.top);
    } else if (full) {
        std::printf("\n%s: %llu paths stored\n",
                    options.profiler.c_str(),
                    static_cast<unsigned long long>(
                        full->pathsStored()));
        printPathReport(program, metrics::canonicalize(*full),
                        options.top);
    }

    std::printf("\n  hottest branches (ground truth):\n");
    printBranchReport(machine, machine.truthEdges(), options.top);

    if (!options.recordAdvice.empty()) {
        const vm::ReplayAdvice recorded = machine.recordAdvice();
        if (vm::saveAdviceFile(options.recordAdvice, recorded)) {
            std::printf("\nadvice recorded to %s\n",
                        options.recordAdvice.c_str());
        }
    }
    return 0;
}
