/**
 * @file
 * Sampling-configuration tuner: sweeps PEP(SAMPLES, STRIDE) on one
 * benchmark and prints the overhead / accuracy frontier — the
 * trade-off the paper navigates when it picks PEP(64,17). Also
 * contrasts simplified vs original Arnold-Grove at one configuration.
 *
 * Usage: ./build/examples/sampling_tuner [benchmark-name]
 */

#include <cstdio>
#include <memory>

#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "metrics/path_accuracy.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace {

struct Config
{
    std::uint32_t samples;
    std::uint32_t stride;
    bool fullAg;
};

struct Outcome
{
    double overheadPct;
    double pathAccuracy;
    double edgeAccuracy;
    std::uint64_t samplesRecorded;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace pep;

    const std::string name = argc > 1 ? argv[1] : "javac";
    const workload::WorkloadSpec &spec = workload::suiteSpec(name);
    const bytecode::Program program = workload::generateWorkload(spec);
    const vm::SimParams params;

    // Record replay advice once.
    vm::ReplayAdvice advice;
    {
        vm::Machine recorder(program, params);
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }

    // Base time (no PEP).
    double base = 0;
    {
        vm::Machine machine(program, params);
        machine.enableReplay(&advice);
        machine.runIteration();
        const std::uint64_t start = machine.now();
        machine.runIteration();
        base = static_cast<double>(machine.now() - start);
    }

    auto run = [&](const Config &config) {
        vm::Machine machine(program, params);
        machine.enableReplay(&advice);
        std::unique_ptr<core::SamplingController> controller;
        if (config.fullAg) {
            controller = std::make_unique<core::FullArnoldGrove>(
                config.samples, config.stride);
        } else {
            controller =
                std::make_unique<core::SimplifiedArnoldGrove>(
                    config.samples, config.stride);
        }
        core::PepProfiler pep(machine, *controller);
        core::FullPathProfiler truth(
            machine, profile::DagMode::HeaderSplit, false);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);
        machine.addHooks(&truth);
        machine.addCompileObserver(&truth);

        machine.runIteration();
        pep.clearProfiles();
        truth.clearPathProfiles();
        machine.clearTruth();
        const std::uint64_t start = machine.now();
        machine.runIteration();
        const double cycles =
            static_cast<double>(machine.now() - start);

        Outcome outcome;
        outcome.overheadPct = (cycles / base - 1.0) * 100.0;
        auto truth_paths = metrics::canonicalize(truth);
        auto pep_paths = metrics::canonicalize(pep);
        outcome.pathAccuracy =
            metrics::wallPathAccuracy(truth_paths, pep_paths).accuracy;
        std::vector<bytecode::MethodCfg> cfgs;
        for (std::size_t m = 0; m < machine.numMethods(); ++m) {
            cfgs.push_back(machine.info(
                static_cast<bytecode::MethodId>(m)).cfg);
        }
        outcome.edgeAccuracy = metrics::relativeOverlap(
            cfgs, core::edgeProfileFromPaths(machine, truth),
            pep.edgeProfile());
        outcome.samplesRecorded = pep.pepStats().samplesRecorded;
        return outcome;
    };

    support::Table table;
    table.header({"config", "overhead", "path-acc", "edge-acc",
                  "samples"});
    const std::vector<Config> sweep = {
        {1, 1, false},     {4, 17, false},   {16, 17, false},
        {64, 17, false},   {256, 17, false}, {1024, 17, false},
        {64, 5, false},    {64, 45, false},  {64, 17, true},
    };
    for (const Config &config : sweep) {
        const Outcome outcome = run(config);
        char label[48];
        std::snprintf(label, sizeof(label), "%s(%u,%u)",
                      config.fullAg ? "AG" : "PEP", config.samples,
                      config.stride);
        table.row({label,
                   support::formatFixed(outcome.overheadPct, 2) + "%",
                   support::formatPercent(outcome.pathAccuracy),
                   support::formatPercent(outcome.edgeAccuracy),
                   std::to_string(outcome.samplesRecorded)});
    }

    std::printf("sampling sweep on '%s' (replay iteration 2; overhead "
                "is total: instrumentation + sampling)\n\n%s\n",
                name.c_str(), table.str().c_str());
    std::printf("Pick the knee of the curve: the paper chooses "
                "PEP(64,17).\n");
    return 0;
}
