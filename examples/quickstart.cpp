/**
 * @file
 * Quickstart: the smallest complete PEP session.
 *
 * 1. Assemble a little bytecode program (a loop with a biased branch
 *    and a helper call).
 * 2. Load it into the VM, attach PEP(64,17), and run it twice (the
 *    first iteration warms up the adaptive compiler).
 * 3. Print the sampled hot paths, the continuous edge profile's
 *    branch biases, and what the profiling cost.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <algorithm>
#include <cstdio>

#include "bytecode/assembler.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/path_accuracy.hh"
#include "support/stats.hh"
#include "vm/machine.hh"

namespace {

const char *kProgram = R"(
.globals 4
.method weigh 1 2 returns
    iload 0
    iconst 255
    iand
    ireturn
.end
.method main 0 3
    iconst 20000
    istore 0
loop:
    iload 0
    ifle done
    ; draw a pseudo-random value and branch with ~75% bias
    irnd
    iconst 65535
    iand
    iconst 49152
    if_icmplt hot_arm
    ; cold arm: call the helper
    irnd
    invoke weigh
    istore 1
    goto next
hot_arm:
    iinc 2 1
next:
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)";

} // namespace

int
main()
{
    using namespace pep;

    // --- Load ---------------------------------------------------------
    const bytecode::Program program =
        bytecode::assembleOrDie(kProgram);
    vm::SimParams params;
    params.tickCycles = 200'000; // a fast timer for this short demo
    vm::Machine machine(program, params);

    // --- Attach PEP(64,17) --------------------------------------------
    core::SimplifiedArnoldGrove controller(64, 17);
    core::PepProfiler pep(machine, controller);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);

    // --- Run (two application iterations, like a warmed-up server) ----
    const std::uint64_t iter1 = machine.runIteration();
    const std::uint64_t iter2 = machine.runIteration();
    std::printf("ran 2 iterations: %.2f + %.2f Mcycles, %llu timer "
                "ticks\n\n",
                iter1 / 1e6, iter2 / 1e6,
                static_cast<unsigned long long>(
                    machine.stats().timerTicks));

    // --- Hot paths ------------------------------------------------------
    metrics::CanonicalPathProfile paths = metrics::canonicalize(pep);
    std::printf("sampled %llu paths (%zu distinct):\n",
                static_cast<unsigned long long>(
                    pep.pepStats().samplesRecorded),
                paths.paths.size());
    // Rank by flow = freq x branches.
    const auto ranked = metrics::rankByFlow(paths, 5);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const auto &key = *ranked[i].key;
        std::printf("  #%zu: method %s, %zu edges, %.1f%% of flow\n",
                    i + 1,
                    program.methods[key.method].name.c_str(),
                    key.edges.size(), 100.0 * ranked[i].flowShare);
    }

    // --- Branch biases from the continuous edge profile ----------------
    std::printf("\ncontinuous edge profile (conditional branches):\n");
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const auto id = static_cast<bytecode::MethodId>(m);
        const auto &cfg = machine.info(id).cfg;
        const auto &edges = pep.edgeProfile().perMethod[m];
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (cfg.terminator[b] != bytecode::TerminatorKind::Cond)
                continue;
            const profile::BranchCounts counts = edges.branch(b);
            if (counts.total() == 0)
                continue;
            std::printf("  %s@pc%u: taken %5.1f%%  (%llu samples)\n",
                        program.methods[m].name.c_str(),
                        cfg.branchPc(b),
                        100.0 * counts.takenBias(),
                        static_cast<unsigned long long>(
                            counts.total()));
        }
    }

    // --- What did it cost? ----------------------------------------------
    std::printf("\nprofiling activity: %llu paths computed, %llu "
                "sampled, %llu strides, %llu first-time expansions\n",
                static_cast<unsigned long long>(
                    pep.pepStats().pathsCompleted),
                static_cast<unsigned long long>(
                    pep.pepStats().samplesTaken),
                static_cast<unsigned long long>(
                    pep.pepStats().strides),
                static_cast<unsigned long long>(
                    pep.pepStats().firstTimeExpansions));
    return 0;
}
