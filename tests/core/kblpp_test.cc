/**
 * @file
 * k-BLPP tests at the core layer (docs/KBLPP.md): golden window counts
 * on a straight-line loop under a pinned-replay machine, exact-oracle
 * equality on nested-loop and shared-header methods across k and both
 * DAG modes (via the differ), the digit-multiset identity between a
 * k-windowed run and the k=1 run of the same program, and per-window
 * chain/flow-conservation over loop-heavy generated programs.
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "profile/kpath.hh"
#include "testing/differ.hh"
#include "testing/generator.hh"
#include "vm/machine.hh"

namespace pep::core {
namespace {

namespace fz = pep::testing;

vm::SimParams
fastTick()
{
    vm::SimParams params;
    params.tickCycles = 9'000;
    return params;
}

/** A loop whose body is straight-line: the steady-state full window is
 *  unique, so window counts are an exact arithmetic golden. */
bytecode::Program
straightLineLoopProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    iconst 10
    istore 0
header:
    iload 0
    ifle done
    iinc 0 -1
    goto header
done:
    return
.end
.main main
)");
}

/** Two nested loops with a data-dependent diamond in the inner body. */
bytecode::Program
nestedLoopProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 1
.method main 0 3
    iconst 6
    istore 0
outer:
    iload 0
    ifle exit
    iconst 4
    istore 1
inner:
    iload 1
    ifle next
    irnd
    iconst 1
    iand
    ifeq skip
    iinc 2 1
skip:
    iinc 1 -1
    goto inner
next:
    iinc 0 -1
    goto outer
exit:
    return
.end
.main main
)");
}

/** One loop header entered by two distinct back edges. */
bytecode::Program
sharedHeaderProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 1
.method main 0 2
    iconst 8
    istore 0
header:
    iload 0
    ifle exit
    iinc 0 -1
    irnd
    iconst 1
    iand
    ifeq alt
    goto header
alt:
    iinc 1 1
    goto header
exit:
    return
.end
.main main
)");
}

/** Replay machine pinned at Opt2 with one k-windowed full profiler:
 *  deterministic (no tiering churn), so goldens are exact. */
struct ReplayK
{
    ReplayK(const bytecode::Program &program, std::uint32_t k)
        : machine(program, fastTick())
    {
        advice.finalLevel.assign(machine.numMethods(),
                                 vm::OptLevel::Opt2);
        advice.oneTimeEdges = machine.truthEdges(); // empty, shaped
        machine.enableReplay(&advice);
        full = std::make_unique<FullPathProfiler>(
            machine, profile::DagMode::HeaderSplit,
            /*charge_costs=*/false,
            profile::NumberingScheme::BallLarus, PathStoreKind::Hash,
            profile::PlacementKind::Direct, k);
        machine.addHooks(full.get());
        machine.addCompileObserver(full.get());
    }

    vm::ReplayAdvice advice;
    vm::Machine machine;
    std::unique_ptr<FullPathProfiler> full;
};

/** All recorded (id, count) pairs of every enabled version, plus the
 *  window lengths decoded through each version's scheme. */
std::vector<std::uint64_t>
sortedCounts(const FullPathProfiler &full)
{
    std::vector<std::uint64_t> counts;
    for (const auto &[key, vp] : full.versionProfiles()) {
        if (!vp->state->plan.enabled)
            continue;
        for (const auto &[id, record] : vp->paths.paths())
            counts.push_back(record.count);
    }
    std::sort(counts.begin(), counts.end());
    return counts;
}

TEST(KBlpp, ZeroSampleProfileIsEmpty)
{
    ReplayK run(straightLineLoopProgram(), 2);
    EXPECT_EQ(run.full->pathsStored(), 0u);
    EXPECT_EQ(sortedCounts(*run.full), std::vector<std::uint64_t>{});
}

TEST(KBlpp, StraightLineLoopGoldenWindowCounts)
{
    // 10 trips under HeaderSplit: 1 entry segment, 10 identical body
    // segments, 1 exit segment = 12 segments per invocation.
    {
        // k=2: [entry,body] + 4x[body,body] + [body,exit] = 6 windows.
        ReplayK run(straightLineLoopProgram(), 2);
        run.machine.runIteration();
        EXPECT_EQ(run.full->pathsStored(), 6u);
        const std::vector<std::uint64_t> want = {1, 1, 4};
        EXPECT_EQ(sortedCounts(*run.full), want);
    }
    {
        // k=4: [e,b,b,b] + [b,b,b,b] + [b,b,b,exit] = 3 windows.
        ReplayK run(straightLineLoopProgram(), 4);
        run.machine.runIteration();
        EXPECT_EQ(run.full->pathsStored(), 3u);
        const std::vector<std::uint64_t> want = {1, 1, 1};
        EXPECT_EQ(sortedCounts(*run.full), want);
    }
    {
        // The steady-state full window is unique: exactly one distinct
        // id per window length shows up when the body is straight-line.
        ReplayK run(straightLineLoopProgram(), 3);
        run.machine.runIteration();
        // 12 segments -> 4 windows: [e,b,b], 2x[b,b,b], [b,exit].
        EXPECT_EQ(run.full->pathsStored(), 4u);
        const std::vector<std::uint64_t> want = {1, 1, 2};
        EXPECT_EQ(sortedCounts(*run.full), want);
    }
}

TEST(KBlpp, GoldenShapesMatchOracleExactlyAcrossKAndModes)
{
    const bytecode::Program programs[] = {nestedLoopProgram(),
                                          sharedHeaderProgram()};
    const char *configs[] = {"headersplit-direct", "kiter2-smart-osr",
                             "kiter4-backedge"};
    for (const bytecode::Program &program : programs) {
        for (const char *name : configs) {
            for (const std::uint32_t k : {1u, 2u, 4u}) {
                const fz::DiffOptions *base = fz::findConfig(name);
                ASSERT_NE(base, nullptr);
                fz::DiffOptions opts = *base;
                opts.kIterations = k;
                const fz::DiffReport report =
                    fz::runDiff(program, opts);
                EXPECT_TRUE(report.ok())
                    << name << " k=" << k << ": "
                    << (report.violations.empty()
                            ? ""
                            : report.violations.front());
                EXPECT_EQ(report.blppPaths, report.oracleSegments)
                    << name << " k=" << k;
            }
        }
    }
}

/** Per-version digit->count multiset of a k-windowed run. */
std::map<core::VersionKey, std::map<std::uint64_t, std::uint64_t>>
digitMultisets(const FullPathProfiler &full)
{
    std::map<core::VersionKey, std::map<std::uint64_t, std::uint64_t>>
        result;
    for (const auto &[key, vp] : full.versionProfiles()) {
        if (!vp->state->plan.enabled)
            continue;
        auto &digits = result[key];
        for (const auto &[id, record] : vp->paths.paths()) {
            for (const std::uint64_t digit :
                 vp->state->kpath.decode(id)) {
                digits[digit] += record.count;
            }
        }
    }
    return result;
}

TEST(KBlpp, WindowDigitsAreExactlyTheK1SegmentCounts)
{
    // Windowing only regroups segments: decoding every k-run id back
    // into digits must reproduce the k=1 run's per-segment counts
    // exactly (same deterministic machine, observation-only hooks).
    const bytecode::Program programs[] = {test::figure1Program(),
                                          test::callSwitchProgram(),
                                          nestedLoopProgram()};
    for (const bytecode::Program &program : programs) {
        auto run = [&](std::uint32_t k) {
            auto result = std::make_unique<ReplayK>(program, k);
            for (int i = 0; i < 3; ++i)
                result->machine.runIteration();
            return result;
        };
        const auto k1 = run(1);
        const auto k3 = run(3);
        const auto want = digitMultisets(*k1->full);
        const auto got = digitMultisets(*k3->full);
        EXPECT_FALSE(want.empty());
        EXPECT_EQ(got, want);
    }
}

TEST(KBlpp, WindowsChainAndConserveFlowOnLoopHeavyPrograms)
{
    // Cross-iteration flow conservation: inside every recorded window,
    // segment j must end at the loop header segment j+1 starts from,
    // and only the final segment may end at method exit.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        fz::FuzzSpec spec;
        spec.seed = seed;
        spec.loopBias = 0.7;
        const bytecode::Program program = fz::generateProgram(spec);

        ReplayK run(program, 3);
        for (int i = 0; i < 3; ++i)
            run.machine.runIteration();

        std::uint64_t composite = 0;
        for (const auto &[key, vp] : run.full->versionProfiles()) {
            if (!vp->state->plan.enabled)
                continue;
            const profile::KPathScheme &kpath = vp->state->kpath;
            for (const auto &[id, record] : vp->paths.paths()) {
                if (id < kpath.base())
                    continue;
                ++composite;
                const std::vector<std::uint64_t> digits =
                    kpath.decode(id);
                cfg::BlockId prev_end = cfg::kInvalidBlock;
                for (std::size_t j = 0; j < digits.size(); ++j) {
                    const profile::ReconstructedPath segment =
                        vp->state->reconstructor->reconstruct(
                            digits[j]);
                    if (j > 0) {
                        ASSERT_NE(prev_end, cfg::kInvalidBlock)
                            << "window continues past a method exit";
                        EXPECT_EQ(segment.startHeader, prev_end)
                            << "segments do not chain";
                    }
                    prev_end = segment.endHeader;
                }
            }
        }
        // The bias knob must actually produce cross-iteration windows.
        EXPECT_GT(composite, 0u) << "seed " << seed;
    }
}

} // namespace
} // namespace pep::core
