/**
 * @file
 * Profiler tests at the core layer: the path engine's per-frame
 * register discipline across calls and recompilation, PEP's sampling
 * bookkeeping and layout-source fallback, the zero-cost property of
 * ground-truth recorders, and the cost ordering of the reference
 * profilers.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep::core {
namespace {

class AlwaysSample final : public SamplingController
{
  public:
    SampleAction
    onOpportunity(bool) override
    {
        return SampleAction::Sample;
    }
    void reset() override {}
    std::string name() const override { return "always"; }
};

vm::SimParams
fastTick()
{
    vm::SimParams params;
    params.tickCycles = 100'000;
    return params;
}

/** Replay machine with every method pinned at Opt2. */
struct OptMachine
{
    explicit OptMachine(const bytecode::Program &program,
                        const vm::SimParams &params = fastTick())
        : machine(program, params)
    {
        advice.finalLevel.assign(machine.numMethods(),
                                 vm::OptLevel::Opt2);
        advice.oneTimeEdges = machine.truthEdges(); // empty, shaped
        machine.enableReplay(&advice);
    }

    vm::ReplayAdvice advice;
    vm::Machine machine;
};

TEST(PathEngine, GroundTruthRecorderAddsZeroCycles)
{
    const bytecode::Program program = test::callSwitchProgram();

    OptMachine plain(program);
    plain.machine.runIteration();
    const std::uint64_t base_cycles = plain.machine.now();

    OptMachine observed(program);
    FullPathProfiler truth(observed.machine,
                           profile::DagMode::HeaderSplit,
                           /*charge_costs=*/false);
    observed.machine.addHooks(&truth);
    observed.machine.addCompileObserver(&truth);
    observed.machine.runIteration();

    EXPECT_EQ(observed.machine.now(), base_cycles);
    EXPECT_GT(truth.pathsStored(), 0u);
}

TEST(PathEngine, ChargingProfilersCostMoreInOrder)
{
    const bytecode::Program program =
        workload::generateWorkload([] {
            auto spec = workload::standardSuite()[0];
            spec.outerIterations = 40;
            return spec;
        }());

    auto run_with = [&](auto attach) {
        OptMachine om(program);
        const auto keep_alive = attach(om.machine);
        (void)keep_alive;
        om.machine.runIteration();
        return om.machine.now();
    };

    const std::uint64_t base =
        run_with([](vm::Machine &) { return 0; });
    const std::uint64_t pep_instr = run_with([](vm::Machine &m) {
        static NeverSample never;
        auto pep = std::make_shared<PepProfiler>(m, never);
        m.addHooks(pep.get());
        m.addCompileObserver(pep.get());
        return pep;
    });
    const std::uint64_t blpp = run_with([](vm::Machine &m) {
        auto full = std::make_shared<FullPathProfiler>(
            m, profile::DagMode::BackEdgeTruncate, true,
            profile::NumberingScheme::BallLarus,
            PathStoreKind::Array);
        m.addHooks(full.get());
        m.addCompileObserver(full.get());
        return full;
    });
    const std::uint64_t perfect = run_with([](vm::Machine &m) {
        auto full = std::make_shared<FullPathProfiler>(
            m, profile::DagMode::HeaderSplit, true,
            profile::NumberingScheme::BallLarus,
            PathStoreKind::Hash);
        m.addHooks(full.get());
        m.addCompileObserver(full.get());
        return full;
    });

    // The paper's cost ordering: PEP instrumentation alone is cheap;
    // classic BLPP (array stores) costs more; hash-store perfect path
    // profiling costs the most.
    EXPECT_LT(base, pep_instr);
    EXPECT_LT(pep_instr, blpp);
    EXPECT_LT(blpp, perfect);
}

TEST(PathEngine, RegisterDisciplineSurvivesNestedCalls)
{
    // Recursive method: per-frame path registers must not interfere.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 1
.method fib 1 1 returns
    iload 0
    iconst 2
    if_icmpge rec
    iload 0
    ireturn
rec:
    iload 0
    iconst 1
    isub
    invoke fib
    iload 0
    iconst 2
    isub
    invoke fib
    iadd
    ireturn
.end
.method main 0 1
    iconst 10
    invoke fib
    iconst 0
    gstore
    return
.end
.main main
)");
    OptMachine om(program);
    AlwaysSample always;
    PepProfiler pep(om.machine, always);
    FullPathProfiler truth(om.machine, profile::DagMode::HeaderSplit,
                           false);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.addHooks(&truth);
    om.machine.addCompileObserver(&truth);
    om.machine.runIteration();

    EXPECT_EQ(om.machine.globals()[0], 55); // fib(10)

    // With 100% sampling, PEP's canonical paths == ground truth.
    const auto pep_paths = metrics::canonicalize(pep);
    const auto truth_paths = metrics::canonicalize(truth);
    ASSERT_GT(truth_paths.paths.size(), 0u);
    EXPECT_EQ(pep_paths.paths.size(), truth_paths.paths.size());
    for (const auto &[key, entry] : truth_paths.paths) {
        const auto it = pep_paths.paths.find(key);
        ASSERT_NE(it, pep_paths.paths.end());
        EXPECT_EQ(it->second.count, entry.count);
    }
}

TEST(PathEngine, BaselineFramesGenerateNoPathEvents)
{
    // Without replay/promotion, everything runs baseline: the engine
    // must observe no instrumented frames at all.
    const bytecode::Program program = test::callSwitchProgram();
    vm::SimParams params = fastTick();
    vm::Machine machine(program, params);
    FullPathProfiler truth(machine, profile::DagMode::HeaderSplit,
                           false);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);
    machine.runIteration(); // too short for promotion
    EXPECT_EQ(truth.pathsStored(), 0u);
}

TEST(PathEngine, RecompilationKeepsPerVersionProfiles)
{
    const bytecode::Program program =
        workload::generateWorkload([] {
            auto spec = workload::standardSuite()[0];
            spec.outerIterations = 120;
            return spec;
        }());
    vm::Machine machine(program, fastTick());
    FullPathProfiler truth(machine, profile::DagMode::HeaderSplit,
                           false);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);
    machine.runIteration(); // adaptive: opt1 then opt2 recompiles

    // Some method must have two instrumented versions (opt1 + opt2).
    std::size_t multi_version_methods = 0;
    std::map<bytecode::MethodId, int> versions_per_method;
    for (const auto &[key, vp] : truth.versionProfiles()) {
        (void)vp;
        versions_per_method[key.first] += 1;
    }
    for (const auto &[method, count] : versions_per_method) {
        if (count >= 2)
            ++multi_version_methods;
    }
    EXPECT_GT(multi_version_methods, 0u);

    // Canonicalization merges across versions without losing counts.
    const auto canonical = metrics::canonicalize(truth);
    std::uint64_t canonical_total = 0;
    for (const auto &[key, entry] : canonical.paths)
        canonical_total += entry.count;
    EXPECT_EQ(canonical_total, truth.pathsStored());
}

TEST(Pep, SampleCountsAreConsistent)
{
    const bytecode::Program program = test::callSwitchProgram();
    OptMachine om(program);
    SimplifiedArnoldGrove controller(4, 3);
    PepProfiler pep(om.machine, controller);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.runIteration();

    const PepStats &stats = pep.pepStats();
    EXPECT_LE(stats.samplesRecorded, stats.samplesTaken);
    EXPECT_LE(stats.firstTimeExpansions, stats.samplesRecorded);
    EXPECT_LE(stats.samplesRecorded, stats.pathsCompleted);
}

TEST(Pep, EdgeProfileIsExpansionOfSampledPaths)
{
    const bytecode::Program program = test::callSwitchProgram();
    OptMachine om(program);
    SimplifiedArnoldGrove controller(8, 3);
    PepProfiler pep(om.machine, controller);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.runIteration();

    // Rebuild the edge profile from the sampled path records; it must
    // equal the incrementally maintained one exactly.
    profile::EdgeProfileSet rebuilt =
        edgeProfileFromPaths(om.machine, pep);
    for (std::size_t m = 0; m < om.machine.numMethods(); ++m) {
        EXPECT_EQ(rebuilt.perMethod[m].counts(),
                  pep.edgeProfile().perMethod[m].counts())
            << "method " << m;
    }
}

TEST(Pep, LayoutSourceFallsBackUntilEvidence)
{
    const bytecode::Program program = test::callSwitchProgram();
    vm::Machine machine(program, fastTick());
    NeverSample never;
    PepProfiler pep(machine, never);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);

    // No PEP samples and no one-time data: nothing to offer.
    EXPECT_EQ(pep.layoutProfile(program.mainMethod), nullptr);

    // With baseline execution, the one-time profile becomes available.
    machine.runIteration();
    const profile::MethodEdgeProfile *source =
        pep.layoutProfile(program.mainMethod);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source,
              &machine.oneTimeEdges().perMethod[program.mainMethod]);
}

TEST(Pep, LayoutSourceUsesOwnProfileOnceRich)
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    spec.outerIterations = 100;
    const bytecode::Program program = workload::generateWorkload(spec);
    OptMachine om(program);
    AlwaysSample always;
    PepProfiler pep(om.machine, always);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.runIteration();

    bytecode::MethodId hot0 = 0;
    ASSERT_TRUE(program.findMethod("hot_0", hot0));
    ASSERT_GT(pep.edgeProfile().perMethod[hot0].totalCount(), 400u);
    EXPECT_EQ(pep.layoutProfile(hot0),
              &pep.edgeProfile().perMethod[hot0]);
}

TEST(Pep, ClearProfilesResetsEverything)
{
    const bytecode::Program program = test::callSwitchProgram();
    OptMachine om(program);
    AlwaysSample always;
    PepProfiler pep(om.machine, always);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.runIteration();
    ASSERT_GT(pep.pepStats().samplesRecorded, 0u);

    pep.clearProfiles();
    EXPECT_EQ(pep.pepStats().samplesRecorded, 0u);
    const auto canonical = metrics::canonicalize(pep);
    EXPECT_TRUE(canonical.paths.empty());
    std::uint64_t edges = 0;
    for (const auto &per_method : pep.edgeProfile().perMethod)
        edges += per_method.totalCount();
    EXPECT_EQ(edges, 0u);
}

TEST(InstrEdge, MatchesTruthOnOptBranches)
{
    const bytecode::Program program = test::callSwitchProgram();
    OptMachine om(program);
    InstrEdgeProfiler instr_edge(om.machine, /*charge_costs=*/false);
    om.machine.addHooks(&instr_edge);
    om.machine.runIteration();

    for (std::size_t m = 0; m < om.machine.numMethods(); ++m) {
        const auto id = static_cast<bytecode::MethodId>(m);
        const auto &cfg = om.machine.info(id).cfg;
        const auto &truth = om.machine.truthEdges().perMethod[m];
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            const auto kind = cfg.terminator[b];
            if (kind != bytecode::TerminatorKind::Cond &&
                kind != bytecode::TerminatorKind::Switch) {
                continue;
            }
            for (std::uint32_t i = 0; i < cfg.graph.succs(b).size();
                 ++i) {
                EXPECT_EQ(
                    instr_edge.edges().perMethod[m].edgeCount(
                        cfg::EdgeRef{b, i}),
                    truth.edgeCount(cfg::EdgeRef{b, i}));
            }
        }
    }
}

TEST(Pep, SpanningPlacementReproducesGroundTruthExactly)
{
    // PEP with Ball-Larus event-counting placement + 100% sampling
    // must still match the (direct-placement) ground truth recorder:
    // placement changes where increments sit, never what the register
    // holds at path ends.
    const bytecode::Program program = test::callSwitchProgram();
    OptMachine om(program);
    AlwaysSample always;
    PepOptions options;
    options.placement = profile::PlacementKind::SpanningTree;
    PepProfiler pep(om.machine, always, options);
    FullPathProfiler truth(om.machine, profile::DagMode::HeaderSplit,
                           false);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.addHooks(&truth);
    om.machine.addCompileObserver(&truth);
    om.machine.runIteration();

    const auto pep_paths = metrics::canonicalize(pep);
    const auto truth_paths = metrics::canonicalize(truth);
    ASSERT_GT(truth_paths.paths.size(), 0u);
    ASSERT_EQ(pep_paths.paths.size(), truth_paths.paths.size());
    for (const auto &[key, entry] : truth_paths.paths) {
        const auto it = pep_paths.paths.find(key);
        ASSERT_NE(it, pep_paths.paths.end());
        EXPECT_EQ(it->second.count, entry.count);
    }
}

TEST(PathEngine, OverflowedMethodIsSkippedGracefully)
{
    // A 60-diamond straight-line method overflows numbering; the
    // engine must run it uninstrumented without crashing.
    std::string body;
    for (int i = 0; i < 60; ++i) {
        const std::string n = std::to_string(i);
        body += "    irnd\n    ifeq t" + n + "\n    iinc 0 1\n"
                "    goto j" + n + "\nt" + n + ":\n    iinc 0 2\nj" +
                n + ":\n";
    }
    const bytecode::Program program = bytecode::assembleOrDie(
        ".globals 1\n.method main 0 1\n" + body +
        "    return\n.end\n.main main\n");

    OptMachine om(program);
    FullPathProfiler truth(om.machine, profile::DagMode::HeaderSplit,
                           false);
    om.machine.addHooks(&truth);
    om.machine.addCompileObserver(&truth);
    om.machine.runIteration();
    EXPECT_EQ(truth.pathsStored(), 0u);
    EXPECT_EQ(truth.overflowCount(), 1u);
}

} // namespace
} // namespace pep::core
