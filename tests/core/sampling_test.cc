/**
 * @file
 * Sampling-controller tests, pinning the exact behaviours of paper
 * Figure 5: timer-based sampling (one sample per tick), simplified
 * Arnold-Grove (rotating initial stride, then a burst of consecutive
 * samples), and original Arnold-Grove (stride between every sample).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <string>

#include "core/sampling.hh"

namespace pep::core {
namespace {

/** Drive a controller over opportunities; encode actions as chars:
 *  '.' idle, 's' stride, 'X' sample. Index 0 carries the tick. */
std::string
drive(SamplingController &controller, std::size_t opportunities,
      std::size_t tick_every = 0)
{
    std::string actions;
    for (std::size_t i = 0; i < opportunities; ++i) {
        const bool tick =
            (i == 0) || (tick_every != 0 && i % tick_every == 0);
        switch (controller.onOpportunity(tick)) {
          case SampleAction::Idle:
            actions.push_back('.');
            break;
          case SampleAction::Stride:
            actions.push_back('s');
            break;
          case SampleAction::Sample:
            actions.push_back('X');
            break;
        }
    }
    return actions;
}

/** Like drive(), but ticks fire at exactly the listed opportunity
 *  indices — for golden sequences with a tick landing mid-burst. */
std::string
driveTicksAt(SamplingController &controller, std::size_t opportunities,
             std::initializer_list<std::size_t> ticks)
{
    std::string actions;
    for (std::size_t i = 0; i < opportunities; ++i) {
        const bool tick =
            std::find(ticks.begin(), ticks.end(), i) != ticks.end();
        switch (controller.onOpportunity(tick)) {
          case SampleAction::Idle:
            actions.push_back('.');
            break;
          case SampleAction::Stride:
            actions.push_back('s');
            break;
          case SampleAction::Sample:
            actions.push_back('X');
            break;
        }
    }
    return actions;
}

TEST(NeverSampleTest, AlwaysIdle)
{
    NeverSample controller;
    EXPECT_EQ(drive(controller, 10), "..........");
    EXPECT_EQ(controller.name(), "instr-only");
}

TEST(SimplifiedAg, TimerConfigTakesOneSamplePerTick)
{
    // PEP(1,1): exactly one sample at the first opportunity after a
    // tick, idle otherwise.
    SimplifiedArnoldGrove controller(1, 1);
    EXPECT_EQ(controller.name(), "PEP(1,1)");
    EXPECT_EQ(drive(controller, 12, 6), "X.....X.....");
}

TEST(SimplifiedAg, BurstOfConsecutiveSamples)
{
    // PEP(4,1): no striding, four consecutive samples per tick.
    SimplifiedArnoldGrove controller(4, 1);
    EXPECT_EQ(drive(controller, 12, 0), "XXXX........");
}

TEST(SimplifiedAg, StrideRotatesAcrossTicks)
{
    // PEP(4,3): Figure 5(c). First tick: rotation 1 -> no skip, then
    // 4 consecutive samples. Second tick: rotation 2 -> one stride.
    // Third tick: rotation 3 -> two strides. Fourth: back to 1.
    SimplifiedArnoldGrove controller(4, 3);
    EXPECT_EQ(drive(controller, 8, 0), "XXXX....");   // tick @0, rot 1
    EXPECT_EQ(drive(controller, 8, 0), "sXXXX...");   // rot 2
    EXPECT_EQ(drive(controller, 8, 0), "ssXXXX..");   // rot 3
    EXPECT_EQ(drive(controller, 8, 0), "XXXX....");   // rot 1 again
}

TEST(SimplifiedAg, NoStridingAfterFirstSample)
{
    // The simplification: once the first sample of a tick is taken,
    // every subsequent opportunity samples until the burst ends.
    SimplifiedArnoldGrove controller(3, 5);
    const std::string actions = drive(controller, 12, 0);
    const auto first_sample = actions.find('X');
    ASSERT_NE(first_sample, std::string::npos);
    EXPECT_EQ(actions.substr(first_sample, 3), "XXX");
}

TEST(SimplifiedAg, TickDuringBurstRestartsIt)
{
    SimplifiedArnoldGrove controller(4, 1);
    EXPECT_EQ(controller.onOpportunity(true), SampleAction::Sample);
    EXPECT_EQ(controller.onOpportunity(false), SampleAction::Sample);
    // New tick mid-burst: burst restarts with a full sample budget
    // (one sample consumed by the restarting opportunity itself).
    EXPECT_EQ(controller.onOpportunity(true), SampleAction::Sample);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(controller.onOpportunity(false),
                  SampleAction::Sample);
    }
    EXPECT_EQ(controller.onOpportunity(false), SampleAction::Idle);
}

TEST(SimplifiedAg, ResetReturnsToDormant)
{
    SimplifiedArnoldGrove controller(4, 3);
    (void)drive(controller, 3, 0);
    controller.reset();
    // No tick -> idle; rotation starts over at 1.
    EXPECT_EQ(controller.onOpportunity(false), SampleAction::Idle);
    EXPECT_EQ(drive(controller, 5, 0), "XXXX.");
}

TEST(FullAg, StridesBetweenEverySample)
{
    // AG(4,3): Figure 5(b). Rotation 1: sample immediately, then two
    // strides before each subsequent sample.
    FullArnoldGrove controller(4, 3);
    EXPECT_EQ(controller.name(), "AG(4,3)");
    EXPECT_EQ(drive(controller, 12, 0), "XssXssXssX..");
}

TEST(FullAg, RotationShiftsFirstSample)
{
    FullArnoldGrove controller(2, 3);
    EXPECT_EQ(drive(controller, 6, 0), "XssX.."); // rotation 1
    EXPECT_EQ(drive(controller, 6, 0), "sXssX."); // rotation 2
    EXPECT_EQ(drive(controller, 7, 0), "ssXssX."); // rotation 3
}

TEST(FullAg, SameSampleCountAsSimplified)
{
    SimplifiedArnoldGrove simplified(8, 5);
    FullArnoldGrove full(8, 5);
    const std::string a = drive(simplified, 64, 0);
    const std::string b = drive(full, 64, 0);
    EXPECT_EQ(std::count(a.begin(), a.end(), 'X'), 8);
    EXPECT_EQ(std::count(b.begin(), b.end(), 'X'), 8);
    // ...but full AG runs the handler more often (more strides).
    EXPECT_GT(std::count(b.begin(), b.end(), 's'),
              std::count(a.begin(), a.end(), 's'));
}

TEST(SimplifiedAg, GoldenSequenceAcrossTicks)
{
    // PEP(3,4) with ticks at opportunities 0 and 5.  Tick 0 uses
    // rotation 1 (no initial stride): three consecutive samples, then
    // idle.  Tick at 5 uses rotation 2: one stride, then the burst.
    SimplifiedArnoldGrove controller(3, 4);
    EXPECT_EQ(driveTicksAt(controller, 16, {0, 5}),
              "XXX..sXXX.......");
}

TEST(SimplifiedAg, GoldenSequenceTickMidBurst)
{
    // A tick landing mid-burst (opportunity 2, after two of three
    // samples) restarts the controller: the new rotation (2) inserts
    // one stride, then a fresh full burst of three samples runs.
    SimplifiedArnoldGrove controller(3, 4);
    EXPECT_EQ(driveTicksAt(controller, 7, {0, 2}), "XXsXXX.");
}

TEST(FullAg, GoldenSequenceTickMidBurst)
{
    // AG(3,4), ticks at 0 and 2.  Unlike the simplified controller,
    // full Arnold-Grove strides between every sample, so the tick at
    // opportunity 2 lands mid-stride; the restart replaces the
    // in-progress stride count with the new rotation's (one stride),
    // then each subsequent sample is separated by three strides.
    FullArnoldGrove controller(3, 4);
    EXPECT_EQ(driveTicksAt(controller, 16, {0, 2}),
              "XssXsssXsssX....");
}

TEST(Controllers, SampleCountsAgreeWhenBurstsComplete)
{
    // Cross-check between the samplers: with ticks spaced widely
    // enough for every burst to complete, both controllers take
    // exactly samples-per-tick samples per tick — the simplification
    // changes *when* samples land, never *how many* per completed
    // burst.  (A mid-burst tick legitimately differs: the full
    // controller strides inside the burst, so fewer samples land
    // before the restart — pinned by the golden tests above.)
    SimplifiedArnoldGrove simplified(5, 3);
    FullArnoldGrove full(5, 3);
    const auto ticks = {std::size_t{0}, std::size_t{40}};
    const std::string a = driveTicksAt(simplified, 80, ticks);
    const std::string b = driveTicksAt(full, 80, ticks);
    EXPECT_EQ(std::count(a.begin(), a.end(), 'X'), 10);
    EXPECT_EQ(std::count(b.begin(), b.end(), 'X'), 10);
    // Second tick uses rotation 2 in both: one initial stride.
    EXPECT_EQ(a.substr(40, 8), "sXXXXX..");
    EXPECT_EQ(b.substr(40, 13), "sXssXssXssXss");
}

TEST(Controllers, SamplesPerTickIsExactlyConfigured)
{
    for (const std::uint32_t samples : {1u, 16u, 64u}) {
        SimplifiedArnoldGrove controller(samples, 17);
        std::size_t taken = 0;
        // One tick, then plenty of opportunities.
        for (std::size_t i = 0; i < 200; ++i) {
            if (controller.onOpportunity(i == 0) ==
                SampleAction::Sample) {
                ++taken;
            }
        }
        EXPECT_EQ(taken, samples);
    }
}

} // namespace
} // namespace pep::core
