/**
 * @file
 * Sampling-controller tests, pinning the exact behaviours of paper
 * Figure 5: timer-based sampling (one sample per tick), simplified
 * Arnold-Grove (rotating initial stride, then a burst of consecutive
 * samples), and original Arnold-Grove (stride between every sample).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/sampling.hh"

namespace pep::core {
namespace {

/** Drive a controller over opportunities; encode actions as chars:
 *  '.' idle, 's' stride, 'X' sample. Index 0 carries the tick. */
std::string
drive(SamplingController &controller, std::size_t opportunities,
      std::size_t tick_every = 0)
{
    std::string actions;
    for (std::size_t i = 0; i < opportunities; ++i) {
        const bool tick =
            (i == 0) || (tick_every != 0 && i % tick_every == 0);
        switch (controller.onOpportunity(tick)) {
          case SampleAction::Idle:
            actions.push_back('.');
            break;
          case SampleAction::Stride:
            actions.push_back('s');
            break;
          case SampleAction::Sample:
            actions.push_back('X');
            break;
        }
    }
    return actions;
}

TEST(NeverSampleTest, AlwaysIdle)
{
    NeverSample controller;
    EXPECT_EQ(drive(controller, 10), "..........");
    EXPECT_EQ(controller.name(), "instr-only");
}

TEST(SimplifiedAg, TimerConfigTakesOneSamplePerTick)
{
    // PEP(1,1): exactly one sample at the first opportunity after a
    // tick, idle otherwise.
    SimplifiedArnoldGrove controller(1, 1);
    EXPECT_EQ(controller.name(), "PEP(1,1)");
    EXPECT_EQ(drive(controller, 12, 6), "X.....X.....");
}

TEST(SimplifiedAg, BurstOfConsecutiveSamples)
{
    // PEP(4,1): no striding, four consecutive samples per tick.
    SimplifiedArnoldGrove controller(4, 1);
    EXPECT_EQ(drive(controller, 12, 0), "XXXX........");
}

TEST(SimplifiedAg, StrideRotatesAcrossTicks)
{
    // PEP(4,3): Figure 5(c). First tick: rotation 1 -> no skip, then
    // 4 consecutive samples. Second tick: rotation 2 -> one stride.
    // Third tick: rotation 3 -> two strides. Fourth: back to 1.
    SimplifiedArnoldGrove controller(4, 3);
    EXPECT_EQ(drive(controller, 8, 0), "XXXX....");   // tick @0, rot 1
    EXPECT_EQ(drive(controller, 8, 0), "sXXXX...");   // rot 2
    EXPECT_EQ(drive(controller, 8, 0), "ssXXXX..");   // rot 3
    EXPECT_EQ(drive(controller, 8, 0), "XXXX....");   // rot 1 again
}

TEST(SimplifiedAg, NoStridingAfterFirstSample)
{
    // The simplification: once the first sample of a tick is taken,
    // every subsequent opportunity samples until the burst ends.
    SimplifiedArnoldGrove controller(3, 5);
    const std::string actions = drive(controller, 12, 0);
    const auto first_sample = actions.find('X');
    ASSERT_NE(first_sample, std::string::npos);
    EXPECT_EQ(actions.substr(first_sample, 3), "XXX");
}

TEST(SimplifiedAg, TickDuringBurstRestartsIt)
{
    SimplifiedArnoldGrove controller(4, 1);
    EXPECT_EQ(controller.onOpportunity(true), SampleAction::Sample);
    EXPECT_EQ(controller.onOpportunity(false), SampleAction::Sample);
    // New tick mid-burst: burst restarts with a full sample budget
    // (one sample consumed by the restarting opportunity itself).
    EXPECT_EQ(controller.onOpportunity(true), SampleAction::Sample);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(controller.onOpportunity(false),
                  SampleAction::Sample);
    }
    EXPECT_EQ(controller.onOpportunity(false), SampleAction::Idle);
}

TEST(SimplifiedAg, ResetReturnsToDormant)
{
    SimplifiedArnoldGrove controller(4, 3);
    (void)drive(controller, 3, 0);
    controller.reset();
    // No tick -> idle; rotation starts over at 1.
    EXPECT_EQ(controller.onOpportunity(false), SampleAction::Idle);
    EXPECT_EQ(drive(controller, 5, 0), "XXXX.");
}

TEST(FullAg, StridesBetweenEverySample)
{
    // AG(4,3): Figure 5(b). Rotation 1: sample immediately, then two
    // strides before each subsequent sample.
    FullArnoldGrove controller(4, 3);
    EXPECT_EQ(controller.name(), "AG(4,3)");
    EXPECT_EQ(drive(controller, 12, 0), "XssXssXssX..");
}

TEST(FullAg, RotationShiftsFirstSample)
{
    FullArnoldGrove controller(2, 3);
    EXPECT_EQ(drive(controller, 6, 0), "XssX.."); // rotation 1
    EXPECT_EQ(drive(controller, 6, 0), "sXssX."); // rotation 2
    EXPECT_EQ(drive(controller, 7, 0), "ssXssX."); // rotation 3
}

TEST(FullAg, SameSampleCountAsSimplified)
{
    SimplifiedArnoldGrove simplified(8, 5);
    FullArnoldGrove full(8, 5);
    const std::string a = drive(simplified, 64, 0);
    const std::string b = drive(full, 64, 0);
    EXPECT_EQ(std::count(a.begin(), a.end(), 'X'), 8);
    EXPECT_EQ(std::count(b.begin(), b.end(), 'X'), 8);
    // ...but full AG runs the handler more often (more strides).
    EXPECT_GT(std::count(b.begin(), b.end(), 's'),
              std::count(a.begin(), a.end(), 's'));
}

TEST(Controllers, SamplesPerTickIsExactlyConfigured)
{
    for (const std::uint32_t samples : {1u, 16u, 64u}) {
        SimplifiedArnoldGrove controller(samples, 17);
        std::size_t taken = 0;
        // One tick, then plenty of opportunities.
        for (std::size_t i = 0; i < 200; ++i) {
            if (controller.onOpportunity(i == 0) ==
                SampleAction::Sample) {
                ++taken;
            }
        }
        EXPECT_EQ(taken, samples);
    }
}

} // namespace
} // namespace pep::core
