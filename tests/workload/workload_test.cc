/**
 * @file
 * Workload-generation tests: the MethodBuilder/ProgramBuilder API,
 * determinism of generation, spec knobs (switches, loops, drift), the
 * standard suite's integrity, and end-to-end runnability.
 */

#include <gtest/gtest.h>

#include <set>

#include "bytecode/cfg_builder.hh"
#include "bytecode/verifier.hh"
#include "support/panic.hh"
#include "vm/machine.hh"
#include "workload/program_builder.hh"
#include "workload/suite.hh"
#include "workload/synthetic.hh"

namespace pep::workload {
namespace {

TEST(MethodBuilder, EmitsAndPatchesLabels)
{
    MethodBuilder b("m", 0, false);
    Label target = b.newLabel();
    b.iconst(0);
    b.branch(bytecode::Opcode::Ifeq, target);
    b.iinc(0, 1);
    b.bind(target);
    b.ret();
    const bytecode::Method method = b.build();
    ASSERT_EQ(method.code.size(), 4u);
    EXPECT_EQ(method.code[1].a, 3);
}

TEST(MethodBuilder, TableswitchPatchesAllFields)
{
    MethodBuilder b("m", 0, false);
    Label c0 = b.newLabel();
    Label c1 = b.newLabel();
    Label dflt = b.newLabel();
    b.iconst(0);
    b.tableswitch(5, dflt, {c0, c1});
    b.bind(c0);
    b.bind(c1);
    b.bind(dflt);
    b.ret();
    const bytecode::Method method = b.build();
    EXPECT_EQ(method.code[1].a, 5);
    EXPECT_EQ(method.code[1].b, 2);
    EXPECT_EQ(method.code[1].table, (std::vector<std::int32_t>{2, 2}));
}

TEST(MethodBuilder, UnboundLabelPanics)
{
    MethodBuilder b("m", 0, false);
    Label ghost = b.newLabel();
    b.jump(ghost);
    EXPECT_THROW(b.build(), support::PanicError);
}

TEST(MethodBuilder, LocalsAfterArgs)
{
    MethodBuilder b("m", 2, true);
    EXPECT_EQ(b.argSlot(0), 0u);
    EXPECT_EQ(b.argSlot(1), 1u);
    EXPECT_EQ(b.newLocal(), 2u);
    EXPECT_EQ(b.newLocal(), 3u);
    b.iconst(1);
    b.iret();
    EXPECT_EQ(b.build().numLocals, 4u);
}

TEST(ProgramBuilder, DeclareDefineBuild)
{
    ProgramBuilder pb;
    const bytecode::MethodId callee = pb.declareMethod("f", 0, true);
    const bytecode::MethodId main_id = pb.declareMethod("main", 0,
                                                        false);
    {
        MethodBuilder b("f", 0, true);
        b.iconst(42);
        b.iret();
        pb.define(callee, b);
    }
    {
        MethodBuilder b("main", 0, false);
        b.invoke(callee);
        b.emit(bytecode::Opcode::Pop);
        b.ret();
        pb.define(main_id, b);
    }
    pb.setMain(main_id);
    pb.setGlobalSize(1);
    const bytecode::Program program = pb.build();
    EXPECT_EQ(program.methods.size(), 2u);
    EXPECT_EQ(program.mainMethod, main_id);
}

TEST(ProgramBuilder, MissingDefinitionPanics)
{
    ProgramBuilder pb;
    pb.declareMethod("ghost", 0, false);
    EXPECT_THROW(pb.build(), support::PanicError);
}

TEST(ProgramBuilder, SignatureMismatchPanics)
{
    ProgramBuilder pb;
    const bytecode::MethodId id = pb.declareMethod("f", 1, false);
    MethodBuilder wrong("f", 2, false);
    wrong.ret();
    EXPECT_THROW(pb.define(id, wrong), support::PanicError);
}

TEST(Synthetic, GenerationIsDeterministic)
{
    const WorkloadSpec spec = standardSuite()[3];
    const bytecode::Program a = generateWorkload(spec);
    const bytecode::Program b = generateWorkload(spec);
    ASSERT_EQ(a.methods.size(), b.methods.size());
    for (std::size_t m = 0; m < a.methods.size(); ++m) {
        ASSERT_EQ(a.methods[m].code.size(), b.methods[m].code.size());
        for (std::size_t pc = 0; pc < a.methods[m].code.size(); ++pc) {
            EXPECT_EQ(a.methods[m].code[pc].op,
                      b.methods[m].code[pc].op);
            EXPECT_EQ(a.methods[m].code[pc].a,
                      b.methods[m].code[pc].a);
        }
    }
    EXPECT_EQ(a.initialGlobals, b.initialGlobals);
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    WorkloadSpec a = standardSuite()[0];
    WorkloadSpec b = a;
    b.seed = a.seed + 1;
    const bytecode::Program pa = generateWorkload(a);
    const bytecode::Program pb = generateWorkload(b);
    bool differs = pa.methods.size() != pb.methods.size();
    for (std::size_t m = 0;
         !differs && m < pa.methods.size(); ++m) {
        differs = pa.methods[m].code.size() !=
                  pb.methods[m].code.size();
    }
    // Same structure sizes are possible, so compare some content too.
    if (!differs) {
        for (std::size_t m = 0; m < pa.methods.size() && !differs;
             ++m) {
            for (std::size_t pc = 0;
                 pc < pa.methods[m].code.size() && !differs; ++pc) {
                differs = pa.methods[m].code[pc].a !=
                          pb.methods[m].code[pc].a;
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Synthetic, ExpectedMethodRoster)
{
    WorkloadSpec spec;
    spec.hotMethods = 3;
    spec.leafMethods = 2;
    spec.coldMethods = 4;
    const bytecode::Program program = generateWorkload(spec);
    bytecode::MethodId id = 0;
    EXPECT_TRUE(program.findMethod("main", id));
    EXPECT_EQ(program.mainMethod, id);
    EXPECT_TRUE(program.findMethod("unit", id));
    EXPECT_TRUE(program.findMethod("hot_2", id));
    EXPECT_TRUE(program.findMethod("leaf_1", id));
    EXPECT_TRUE(program.findMethod("cold_3", id));
    EXPECT_FALSE(program.findMethod("hot_3", id));
    // 1 main + 1 unit + 3 hot + 2 leaf + 4 cold
    EXPECT_EQ(program.methods.size(), 11u);
}

TEST(Synthetic, SwitchKnobControlsTableswitch)
{
    WorkloadSpec with;
    with.switchProb = 0.9;
    with.switchCases = 4;
    with.seed = 5;
    WorkloadSpec without = with;
    without.switchCases = 0;
    without.switchProb = 0.0;

    auto count_switches = [](const bytecode::Program &program) {
        std::size_t n = 0;
        for (const auto &m : program.methods) {
            for (const auto &instr : m.code) {
                if (instr.op == bytecode::Opcode::Tableswitch)
                    ++n;
            }
        }
        return n;
    };
    EXPECT_GT(count_switches(generateWorkload(with)), 0u);
    EXPECT_EQ(count_switches(generateWorkload(without)), 0u);
}

TEST(Synthetic, DriftSlotsMaterializeInGlobals)
{
    WorkloadSpec spec;
    spec.driftFraction = 1.0; // every diamond drifts
    spec.seed = 8;
    const bytecode::Program program = generateWorkload(spec);
    EXPECT_GT(program.globalSize, 1u);
    // Initial thresholds are plausible bias thresholds.
    for (std::size_t i = 1; i < program.initialGlobals.size(); ++i) {
        EXPECT_GT(program.initialGlobals[i], 0);
        EXPECT_LT(program.initialGlobals[i], 65536);
    }

    WorkloadSpec no_drift;
    no_drift.driftFraction = 0.0;
    no_drift.seed = 8;
    EXPECT_EQ(generateWorkload(no_drift).globalSize, 1u);
}

TEST(Synthetic, HotMethodsHaveLoops)
{
    const bytecode::Program program =
        generateWorkload(standardSuite()[0]);
    for (const auto &method : program.methods) {
        if (method.name.rfind("hot_", 0) != 0)
            continue;
        const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
        EXPECT_GE(cfg.numLoopHeaders(), 1u) << method.name;
        EXPECT_TRUE(cfg.reducible) << method.name;
    }
}

TEST(Suite, FifteenDistinctBenchmarks)
{
    const auto &suite = standardSuite();
    EXPECT_EQ(suite.size(), 15u);
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const WorkloadSpec &spec : suite) {
        names.insert(spec.name);
        seeds.insert(spec.seed);
    }
    EXPECT_EQ(names.size(), 15u);
    EXPECT_EQ(seeds.size(), 15u);
    EXPECT_TRUE(names.count("compress"));
    EXPECT_TRUE(names.count("pseudojbb"));
    EXPECT_TRUE(names.count("xalan"));
    EXPECT_FALSE(names.count("hsqldb")); // omitted, as in the paper
}

TEST(Suite, EveryBenchmarkVerifiesAndRuns)
{
    for (const WorkloadSpec &spec : scaledSuite(0.05)) {
        const bytecode::Program program = generateWorkload(spec);
        EXPECT_GT(program.totalCodeSize(), 200u) << spec.name;
        vm::SimParams params;
        params.tickCycles = 100'000;
        vm::Machine machine(program, params);
        const std::uint64_t cycles = machine.runIteration();
        EXPECT_GT(cycles, 100'000u) << spec.name;
    }
}

TEST(Suite, ScaledSuiteShortensRuns)
{
    const auto full = standardSuite();
    const auto scaled = scaledSuite(0.1);
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_LT(scaled[i].outerIterations,
                  full[i].outerIterations);
        EXPECT_GE(scaled[i].outerIterations, 20u);
    }
    EXPECT_THROW(scaledSuite(0.0), support::PanicError);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(suiteSpec("javac").name, "javac");
    EXPECT_THROW(suiteSpec("nonesuch"), support::FatalError);
}

} // namespace
} // namespace pep::workload
