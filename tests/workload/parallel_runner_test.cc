/**
 * @file
 * ParallelRunner tests: every index runs exactly once, results land in
 * their own slots regardless of scheduling, exceptions propagate
 * deterministically (first in index order), and the worker count
 * honors the PEP_BENCH_THREADS override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/parallel_runner.hh"

namespace pep::workload {
namespace {

TEST(ParallelRunner, RunsEveryIndexExactlyOnce)
{
    for (const unsigned workers : {1u, 2u, 8u}) {
        const ParallelRunner runner(workers);
        constexpr std::size_t kCount = 100;
        std::vector<std::atomic<int>> hits(kCount);
        runner.run(kCount, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < kCount; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelRunner, SlotResultsAreOrderIndependent)
{
    // The byte-identical-output contract: jobs write into per-index
    // slots, so composing the slots afterwards is independent of the
    // order the scheduler ran them in.
    const ParallelRunner runner(4);
    constexpr std::size_t kCount = 64;
    std::vector<std::size_t> slots(kCount, 0);
    runner.run(kCount, [&](std::size_t i) { slots[i] = i * i; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(slots[i], i * i);
}

TEST(ParallelRunner, ZeroCountIsANoop)
{
    const ParallelRunner runner(4);
    bool called = false;
    runner.run(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelRunner, SingleWorkerRunsInline)
{
    // With one worker, jobs run on the calling thread in index order
    // (observable: strictly increasing sequence, no interleaving).
    const ParallelRunner runner(1);
    EXPECT_EQ(runner.workers(), 1u);
    std::vector<std::size_t> order;
    runner.run(10, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), std::size_t{0});
    EXPECT_EQ(order, expected);
}

TEST(ParallelRunner, RethrowsFirstExceptionInIndexOrder)
{
    // Two failing jobs: which one a worker reaches first depends on
    // scheduling, but the rethrown exception must always be the one
    // with the smallest index — deterministic error reporting.
    for (const unsigned workers : {1u, 4u}) {
        const ParallelRunner runner(workers);
        try {
            runner.run(32, [&](std::size_t i) {
                if (i == 7 || i == 23)
                    throw std::runtime_error("job " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &err) {
            EXPECT_STREQ(err.what(), "job 7");
        }
    }
}

TEST(ParallelRunner, AllJobsCompleteDespiteEarlyFailure)
{
    // A throwing job must not abort the rest of the fan-out: the
    // remaining cells still run (a suite keeps its results even when
    // one benchmark dies).
    for (const unsigned workers : {1u, 4u}) {
        const ParallelRunner runner(workers);
        std::vector<std::atomic<int>> hits(16);
        EXPECT_THROW(
            runner.run(16,
                       [&](std::size_t i) {
                           ++hits[i];
                           if (i == 0)
                               throw std::runtime_error("boom");
                       }),
            std::runtime_error);
        for (std::size_t i = 0; i < 16; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelRunner, ParksAllButFirstWhenManySlotsThrow)
{
    // Every odd index throws — half the fan-out fails. The runner must
    // park all of those exceptions, still run every job exactly once,
    // and rethrow only the lowest-index one, independent of worker
    // count and scheduling.
    for (const unsigned workers : {1u, 2u, 8u}) {
        const ParallelRunner runner(workers);
        constexpr std::size_t kCount = 64;
        std::vector<std::atomic<int>> hits(kCount);
        try {
            runner.run(kCount, [&](std::size_t i) {
                ++hits[i];
                if (i % 2 == 1)
                    throw std::runtime_error("job " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &err) {
            EXPECT_STREQ(err.what(), "job 1");
        }
        for (std::size_t i = 0; i < kCount; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelRunner, EnvSingleThreadDegeneratesToSerialByteIdentically)
{
    // PEP_BENCH_THREADS=1 must select the inline serial path: jobs run
    // on the calling thread in index order and the composed result is
    // byte-identical to a plain loop.
    ::setenv("PEP_BENCH_THREADS", "1", /*overwrite=*/1);
    const ParallelRunner runner(0);
    EXPECT_EQ(runner.workers(), 1u);

    constexpr std::size_t kCount = 128;
    const auto job = [](std::size_t i) {
        // A stateful per-slot computation whose result would differ if
        // slots were computed in another order with shared state.
        std::uint64_t x = 0x9e3779b97f4a7c15ull * (i + 1);
        x ^= x >> 29;
        return x * (i + 3);
    };

    std::vector<std::uint64_t> serial(kCount, 0);
    for (std::size_t i = 0; i < kCount; ++i)
        serial[i] = job(i);

    std::vector<std::uint64_t> slots(kCount, 0);
    std::vector<std::size_t> order;
    runner.run(kCount, [&](std::size_t i) {
        order.push_back(i); // safe: serial path, no data race
        slots[i] = job(i);
    });

    std::vector<std::size_t> expected_order(kCount);
    std::iota(expected_order.begin(), expected_order.end(),
              std::size_t{0});
    EXPECT_EQ(order, expected_order);
    ASSERT_EQ(slots.size(), serial.size());
    EXPECT_EQ(std::memcmp(slots.data(), serial.data(),
                          slots.size() * sizeof(slots[0])),
              0);

    ::unsetenv("PEP_BENCH_THREADS");
}

TEST(ParallelRunner, WorkerCountDefaultsAndClamps)
{
    EXPECT_GE(ParallelRunner::defaultWorkers(), 1u);
    // Explicit counts are taken as-is; zero requests the default.
    EXPECT_EQ(ParallelRunner(3).workers(), 3u);
    EXPECT_EQ(ParallelRunner(0).workers(),
              ParallelRunner::defaultWorkers());
}

TEST(ParallelRunner, EnvOverrideControlsDefaultWorkers)
{
    ::setenv("PEP_BENCH_THREADS", "5", /*overwrite=*/1);
    EXPECT_EQ(ParallelRunner::defaultWorkers(), 5u);
    EXPECT_EQ(ParallelRunner(0).workers(), 5u);

    // Garbage or non-positive values fall back to the hardware count.
    ::setenv("PEP_BENCH_THREADS", "0", 1);
    EXPECT_GE(ParallelRunner::defaultWorkers(), 1u);
    ::setenv("PEP_BENCH_THREADS", "banana", 1);
    EXPECT_GE(ParallelRunner::defaultWorkers(), 1u);

    ::unsetenv("PEP_BENCH_THREADS");
}

} // namespace
} // namespace pep::workload
