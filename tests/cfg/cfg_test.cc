/**
 * @file
 * Unit tests for the CFG library: graph structure, DFS/retreating
 * edges, loop detection, dominators, reducibility, topological order,
 * and dot output — including irreducible and parallel-edge cases.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/analysis.hh"
#include "cfg/dot.hh"
#include "cfg/graph.hh"
#include "support/panic.hh"

namespace pep::cfg {
namespace {

/** entry -> A -> B -> exit with a back edge B -> A. */
Graph
simpleLoopGraph(BlockId &a_out, BlockId &b_out)
{
    Graph g;
    const BlockId a = g.addBlock();
    const BlockId b = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, b);
    g.addEdge(b, a); // back edge
    g.addEdge(b, g.exit());
    a_out = a;
    b_out = b;
    return g;
}

TEST(Graph, EntryExitCreatedByConstructor)
{
    Graph g;
    EXPECT_EQ(g.numBlocks(), 2u);
    EXPECT_EQ(g.entry(), 0u);
    EXPECT_EQ(g.exit(), 1u);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(Graph, EdgesAndPreds)
{
    Graph g;
    const BlockId a = g.addBlock();
    const EdgeRef e1 = g.addEdge(g.entry(), a);
    const EdgeRef e2 = g.addEdge(a, g.exit());
    EXPECT_EQ(g.edgeDst(e1), a);
    EXPECT_EQ(g.edgeDst(e2), g.exit());
    EXPECT_EQ(g.preds(a).size(), 1u);
    EXPECT_EQ(g.preds(g.exit()).size(), 1u);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(Graph, ParallelEdgesAreDistinct)
{
    Graph g;
    const BlockId a = g.addBlock();
    const EdgeRef e1 = g.addEdge(g.entry(), a);
    const EdgeRef e2 = g.addEdge(g.entry(), a);
    EXPECT_FALSE(e1 == e2);
    EXPECT_EQ(g.succs(g.entry()).size(), 2u);
    EXPECT_EQ(g.preds(a).size(), 2u);
}

TEST(Graph, AllEdgesEnumeratesInOrder)
{
    BlockId a = 0;
    BlockId b = 0;
    const Graph g = simpleLoopGraph(a, b);
    const auto edges = g.allEdges();
    EXPECT_EQ(edges.size(), g.numEdges());
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(Graph, ValidateCatchesEntryPreds)
{
    Graph g;
    const BlockId a = g.addBlock();
    g.addEdge(a, g.entry());
    EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, ValidateCatchesExitSuccs)
{
    Graph g;
    const BlockId a = g.addBlock();
    g.addEdge(g.exit(), a);
    EXPECT_FALSE(g.validate().empty());
}

TEST(Dfs, ReversePostorderStartsAtEntry)
{
    BlockId a = 0;
    BlockId b = 0;
    const Graph g = simpleLoopGraph(a, b);
    const DfsResult dfs = depthFirstSearch(g);
    ASSERT_FALSE(dfs.reversePostorder.empty());
    EXPECT_EQ(dfs.reversePostorder.front(), g.entry());
    EXPECT_TRUE(dfs.reachable[a]);
    EXPECT_TRUE(dfs.reachable[b]);
}

TEST(Dfs, DetectsRetreatingEdge)
{
    BlockId a = 0;
    BlockId b = 0;
    const Graph g = simpleLoopGraph(a, b);
    const DfsResult dfs = depthFirstSearch(g);
    ASSERT_EQ(dfs.retreatingEdges.size(), 1u);
    EXPECT_EQ(dfs.retreatingEdges[0].src, b);
    EXPECT_EQ(g.edgeDst(dfs.retreatingEdges[0]), a);
}

TEST(Dfs, UnreachableBlocksExcluded)
{
    Graph g;
    const BlockId a = g.addBlock();
    const BlockId orphan = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, g.exit());
    (void)orphan;
    const DfsResult dfs = depthFirstSearch(g);
    EXPECT_FALSE(dfs.reachable[orphan]);
    EXPECT_EQ(dfs.rpoIndex[orphan], -1);
    EXPECT_EQ(dfs.reversePostorder.size(), 3u);
}

TEST(Loops, SelfLoopIsHeader)
{
    Graph g;
    const BlockId a = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, a);
    g.addEdge(a, g.exit());
    const DfsResult dfs = depthFirstSearch(g);
    const LoopInfo loops = findLoops(g, dfs);
    EXPECT_TRUE(loops.loopHeader[a]);
    EXPECT_EQ(loops.numHeaders, 1u);
}

TEST(Loops, NestedLoopsFindBothHeaders)
{
    Graph g;
    const BlockId outer = g.addBlock();
    const BlockId inner = g.addBlock();
    const BlockId inner_body = g.addBlock();
    const BlockId outer_tail = g.addBlock();
    g.addEdge(g.entry(), outer);
    g.addEdge(outer, inner);
    g.addEdge(inner, inner_body);
    g.addEdge(inner_body, inner); // inner back edge
    g.addEdge(inner, outer_tail);
    g.addEdge(outer_tail, outer); // outer back edge
    g.addEdge(outer_tail, g.exit());

    const DfsResult dfs = depthFirstSearch(g);
    const LoopInfo loops = findLoops(g, dfs);
    EXPECT_TRUE(loops.loopHeader[outer]);
    EXPECT_TRUE(loops.loopHeader[inner]);
    EXPECT_EQ(loops.numHeaders, 2u);
    EXPECT_EQ(loops.backEdges.size(), 2u);
}

TEST(Dominators, ChainAndDiamond)
{
    Graph g;
    const BlockId a = g.addBlock();
    const BlockId b = g.addBlock();
    const BlockId c = g.addBlock();
    const BlockId d = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);
    g.addEdge(d, g.exit());

    const DfsResult dfs = depthFirstSearch(g);
    const auto idom = immediateDominators(g, dfs);
    EXPECT_EQ(idom[a], g.entry());
    EXPECT_EQ(idom[b], a);
    EXPECT_EQ(idom[c], a);
    EXPECT_EQ(idom[d], a); // join dominated by the fork, not a side
    EXPECT_TRUE(dominates(idom, a, d));
    EXPECT_FALSE(dominates(idom, b, d));
    EXPECT_TRUE(dominates(idom, g.entry(), g.exit()));
}

TEST(Reducibility, NaturalLoopIsReducible)
{
    BlockId a = 0;
    BlockId b = 0;
    const Graph g = simpleLoopGraph(a, b);
    EXPECT_TRUE(isReducible(g));
}

/** Classic irreducible shape: two entries into a cycle. */
TEST(Reducibility, MultiEntryCycleIsIrreducible)
{
    Graph g;
    const BlockId a = g.addBlock();
    const BlockId b = g.addBlock();
    const BlockId c = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, c);
    g.addEdge(c, b); // cycle b <-> c entered at both b and c
    g.addEdge(b, g.exit());
    EXPECT_FALSE(isReducible(g));
}

TEST(Topo, OrderRespectsEdges)
{
    Graph g;
    const BlockId a = g.addBlock();
    const BlockId b = g.addBlock();
    const BlockId c = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, c);
    g.addEdge(c, g.exit());

    const auto topo = topologicalOrder(g);
    auto pos = [&](BlockId x) {
        return std::find(topo.begin(), topo.end(), x) - topo.begin();
    };
    EXPECT_LT(pos(g.entry()), pos(a));
    EXPECT_LT(pos(a), pos(b));
    EXPECT_LT(pos(b), pos(c));
    EXPECT_LT(pos(c), pos(g.exit()));
}

TEST(Topo, PanicsOnCycle)
{
    BlockId a = 0;
    BlockId b = 0;
    const Graph g = simpleLoopGraph(a, b);
    EXPECT_THROW(topologicalOrder(g), support::PanicError);
}

TEST(Dot, ContainsNodesAndEdges)
{
    BlockId a = 0;
    BlockId b = 0;
    const Graph g = simpleLoopGraph(a, b);
    DotOptions options;
    options.name = "testgraph";
    options.edgeLabel = [](EdgeRef e) {
        return "e" + std::to_string(e.index);
    };
    const std::string dot = toDot(g, options);
    EXPECT_NE(dot.find("digraph testgraph"), std::string::npos);
    EXPECT_NE(dot.find("ENTRY"), std::string::npos);
    EXPECT_NE(dot.find("EXIT"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("e0"), std::string::npos);
}

TEST(Dot, EscapesLabels)
{
    Graph g;
    DotOptions options;
    options.blockLabel = [](BlockId) { return "a\"b\nc"; };
    const std::string dot = toDot(g, options);
    EXPECT_NE(dot.find("a\\\"b\\nc"), std::string::npos);
}

} // namespace
} // namespace pep::cfg
