/**
 * @file
 * Tests of the concurrent profiling runtime: the request-stream
 * workload, the deterministic cooperative scheduler, and the sharded
 * aggregation layer. Suite names start with "Runtime" so `ctest -R
 * Runtime` selects exactly these (the TSan CI job does).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "support/rng.hh"
#include "runtime/coop_scheduler.hh"
#include "runtime/request_stream.hh"
#include "runtime/sharded_profile.hh"
#include "runtime/throughput.hh"
#include "vm/interpreter.hh"
#include "vm/machine.hh"

namespace pep {
namespace {

runtime::RequestStreamSpec
smallSpec(std::uint64_t seed = 7, std::uint32_t requests = 48)
{
    runtime::RequestStreamSpec spec;
    spec.seed = seed;
    spec.requests = requests;
    spec.handlers = 3;
    spec.leaves = 2;
    return spec;
}

vm::SimParams
fastTickParams()
{
    vm::SimParams params;
    params.tickCycles = 5'000;
    return params;
}

TEST(RuntimeRequestStreamTest, GeneratesProgramAndStream)
{
    const runtime::RequestStreamSpec spec = smallSpec();
    runtime::RequestStream stream(spec);

    // main + leaves + handlers (build() already ran the verifier).
    EXPECT_EQ(stream.program().methods.size(),
              1 + spec.leaves + spec.handlers);
    EXPECT_EQ(stream.requests().size(), spec.requests);
    for (const runtime::Request &request : stream.requests()) {
        EXPECT_LT(request.handler, spec.handlers);
        EXPECT_GE(request.arg, 0);
    }
}

TEST(RuntimeRequestStreamTest, ShardsPartitionTheStream)
{
    runtime::RequestStream stream(smallSpec(3, 41));
    const std::uint32_t shards = 4;
    std::size_t total = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
        const std::vector<runtime::Request> shard =
            stream.shard(s, shards);
        for (std::size_t i = 0; i < shard.size(); ++i) {
            const runtime::Request &want =
                stream.requests()[s + i * shards];
            EXPECT_EQ(shard[i].handler, want.handler);
            EXPECT_EQ(shard[i].arg, want.arg);
        }
        total += shard.size();
    }
    EXPECT_EQ(total, stream.requests().size());
}

TEST(RuntimeRequestStreamTest, ArgumentDistributionShiftsAtPhaseSplit)
{
    runtime::RequestStreamSpec spec = smallSpec(5, 100);
    spec.phaseSplit = 0.5;
    runtime::RequestStream stream(spec);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(stream.requests()[i].arg & 0x3000, 0) << "i=" << i;
    for (std::size_t i = 50; i < 100; ++i)
        EXPECT_EQ(stream.requests()[i].arg & 0x3000, 0x3000)
            << "i=" << i;
}

TEST(RuntimeRequestStreamTest, MainRunsAsPlainIterationWorkload)
{
    runtime::RequestStream stream(smallSpec());
    vm::Machine machine(stream.program(), fastTickParams());
    machine.runIteration();
    EXPECT_GT(machine.stats().instructionsExecuted, 0u);
}

TEST(RuntimeCoopSchedulerTest, CompletesEveryRequestAndSwitches)
{
    runtime::RequestStream stream(smallSpec(9, 64));
    vm::Machine machine(stream.program(), fastTickParams());
    runtime::CoopOptions options;
    options.threads = 4;
    options.seed = 1;
    runtime::CoopScheduler scheduler(machine, options);
    scheduler.assignRoundRobin(stream);
    scheduler.run();

    EXPECT_EQ(scheduler.stats().requestsCompleted, 64u);
    // A 5k-cycle tick over tens of requests must preempt somewhere.
    EXPECT_GT(scheduler.stats().contextSwitches, 0u);
    EXPECT_EQ(machine.scheduler(), nullptr) << "scheduler detached";
}

TEST(RuntimeCoopSchedulerTest, SameSeedsReproduceGroundTruth)
{
    runtime::RequestStream stream(smallSpec(13, 56));
    profile::EdgeProfileSet first;
    for (int run = 0; run < 2; ++run) {
        vm::Machine machine(stream.program(), fastTickParams());
        runtime::CoopScheduler scheduler(machine, {3, 77});
        scheduler.assignRoundRobin(stream);
        scheduler.run();
        if (run == 0) {
            first = machine.truthEdges();
        } else {
            for (std::size_t m = 0; m < first.perMethod.size(); ++m) {
                EXPECT_EQ(machine.truthEdges().perMethod[m].counts(),
                          first.perMethod[m].counts())
                    << "method " << m;
            }
        }
    }
}

TEST(RuntimeCoopSchedulerTest, InterleavingDoesNotChangeGroundTruth)
{
    // Handlers are thread-pure: a different scheduler seed changes the
    // interleaving (and hence sampling), but never what each thread
    // executes — merged ground truth is schedule-invariant.
    runtime::RequestStream stream(smallSpec(21, 60));
    profile::EdgeProfileSet first;
    std::uint64_t first_switches = 0;
    const std::uint64_t seeds[2] = {1, 999};
    for (int run = 0; run < 2; ++run) {
        vm::Machine machine(stream.program(), fastTickParams());
        runtime::CoopScheduler scheduler(machine, {4, seeds[run]});
        scheduler.assignRoundRobin(stream);
        scheduler.run();
        if (run == 0) {
            first = machine.truthEdges();
            first_switches = scheduler.stats().contextSwitches;
        } else {
            EXPECT_GT(scheduler.stats().contextSwitches, 0u);
            for (std::size_t m = 0; m < first.perMethod.size(); ++m) {
                EXPECT_EQ(machine.truthEdges().perMethod[m].counts(),
                          first.perMethod[m].counts())
                    << "method " << m;
            }
        }
    }
    EXPECT_GT(first_switches, 0u);
}

TEST(RuntimeCoopSchedulerTest, SingleThreadMatchesDirectInterpreter)
{
    runtime::RequestStream stream(smallSpec(17, 40));

    vm::Machine coop_machine(stream.program(), fastTickParams());
    runtime::CoopScheduler scheduler(coop_machine, {1, 5});
    scheduler.assignRoundRobin(stream);
    scheduler.run();

    vm::Machine direct_machine(stream.program(), fastTickParams());
    vm::Interpreter interp(direct_machine, 0);
    for (const runtime::Request &request : stream.requests()) {
        interp.start(stream.handlerMethod(request.handler),
                     {request.arg});
        while (!interp.resume()) {
        }
    }

    for (std::size_t m = 0;
         m < direct_machine.truthEdges().perMethod.size(); ++m) {
        EXPECT_EQ(coop_machine.truthEdges().perMethod[m].counts(),
                  direct_machine.truthEdges().perMethod[m].counts())
            << "method " << m;
    }
}

TEST(RuntimeCoopSchedulerTest, ThreadedEngineMatchesSwitchUnderCoop)
{
    // The pre-decoded threaded engine (docs/ENGINE.md) must park and
    // resume virtual threads exactly like the switch interpreter:
    // identical ground truth, simulated clock, and scheduler activity.
    runtime::RequestStream stream(smallSpec(19, 52));
    profile::EdgeProfileSet first;
    std::uint64_t first_now = 0;
    std::uint64_t first_switches = 0;
    const vm::EngineKind kinds[2] = {vm::EngineKind::Switch,
                                     vm::EngineKind::Threaded};
    for (int run = 0; run < 2; ++run) {
        vm::SimParams params = fastTickParams();
        params.engine = kinds[run];
        vm::Machine machine(stream.program(), params);
        runtime::CoopScheduler scheduler(machine, {4, 23});
        scheduler.assignRoundRobin(stream);
        scheduler.run();
        EXPECT_EQ(scheduler.stats().requestsCompleted, 52u);
        if (run == 0) {
            first = machine.truthEdges();
            first_now = machine.now();
            first_switches = scheduler.stats().contextSwitches;
        } else {
            EXPECT_EQ(machine.now(), first_now);
            EXPECT_EQ(scheduler.stats().contextSwitches,
                      first_switches);
            for (std::size_t m = 0; m < first.perMethod.size(); ++m) {
                EXPECT_EQ(machine.truthEdges().perMethod[m].counts(),
                          first.perMethod[m].counts())
                    << "method " << m;
            }
        }
    }
    EXPECT_GT(first_switches, 0u);
}

class RuntimeShardedProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stream_ = std::make_unique<runtime::RequestStream>(smallSpec());
        for (const bytecode::Method &method :
             stream_->program().methods)
            cfgs_.push_back(bytecode::buildCfg(method));
        for (const bytecode::MethodCfg &method_cfg : cfgs_)
            cfgPtrs_.push_back(&method_cfg);
    }

    std::unique_ptr<runtime::RequestStream> stream_;
    std::vector<bytecode::MethodCfg> cfgs_;
    std::vector<const bytecode::MethodCfg *> cfgPtrs_;
};

TEST_F(RuntimeShardedProfileTest, FlushPublishesAndClears)
{
    runtime::ShardedAggregator sharded(cfgPtrs_, 2);
    const cfg::EdgeRef edge{0, 0};

    sharded.recordEdge(0, 1, edge, 3);
    sharded.recordPath(0, 1, 42, 2);
    sharded.recordEdge(1, 1, edge, 1);

    // Nothing global until the owning shard flushes.
    EXPECT_EQ(sharded.globalEdges().perMethod[1].edgeCount(edge), 0u);
    sharded.flush(0);
    EXPECT_EQ(sharded.globalEdges().perMethod[1].edgeCount(edge), 3u);
    EXPECT_EQ(sharded.globalPaths().at(runtime::PathKey{1, 42}), 2u);
    sharded.flush(1);
    EXPECT_EQ(sharded.globalEdges().perMethod[1].edgeCount(edge), 4u);
    EXPECT_EQ(sharded.flushes(), 2u);

    // Flushing an empty shard is a no-op (no lock-and-merge churn).
    sharded.flush(0);
    EXPECT_EQ(sharded.flushes(), 2u);
    EXPECT_EQ(sharded.globalEdges().perMethod[1].edgeCount(edge), 4u);
}

TEST_F(RuntimeShardedProfileTest, StrategiesAgreeOnIdenticalInput)
{
    runtime::ShardedAggregator sharded(cfgPtrs_, 3);
    runtime::MutexAggregator mutex_global(cfgPtrs_);

    support::Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const auto shard = static_cast<std::uint32_t>(rng.nextBounded(3));
        const auto method = static_cast<bytecode::MethodId>(
            rng.nextBounded(cfgs_.size()));
        if (cfgs_[method].graph.numBlocks() == 0)
            continue;
        const auto block = static_cast<cfg::BlockId>(
            rng.nextBounded(cfgs_[method].graph.numBlocks()));
        if (!cfgs_[method].graph.succs(block).empty()) {
            const cfg::EdgeRef edge{block, 0};
            sharded.recordEdge(shard, method, edge);
            mutex_global.recordEdge(shard, method, edge);
        }
        const std::uint64_t path_number = rng.nextBounded(32);
        sharded.recordPath(shard, method, path_number);
        mutex_global.recordPath(shard, method, path_number);
    }
    for (std::uint32_t s = 0; s < 3; ++s)
        sharded.flush(s);

    for (std::size_t m = 0; m < cfgs_.size(); ++m) {
        EXPECT_EQ(sharded.globalEdges().perMethod[m].counts(),
                  mutex_global.globalEdges().perMethod[m].counts())
            << "method " << m;
    }
    EXPECT_EQ(sharded.globalPaths(), mutex_global.globalPaths());
}

TEST(RuntimeThroughputTest, ShardedAndMutexProduceIdenticalProfiles)
{
    runtime::RequestStream stream(smallSpec(31, 120));
    runtime::ThroughputOptions options;
    options.workers = 4;
    options.epochRequests = 8;
    options.params = fastTickParams();

    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Sharded;
    const runtime::ThroughputResult sharded =
        runtime::runThroughput(stream, options);
    options.aggregation =
        runtime::ThroughputOptions::Aggregation::Mutex;
    const runtime::ThroughputResult mutex_global =
        runtime::runThroughput(stream, options);

    EXPECT_EQ(sharded.requestsCompleted, 120u);
    EXPECT_EQ(mutex_global.requestsCompleted, 120u);
    EXPECT_GT(sharded.pathRecords, 0u);
    EXPECT_EQ(sharded.pathRecords, mutex_global.pathRecords);
    EXPECT_EQ(sharded.edgeRecords, mutex_global.edgeRecords);
    for (std::size_t m = 0; m < sharded.edges.perMethod.size(); ++m) {
        EXPECT_EQ(sharded.edges.perMethod[m].counts(),
                  mutex_global.edges.perMethod[m].counts())
            << "method " << m;
    }
    EXPECT_EQ(sharded.paths, mutex_global.paths);
}

TEST(RuntimeThroughputTest, ThreadedEngineMatchesSwitchTotals)
{
    // Same partitioning, same seeds, different execution engine per
    // worker machine: merged profiles must agree count-for-count (and
    // TSan runs this under real OS threads with the threaded engine).
    runtime::RequestStream stream(smallSpec(41, 96));
    runtime::ThroughputOptions options;
    options.workers = 4;
    options.epochRequests = 8;
    options.params = fastTickParams();

    options.params.engine = vm::EngineKind::Switch;
    const runtime::ThroughputResult sw =
        runtime::runThroughput(stream, options);
    options.params.engine = vm::EngineKind::Threaded;
    const runtime::ThroughputResult th =
        runtime::runThroughput(stream, options);

    EXPECT_EQ(sw.requestsCompleted, 96u);
    EXPECT_EQ(th.requestsCompleted, 96u);
    EXPECT_EQ(sw.pathRecords, th.pathRecords);
    EXPECT_EQ(sw.edgeRecords, th.edgeRecords);
    EXPECT_EQ(sw.paths, th.paths);
    for (std::size_t m = 0; m < sw.edges.perMethod.size(); ++m) {
        EXPECT_EQ(sw.edges.perMethod[m].counts(),
                  th.edges.perMethod[m].counts())
            << "method " << m;
    }
}

TEST(RuntimeThroughputTest, RepeatRunsProduceIdenticalTotals)
{
    // Each worker's machine simulation is seeded, so for a fixed
    // worker count the merged totals are independent of OS scheduling:
    // racing the same run twice must agree count-for-count. (Changing
    // the worker count legitimately changes totals — it repartitions
    // the stream across machines and hence across Irnd streams.)
    runtime::RequestStream stream(smallSpec(37, 90));
    runtime::ThroughputOptions options;
    options.workers = 3;
    options.epochRequests = 16;
    options.params = fastTickParams();

    const runtime::ThroughputResult first =
        runtime::runThroughput(stream, options);
    const runtime::ThroughputResult second =
        runtime::runThroughput(stream, options);

    EXPECT_EQ(first.paths, second.paths);
    for (std::size_t m = 0; m < first.edges.perMethod.size(); ++m) {
        EXPECT_EQ(first.edges.perMethod[m].counts(),
                  second.edges.perMethod[m].counts())
            << "method " << m;
    }
}

} // namespace
} // namespace pep
