/**
 * @file
 * Tests of the production sample transport: the SPSC ring queue, the
 * windowed-decay profiles, and the RingAggregator built from them.
 * Suite names start with "Runtime" and the binary carries the
 * `runtime` ctest label, so the TSan CI sweep runs every concurrent
 * test here under the race detector.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "runtime/profile_window.hh"
#include "runtime/request_stream.hh"
#include "runtime/ring_transport.hh"
#include "runtime/sharded_profile.hh"
#include "runtime/spsc_ring.hh"
#include "support/panic.hh"
#include "support/rng.hh"

namespace pep {
namespace {

TEST(RuntimeSpscRingTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(runtime::SpscRing(1).capacity(), 2u);
    EXPECT_EQ(runtime::SpscRing(2).capacity(), 2u);
    EXPECT_EQ(runtime::SpscRing(3).capacity(), 4u);
    EXPECT_EQ(runtime::SpscRing(8).capacity(), 8u);
    EXPECT_EQ(runtime::SpscRing(1000).capacity(), 1024u);
}

TEST(RuntimeSpscRingTest, FifoOrderSurvivesWraparound)
{
    runtime::SpscRing ring(8);
    std::uint64_t next_push = 0;
    std::uint64_t next_pop = 0;
    // Uneven push/pop batches force the positions to wrap the 8-slot
    // array many times over; order must stay strictly FIFO throughout.
    for (int round = 0; round < 200; ++round) {
        const int pushes = 1 + round % 7;
        for (int i = 0; i < pushes; ++i) {
            if (ring.tryPush(
                    runtime::SampleRecord::forPath(0, next_push, 1)))
                ++next_push;
        }
        const int pops = 1 + (round * 3) % 5;
        runtime::SampleRecord record;
        for (int i = 0; i < pops && ring.tryPop(record); ++i) {
            EXPECT_EQ(record.pathNumber, next_pop);
            ++next_pop;
        }
    }
    runtime::SampleRecord record;
    while (ring.tryPop(record)) {
        EXPECT_EQ(record.pathNumber, next_pop);
        ++next_pop;
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_GT(next_push, ring.capacity() * 10)
        << "the loop was meant to wrap the ring many times";
}

TEST(RuntimeSpscRingTest, FullRingRejectsPushWithoutSideEffects)
{
    runtime::SpscRing ring(4);
    for (std::uint64_t i = 0; i < ring.capacity(); ++i)
        ASSERT_TRUE(ring.tryPush(runtime::SampleRecord::forPath(0, i, 1)));
    EXPECT_FALSE(ring.tryPush(runtime::SampleRecord::forPath(0, 99, 1)));
    EXPECT_EQ(ring.pushed(), ring.capacity());
    EXPECT_EQ(ring.size(), ring.capacity());

    runtime::SampleRecord record;
    ASSERT_TRUE(ring.tryPop(record));
    EXPECT_EQ(record.pathNumber, 0u);
    // One freed slot: exactly one more push fits, and the rejected
    // record from above never entered the queue.
    EXPECT_TRUE(ring.tryPush(runtime::SampleRecord::forPath(0, 4, 1)));
    EXPECT_FALSE(ring.tryPush(runtime::SampleRecord::forPath(0, 5, 1)));
    while (ring.tryPop(record)) {
    }
    EXPECT_EQ(record.pathNumber, 4u) << "last record out is the refill";
    EXPECT_EQ(ring.popped(), ring.pushed());
}

TEST(RuntimeSpscRingTest, ConcurrentConservationAndOrdering)
{
    // One real producer OS thread versus one consumer thread over a
    // deliberately tiny ring: every accepted record must come out
    // exactly once and in order, and the producer-side drop count must
    // account for every rejected push — drops == produced − consumed.
    runtime::SpscRing ring(64);
    constexpr std::uint64_t kAttempts = 200'000;
    std::atomic<bool> done{false};
    std::uint64_t dropped = 0;

    std::thread producer([&] {
        for (std::uint64_t seq = 0; seq < kAttempts; ++seq) {
            if (!ring.tryPush(
                    runtime::SampleRecord::forPath(0, seq, 1)))
                ++dropped;
        }
        done.store(true, std::memory_order_release);
    });

    std::uint64_t consumed = 0;
    std::uint64_t last_seq = 0;
    bool ordered = true;
    runtime::SampleRecord record;
    while (true) {
        if (ring.tryPop(record)) {
            // Sequence numbers may gap (those were dropped) but can
            // never reorder or duplicate.
            if (consumed > 0 && record.pathNumber <= last_seq)
                ordered = false;
            last_seq = record.pathNumber;
            ++consumed;
        } else if (done.load(std::memory_order_acquire) &&
                   ring.size() == 0) {
            break;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();

    EXPECT_TRUE(ordered) << "consumer saw out-of-order sequence";
    EXPECT_EQ(consumed + dropped, kAttempts);
    EXPECT_EQ(ring.popped(), consumed);
    EXPECT_EQ(ring.pushed(), consumed);
}

/** Shared CFG fixture: the request-stream program's method CFGs, plus
 *  one known-good conditional edge to record against. */
class RuntimeRingProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        runtime::RequestStreamSpec spec;
        spec.seed = 7;
        spec.requests = 4;
        stream_ = std::make_unique<runtime::RequestStream>(spec);
        for (const bytecode::Method &method :
             stream_->program().methods)
            cfgs_.push_back(bytecode::buildCfg(method));
        for (const bytecode::MethodCfg &method_cfg : cfgs_)
            cfgPtrs_.push_back(&method_cfg);
        for (std::size_t m = 0; m < cfgs_.size() && method_ == 0; ++m) {
            const cfg::Graph &graph = cfgs_[m].graph;
            for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
                if (graph.succs(b).size() >= 2) {
                    method_ = static_cast<bytecode::MethodId>(m);
                    edge_ = cfg::EdgeRef{b, 1};
                    break;
                }
            }
        }
        ASSERT_GE(cfgs_[method_].graph.succs(edge_.src).size(), 2u);
    }

    std::unique_ptr<runtime::RequestStream> stream_;
    std::vector<bytecode::MethodCfg> cfgs_;
    std::vector<const bytecode::MethodCfg *> cfgPtrs_;
    bytecode::MethodId method_ = 0;
    cfg::EdgeRef edge_{};
};

TEST_F(RuntimeRingProfileTest, WindowDecaysGeometrically)
{
    runtime::WindowedProfile window(cfgPtrs_, 0.5);
    window.addEdge(method_, edge_, 4);
    window.addPath(method_, 11, 8);
    window.advance();
    EXPECT_DOUBLE_EQ(
        window.edgeWeights()[method_][edge_.src][edge_.index], 4.0);
    EXPECT_DOUBLE_EQ(window.pathWeights().at({method_, 11}), 8.0);
    EXPECT_DOUBLE_EQ(window.mass(), 12.0);
    EXPECT_DOUBLE_EQ(window.stalenessEpochs(), 0.0)
        << "all mass is from the epoch that just closed";

    // window = decay * window + epoch: 0.5*4 + 2 = 4.
    window.addEdge(method_, edge_, 2);
    window.advance();
    EXPECT_DOUBLE_EQ(
        window.edgeWeights()[method_][edge_.src][edge_.index], 4.0);
    EXPECT_DOUBLE_EQ(window.pathWeights().at({method_, 11}), 4.0);
    EXPECT_EQ(window.advances(), 2u);

    // Aged mass 0.5*12 = 6 at age 1, fresh mass 2 at age 0.
    EXPECT_DOUBLE_EQ(window.stalenessEpochs(), 6.0 / 8.0);
}

TEST_F(RuntimeRingProfileTest, WindowStalenessConvergesOnSteadyInput)
{
    // A steady workload's mean age converges to decay/(1-decay):
    // the same epoch mass enters every epoch, older mass decays away.
    const double decay = 0.5;
    runtime::WindowedProfile window(cfgPtrs_, decay);
    for (int epoch = 0; epoch < 40; ++epoch) {
        window.addEdge(method_, edge_, 10);
        window.advance();
    }
    EXPECT_NEAR(window.stalenessEpochs(), decay / (1.0 - decay), 1e-9);
    EXPECT_NEAR(window.mass(), 10.0 / (1.0 - decay), 1e-6);
}

TEST_F(RuntimeRingProfileTest, WindowPrunesDeadPhasePaths)
{
    runtime::WindowedProfile window(cfgPtrs_, 0.5, /*prune_epsilon=*/1e-6);
    window.addPath(method_, 3, 1);
    window.advance();
    ASSERT_EQ(window.pathWeights().size(), 1u);

    // 0.5^k drops below 1e-6 after 20 epochs: the dead phase's path
    // must leave the table, not linger at ~0 forever.
    for (int epoch = 0; epoch < 25; ++epoch)
        window.advance();
    EXPECT_TRUE(window.pathWeights().empty());
    EXPECT_LT(window.mass(), 1e-6);
}

TEST_F(RuntimeRingProfileTest, WindowMergeIsMassWeighted)
{
    runtime::WindowedProfile a(cfgPtrs_, 0.5);
    a.addEdge(method_, edge_, 6);
    a.advance(); // mass 6, staleness 0
    a.advance(); // mass 3, staleness 1

    runtime::WindowedProfile b(cfgPtrs_, 0.5);
    b.addPath(method_, 5, 9);
    b.advance(); // mass 9, staleness 0

    runtime::WindowedProfile merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_DOUBLE_EQ(merged.mass(), 12.0);
    EXPECT_DOUBLE_EQ(merged.stalenessEpochs(), (3.0 * 1.0) / 12.0);
    EXPECT_DOUBLE_EQ(
        merged.edgeWeights()[method_][edge_.src][edge_.index], 3.0);
    EXPECT_DOUBLE_EQ(merged.pathWeights().at({method_, 5}), 9.0);
    EXPECT_EQ(merged.advances(), 2u) << "merge keeps the max advances";
}

TEST_F(RuntimeRingProfileTest, DropFreeRingMatchesMutexCountForCount)
{
    // The determinism contract extended to the transport: with an
    // ample ring nothing is dropped, and collection is commutative
    // addition, so the ring totals equal the mutex baseline exactly.
    runtime::RingOptions options;
    options.capacity = 1u << 16;
    runtime::RingAggregator ring(cfgPtrs_, 3, options);
    runtime::MutexAggregator mutex_global(cfgPtrs_);

    support::Rng rng(1234);
    for (int i = 0; i < 5000; ++i) {
        const auto shard =
            static_cast<std::uint32_t>(rng.nextBounded(3));
        const auto method = static_cast<bytecode::MethodId>(
            rng.nextBounded(cfgs_.size()));
        const cfg::Graph &graph = cfgs_[method].graph;
        if (graph.numBlocks() == 0)
            continue;
        const auto block =
            static_cast<cfg::BlockId>(rng.nextBounded(graph.numBlocks()));
        if (!graph.succs(block).empty()) {
            const cfg::EdgeRef edge{block, 0};
            ring.recordEdge(shard, method, edge);
            mutex_global.recordEdge(shard, method, edge);
        }
        const std::uint64_t path_number = rng.nextBounded(64);
        ring.recordPath(shard, method, path_number);
        mutex_global.recordPath(shard, method, path_number);
    }
    for (std::uint32_t s = 0; s < 3; ++s)
        ring.flush(s);
    ring.quiesce();

    const runtime::RingTransportStats stats = ring.stats();
    ASSERT_EQ(stats.dropped, 0u) << "64k slots cannot fill here";
    EXPECT_EQ(stats.produced, stats.consumed);
    EXPECT_EQ(stats.epochMarks, 3u);
    EXPECT_EQ(stats.droppedEpochMarks, 0u);

    for (std::size_t m = 0; m < cfgs_.size(); ++m) {
        EXPECT_EQ(ring.globalEdges().perMethod[m].counts(),
                  mutex_global.globalEdges().perMethod[m].counts())
            << "method " << m;
    }
    EXPECT_EQ(ring.globalPaths(), mutex_global.globalPaths());
}

TEST_F(RuntimeRingProfileTest, TinyRingDropsAreCountedNeverSilent)
{
    // A 2-slot ring under a tight producer loop must overflow; every
    // overflow is a counted drop and conservation still balances:
    // produced == consumed + dropped at quiescence.
    runtime::RingOptions options;
    options.capacity = 2;
    runtime::RingAggregator ring(cfgPtrs_, 1, options);
    EXPECT_EQ(ring.ringCapacity(), 2u);

    std::uint64_t produced = 0;
    constexpr std::uint64_t kMaxAttempts = 1u << 22;
    while (ring.stats().dropped == 0 && produced < kMaxAttempts) {
        for (int i = 0; i < 1024; ++i, ++produced)
            ring.recordPath(0, method_, produced % 16);
    }
    ring.quiesce();

    const runtime::RingTransportStats stats = ring.stats();
    EXPECT_GT(stats.dropped, 0u)
        << "collector outran the producer for " << produced
        << " pushes into 2 slots";
    EXPECT_EQ(stats.produced, produced);
    EXPECT_EQ(stats.produced, stats.consumed + stats.dropped);

    // Drops remove whole records; they never invent counts.
    std::uint64_t total = 0;
    for (const auto &[key, count] : ring.globalPaths())
        total += count;
    EXPECT_EQ(total, stats.consumed);
}

TEST_F(RuntimeRingProfileTest, WindowAdvancesWithEpochMarksInOrder)
{
    // Per-shard FIFO makes the windowed view deterministic: shard 0's
    // mark cannot overtake shard 0's records, so the decay fold sees
    // exactly the epochs the producer delimited.
    runtime::RingOptions options;
    options.capacity = 1u << 12;
    options.windowDecay = 0.5;
    runtime::RingAggregator ring(cfgPtrs_, 1, options);

    ring.recordEdge(0, method_, edge_, 4);
    ring.flush(0);
    ring.recordEdge(0, method_, edge_, 2);
    ring.flush(0);
    ring.quiesce();

    const runtime::WindowedProfile &window = ring.mergedWindow();
    EXPECT_EQ(window.advances(), 2u);
    EXPECT_DOUBLE_EQ(
        window.edgeWeights()[method_][edge_.src][edge_.index],
        0.5 * 4.0 + 2.0);
    EXPECT_EQ(ring.globalEdges().perMethod[method_].edgeCount(edge_),
              6u);
}

TEST_F(RuntimeRingProfileTest, OutOfRangeShardIsRejected)
{
    // An out-of-range worker index is a caller bug; it must panic at
    // the API boundary, not scribble past the lane/shard arrays.
    runtime::RingOptions options;
    runtime::RingAggregator ring(cfgPtrs_, 2, options);
    EXPECT_THROW(ring.recordEdge(2, method_, edge_),
                 support::PanicError);
    EXPECT_THROW(ring.recordPath(2, method_, 1), support::PanicError);
    EXPECT_THROW(ring.flush(2), support::PanicError);
    ring.quiesce();
    EXPECT_EQ(ring.stats().produced, 0u)
        << "rejected calls must not touch the lanes";

    runtime::ShardedAggregator sharded(cfgPtrs_, 2);
    EXPECT_THROW(sharded.recordEdge(2, method_, edge_),
                 support::PanicError);
    EXPECT_THROW(sharded.recordPath(2, method_, 1),
                 support::PanicError);
    EXPECT_THROW(sharded.flush(2), support::PanicError);
    EXPECT_EQ(sharded.flushes(), 0u);
}

TEST_F(RuntimeRingProfileTest, MonitorThreadPollsShardedStatsMidRun)
{
    // Regression test for the flushes_ data race: a monitor thread
    // polls flushes() continuously while workers flush under the
    // merge lock. With a plain (non-atomic) counter TSan flags this;
    // with the atomic it is clean and the final count is exact.
    constexpr std::uint32_t kWorkers = 3;
    constexpr std::uint64_t kFlushesPerWorker = 400;
    runtime::ShardedAggregator sharded(cfgPtrs_, kWorkers);
    std::atomic<bool> done{false};

    std::thread monitor([&] {
        std::uint64_t last = 0;
        while (!done.load(std::memory_order_acquire)) {
            const std::uint64_t now = sharded.flushes();
            EXPECT_GE(now, last) << "flush count went backwards";
            last = now;
            std::this_thread::yield();
        }
    });

    {
        std::vector<std::thread> workers;
        for (std::uint32_t w = 0; w < kWorkers; ++w) {
            workers.emplace_back([&, w] {
                for (std::uint64_t i = 0; i < kFlushesPerWorker; ++i) {
                    sharded.recordEdge(w, method_, edge_);
                    sharded.recordPath(w, method_, i % 8);
                    sharded.flush(w);
                }
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }
    done.store(true, std::memory_order_release);
    monitor.join();

    EXPECT_EQ(sharded.flushes(), kWorkers * kFlushesPerWorker);
    EXPECT_EQ(sharded.globalEdges().perMethod[method_].edgeCount(edge_),
              kWorkers * kFlushesPerWorker);
}

TEST_F(RuntimeRingProfileTest, MonitorThreadPollsRingStatsMidRun)
{
    // Same contract for the ring transport: stats() is advertised as
    // safe from any thread at any time — prove it with the collector
    // running, producers pushing, and a monitor summing counters.
    constexpr std::uint32_t kWorkers = 3;
    runtime::RingOptions options;
    options.capacity = 256;
    runtime::RingAggregator ring(cfgPtrs_, kWorkers, options);
    std::atomic<bool> done{false};

    std::thread monitor([&] {
        while (!done.load(std::memory_order_acquire)) {
            const runtime::RingTransportStats stats = ring.stats();
            EXPECT_LE(stats.consumed + stats.dropped, stats.produced)
                << "mid-run counters overtook production";
            std::this_thread::yield();
        }
    });

    {
        std::vector<std::thread> workers;
        for (std::uint32_t w = 0; w < kWorkers; ++w) {
            workers.emplace_back([&, w] {
                for (std::uint64_t i = 0; i < 4000; ++i) {
                    ring.recordEdge(w, method_, edge_);
                    if (i % 64 == 0)
                        ring.flush(w);
                }
                ring.flush(w);
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }
    ring.quiesce();
    done.store(true, std::memory_order_release);
    monitor.join();

    const runtime::RingTransportStats stats = ring.stats();
    EXPECT_EQ(stats.produced, kWorkers * 4000u);
    EXPECT_EQ(stats.produced, stats.consumed + stats.dropped);
}

} // namespace
} // namespace pep
