/**
 * @file
 * The concurrent runtime's acceptance checks, via the differential
 * harness: every standard multi-threaded scheduler configuration must
 * run clean — byte-identical repeat runs, interleaved merged truth
 * equal to the sum of per-thread exact oracles, and sharded aggregation
 * matching the mutex-global baseline count for count.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "testing/differ.hh"

namespace pep {
namespace {

std::string
joinViolations(const testing::DiffReport &report)
{
    std::ostringstream os;
    for (const std::string &violation : report.violations)
        os << violation << '\n';
    return os.str();
}

TEST(RuntimeThreadedDifferTest, StandardConfigsRunClean)
{
    for (const testing::ThreadedDiffOptions &config :
         testing::standardThreadedConfigs()) {
        const testing::DiffReport report =
            testing::runThreadedDiff(config);
        EXPECT_TRUE(report.ok())
            << config.name << ":\n" << joinViolations(report);
        EXPECT_GT(report.oracleSegments, 0u) << config.name;
        EXPECT_GT(report.pepSamplesRecorded, 0u) << config.name;
    }
}

TEST(RuntimeThreadedDifferTest, ConfigLookup)
{
    ASSERT_NE(testing::findThreadedConfig("coop-k2"), nullptr);
    EXPECT_EQ(testing::findThreadedConfig("coop-k2")->threads, 2u);
    EXPECT_EQ(testing::findThreadedConfig("no-such-config"), nullptr);

    const testing::ThreadedDiffOptions *ring =
        testing::findThreadedConfig("ring-small-epoch");
    ASSERT_NE(ring, nullptr);
    EXPECT_TRUE(ring->checkRing);
    EXPECT_EQ(ring->tightRingCapacity, 16u)
        << "the standard matrix must keep a drop-heavy ring config";
}

TEST(RuntimeThreadedDifferTest, RingLostSampleInjectionRoundTrips)
{
    EXPECT_EQ(testing::injectKindName(
                  testing::InjectKind::RingLostSample),
              "ring-lost-sample");
    testing::InjectKind parsed = testing::InjectKind::None;
    ASSERT_TRUE(testing::parseInjectKind("ring-lost-sample", parsed));
    EXPECT_EQ(parsed, testing::InjectKind::RingLostSample);
}

TEST(RuntimeThreadedDifferTest, CatchesRingLostSampleInjection)
{
    // Harness self-test: a transport that loses one sample without
    // bumping a drop counter must be caught twice over — the
    // conservation law (check 5) goes off balance by one, and the
    // "drop-free" ring totals no longer match the mutex baseline
    // (check 6).
    testing::ThreadedDiffOptions options;
    options.name = "ring-lost-sample-self-test";
    options.threads = 2;
    options.seed = 9;
    options.requests = 48;
    options.workers = 2;
    options.epochRequests = 8;
    options.inject = testing::InjectKind::RingLostSample;
    const testing::DiffReport report =
        testing::runThreadedDiff(options);

    EXPECT_FALSE(report.ok())
        << "a silently lost sample went unnoticed";
    bool conservation = false;
    bool identity = false;
    for (const std::string &violation : report.violations) {
        if (violation.find("conservation") != std::string::npos)
            conservation = true;
        if (violation.find("drop-free ring vs mutex") !=
            std::string::npos)
            identity = true;
    }
    EXPECT_TRUE(conservation) << joinViolations(report);
    EXPECT_TRUE(identity) << joinViolations(report);

    // The same configuration without the injection is clean — the
    // checks fire on the bug, not on the configuration.
    options.inject = testing::InjectKind::None;
    const testing::DiffReport clean =
        testing::runThreadedDiff(options);
    EXPECT_TRUE(clean.ok()) << joinViolations(clean);
}

TEST(RuntimeThreadedDifferTest, DetectsShortRuns)
{
    // A one-thread config with zero requests still reports cleanly
    // (nothing to run, nothing to diverge) — but records no oracle
    // segments, which StandardConfigsRunClean above guards against for
    // the real configs.
    testing::ThreadedDiffOptions options;
    options.name = "empty";
    options.threads = 1;
    options.requests = 0;
    options.checkAggregation = false;
    const testing::DiffReport report =
        testing::runThreadedDiff(options);
    EXPECT_TRUE(report.ok()) << joinViolations(report);
    EXPECT_EQ(report.oracleSegments, 0u);
}

} // namespace
} // namespace pep
