/**
 * @file
 * The concurrent runtime's acceptance checks, via the differential
 * harness: every standard multi-threaded scheduler configuration must
 * run clean — byte-identical repeat runs, interleaved merged truth
 * equal to the sum of per-thread exact oracles, and sharded aggregation
 * matching the mutex-global baseline count for count.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "testing/differ.hh"

namespace pep {
namespace {

std::string
joinViolations(const testing::DiffReport &report)
{
    std::ostringstream os;
    for (const std::string &violation : report.violations)
        os << violation << '\n';
    return os.str();
}

TEST(RuntimeThreadedDifferTest, StandardConfigsRunClean)
{
    for (const testing::ThreadedDiffOptions &config :
         testing::standardThreadedConfigs()) {
        const testing::DiffReport report =
            testing::runThreadedDiff(config);
        EXPECT_TRUE(report.ok())
            << config.name << ":\n" << joinViolations(report);
        EXPECT_GT(report.oracleSegments, 0u) << config.name;
        EXPECT_GT(report.pepSamplesRecorded, 0u) << config.name;
    }
}

TEST(RuntimeThreadedDifferTest, ConfigLookup)
{
    ASSERT_NE(testing::findThreadedConfig("coop-k2"), nullptr);
    EXPECT_EQ(testing::findThreadedConfig("coop-k2")->threads, 2u);
    EXPECT_EQ(testing::findThreadedConfig("no-such-config"), nullptr);
}

TEST(RuntimeThreadedDifferTest, DetectsShortRuns)
{
    // A one-thread config with zero requests still reports cleanly
    // (nothing to run, nothing to diverge) — but records no oracle
    // segments, which StandardConfigsRunClean above guards against for
    // the real configs.
    testing::ThreadedDiffOptions options;
    options.name = "empty";
    options.threads = 1;
    options.requests = 0;
    options.checkAggregation = false;
    const testing::DiffReport report =
        testing::runThreadedDiff(options);
    EXPECT_TRUE(report.ok()) << joinViolations(report);
    EXPECT_EQ(report.oracleSegments, 0u);
}

} // namespace
} // namespace pep
