/**
 * @file
 * Tests of the online reoptimization driver (opt/reopt_driver.hh):
 * fed by a windowed (EWMA) profile it applies an initial
 * profile-guided layout, detects a phase shift when the hot branch
 * direction flips, recompiles through the ordinary compile path (so
 * the template rule and the compile journal hold), and stays quiet
 * while the window does not advance or the phase is stable. Suite
 * names start with "Runtime" so `ctest -R Runtime` (the TSan CI job)
 * selects them.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/verify/verify.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "opt/pipeline.hh"
#include "opt/profile_consumer.hh"
#include "opt/reopt_driver.hh"
#include "runtime/profile_window.hh"
#include "vm/machine.hh"

namespace {

using namespace pep;

/** The non-header Cond block of figure1's main (the diamond). */
cfg::BlockId
diamondBlock(const bytecode::MethodCfg &cfg)
{
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.isCodeBlock(b) && !cfg.isLoopHeader[b] &&
            cfg.terminator[b] == bytecode::TerminatorKind::Cond)
            return b;
    }
    return cfg::kInvalidBlock;
}

/** One phase's worth of diamond weights into the window. */
void
feedPhase(runtime::WindowedProfile &window, cfg::BlockId diamond,
          std::uint64_t taken, std::uint64_t fall)
{
    window.addEdge(0, {diamond, 0}, taken);
    window.addEdge(0, {diamond, 1}, fall);
    window.advance();
}

struct ReoptRig
{
    bytecode::Program program = test::figure1Program();
    vm::Machine machine;
    runtime::WindowedProfile window;
    opt::WindowedProfileConsumer consumer;
    opt::OptPipeline pipeline;
    cfg::BlockId diamond = cfg::kInvalidBlock;

    ReoptRig()
        : machine(program, vm::SimParams{}),
          window({&machine.info(0).cfg}, /*decay=*/0.5),
          consumer(machine, window),
          pipeline(consumer,
                   // Reoptimization here is about direction flips;
                   // cloning would move the layout into a synthesized
                   // CFG and is covered by the pipeline tests.
                   [] {
                       opt::PipelineOptions options;
                       options.clone = false;
                       return options;
                   }())
    {
        machine.addCompilePass(&pipeline);
        machine.compileNow(0, vm::OptLevel::Opt2);
        diamond = diamondBlock(machine.info(0).cfg);
        EXPECT_NE(diamond, cfg::kInvalidBlock);
    }
};

TEST(RuntimeReopt, AppliesInitialLayoutOnFirstSighting)
{
    ReoptRig rig;
    opt::ReoptDriver driver(rig.machine, rig.window, {});

    // Nothing in the window yet: the driver has nothing to act on.
    EXPECT_EQ(driver.poll(), 0u);

    feedPhase(rig.window, rig.diamond, 90, 10);
    EXPECT_EQ(driver.poll(), 1u);
    EXPECT_EQ(driver.stats().recompiles, 1u);
    EXPECT_EQ(driver.stats().phaseShifts, 0u)
        << "the first layout is not a shift";

    const vm::CompiledMethod *version = rig.machine.currentVersion(0);
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->branchLayout[rig.diamond], 1)
        << "taken-hot phase lays the diamond out taken";
}

TEST(RuntimeReopt, NoOpWhileWindowDoesNotAdvance)
{
    ReoptRig rig;
    opt::ReoptDriver driver(rig.machine, rig.window, {});
    feedPhase(rig.window, rig.diamond, 90, 10);
    EXPECT_EQ(driver.poll(), 1u);

    // Same window state: polling again must do nothing.
    EXPECT_EQ(driver.poll(), 0u);
    EXPECT_EQ(driver.poll(), 0u);
    EXPECT_EQ(driver.stats().polls, 3u);
    EXPECT_EQ(driver.stats().recompiles, 1u);
}

TEST(RuntimeReopt, StablePhaseDoesNotRetrigger)
{
    ReoptRig rig;
    opt::ReoptDriver driver(rig.machine, rig.window, {});
    feedPhase(rig.window, rig.diamond, 90, 10);
    EXPECT_EQ(driver.poll(), 1u);

    // More of the same phase: the hot direction is unchanged, so no
    // recompile however often the window advances.
    for (int epoch = 0; epoch < 4; ++epoch) {
        feedPhase(rig.window, rig.diamond, 90, 10);
        EXPECT_EQ(driver.poll(), 0u) << "epoch " << epoch;
    }
    EXPECT_EQ(driver.stats().phaseShifts, 0u);
}

TEST(RuntimeReopt, PhaseShiftRecompilesWithTheNewLayout)
{
    ReoptRig rig;
    opt::ReoptDriver driver(rig.machine, rig.window, {});
    feedPhase(rig.window, rig.diamond, 90, 10);
    ASSERT_EQ(driver.poll(), 1u);
    const std::size_t versions_before = rig.machine.numVersions(0);

    // The workload flips: the EWMA window's hot direction crosses
    // over within one epoch (0.5 * 90 + 10 < 0.5 * 10 + 90).
    feedPhase(rig.window, rig.diamond, 10, 90);
    EXPECT_EQ(driver.poll(), 1u);
    EXPECT_EQ(driver.stats().phaseShifts, 1u);

    const vm::CompiledMethod *version = rig.machine.currentVersion(0);
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->branchLayout[rig.diamond], 0)
        << "fall-through-hot phase flips the diamond layout";
    EXPECT_GT(rig.machine.numVersions(0), versions_before)
        << "reoptimization must go through compile(), not mutate in "
           "place";

    // Every reoptimized version went through the ordinary compile
    // path: the machine still runs and verifies clean (journal,
    // template freshness, engine equivalence).
    rig.machine.runIteration();
    analysis::DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::verifyMachine(rig.machine, diagnostics));
    EXPECT_EQ(diagnostics.errorCount(), 0u);
}

TEST(RuntimeReopt, RetranslateRelayoutsInPlaceWithoutANewVersion)
{
    ReoptRig rig;
    opt::ReoptOptions options;
    options.action = opt::ReoptAction::Retranslate;
    opt::ReoptDriver driver(rig.machine, rig.window, options);

    feedPhase(rig.window, rig.diamond, 90, 10);
    ASSERT_EQ(driver.poll(), 1u);
    EXPECT_EQ(driver.stats().retranslations, 1u);
    EXPECT_EQ(driver.stats().recompiles, 0u)
        << "retranslate must not go through compileNow";
    const std::size_t versions_before = rig.machine.numVersions(0);
    const vm::CompiledMethod *version = rig.machine.currentVersion(0);
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->branchLayout[rig.diamond], 1);

    // The phase flips: the installed version is relaid in place and
    // its template stream invalidated — no new version appears, so the
    // threaded engine's fused traces re-straighten on the next
    // translation without a recompile.
    feedPhase(rig.window, rig.diamond, 10, 90);
    EXPECT_EQ(driver.poll(), 1u);
    EXPECT_EQ(driver.stats().phaseShifts, 1u);
    EXPECT_EQ(driver.stats().retranslations, 2u);
    EXPECT_EQ(rig.machine.numVersions(0), versions_before)
        << "retranslate mutates the installed version in place";
    version = rig.machine.currentVersion(0);
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->branchLayout[rig.diamond], 0)
        << "fall-through-hot phase flips the diamond layout";

    // The in-place relayout went through the escape/sanitize pair
    // (versionForUpdate + invalidateDecoded): the machine still runs
    // and every static audit stays clean.
    rig.machine.runIteration();
    analysis::DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::verifyMachine(rig.machine, diagnostics));
    EXPECT_EQ(diagnostics.errorCount(), 0u);
}

TEST(RuntimeReopt, WindowedConsumerMaterializesRoundedCounts)
{
    ReoptRig rig;

    EXPECT_EQ(rig.consumer.generation(), rig.window.advances());
    EXPECT_EQ(rig.consumer.edges(0), nullptr)
        << "no weight in the window yet";

    feedPhase(rig.window, rig.diamond, 7, 3);
    EXPECT_EQ(rig.consumer.generation(), 1u);
    const profile::MethodEdgeProfile *edges = rig.consumer.edges(0);
    ASSERT_NE(edges, nullptr);
    EXPECT_EQ(edges->counts()[rig.diamond][0], 7u);
    EXPECT_EQ(edges->counts()[rig.diamond][1], 3u);

    // After a decayed epoch the weights halve (EWMA, decay 0.5) and
    // the adapter re-materializes them rounded.
    rig.window.advance();
    EXPECT_EQ(rig.consumer.generation(), 2u);
    const profile::MethodEdgeProfile *decayed = rig.consumer.edges(0);
    ASSERT_NE(decayed, nullptr);
    EXPECT_EQ(decayed->counts()[rig.diamond][0], 4u); // llround(3.5)
    EXPECT_EQ(decayed->counts()[rig.diamond][1], 2u); // llround(1.5)

    // Out-of-range methods are "no information", not a crash.
    EXPECT_EQ(rig.consumer.edges(57), nullptr);
}

} // namespace
