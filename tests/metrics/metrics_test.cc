/**
 * @file
 * Metric tests with hand-computed expectations: relative overlap
 * (bias agreement), absolute overlap (frequency agreement), and Wall
 * weight-matching with the branch-flow metric.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "metrics/overlap.hh"
#include "metrics/path_accuracy.hh"

namespace pep::metrics {
namespace {

using bytecode::MethodCfg;

struct EdgeFixture
{
    EdgeFixture()
    {
        const bytecode::Program program = test::figure1Program();
        cfgs.push_back(bytecode::buildCfg(program.methods[0]));
        a = profile::EdgeProfileSet(cfgs);
        b = profile::EdgeProfileSet(cfgs);
        cond = cfg::kInvalidBlock;
        for (cfg::BlockId block = 0;
             block < cfgs[0].graph.numBlocks(); ++block) {
            if (cfgs[0].terminator[block] ==
                bytecode::TerminatorKind::Cond &&
                cond == cfg::kInvalidBlock) {
                cond = block;
            }
        }
    }

    std::vector<MethodCfg> cfgs;
    profile::EdgeProfileSet a;
    profile::EdgeProfileSet b;
    cfg::BlockId cond;
};

TEST(RelativeOverlap, IdenticalProfilesScoreOne)
{
    EdgeFixture f;
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 30);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 10);
    f.b = f.a;
    EXPECT_DOUBLE_EQ(relativeOverlap(f.cfgs, f.a, f.b), 1.0);
}

TEST(RelativeOverlap, EmptyUniverseScoresOne)
{
    EdgeFixture f;
    EXPECT_DOUBLE_EQ(relativeOverlap(f.cfgs, f.a, f.b), 1.0);
}

TEST(RelativeOverlap, HandComputedBiasDifference)
{
    EdgeFixture f;
    // Actual bias 0.75; estimate bias 0.25 -> accuracy 0.5.
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 75);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 25);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 1);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 3);
    EXPECT_NEAR(relativeOverlap(f.cfgs, f.a, f.b), 0.5, 1e-12);
}

TEST(RelativeOverlap, UnseenBranchGetsHalfBias)
{
    EdgeFixture f;
    // Actual fully taken (bias 1.0); estimate empty -> bias 0.5 ->
    // accuracy 0.5.
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 10);
    EXPECT_NEAR(relativeOverlap(f.cfgs, f.a, f.b), 0.5, 1e-12);
}

TEST(RelativeOverlap, FlippedProfileScoresBiasDistance)
{
    EdgeFixture f;
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 90);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 10);
    const profile::EdgeProfileSet flipped = [&] {
        profile::EdgeProfileSet result = f.a;
        result.perMethod[0] = result.perMethod[0].flipped(f.cfgs[0]);
        return result;
    }();
    // |0.9 - 0.1| = 0.8 -> accuracy 0.2.
    EXPECT_NEAR(relativeOverlap(f.cfgs, f.a, flipped), 0.2, 1e-12);
}

TEST(RelativeOverlap, WeightsByActualFrequency)
{
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    irnd
    ifeq a
    iinc 0 1
a:
    irnd
    ifeq b
    iinc 0 2
b:
    return
.end
.main main
)");
    std::vector<MethodCfg> cfgs{
        bytecode::buildCfg(program.methods[0])};
    std::vector<cfg::BlockId> conds;
    for (cfg::BlockId b = 0; b < cfgs[0].graph.numBlocks(); ++b) {
        if (cfgs[0].terminator[b] == bytecode::TerminatorKind::Cond)
            conds.push_back(b);
    }
    ASSERT_EQ(conds.size(), 2u);

    profile::EdgeProfileSet actual(cfgs);
    profile::EdgeProfileSet estimated(cfgs);
    // Branch 0: 900 executions, estimate perfect (accuracy 1).
    actual.perMethod[0].addEdge(cfg::EdgeRef{conds[0], 0}, 900);
    estimated.perMethod[0].addEdge(cfg::EdgeRef{conds[0], 0}, 9);
    // Branch 1: 100 executions, estimate flipped (accuracy 0).
    actual.perMethod[0].addEdge(cfg::EdgeRef{conds[1], 0}, 100);
    estimated.perMethod[0].addEdge(cfg::EdgeRef{conds[1], 1}, 5);
    // Weighted: (900*1 + 100*0) / 1000 = 0.9.
    EXPECT_NEAR(relativeOverlap(cfgs, actual, estimated), 0.9, 1e-12);
}

TEST(AbsoluteOverlap, IdenticalScoresOneEvenWhenScaled)
{
    EdgeFixture f;
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 30);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 10);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 3);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 1);
    // Same normalized distribution despite different totals.
    EXPECT_NEAR(absoluteOverlap(f.a, f.b), 1.0, 1e-12);
}

TEST(AbsoluteOverlap, DisjointScoresZero)
{
    EdgeFixture f;
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 10);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 10);
    EXPECT_DOUBLE_EQ(absoluteOverlap(f.a, f.b), 0.0);
}

TEST(AbsoluteOverlap, HandComputedPartialOverlap)
{
    EdgeFixture f;
    // actual: 0.75 / 0.25; estimated: 0.5 / 0.5.
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 3);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 1);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 1);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 1);
    // min(0.75,0.5) + min(0.25,0.5) = 0.75.
    EXPECT_NEAR(absoluteOverlap(f.a, f.b), 0.75, 1e-12);
}

TEST(AbsoluteOverlap, EmptyCases)
{
    EdgeFixture f;
    EXPECT_DOUBLE_EQ(absoluteOverlap(f.a, f.b), 1.0);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 1);
    EXPECT_DOUBLE_EQ(absoluteOverlap(f.a, f.b), 0.0);
}

TEST(AbsoluteOverlap, SymmetricInItsArguments)
{
    EdgeFixture f;
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 7);
    f.a.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 3);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 0}, 2);
    f.b.perMethod[0].addEdge(cfg::EdgeRef{f.cond, 1}, 8);
    EXPECT_DOUBLE_EQ(absoluteOverlap(f.a, f.b),
                     absoluteOverlap(f.b, f.a));
}

// ---- Wall weight-matching -------------------------------------------------

CanonicalPathKey
key(std::uint32_t id)
{
    CanonicalPathKey k;
    k.method = 0;
    k.edges = {id};
    return k;
}

TEST(WallMatching, PerfectEstimateScoresOne)
{
    CanonicalPathProfile actual;
    actual.paths[key(1)] = {1000, 4};
    actual.paths[key(2)] = {500, 2};
    const WallAccuracy result = wallPathAccuracy(actual, actual);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
    EXPECT_EQ(result.numHotPaths, 2u);
}

TEST(WallMatching, EmptyActualScoresOne)
{
    CanonicalPathProfile actual;
    CanonicalPathProfile estimated;
    estimated.paths[key(1)] = {5, 1};
    EXPECT_DOUBLE_EQ(
        wallPathAccuracy(actual, estimated).accuracy, 1.0);
}

TEST(WallMatching, FlowIsFrequencyTimesBranches)
{
    // Path A: freq 100 x 1 branch = flow 100.
    // Path B: freq 30 x 10 branches = flow 300 (hotter by flow!).
    CanonicalPathProfile actual;
    actual.paths[key(1)] = {100, 1};
    actual.paths[key(2)] = {30, 10};

    // Estimate knows only path B; with threshold high enough that
    // only B is hot, accuracy is 1.
    CanonicalPathProfile estimated;
    estimated.paths[key(2)] = {3, 10};
    const WallAccuracy result =
        wallPathAccuracy(actual, estimated, /*hot_threshold=*/0.5);
    EXPECT_EQ(result.numHotPaths, 1u);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
}

TEST(WallMatching, MissingHotPathLosesItsFlowShare)
{
    CanonicalPathProfile actual;
    actual.paths[key(1)] = {600, 1}; // flow 600
    actual.paths[key(2)] = {400, 1}; // flow 400

    // Estimate ranks a cold path above path 2.
    CanonicalPathProfile estimated;
    estimated.paths[key(1)] = {60, 1};
    estimated.paths[key(3)] = {50, 1};
    estimated.paths[key(2)] = {40, 1};

    const WallAccuracy result =
        wallPathAccuracy(actual, estimated, 0.1);
    EXPECT_EQ(result.numHotPaths, 2u);
    // Top-2 estimated = {1, 3}; only 1 matches: 600/1000.
    EXPECT_NEAR(result.accuracy, 0.6, 1e-12);
}

TEST(WallMatching, ThresholdExcludesColdPaths)
{
    CanonicalPathProfile actual;
    actual.paths[key(1)] = {10000, 1};
    actual.paths[key(2)] = {1, 1}; // below 0.125% of total flow

    CanonicalPathProfile estimated;
    estimated.paths[key(1)] = {10, 1};
    const WallAccuracy result = wallPathAccuracy(actual, estimated);
    EXPECT_EQ(result.numHotPaths, 1u);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
}

TEST(WallMatching, EstimatedSetLimitedToActualHotCount)
{
    // Estimate has many paths; only the top |H_actual| may count.
    CanonicalPathProfile actual;
    actual.paths[key(1)] = {500, 1};
    actual.paths[key(2)] = {500, 1};

    CanonicalPathProfile estimated;
    estimated.paths[key(3)] = {100, 1};
    estimated.paths[key(4)] = {90, 1};
    estimated.paths[key(1)] = {80, 1}; // ranked 3rd: cut off
    estimated.paths[key(2)] = {70, 1};

    const WallAccuracy result =
        wallPathAccuracy(actual, estimated, 0.1);
    EXPECT_EQ(result.numHotPaths, 2u);
    EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

TEST(RankByFlow, OrdersByFlowWithSharesAndLimit)
{
    CanonicalPathProfile profile;
    profile.paths[key(1)] = {10, 1};  // flow 10
    profile.paths[key(2)] = {2, 10};  // flow 20 (long path wins)
    profile.paths[key(3)] = {5, 2};   // flow 10
    profile.paths[key(4)] = {1, 1};   // flow 1

    const auto all = rankByFlow(profile);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].key->edges[0], 2u);
    EXPECT_DOUBLE_EQ(all[0].flow, 20.0);
    EXPECT_NEAR(all[0].flowShare, 20.0 / 41.0, 1e-12);
    // Tie between paths 1 and 3 breaks deterministically by key.
    EXPECT_EQ(all[1].key->edges[0], 1u);
    EXPECT_EQ(all[2].key->edges[0], 3u);
    EXPECT_EQ(all[3].key->edges[0], 4u);

    const auto top2 = rankByFlow(profile, 2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].key->edges[0], 2u);

    const CanonicalPathProfile empty;
    EXPECT_TRUE(rankByFlow(empty).empty());
}

TEST(WallMatching, TotalFlowHelper)
{
    CanonicalPathProfile profile;
    profile.paths[key(1)] = {10, 3};
    profile.paths[key(2)] = {5, 4};
    EXPECT_DOUBLE_EQ(profile.totalFlow(), 50.0);
}

} // namespace
} // namespace pep::metrics
