/**
 * @file
 * Parameterized cross-benchmark invariants: for every benchmark shape
 * in the suite (run at reduced scale), the central PEP guarantees must
 * hold regardless of workload structure:
 *
 *  - sampled paths are a subset of ground-truth completions;
 *  - PEP's edge profile is exactly the expansion of its sampled paths;
 *  - the zero-cost ground-truth recorder never perturbs timing;
 *  - spanning-tree placement and direct placement agree path-for-path.
 */

#include <gtest/gtest.h>

#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep {
namespace {

class SuiteInvariants
    : public ::testing::TestWithParam<const char *>
{
  protected:
    workload::WorkloadSpec
    spec() const
    {
        workload::WorkloadSpec s = workload::suiteSpec(GetParam());
        s.outerIterations = std::min<std::uint64_t>(
            s.outerIterations, 50);
        return s;
    }

    static vm::SimParams
    params()
    {
        vm::SimParams p;
        p.tickCycles = 120'000;
        return p;
    }
};

TEST_P(SuiteInvariants, SampledPathsAreSubsetOfTruth)
{
    const bytecode::Program program =
        workload::generateWorkload(spec());
    vm::Machine machine(program, params());
    core::SimplifiedArnoldGrove controller(16, 5);
    core::PepProfiler pep(machine, controller);
    core::FullPathProfiler truth(machine,
                                 profile::DagMode::HeaderSplit,
                                 /*charge_costs=*/false);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);
    machine.runIteration();
    machine.runIteration();

    metrics::CanonicalPathProfile pep_paths = metrics::canonicalize(pep);
    metrics::CanonicalPathProfile truth_paths =
        metrics::canonicalize(truth);
    ASSERT_GT(truth_paths.paths.size(), 0u);
    ASSERT_GT(pep_paths.paths.size(), 0u);
    for (const auto &[key, entry] : pep_paths.paths) {
        const auto it = truth_paths.paths.find(key);
        ASSERT_NE(it, truth_paths.paths.end())
            << "sampled a path truth never saw";
        EXPECT_LE(entry.count, it->second.count);
        EXPECT_EQ(entry.numBranches, it->second.numBranches);
    }

    // PEP's edge profile must equal the expansion of its own samples.
    profile::EdgeProfileSet rebuilt =
        core::edgeProfileFromPaths(machine, pep);
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        ASSERT_EQ(rebuilt.perMethod[m].counts(),
                  pep.edgeProfile().perMethod[m].counts())
            << GetParam() << " method " << m;
    }
}

TEST_P(SuiteInvariants, GroundTruthObserverIsFree)
{
    const bytecode::Program program =
        workload::generateWorkload(spec());

    vm::Machine plain(program, params());
    const std::uint64_t c1 = plain.runIteration();

    vm::Machine observed(program, params());
    core::FullPathProfiler truth(observed,
                                 profile::DagMode::HeaderSplit,
                                 /*charge_costs=*/false);
    observed.addHooks(&truth);
    observed.addCompileObserver(&truth);
    const std::uint64_t c2 = observed.runIteration();

    EXPECT_EQ(c1, c2) << GetParam();
}

TEST_P(SuiteInvariants, PlacementChoiceIsObservationallyEquivalent)
{
    // Direct and spanning-tree placements must produce identical
    // path profiles (only instrumentation sites differ). Replay
    // pins the compile schedule so both runs profile exactly the same
    // execution (placement shifts cycle timing, which would otherwise
    // move adaptive promotion points).
    const bytecode::Program program =
        workload::generateWorkload(spec());
    vm::ReplayAdvice advice;
    {
        vm::Machine recorder(program, params());
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }

    auto collect = [&](profile::PlacementKind placement) {
        class Always final : public core::SamplingController
        {
          public:
            core::SampleAction
            onOpportunity(bool) override
            {
                return core::SampleAction::Sample;
            }
            void reset() override {}
            std::string name() const override { return "always"; }
        };
        vm::Machine machine(program, params());
        machine.enableReplay(&advice);
        Always always;
        core::PepOptions options;
        options.placement = placement;
        core::PepProfiler pep(machine, always, options);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);
        machine.runIteration();
        pep.clearProfiles();
        machine.runIteration();
        return metrics::canonicalize(pep);
    };

    const metrics::CanonicalPathProfile direct =
        collect(profile::PlacementKind::Direct);
    const metrics::CanonicalPathProfile spanning =
        collect(profile::PlacementKind::SpanningTree);

    ASSERT_GT(direct.paths.size(), 0u);
    ASSERT_EQ(direct.paths.size(), spanning.paths.size())
        << GetParam();
    for (const auto &[key, entry] : direct.paths) {
        const auto it = spanning.paths.find(key);
        ASSERT_NE(it, spanning.paths.end()) << GetParam();
        EXPECT_EQ(entry.count, it->second.count) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, SuiteInvariants,
    ::testing::Values("compress", "jess", "db", "javac", "mtrt",
                      "pseudojbb", "antlr", "pmd", "ps", "xalan"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

} // namespace
} // namespace pep
