/**
 * @file
 * The example programs shipped under examples/programs/ must assemble,
 * verify, run, and behave: sort.pepasm must actually sort, and
 * rle.pepasm must count runs consistently.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "bytecode/assembler.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "vm/machine.hh"

#ifndef PEP_SOURCE_DIR
#define PEP_SOURCE_DIR "."
#endif

namespace pep {
namespace {

bytecode::Program
loadProgram(const std::string &name)
{
    const std::string path =
        std::string(PEP_SOURCE_DIR) + "/examples/programs/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return bytecode::assembleOrDie(buffer.str());
}

TEST(ExamplePrograms, SortActuallySorts)
{
    vm::SimParams params;
    params.tickCycles = 200'000;
    vm::Machine machine(loadProgram("sort.pepasm"), params);
    machine.runIteration();

    // After the final round, g[0..255] is sorted ascending.
    const auto &globals = machine.globals();
    for (std::size_t i = 1; i < 256; ++i) {
        ASSERT_LE(globals[i - 1], globals[i]) << "index " << i;
    }
    // The swap branch must have been exercised both ways.
    bytecode::MethodId bubble = 0;
    ASSERT_TRUE(machine.program().findMethod("bubble", bubble));
    const auto &cfg = machine.info(bubble).cfg;
    std::uint64_t total_branch_execs = 0;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] != bytecode::TerminatorKind::Cond)
            continue;
        total_branch_execs +=
            machine.truthEdges().perMethod[bubble].branch(b).total();
    }
    EXPECT_GT(total_branch_execs, 100'000u);
}

TEST(ExamplePrograms, RleCountsRunsConsistently)
{
    vm::SimParams params;
    params.tickCycles = 200'000;
    vm::Machine machine(loadProgram("rle.pepasm"), params);
    machine.runIteration();

    const auto &globals = machine.globals();
    const std::int32_t runs = globals[1030];
    const std::int32_t summed_lengths = globals[1031];
    // 24 rounds over 1024 bits with ~25% ones: plenty of runs, and the
    // recorded run lengths can never exceed the bits scanned.
    EXPECT_GT(runs, 1000);
    EXPECT_GT(summed_lengths, 0);
    EXPECT_LT(summed_lengths, 24 * 1024);
    // Average recorded run length is plausible for a 25%-ones stream
    // (geometric-ish, between 1 and 4).
    const double avg = static_cast<double>(summed_lengths) / runs;
    EXPECT_GT(avg, 1.0);
    EXPECT_LT(avg, 4.0);
}

TEST(ExamplePrograms, ProfileUnderPepWithoutPerturbation)
{
    // Attaching PEP must not change program results (determinism of
    // the Irnd stream is independent of profiling).
    auto run = [&](bool with_pep) {
        vm::SimParams params;
        params.tickCycles = 200'000;
        vm::Machine machine(loadProgram("sort.pepasm"), params);
        std::unique_ptr<core::SamplingController> controller;
        std::unique_ptr<core::PepProfiler> pep;
        if (with_pep) {
            controller =
                std::make_unique<core::SimplifiedArnoldGrove>(64, 17);
            pep = std::make_unique<core::PepProfiler>(machine,
                                                      *controller);
            machine.addHooks(pep.get());
            machine.addCompileObserver(pep.get());
        }
        machine.runIteration();
        return machine.globals();
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace pep
