/**
 * @file
 * End-to-end integration tests: workload generation -> VM execution ->
 * PEP profiling -> metrics. These pin the central correctness claims:
 * PEP's sampled profiles are exact subsets of ground truth, and with a
 * 100% sampling rate PEP reproduces the perfect profiles exactly.
 */

#include <gtest/gtest.h>

#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep {
namespace {

/** Samples at every opportunity (100% sampling for equality tests). */
class AlwaysSample final : public core::SamplingController
{
  public:
    core::SampleAction
    onOpportunity(bool) override
    {
        return core::SampleAction::Sample;
    }

    void reset() override {}

    std::string name() const override { return "always"; }
};

workload::WorkloadSpec
smallSpec()
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    spec.outerIterations = 60;
    return spec;
}

/** Params with a fast timer so short test runs still promote methods
 *  to optimized (profiled) code. */
vm::SimParams
testParams()
{
    vm::SimParams params;
    params.tickCycles = 120'000;
    return params;
}

TEST(EndToEnd, SimpleProgramRunsAndTerminates)
{
    vm::Machine machine(test::simpleLoopProgram(), testParams());
    const std::uint64_t cycles = machine.runIteration();
    EXPECT_GT(cycles, 0u);
    EXPECT_GT(machine.stats().instructionsExecuted, 30u);
    EXPECT_EQ(machine.stats().methodInvocations, 1u);
}

TEST(EndToEnd, WorkloadRunsUnderAdaptiveCompilation)
{
    const bytecode::Program program =
        workload::generateWorkload(smallSpec());
    vm::Machine machine(program, testParams());
    machine.runIteration();

    // Hot methods must have been promoted beyond baseline.
    std::size_t promoted = 0;
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const vm::CompiledMethod *cm = machine.currentVersion(
            static_cast<bytecode::MethodId>(m));
        if (cm && cm->level != vm::OptLevel::Baseline)
            ++promoted;
    }
    EXPECT_GT(promoted, 0u);
    EXPECT_GT(machine.stats().timerTicks, 2u);
}

/** Fixture running PEP(always) and a ground-truth recorder together
 *  under replay compilation. */
class PepVsTruth : public ::testing::Test
{
  protected:
    void
    runBoth(const bytecode::Program &program)
    {
        // Record advice with a plain adaptive run.
        const vm::SimParams params = testParams();
        vm::ReplayAdvice advice;
        {
            vm::Machine rec(program, params);
            rec.runIteration();
            advice = rec.recordAdvice();
        }

        machine = std::make_unique<vm::Machine>(program, params);
        machine->enableReplay(&advice);
        pep = std::make_unique<core::PepProfiler>(*machine, always);
        truth = std::make_unique<core::FullPathProfiler>(
            *machine, profile::DagMode::HeaderSplit,
            /*charge_costs=*/false);
        machine->addHooks(pep.get());
        machine->addCompileObserver(pep.get());
        machine->addHooks(truth.get());
        machine->addCompileObserver(truth.get());

        machine->runIteration(); // compile + warm
        pep->clearProfiles();
        truth->clearPathProfiles();
        machine->clearTruth();
        machine->runIteration(); // measured
    }

    AlwaysSample always;
    std::unique_ptr<vm::Machine> machine;
    std::unique_ptr<core::PepProfiler> pep;
    std::unique_ptr<core::FullPathProfiler> truth;
};

TEST_F(PepVsTruth, FullSamplingReproducesPerfectPathProfile)
{
    runBoth(workload::generateWorkload(smallSpec()));

    const metrics::CanonicalPathProfile pep_paths =
        metrics::canonicalize(*pep);
    const metrics::CanonicalPathProfile truth_paths =
        metrics::canonicalize(*truth);

    ASSERT_GT(truth_paths.paths.size(), 0u);
    ASSERT_EQ(pep_paths.paths.size(), truth_paths.paths.size());
    for (const auto &[key, entry] : truth_paths.paths) {
        const auto it = pep_paths.paths.find(key);
        ASSERT_NE(it, pep_paths.paths.end());
        EXPECT_EQ(it->second.count, entry.count);
        EXPECT_EQ(it->second.numBranches, entry.numBranches);
    }

    const metrics::WallAccuracy accuracy =
        metrics::wallPathAccuracy(truth_paths, pep_paths);
    EXPECT_DOUBLE_EQ(accuracy.accuracy, 1.0);
}

TEST_F(PepVsTruth, FullSamplingEdgeProfileMatchesGroundTruth)
{
    runBoth(workload::generateWorkload(smallSpec()));

    // For every method running at an optimizing tier, PEP's edge
    // profile (derived from sampled paths) must equal the machine's
    // ground-truth edge counts exactly.
    std::size_t compared = 0;
    for (std::size_t m = 0; m < machine->numMethods(); ++m) {
        const auto id = static_cast<bytecode::MethodId>(m);
        const vm::CompiledMethod *cm = machine->currentVersion(id);
        if (!cm || cm->level == vm::OptLevel::Baseline)
            continue;
        const auto &pep_counts = pep->edgeProfile().perMethod[m];
        const auto &truth_counts = machine->truthEdges().perMethod[m];
        EXPECT_EQ(pep_counts.counts(), truth_counts.counts())
            << "method " << m;
        ++compared;
    }
    EXPECT_GT(compared, 0u);

    const std::vector<bytecode::MethodCfg> cfgs = [&] {
        std::vector<bytecode::MethodCfg> result;
        for (std::size_t m = 0; m < machine->numMethods(); ++m) {
            result.push_back(machine->info(
                static_cast<bytecode::MethodId>(m)).cfg);
        }
        return result;
    }();
    const profile::EdgeProfileSet perfect =
        core::edgeProfileFromPaths(*machine, *truth);
    EXPECT_DOUBLE_EQ(
        metrics::relativeOverlap(cfgs, perfect, pep->edgeProfile()),
        1.0);
    EXPECT_DOUBLE_EQ(
        metrics::absoluteOverlap(perfect, pep->edgeProfile()), 1.0);
}

TEST(EndToEnd, SampledPepIsAccurateButNotExact)
{
    workload::WorkloadSpec spec = smallSpec();
    spec.outerIterations = 150;
    const bytecode::Program program = workload::generateWorkload(spec);

    const vm::SimParams params = testParams();
    vm::ReplayAdvice advice;
    {
        vm::Machine rec(program, params);
        rec.runIteration();
        advice = rec.recordAdvice();
    }

    vm::Machine machine(program, params);
    machine.enableReplay(&advice);
    core::SimplifiedArnoldGrove controller(64, 17);
    core::PepProfiler pep(machine, controller);
    core::FullPathProfiler truth(machine,
                                 profile::DagMode::HeaderSplit,
                                 /*charge_costs=*/false);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);

    machine.runIteration();
    pep.clearProfiles();
    truth.clearPathProfiles();
    machine.runIteration();

    ASSERT_GT(pep.pepStats().samplesRecorded, 100u);
    EXPECT_LT(pep.pepStats().samplesRecorded,
              pep.pepStats().pathsCompleted);

    metrics::CanonicalPathProfile truth_paths =
        metrics::canonicalize(truth);
    metrics::CanonicalPathProfile pep_paths = metrics::canonicalize(pep);
    const metrics::WallAccuracy accuracy =
        metrics::wallPathAccuracy(truth_paths, pep_paths);
    EXPECT_GT(accuracy.accuracy, 0.5);
    EXPECT_GT(accuracy.numHotPaths, 0u);

    // Every sampled path must exist in ground truth with at least the
    // sampled count (samples are a subset of completions).
    for (const auto &[key, entry] : pep_paths.paths) {
        const auto it = truth_paths.paths.find(key);
        ASSERT_NE(it, truth_paths.paths.end());
        EXPECT_LE(entry.count, it->second.count);
    }
}

} // namespace
} // namespace pep
