/**
 * @file
 * Configuration-matrix test: PEP's correctness must be invariant to
 * every instrumentation configuration. For each (numbering scheme x
 * placement) combination, PEP with 100% sampling must reproduce the
 * ground-truth path profile exactly — schemes and placements change
 * where increments sit and what the numbers are, never which paths
 * are observed or how often.
 */

#include <gtest/gtest.h>

#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep {
namespace {

struct MatrixConfig
{
    profile::NumberingScheme scheme;
    profile::PlacementKind placement;
    const char *label;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixConfig>
{
  protected:
    static vm::SimParams
    params()
    {
        vm::SimParams p;
        p.tickCycles = 120'000;
        return p;
    }
};

class AlwaysSample final : public core::SamplingController
{
  public:
    core::SampleAction
    onOpportunity(bool) override
    {
        return core::SampleAction::Sample;
    }
    void reset() override {}
    std::string name() const override { return "always"; }
};

TEST_P(ConfigMatrix, FullSamplingMatchesGroundTruth)
{
    workload::WorkloadSpec spec = workload::standardSuite()[3]; // db
    spec.outerIterations = 50;
    const bytecode::Program program = workload::generateWorkload(spec);

    vm::ReplayAdvice advice;
    {
        vm::Machine recorder(program, params());
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }

    vm::Machine machine(program, params());
    machine.enableReplay(&advice);

    AlwaysSample always;
    core::PepOptions options;
    options.scheme = GetParam().scheme;
    options.placement = GetParam().placement;
    core::PepProfiler pep(machine, always, options);
    // Ground truth uses plain Ball-Larus numbering with direct
    // placement: agreement across the matrix proves the canonical
    // (expansion-based) comparison really is numbering-independent.
    core::FullPathProfiler truth(machine,
                                 profile::DagMode::HeaderSplit,
                                 /*charge_costs=*/false);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);

    machine.runIteration();
    pep.clearProfiles();
    truth.clearPathProfiles();
    machine.runIteration();

    const auto pep_paths = metrics::canonicalize(pep);
    const auto truth_paths = metrics::canonicalize(truth);
    ASSERT_GT(truth_paths.paths.size(), 0u) << GetParam().label;
    ASSERT_EQ(pep_paths.paths.size(), truth_paths.paths.size())
        << GetParam().label;
    for (const auto &[key, entry] : truth_paths.paths) {
        const auto it = pep_paths.paths.find(key);
        ASSERT_NE(it, pep_paths.paths.end()) << GetParam().label;
        EXPECT_EQ(it->second.count, entry.count) << GetParam().label;
        EXPECT_EQ(it->second.numBranches, entry.numBranches);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndPlacements, ConfigMatrix,
    ::testing::Values(
        MatrixConfig{profile::NumberingScheme::BallLarus,
                     profile::PlacementKind::Direct, "bl_direct"},
        MatrixConfig{profile::NumberingScheme::Smart,
                     profile::PlacementKind::Direct, "smart_direct"},
        MatrixConfig{profile::NumberingScheme::SmartInverted,
                     profile::PlacementKind::Direct,
                     "inverted_direct"},
        MatrixConfig{profile::NumberingScheme::BallLarus,
                     profile::PlacementKind::SpanningTree,
                     "bl_spanning"},
        MatrixConfig{profile::NumberingScheme::Smart,
                     profile::PlacementKind::SpanningTree,
                     "smart_spanning"},
        MatrixConfig{profile::NumberingScheme::SmartInverted,
                     profile::PlacementKind::SpanningTree,
                     "inverted_spanning"}),
    [](const auto &info) { return std::string(info.param.label); });

/** The full (original) Arnold-Grove controller on a real machine. */
TEST(FullAgOnMachine, SamplesSubsetOfTruthWithMoreHandlerRuns)
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    spec.outerIterations = 120;
    const bytecode::Program program = workload::generateWorkload(spec);
    vm::SimParams params;
    params.tickCycles = 120'000;

    vm::ReplayAdvice advice;
    {
        vm::Machine recorder(program, params);
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }

    auto run = [&](bool full_ag) {
        vm::Machine machine(program, params);
        machine.enableReplay(&advice);
        std::unique_ptr<core::SamplingController> controller;
        if (full_ag) {
            controller =
                std::make_unique<core::FullArnoldGrove>(16, 5);
        } else {
            controller =
                std::make_unique<core::SimplifiedArnoldGrove>(16, 5);
        }
        auto pep = std::make_unique<core::PepProfiler>(machine,
                                                       *controller);
        machine.addHooks(pep.get());
        machine.addCompileObserver(pep.get());
        machine.runIteration();
        machine.runIteration();
        return std::pair(pep->pepStats().samplesTaken,
                         pep->pepStats().strides);
    };

    const auto [simplified_samples, simplified_strides] = run(false);
    const auto [full_samples, full_strides] = run(true);
    EXPECT_GT(full_samples, 0u);
    EXPECT_GT(simplified_samples, 0u);
    // Original AG strides before every sample: far more handler runs
    // for a comparable number of samples (Section 4.4's trade-off).
    EXPECT_GT(full_strides, simplified_strides * 3);
}

} // namespace
} // namespace pep
