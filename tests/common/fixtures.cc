#include "common/fixtures.hh"

#include "bytecode/verifier.hh"
#include "support/panic.hh"

namespace pep::test {

namespace {

using bytecode::Opcode;
using workload::Label;
using workload::MethodBuilder;

/** Emit `Irnd & mask` (leaves one value on the stack). */
void
emitRand(MethodBuilder &b, std::int32_t mask)
{
    b.emit(Opcode::Irnd);
    b.iconst(mask);
    b.emit(Opcode::Iand);
}

void emitElements(MethodBuilder &b, support::Rng &rng,
                  std::uint32_t budget, std::uint32_t depth,
                  std::uint32_t scratch);

void
emitDiamond(MethodBuilder &b, support::Rng &rng, std::uint32_t budget,
            std::uint32_t depth, std::uint32_t scratch)
{
    emitRand(b, 3);
    Label then_label = b.newLabel();
    Label join = b.newLabel();
    b.branch(Opcode::Ifeq, then_label);
    emitElements(b, rng, budget / 2, depth + 1, scratch);
    b.jump(join);
    b.bind(then_label);
    emitElements(b, rng, budget / 2, depth + 1, scratch);
    b.bind(join);
}

void
emitSwitch(MethodBuilder &b, support::Rng &rng, std::uint32_t budget,
           std::uint32_t depth, std::uint32_t scratch)
{
    const std::uint32_t cases =
        2 + static_cast<std::uint32_t>(rng.nextBounded(3));
    emitRand(b, 7);
    std::vector<Label> labels;
    for (std::uint32_t i = 0; i < cases; ++i)
        labels.push_back(b.newLabel());
    Label def = b.newLabel();
    Label join = b.newLabel();
    b.tableswitch(0, def, labels);
    for (std::uint32_t i = 0; i < cases; ++i) {
        b.bind(labels[i]);
        emitElements(b, rng, budget / 3, depth + 1, scratch);
        b.jump(join);
    }
    b.bind(def);
    emitElements(b, rng, budget / 3, depth + 1, scratch);
    b.bind(join);
}

void
emitLoop(MethodBuilder &b, support::Rng &rng, std::uint32_t budget,
         std::uint32_t depth, std::uint32_t scratch)
{
    const std::uint32_t counter = b.newLocal();
    emitRand(b, 3);
    b.istore(counter);
    Label header = b.newLabel();
    Label done = b.newLabel();
    b.bind(header);
    b.iload(counter);
    b.branch(Opcode::Ifle, done);
    emitElements(b, rng, budget / 2, depth + 1, scratch);
    b.iinc(counter, -1);
    b.jump(header);
    b.bind(done);
}

void
emitElements(MethodBuilder &b, support::Rng &rng, std::uint32_t budget,
             std::uint32_t depth, std::uint32_t scratch)
{
    if (budget == 0 || depth > 4) {
        b.iinc(scratch, 1);
        return;
    }
    const std::uint32_t count =
        1 + static_cast<std::uint32_t>(rng.nextBounded(budget));
    for (std::uint32_t i = 0; i < count && i < 3; ++i) {
        switch (rng.nextBounded(5)) {
          case 0:
            emitSwitch(b, rng, budget - 1, depth, scratch);
            break;
          case 1:
          case 2:
            emitDiamond(b, rng, budget - 1, depth, scratch);
            break;
          case 3:
            emitLoop(b, rng, budget - 1, depth, scratch);
            break;
          default:
            b.iinc(scratch, 3);
            break;
        }
    }
}

} // namespace

bytecode::Method
randomStructuredMethod(support::Rng &rng, const std::string &name,
                       std::uint32_t max_elements)
{
    MethodBuilder b(name, 0, false);
    const std::uint32_t scratch = b.newLocal();
    b.iconst(0);
    b.istore(scratch);
    emitElements(b, rng, max_elements, 0, scratch);
    b.ret();
    return b.build();
}

bytecode::Program
randomStructuredProgram(std::uint64_t seed, std::uint32_t max_elements)
{
    support::Rng rng(seed);
    bytecode::Program program;
    program.globalSize = 4;
    program.methods.push_back(
        randomStructuredMethod(rng, "main", max_elements));
    program.mainMethod = 0;
    const bytecode::VerifyResult verified =
        bytecode::verifyProgram(program);
    PEP_ASSERT_MSG(verified.ok,
                   "random program invalid: " << verified.error);
    return program;
}

} // namespace pep::test
