#ifndef PEP_TESTS_COMMON_FIXTURES_HH
#define PEP_TESTS_COMMON_FIXTURES_HH

/**
 * @file
 * Shared test helpers: canned assembly programs and a random-CFG
 * method generator for property tests.
 */

#include <string>

#include "bytecode/assembler.hh"
#include "bytecode/method.hh"
#include "support/rng.hh"
#include "workload/program_builder.hh"

namespace pep::test {

/** A single loop counting a local down from 10, one diamond inside. */
inline bytecode::Program
simpleLoopProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 4
.method main 0 2
    iconst 10
    istore 0
loop:
    iload 0
    ifle done
    irnd
    iconst 1
    iand
    ifeq skip
    iinc 1 1
skip:
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
}

/** The paper's Figure 1 routine: if-else diamond inside a loop. */
inline bytecode::Program
figure1Program()
{
    // CFG shape: A -> B (loop header); B -> C|D; C/D -> E; E -> B | F
    return bytecode::assembleOrDie(R"(
.globals 1
.method main 0 2
    iconst 6
    istore 0
header:
    iload 0
    ifle exit
    irnd
    iconst 1
    iand
    ifeq right
    iinc 1 2
    goto join
right:
    iinc 1 5
join:
    iinc 0 -1
    goto header
exit:
    return
.end
.main main
)");
}

/** Calls, value returns, and a switch. */
inline bytecode::Program
callSwitchProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 4
.method pick 0 1 returns
    irnd
    iconst 3
    iand
    ireturn
.end
.method main 0 3
    iconst 12
    istore 0
loop:
    iload 0
    ifle done
    invoke pick
    tableswitch 0 dflt c0 c1 c2
c0: iinc 1 1
    goto next
c1: iinc 1 2
    goto next
c2: iinc 1 3
    goto next
dflt:
    iinc 1 4
next:
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
}

/**
 * Generate a random, structured (hence reducible) method for property
 * tests: nested sequences of diamonds, switches, and loops. All branch
 * conditions consume Irnd so every path is dynamically reachable.
 */
bytecode::Method randomStructuredMethod(support::Rng &rng,
                                        const std::string &name,
                                        std::uint32_t max_elements);

/** A program wrapping one random method as main. */
bytecode::Program randomStructuredProgram(std::uint64_t seed,
                                          std::uint32_t max_elements);

} // namespace pep::test

#endif // PEP_TESTS_COMMON_FIXTURES_HH
