/**
 * @file
 * Spanning-tree (event counting) placement tests. Core property: for
 * every Entry->Exit DAG path, the chord increments sum (mod 2^64) to
 * the path's Ball-Larus number — with increments on strictly fewer
 * edges than direct placement needs.
 */

#include <gtest/gtest.h>

#include <functional>

#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "profile/reconstruct.hh"
#include "profile/spanning_placement.hh"

namespace pep::profile {
namespace {

using bytecode::MethodCfg;

struct Prepared
{
    MethodCfg cfg;
    PDag pdag;
    Numbering numbering;
    SpanningPlacement placement;
};

DagEdgeFreqs
randomFreqs(const PDag &pdag, std::uint64_t seed)
{
    support::Rng rng(seed);
    DagEdgeFreqs freqs(pdag.dag.numBlocks());
    for (cfg::BlockId v = 0; v < pdag.dag.numBlocks(); ++v) {
        freqs[v].resize(pdag.dag.succs(v).size());
        for (double &f : freqs[v])
            f = static_cast<double>(rng.nextBounded(10'000));
    }
    return freqs;
}

Prepared
prepare(const bytecode::Program &program, DagMode mode,
        bool with_freqs, std::uint64_t seed = 11)
{
    Prepared p;
    p.cfg = bytecode::buildCfg(program.methods[program.mainMethod]);
    p.pdag = buildPDag(p.cfg, mode);
    p.numbering = numberPaths(p.pdag, NumberingScheme::BallLarus);
    if (with_freqs) {
        const DagEdgeFreqs freqs = randomFreqs(p.pdag, seed);
        p.placement =
            computeSpanningPlacement(p.pdag, p.numbering, &freqs);
    } else {
        p.placement =
            computeSpanningPlacement(p.pdag, p.numbering, nullptr);
    }
    return p;
}

/** Walk every Entry->Exit path; check chord sums reproduce numbers. */
void
expectChordSumsMatch(const Prepared &p)
{
    std::size_t paths_checked = 0;
    std::function<void(cfg::BlockId, std::uint64_t, std::uint64_t)>
        walk = [&](cfg::BlockId node, std::uint64_t val_sum,
                   std::uint64_t inc_sum) {
            if (node == p.pdag.dag.exit()) {
                EXPECT_EQ(inc_sum, val_sum);
                ++paths_checked;
                return;
            }
            const auto &succs = p.pdag.dag.succs(node);
            for (std::uint32_t i = 0; i < succs.size(); ++i) {
                walk(succs[i], val_sum + p.numbering.val[node][i],
                     inc_sum + p.placement.increment[node][i]);
            }
        };
    walk(p.pdag.dag.entry(), 0, 0);
    EXPECT_EQ(paths_checked, p.numbering.totalPaths);
}

TEST(Spanning, ChordSumsEqualPathNumbersFigure1)
{
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        for (const bool with_freqs : {false, true}) {
            const Prepared p =
                prepare(test::figure1Program(), mode, with_freqs);
            expectChordSumsMatch(p);
        }
    }
}

TEST(Spanning, ChordSumsEqualPathNumbersRandomPrograms)
{
    int checked = 0;
    for (std::uint64_t seed = 500; seed < 540; ++seed) {
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 8);
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            const Prepared p = prepare(program, mode, true, seed);
            if (p.numbering.totalPaths > 2000)
                continue;
            ++checked;
            expectChordSumsMatch(p);
        }
    }
    EXPECT_GT(checked, 25);
}

TEST(Spanning, TreeEdgesCarryNoIncrement)
{
    const Prepared p =
        prepare(test::callSwitchProgram(), DagMode::HeaderSplit, true);
    for (cfg::BlockId v = 0; v < p.pdag.dag.numBlocks(); ++v) {
        for (std::uint32_t i = 0; i < p.pdag.dag.succs(v).size();
             ++i) {
            if (p.placement.inTree[v][i]) {
                EXPECT_EQ(p.placement.increment[v][i], 0u);
            }
        }
    }
}

TEST(Spanning, TreeIsSpanningOnReachableComponent)
{
    const Prepared p =
        prepare(test::callSwitchProgram(), DagMode::HeaderSplit, true);
    // Tree edge count == nodes - 1 - (virtual edge counts as one
    // union) for a connected DAG: nodes - 2 real tree edges.
    std::size_t tree_edges = 0;
    for (const auto &per_node : p.placement.inTree) {
        for (bool in : per_node)
            tree_edges += in ? 1 : 0;
    }
    EXPECT_EQ(tree_edges, p.pdag.dag.numBlocks() - 2);
    EXPECT_EQ(p.placement.numChords,
              p.pdag.dag.numEdges() - tree_edges);
}

TEST(Spanning, HotEdgesPreferredInTree)
{
    // A diamond: one arm 99x hotter. The hot arm must be in the tree
    // (uninstrumented); increments land on the cold chord side.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    irnd
    ifeq cold
    iinc 0 1
    goto join
cold:
    iinc 0 2
join:
    return
.end
.main main
)");
    Prepared p;
    p.cfg = bytecode::buildCfg(program.methods[0]);
    p.pdag = buildPDag(p.cfg, DagMode::HeaderSplit);
    p.numbering = numberPaths(p.pdag, NumberingScheme::BallLarus);

    // Flow-consistent frequencies: 990 executions take the hot arm
    // (branch successor 0), 10 the cold arm.
    const PathReconstructor reconstructor(p.cfg, p.pdag, p.numbering);
    std::vector<std::vector<std::uint64_t>> counts(
        p.cfg.graph.numBlocks());
    for (cfg::BlockId b = 0; b < p.cfg.graph.numBlocks(); ++b)
        counts[b].assign(p.cfg.graph.succs(b).size(), 0);
    ASSERT_EQ(p.numbering.totalPaths, 2u);
    for (std::uint64_t n = 0; n < 2; ++n) {
        const ReconstructedPath path = reconstructor.reconstruct(n);
        bool hot = false;
        for (const cfg::EdgeRef &e : path.cfgEdges) {
            if (p.cfg.terminator[e.src] ==
                    bytecode::TerminatorKind::Cond &&
                e.index == 0) {
                hot = true;
            }
        }
        for (const cfg::EdgeRef &e : path.cfgEdges)
            counts[e.src][e.index] += hot ? 990 : 10;
    }
    const DagEdgeFreqs freqs =
        estimateDagEdgeFrequencies(p.cfg, p.pdag, counts);
    p.placement = computeSpanningPlacement(p.pdag, p.numbering, &freqs);

    // Chord count: |E| - (|V| - 2) = 2 for this diamond (the virtual
    // EXIT->ENTRY edge adds one cycle). A maximal-cost tree minimizes
    // total chord frequency: one chord on the cold arm (10) and one
    // 990-weight chord breaking the hot cycle — never a 1000-weight
    // entry/exit edge.
    EXPECT_EQ(p.placement.numChords, 2u);
    double chord_weight = 0.0;
    bool cold_chord = false;
    for (cfg::BlockId v = 0; v < p.pdag.dag.numBlocks(); ++v) {
        for (std::uint32_t i = 0; i < p.pdag.dag.succs(v).size();
             ++i) {
            if (!p.placement.inTree[v][i]) {
                chord_weight += freqs[v][i];
                cold_chord = cold_chord || freqs[v][i] <= 10.0;
            }
        }
    }
    EXPECT_TRUE(cold_chord);
    EXPECT_NEAR(chord_weight, 1000.0, 0.1);
}

TEST(Spanning, ChordCountBoundedByCycleSpace)
{
    // The chord count is exactly |E| - (|V| - 2): the cycle-space
    // dimension of the DAG plus the virtual edge. It is usually (not
    // always — direct placement skips zero-valued edges) no larger
    // than direct placement's site count.
    int spanning_wins = 0;
    int comparisons = 0;
    for (std::uint64_t seed = 600; seed < 620; ++seed) {
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 8);
        const MethodCfg cfg = bytecode::buildCfg(program.methods[0]);
        const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
        const Numbering numbering =
            numberPaths(pdag, NumberingScheme::BallLarus);
        if (numbering.overflow)
            continue;
        const InstrumentationPlan direct =
            buildInstrumentationPlan(cfg, pdag, numbering);
        const SpanningPlacement spanning =
            computeSpanningPlacement(pdag, numbering, nullptr);
        ++comparisons;
        EXPECT_EQ(spanning.numChords,
                  pdag.dag.numEdges() - (pdag.dag.numBlocks() - 2));
        // Direct placement sites: nonzero edges + the per-header
        // dummy-edge end/restart pair.
        if (spanning.numChords <= direct.numInstrumentedEdges +
                                      2 * cfg.numLoopHeaders()) {
            ++spanning_wins;
        }
    }
    EXPECT_GT(comparisons, 10);
    EXPECT_GE(spanning_wins, comparisons * 4 / 5);
}

TEST(Spanning, ApplyRefreshesFlattenedTables)
{
    // applySpanningPlacement rewrites the nested edge actions; the
    // flattened dispatch mirror must be rebuilt with it, or the hot
    // path keeps executing the pre-spanning increments.
    const bytecode::Program program = test::figure1Program();
    const MethodCfg cfg = bytecode::buildCfg(program.methods[0]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const Numbering numbering =
        numberPaths(pdag, NumberingScheme::BallLarus);
    InstrumentationPlan plan =
        buildInstrumentationPlan(cfg, pdag, numbering);
    const DagEdgeFreqs freqs = randomFreqs(pdag, 7);
    const SpanningPlacement spanning =
        computeSpanningPlacement(pdag, numbering, &freqs);
    applySpanningPlacement(cfg, pdag, spanning, plan);

    ASSERT_EQ(plan.edgeBase.size(), cfg.graph.numBlocks() + 1);
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < cfg.graph.succs(b).size();
             ++i) {
            const cfg::EdgeRef edge{b, i};
            const EdgeAction &nested = plan.edgeActions[b][i];
            const EdgeAction &flat = plan.flatAction(edge);
            EXPECT_EQ(flat.increment, nested.increment);
            EXPECT_EQ(flat.endsPath, nested.endsPath);
            EXPECT_EQ(flat.endAdd, nested.endAdd);
            EXPECT_EQ(flat.restart, nested.restart);
        }
    }
}

TEST(Spanning, AppliedPlanReproducesNumbersAtRuntimeSemantics)
{
    // Replay the spanning plan's register semantics along every path
    // (the same simulation as instr_plan_test, but with chord
    // increments).
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        const bytecode::Program program = test::figure1Program();
        const MethodCfg cfg = bytecode::buildCfg(program.methods[0]);
        const PDag pdag = buildPDag(cfg, mode);
        const Numbering numbering =
            numberPaths(pdag, NumberingScheme::BallLarus);
        InstrumentationPlan plan =
            buildInstrumentationPlan(cfg, pdag, numbering);
        const DagEdgeFreqs freqs = randomFreqs(pdag, 3);
        const SpanningPlacement spanning =
            computeSpanningPlacement(pdag, numbering, &freqs);
        applySpanningPlacement(cfg, pdag, spanning, plan);
        const PathReconstructor reconstructor(cfg, pdag, numbering);

        for (std::uint64_t n = 0; n < numbering.totalPaths; ++n) {
            const ReconstructedPath path = reconstructor.reconstruct(n);
            std::uint64_t reg = 0;
            if (path.startHeader != cfg::kInvalidBlock) {
                if (mode == DagMode::HeaderSplit) {
                    reg = plan.headerActions[path.startHeader].restart;
                } else {
                    for (const cfg::EdgeRef &back : cfg.backEdges) {
                        if (cfg.graph.edgeDst(back) ==
                            path.startHeader) {
                            reg = plan.edgeActions[back.src]
                                      [back.index].restart;
                            break;
                        }
                    }
                }
            }
            std::uint64_t result = 0;
            bool ended = false;
            for (std::size_t i = 0; i < path.cfgEdges.size(); ++i) {
                const cfg::EdgeRef e = path.cfgEdges[i];
                const EdgeAction &action =
                    plan.edgeActions[e.src][e.index];
                if (action.endsPath) {
                    result = reg + action.endAdd;
                    ended = true;
                    break;
                }
                reg += action.increment;
            }
            if (!ended) {
                if (path.endHeader != cfg::kInvalidBlock) {
                    result = reg +
                             plan.headerActions[path.endHeader].endAdd;
                } else {
                    result = reg;
                }
            }
            EXPECT_EQ(result, n) << "mode "
                                 << (mode == DagMode::HeaderSplit
                                         ? "split"
                                         : "trunc");
        }
    }
}

} // namespace
} // namespace pep::profile
