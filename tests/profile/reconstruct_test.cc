/**
 * @file
 * Greedy path reconstruction tests: exact inversion of numbering for
 * every path number, CFG interpretation (start/end headers, edge
 * sequences, branch counts), and failure on out-of-range numbers.
 */

#include <gtest/gtest.h>

#include <set>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "profile/edge_profile.hh"
#include "profile/path_profile.hh"
#include "profile/reconstruct.hh"
#include "support/panic.hh"
#include "testing/generator.hh"

namespace pep::profile {
namespace {

using bytecode::MethodCfg;

namespace fz = pep::testing;

struct Prepared
{
    MethodCfg cfg;
    PDag pdag;
    Numbering numbering;
    std::unique_ptr<PathReconstructor> reconstructor;
};

Prepared
prepare(const bytecode::Program &program, DagMode mode,
        NumberingScheme scheme = NumberingScheme::BallLarus)
{
    Prepared p;
    p.cfg = bytecode::buildCfg(program.methods[program.mainMethod]);
    p.pdag = buildPDag(p.cfg, mode);
    if (scheme == NumberingScheme::BallLarus) {
        p.numbering = numberPaths(p.pdag, scheme);
    } else {
        DagEdgeFreqs freqs(p.pdag.dag.numBlocks());
        support::Rng rng(3);
        for (cfg::BlockId v = 0; v < p.pdag.dag.numBlocks(); ++v) {
            freqs[v].resize(p.pdag.dag.succs(v).size());
            for (double &f : freqs[v])
                f = static_cast<double>(rng.nextBounded(100));
        }
        p.numbering = numberPaths(p.pdag, scheme, &freqs);
    }
    p.reconstructor = std::make_unique<PathReconstructor>(
        p.cfg, p.pdag, p.numbering);
    return p;
}

/** Sum the edge values of a DAG edge sequence. */
std::uint64_t
sumValues(const Numbering &numbering,
          const std::vector<cfg::EdgeRef> &edges)
{
    std::uint64_t sum = 0;
    for (const cfg::EdgeRef &e : edges)
        sum += numbering.val[e.src][e.index];
    return sum;
}

TEST(Reconstruct, InvertsEveryNumberBothModes)
{
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        const Prepared p = prepare(test::figure1Program(), mode);
        std::set<std::vector<cfg::EdgeRef>> seen;
        for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
            const auto edges = p.reconstructor->reconstructDagEdges(n);
            EXPECT_EQ(sumValues(p.numbering, edges), n);
            // The walk must be connected Entry -> Exit.
            ASSERT_FALSE(edges.empty());
            EXPECT_EQ(edges.front().src, p.pdag.dag.entry());
            EXPECT_EQ(p.pdag.dag.edgeDst(edges.back()),
                      p.pdag.dag.exit());
            for (std::size_t i = 1; i < edges.size(); ++i) {
                EXPECT_EQ(p.pdag.dag.edgeDst(edges[i - 1]),
                          edges[i].src);
            }
            EXPECT_TRUE(seen.insert(edges).second)
                << "two numbers produced the same path";
        }
    }
}

TEST(Reconstruct, InvertsSmartNumberingToo)
{
    const Prepared p = prepare(test::callSwitchProgram(),
                               DagMode::HeaderSplit,
                               NumberingScheme::Smart);
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const auto edges = p.reconstructor->reconstructDagEdges(n);
        EXPECT_EQ(sumValues(p.numbering, edges), n);
    }
}

TEST(Reconstruct, RandomProgramsRoundTrip)
{
    int checked = 0;
    for (std::uint64_t seed = 300; seed < 330; ++seed) {
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 8);
        const Prepared p = prepare(program, DagMode::HeaderSplit);
        if (p.numbering.totalPaths > 2000)
            continue;
        ++checked;
        for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
            const auto edges = p.reconstructor->reconstructDagEdges(n);
            ASSERT_EQ(sumValues(p.numbering, edges), n)
                << "seed " << seed;
        }
    }
    EXPECT_GT(checked, 10);
}

TEST(Reconstruct, HeaderSplitPathAnnotations)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    std::size_t start_at_header = 0;
    std::size_t end_at_header = 0;
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const ReconstructedPath path = p.reconstructor->reconstruct(n);
        if (path.startHeader != cfg::kInvalidBlock) {
            ++start_at_header;
            EXPECT_TRUE(p.cfg.isLoopHeader[path.startHeader]);
            // First CFG edge leaves the start header.
            ASSERT_FALSE(path.cfgEdges.empty());
            EXPECT_EQ(path.cfgEdges.front().src, path.startHeader);
        }
        if (path.endHeader != cfg::kInvalidBlock) {
            ++end_at_header;
            EXPECT_TRUE(p.cfg.isLoopHeader[path.endHeader]);
            // Last CFG edge enters the end header.
            ASSERT_FALSE(path.cfgEdges.empty());
            EXPECT_EQ(p.cfg.graph.edgeDst(path.cfgEdges.back()),
                      path.endHeader);
        }
    }
    // figure1: paths 2 and 3 both start and end at the header; path 1
    // ends there; path 4 starts there.
    EXPECT_EQ(start_at_header, 3u);
    EXPECT_EQ(end_at_header, 3u);
}

TEST(Reconstruct, BackEdgeModeCreditsBackEdge)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::BackEdgeTruncate);
    bool saw_back_edge_path = false;
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const ReconstructedPath path = p.reconstructor->reconstruct(n);
        if (path.endHeader == cfg::kInvalidBlock)
            continue;
        saw_back_edge_path = true;
        // The final CFG edge must be one of the method's back edges.
        ASSERT_FALSE(path.cfgEdges.empty());
        const cfg::EdgeRef last = path.cfgEdges.back();
        bool is_back = false;
        for (const cfg::EdgeRef &back : p.cfg.backEdges)
            is_back = is_back || (back == last);
        EXPECT_TRUE(is_back);
    }
    EXPECT_TRUE(saw_back_edge_path);
}

TEST(Reconstruct, BranchCountsMatchEdgeSources)
{
    const Prepared p =
        prepare(test::callSwitchProgram(), DagMode::HeaderSplit);
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const ReconstructedPath path = p.reconstructor->reconstruct(n);
        std::uint32_t branches = 0;
        for (const cfg::EdgeRef &e : path.cfgEdges) {
            const auto kind = p.cfg.terminator[e.src];
            if (kind == bytecode::TerminatorKind::Cond ||
                kind == bytecode::TerminatorKind::Switch) {
                ++branches;
            }
        }
        EXPECT_EQ(path.numBranches, branches);
    }
}

TEST(ReconstructPartial, PrefixOfEveryPathIsRecovered)
{
    // For every full path and every prefix of it, the partial register
    // value (sum of prefix edge values) must reconstruct to exactly
    // that prefix, modulo a trailing run of zero-valued edges that a
    // partial value cannot pin down.
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        const Prepared p = prepare(test::callSwitchProgram(), mode);
        for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
            const auto edges = p.reconstructor->reconstructDagEdges(n);
            std::uint64_t partial_sum = 0;
            for (std::size_t len = 0; len <= edges.size(); ++len) {
                if (len > 0) {
                    partial_sum +=
                        p.numbering.val[edges[len - 1].src]
                                       [edges[len - 1].index];
                }
                const auto partial =
                    p.reconstructor->reconstructPartial(partial_sum);
                // The recovered prefix is a prefix of the true one...
                ASSERT_LE(partial.dagEdges.size(), len);
                for (std::size_t i = 0; i < partial.dagEdges.size();
                     ++i) {
                    ASSERT_TRUE(partial.dagEdges[i] == edges[i])
                        << "path " << n << " prefix length " << len;
                }
                // ...and everything it omitted is zero-valued (the
                // documented ambiguity).
                for (std::size_t i = partial.dagEdges.size(); i < len;
                     ++i) {
                    EXPECT_EQ(p.numbering.val[edges[i].src]
                                             [edges[i].index],
                              0u);
                }
                // If it omitted anything, it must say so.
                if (partial.dagEdges.size() < len) {
                    EXPECT_TRUE(partial.ambiguous);
                }
            }
        }
    }
}

TEST(ReconstructPartial, AtMostOneZeroValuedEdgePerNode)
{
    // The property that bounds the ambiguity: values are strict
    // prefix sums, so no node has two zero-valued out-edges.
    for (std::uint64_t seed = 700; seed < 720; ++seed) {
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 8);
        const Prepared p = prepare(program, DagMode::HeaderSplit);
        for (cfg::BlockId v = 0; v < p.pdag.dag.numBlocks(); ++v) {
            int zeros = 0;
            for (std::uint32_t i = 0;
                 i < p.pdag.dag.succs(v).size(); ++i) {
                if (p.numbering.val[v][i] == 0)
                    ++zeros;
            }
            EXPECT_LE(zeros, 1) << "seed " << seed << " node " << v;
        }
    }
}

TEST(ReconstructPartial, FullValueYieldsFullPathWhenUnambiguous)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const auto partial = p.reconstructor->reconstructPartial(n);
        if (!partial.ambiguous) {
            EXPECT_EQ(partial.endNode, p.pdag.dag.exit());
            const auto full = p.reconstructor->reconstructDagEdges(n);
            EXPECT_EQ(partial.dagEdges, full);
        }
    }
}

TEST(ReconstructPartial, RejectsImpossibleValue)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    EXPECT_THROW(
        p.reconstructor->reconstructPartial(p.numbering.totalPaths),
        support::PanicError);
}

TEST(Reconstruct, OutOfRangeNumberPanics)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    EXPECT_THROW(
        p.reconstructor->reconstructDagEdges(p.numbering.totalPaths),
        support::PanicError);
}

// ---- property tests over generated programs -------------------------------

/** Expect in-flow == out-flow at every non-header code block. */
void
expectFlowConservation(const MethodCfg &cfg,
                       const MethodEdgeProfile &profile)
{
    const cfg::Graph &graph = cfg.graph;
    std::vector<std::uint64_t> in(graph.numBlocks(), 0);
    std::vector<std::uint64_t> out(graph.numBlocks(), 0);
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        const auto &succs = graph.succs(b);
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            const std::uint64_t count = profile.counts()[b][i];
            out[b] += count;
            in[succs[i]] += count;
        }
    }
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        if (!cfg.isCodeBlock(b) || cfg.isLoopHeader[b])
            continue;
        EXPECT_EQ(in[b], out[b]) << "block " << b;
    }
}

TEST(ReconstructProperty, AllPathsEdgeProfileConservesFlow)
{
    // Accumulating every path of a method once yields an edge profile
    // that conserves flow at every non-header code block: paths only
    // begin and end at entry, exit, and loop headers, so everywhere
    // else each entering walk also leaves.
    std::size_t methods_checked = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        fz::FuzzSpec spec;
        spec.seed = seed;
        const bytecode::Program program = fz::generateProgram(spec);
        for (const bytecode::Method &method : program.methods) {
            const MethodCfg cfg = bytecode::buildCfg(method);
            for (const DagMode mode :
                 {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
                const PDag pdag = buildPDag(cfg, mode);
                const Numbering numbering =
                    numberPaths(pdag, NumberingScheme::BallLarus);
                if (numbering.overflow ||
                    numbering.totalPaths > 512) {
                    continue;
                }
                const PathReconstructor reconstructor(cfg, pdag,
                                                      numbering);
                MethodPathProfile path_profile;
                for (std::uint64_t n = 0; n < numbering.totalPaths;
                     ++n) {
                    path_profile.addSample(n);
                }
                MethodEdgeProfile edge_profile(cfg);
                accumulateEdgeProfile(edge_profile, path_profile,
                                      reconstructor);
                SCOPED_TRACE("seed " + std::to_string(seed));
                expectFlowConservation(cfg, edge_profile);
                ++methods_checked;
            }
        }
    }
    EXPECT_GT(methods_checked, 20u);
}

TEST(ReconstructProperty, ZeroSampleProfileYieldsEmptyEdgeProfile)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);

    // No samples at all: accumulation must leave the profile empty.
    MethodPathProfile empty_paths;
    MethodEdgeProfile edge_profile(p.cfg);
    accumulateEdgeProfile(edge_profile, empty_paths, *p.reconstructor);
    EXPECT_TRUE(edge_profile.empty());
    EXPECT_EQ(edge_profile.totalCount(), 0u);

    // A record with an explicit zero count contributes zero weight to
    // every edge — the profile stays empty even though the record's
    // expansion is cached.
    MethodPathProfile zero_paths;
    zero_paths.addSample(0, 0);
    accumulateEdgeProfile(edge_profile, zero_paths, *p.reconstructor);
    EXPECT_TRUE(edge_profile.empty());
    EXPECT_EQ(zero_paths.totalCount(), 0u);
    EXPECT_EQ(zero_paths.numDistinctPaths(), 1u);
}

TEST(ReconstructProperty, StraightLineMethodHasOnePathOverEveryEdge)
{
    // A branch-free method has exactly one path, and that path's CFG
    // expansion covers every edge of the graph exactly once.
    const bytecode::AssembleResult assembled = bytecode::assemble(
        ".globals 1\n"
        ".method straight 0 2\n"
        "    iconst 3\n"
        "    istore 0\n"
        "    iload 0\n"
        "    iconst 4\n"
        "    iadd\n"
        "    istore 1\n"
        "    return\n"
        ".end\n"
        ".main straight\n");
    ASSERT_TRUE(assembled.ok) << assembled.error;

    const Prepared p = prepare(assembled.program,
                               DagMode::HeaderSplit);
    ASSERT_EQ(p.numbering.totalPaths, 1u);
    EXPECT_FALSE(p.numbering.overflow);

    const ReconstructedPath path = p.reconstructor->reconstruct(0);
    EXPECT_EQ(path.startHeader, cfg::kInvalidBlock);
    EXPECT_EQ(path.endHeader, cfg::kInvalidBlock);
    EXPECT_EQ(path.numBranches, 0u);

    // Every CFG edge appears exactly once in the expansion.
    MethodEdgeProfile edge_profile(p.cfg);
    for (const cfg::EdgeRef &e : path.cfgEdges)
        edge_profile.addEdge(e);
    const cfg::Graph &graph = p.cfg.graph;
    std::size_t edges = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            EXPECT_EQ(edge_profile.counts()[b][i], 1u)
                << "edge " << b << ":" << i;
            ++edges;
        }
    }
    EXPECT_EQ(path.cfgEdges.size(), edges);
}

TEST(Reconstruct, OverflowedNumberingRefused)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    Numbering overflowed = p.numbering;
    overflowed.overflow = true;
    EXPECT_THROW(PathReconstructor(p.cfg, p.pdag, overflowed),
                 support::PanicError);
}

} // namespace
} // namespace pep::profile
