/**
 * @file
 * P-DAG construction tests: header splitting (PEP) and back-edge
 * truncation (classic BLPP), dummy-edge bookkeeping, CFG<->DAG edge
 * maps, and acyclicity — including self-loops and irreducible CFGs.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "cfg/analysis.hh"
#include "common/fixtures.hh"
#include "profile/pdag.hh"

namespace pep::profile {
namespace {

using bytecode::MethodCfg;
using bytecode::buildCfg;

MethodCfg
loopCfg()
{
    const bytecode::Program p = test::simpleLoopProgram();
    return buildCfg(p.methods[p.mainMethod]);
}

TEST(PDagHeaderSplit, SplitsEveryHeader)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);

    std::size_t tops = 0;
    std::size_t rests = 0;
    for (cfg::BlockId node = 0; node < pdag.dag.numBlocks(); ++node) {
        if (pdag.role[node] == NodeRole::HeaderTop)
            ++tops;
        if (pdag.role[node] == NodeRole::HeaderRest)
            ++rests;
    }
    EXPECT_EQ(tops, cfg.numLoopHeaders());
    EXPECT_EQ(rests, cfg.numLoopHeaders());

    // DAG has one extra node per split header.
    EXPECT_EQ(pdag.dag.numBlocks(),
              cfg.graph.numBlocks() + cfg.numLoopHeaders());
}

TEST(PDagHeaderSplit, HeaderTopGoesOnlyToExit)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    for (cfg::BlockId node = 0; node < pdag.dag.numBlocks(); ++node) {
        if (pdag.role[node] != NodeRole::HeaderTop)
            continue;
        ASSERT_EQ(pdag.dag.succs(node).size(), 1u);
        EXPECT_EQ(pdag.dag.succs(node)[0], pdag.dag.exit());
        EXPECT_EQ(pdag.meta(cfg::EdgeRef{node, 0}).kind,
                  DagEdgeKind::DummyExit);
    }
}

TEST(PDagHeaderSplit, HeaderRestEnteredOnlyFromEntry)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    for (cfg::BlockId node = 0; node < pdag.dag.numBlocks(); ++node) {
        if (pdag.role[node] != NodeRole::HeaderRest)
            continue;
        for (cfg::BlockId pred : pdag.dag.preds(node))
            EXPECT_EQ(pred, pdag.dag.entry());
    }
}

TEST(PDagHeaderSplit, EdgesIntoHeaderRouteToTop)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const cfg::Graph &graph = cfg.graph;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            const cfg::BlockId dst = graph.succs(b)[i];
            const cfg::EdgeRef dag_edge = pdag.dagEdgeForCfgEdge[b][i];
            ASSERT_NE(dag_edge.src, cfg::kInvalidBlock);
            const cfg::BlockId dag_dst = pdag.dag.edgeDst(dag_edge);
            if (cfg.isLoopHeader[dst]) {
                EXPECT_EQ(pdag.role[dag_dst], NodeRole::HeaderTop);
                EXPECT_EQ(pdag.cfgBlock[dag_dst], dst);
            }
        }
    }
}

TEST(PDagHeaderSplit, DummyEdgeTablesFilled)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.isLoopHeader[b]) {
            EXPECT_NE(pdag.headerDummyEntry[b].src, cfg::kInvalidBlock);
            EXPECT_NE(pdag.headerDummyExit[b].src, cfg::kInvalidBlock);
            EXPECT_EQ(pdag.headerDummyEntry[b].src, pdag.dag.entry());
        } else {
            EXPECT_EQ(pdag.headerDummyEntry[b].src, cfg::kInvalidBlock);
        }
    }
}

TEST(PDagBackEdge, TruncatesBackEdgesOnly)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::BackEdgeTruncate);

    // No split nodes in this mode.
    EXPECT_EQ(pdag.dag.numBlocks(), cfg.graph.numBlocks());

    std::size_t truncated = 0;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < cfg.graph.succs(b).size(); ++i) {
            if (pdag.dagEdgeForCfgEdge[b][i].src == cfg::kInvalidBlock)
                ++truncated;
        }
    }
    EXPECT_EQ(truncated, cfg.backEdges.size());
    EXPECT_EQ(pdag.backEdgeDummyExit.size(), cfg.backEdges.size());
}

TEST(PDagBackEdge, DummyExitRecordsItsBackEdge)
{
    const MethodCfg cfg = loopCfg();
    const PDag pdag = buildPDag(cfg, DagMode::BackEdgeTruncate);
    for (std::size_t k = 0; k < cfg.backEdges.size(); ++k) {
        const cfg::EdgeRef dummy = pdag.backEdgeDummyExit[k];
        const DagEdgeMeta &meta = pdag.meta(dummy);
        EXPECT_EQ(meta.kind, DagEdgeKind::DummyExit);
        EXPECT_TRUE(meta.cfgEdge == cfg.backEdges[k]);
    }
}

TEST(PDag, SelfLoopHandledInBothModes)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.method main 0 1
    iconst 5
    istore 0
spin:
    iload 0
    iinc 0 -1
    ifgt spin
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(p.methods[0]);
    ASSERT_EQ(cfg.numLoopHeaders(), 1u);
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        const PDag pdag = buildPDag(cfg, mode);
        const cfg::DfsResult dfs = cfg::depthFirstSearch(pdag.dag);
        EXPECT_TRUE(dfs.retreatingEdges.empty());
    }
}

TEST(PDag, IrreducibleCfgStillYieldsDag)
{
    // Two entries into a cycle: retreating-edge target treated as a
    // header, so truncation still breaks every cycle.
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.method main 0 1
    irnd
    ifeq enter_b
    goto enter_c
enter_b:
    iinc 0 1
    goto c
enter_c:
    iinc 0 2
c:
    irnd
    ifeq done
    goto enter_b
done:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(p.methods[0]);
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        const PDag pdag = buildPDag(cfg, mode);
        const cfg::DfsResult dfs = cfg::depthFirstSearch(pdag.dag);
        EXPECT_TRUE(dfs.retreatingEdges.empty());
    }
}

TEST(PDag, RandomProgramsAlwaysAcyclic)
{
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
        const bytecode::Program p =
            test::randomStructuredProgram(seed, 10);
        const MethodCfg cfg = buildCfg(p.methods[0]);
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            const PDag pdag = buildPDag(cfg, mode);
            const cfg::DfsResult dfs =
                cfg::depthFirstSearch(pdag.dag);
            EXPECT_TRUE(dfs.retreatingEdges.empty())
                << "seed " << seed;
            EXPECT_TRUE(pdag.dag.validate().empty()) << "seed " << seed;
        }
    }
}

TEST(PDag, MethodWithoutLoopsIsUnchanged)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.method main 0 1
    irnd
    ifeq a
    iinc 0 1
a:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(p.methods[0]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    EXPECT_EQ(pdag.dag.numBlocks(), cfg.graph.numBlocks());
    EXPECT_EQ(pdag.dag.numEdges(), cfg.graph.numEdges());
}

} // namespace
} // namespace pep::profile
