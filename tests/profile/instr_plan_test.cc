/**
 * @file
 * Instrumentation-plan tests, including the central simulation
 * property: replaying the plan's register semantics along any
 * reconstructed path reproduces that path's number — i.e., the plan
 * really computes Ball-Larus numbers at run time.
 */

#include <gtest/gtest.h>

#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "profile/instr_plan.hh"
#include "profile/reconstruct.hh"

namespace pep::profile {
namespace {

using bytecode::MethodCfg;

struct Prepared
{
    MethodCfg cfg;
    PDag pdag;
    Numbering numbering;
    InstrumentationPlan plan;
    std::unique_ptr<PathReconstructor> reconstructor;
};

Prepared
prepare(const bytecode::Program &program, DagMode mode)
{
    Prepared p;
    p.cfg = bytecode::buildCfg(program.methods[program.mainMethod]);
    p.pdag = buildPDag(p.cfg, mode);
    p.numbering = numberPaths(p.pdag, NumberingScheme::BallLarus);
    p.plan = buildInstrumentationPlan(p.cfg, p.pdag, p.numbering);
    p.reconstructor = std::make_unique<PathReconstructor>(
        p.cfg, p.pdag, p.numbering);
    return p;
}

/**
 * Execute the plan's register semantics over a reconstructed path's
 * CFG edges and return the completed path number. Mirrors what the
 * interpreter + PathEngine do at run time.
 */
std::uint64_t
simulate(const Prepared &p, const ReconstructedPath &path)
{
    std::uint64_t reg = 0;

    // A path starting at a header begins with r = restart.
    if (path.startHeader != cfg::kInvalidBlock) {
        if (p.plan.mode == DagMode::HeaderSplit) {
            reg = p.plan.headerActions[path.startHeader].restart;
        } else {
            // In back-edge mode the restart is attached to the back
            // edge that *ended the previous path*; all back edges into
            // one header share the header's DummyEntry value, so any
            // of them gives the restart value.
            for (const cfg::EdgeRef &back : p.cfg.backEdges) {
                if (p.cfg.graph.edgeDst(back) == path.startHeader) {
                    reg = p.plan.edgeActions[back.src][back.index]
                              .restart;
                    break;
                }
            }
        }
    }

    for (std::size_t i = 0; i < path.cfgEdges.size(); ++i) {
        const cfg::EdgeRef e = path.cfgEdges[i];
        const EdgeAction &action = p.plan.edgeActions[e.src][e.index];
        if (action.endsPath) {
            // Must be the last edge (a back edge, BackEdgeTruncate).
            EXPECT_EQ(i, path.cfgEdges.size() - 1);
            return reg + action.endAdd;
        }
        reg += action.increment;
    }

    if (path.endHeader != cfg::kInvalidBlock) {
        // HeaderSplit: path ends at the header's yieldpoint.
        EXPECT_TRUE(p.plan.headerActions[path.endHeader].endsPath);
        return reg + p.plan.headerActions[path.endHeader].endAdd;
    }
    return reg; // ended at method exit
}

TEST(InstrPlan, SimulationReproducesEveryNumberHeaderSplit)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const ReconstructedPath path = p.reconstructor->reconstruct(n);
        EXPECT_EQ(simulate(p, path), n) << "path " << n;
    }
}

TEST(InstrPlan, SimulationReproducesEveryNumberBackEdge)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::BackEdgeTruncate);
    for (std::uint64_t n = 0; n < p.numbering.totalPaths; ++n) {
        const ReconstructedPath path = p.reconstructor->reconstruct(n);
        EXPECT_EQ(simulate(p, path), n) << "path " << n;
    }
}

TEST(InstrPlan, SimulationHoldsOnRandomPrograms)
{
    int checked = 0;
    for (std::uint64_t seed = 400; seed < 430; ++seed) {
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 8);
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            const Prepared p = prepare(program, mode);
            if (p.numbering.totalPaths > 1500)
                continue;
            ++checked;
            for (std::uint64_t n = 0; n < p.numbering.totalPaths;
                 ++n) {
                const ReconstructedPath path =
                    p.reconstructor->reconstruct(n);
                ASSERT_EQ(simulate(p, path), n)
                    << "seed " << seed << " path " << n;
            }
        }
    }
    EXPECT_GT(checked, 20);
}

TEST(InstrPlan, EdgeIncrementsMatchNumbering)
{
    const Prepared p =
        prepare(test::callSwitchProgram(), DagMode::HeaderSplit);
    const cfg::Graph &graph = p.cfg.graph;
    std::size_t instrumented = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            const cfg::EdgeRef dag_edge = p.pdag.dagEdgeForCfgEdge[b][i];
            ASSERT_NE(dag_edge.src, cfg::kInvalidBlock);
            EXPECT_EQ(p.plan.edgeActions[b][i].increment,
                      p.numbering.edgeValue(dag_edge));
            if (p.plan.edgeActions[b][i].increment != 0)
                ++instrumented;
        }
    }
    EXPECT_EQ(p.plan.numInstrumentedEdges, instrumented);
}

TEST(InstrPlan, HeaderActionsOnlyInHeaderSplitMode)
{
    const bytecode::Program program = test::figure1Program();
    const Prepared split = prepare(program, DagMode::HeaderSplit);
    const Prepared trunc = prepare(program, DagMode::BackEdgeTruncate);

    std::size_t split_headers = 0;
    for (const HeaderAction &action : split.plan.headerActions)
        split_headers += action.endsPath ? 1 : 0;
    EXPECT_EQ(split_headers, split.cfg.numLoopHeaders());

    for (const HeaderAction &action : trunc.plan.headerActions)
        EXPECT_FALSE(action.endsPath);

    std::size_t ending_edges = 0;
    for (const auto &per_block : trunc.plan.edgeActions) {
        for (const EdgeAction &action : per_block)
            ending_edges += action.endsPath ? 1 : 0;
    }
    EXPECT_EQ(ending_edges, trunc.cfg.backEdges.size());
}

TEST(InstrPlan, DisabledOnOverflow)
{
    const Prepared p =
        prepare(test::figure1Program(), DagMode::HeaderSplit);
    Numbering overflowed = p.numbering;
    overflowed.overflow = true;
    const InstrumentationPlan plan =
        buildInstrumentationPlan(p.cfg, p.pdag, overflowed);
    EXPECT_FALSE(plan.enabled);
    EXPECT_EQ(plan.totalPaths, 0u);
    // The flattened mirror exists (empty actions) even when disabled,
    // so the dispatch pointers in FrameState are always valid.
    EXPECT_EQ(plan.edgeBase.size(), p.cfg.graph.numBlocks() + 1);
    EXPECT_EQ(plan.flatEdgeActions.size(), plan.edgeBase.back());
}

/** Memberwise flat-vs-nested equality over every CFG edge. */
void
expectFlatMirrorsNested(const MethodCfg &cfg,
                        const InstrumentationPlan &plan)
{
    const cfg::Graph &graph = cfg.graph;
    ASSERT_EQ(plan.edgeBase.size(), graph.numBlocks() + 1);
    std::uint32_t base = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        EXPECT_EQ(plan.edgeBase[b], base);
        base += static_cast<std::uint32_t>(graph.succs(b).size());
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            const cfg::EdgeRef edge{b, i};
            const EdgeAction &nested = plan.edgeActions[b][i];
            const EdgeAction &flat = plan.flatAction(edge);
            EXPECT_EQ(flat.increment, nested.increment);
            EXPECT_EQ(flat.endsPath, nested.endsPath);
            EXPECT_EQ(flat.endAdd, nested.endAdd);
            EXPECT_EQ(flat.restart, nested.restart);
        }
    }
    EXPECT_EQ(plan.edgeBase.back(), base);
    EXPECT_EQ(plan.flatEdgeActions.size(), base);
}

TEST(InstrPlan, FlattenedTableMirrorsNested)
{
    for (const bytecode::Program &program :
         {test::simpleLoopProgram(), test::figure1Program(),
          test::callSwitchProgram()}) {
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            const Prepared p = prepare(program, mode);
            expectFlatMirrorsNested(p.cfg, p.plan);
        }
    }
}

TEST(InstrPlan, RebuildFlatTracksNestedMutation)
{
    Prepared p = prepare(test::figure1Program(), DagMode::HeaderSplit);
    ASSERT_FALSE(p.plan.edgeActions.empty());
    bool mutated = false;
    for (auto &per_block : p.plan.edgeActions) {
        if (!per_block.empty()) {
            per_block[0].increment += 11;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    p.plan.rebuildFlat();
    expectFlatMirrorsNested(p.cfg, p.plan);
}

} // namespace
} // namespace pep::profile
