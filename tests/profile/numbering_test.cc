/**
 * @file
 * Path-numbering property tests. The central invariant (for all three
 * schemes and both P-DAG modes): summing the edge values along each
 * distinct Entry->Exit DAG path yields each number in [0, N) exactly
 * once. Verified by exhaustive path enumeration on fixture and random
 * programs.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "profile/numbering.hh"
#include "workload/program_builder.hh"

namespace pep::profile {
namespace {

using bytecode::MethodCfg;

/** Enumerate all Entry->Exit paths; return the multiset of value sums. */
std::vector<std::uint64_t>
allPathSums(const PDag &pdag, const Numbering &numbering)
{
    std::vector<std::uint64_t> sums;
    std::function<void(cfg::BlockId, std::uint64_t)> walk =
        [&](cfg::BlockId node, std::uint64_t sum) {
            if (node == pdag.dag.exit()) {
                sums.push_back(sum);
                return;
            }
            const auto &succs = pdag.dag.succs(node);
            for (std::uint32_t i = 0; i < succs.size(); ++i) {
                walk(succs[i],
                     sum + numbering.val[node][i]);
            }
        };
    walk(pdag.dag.entry(), 0);
    return sums;
}

DagEdgeFreqs
syntheticFreqs(const PDag &pdag, std::uint64_t seed)
{
    support::Rng rng(seed);
    DagEdgeFreqs freqs(pdag.dag.numBlocks());
    for (cfg::BlockId v = 0; v < pdag.dag.numBlocks(); ++v) {
        freqs[v].resize(pdag.dag.succs(v).size());
        for (double &f : freqs[v])
            f = static_cast<double>(rng.nextBounded(1000));
    }
    return freqs;
}

void
expectDenseUnique(const MethodCfg &cfg, DagMode mode,
                  NumberingScheme scheme, std::uint64_t seed)
{
    const PDag pdag = buildPDag(cfg, mode);
    const DagEdgeFreqs freqs = syntheticFreqs(pdag, seed);
    const Numbering numbering = numberPaths(
        pdag, scheme,
        scheme == NumberingScheme::BallLarus ? nullptr : &freqs);
    ASSERT_FALSE(numbering.overflow);

    const std::vector<std::uint64_t> sums = allPathSums(pdag, numbering);
    ASSERT_EQ(sums.size(), numbering.totalPaths);
    std::set<std::uint64_t> unique(sums.begin(), sums.end());
    ASSERT_EQ(unique.size(), sums.size()) << "duplicate path numbers";
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), numbering.totalPaths - 1);
}

TEST(Numbering, Figure1DenseUniqueAllSchemesBothModes)
{
    const bytecode::Program p = test::figure1Program();
    const MethodCfg cfg = bytecode::buildCfg(p.methods[0]);
    for (const DagMode mode :
         {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
        for (const NumberingScheme scheme :
             {NumberingScheme::BallLarus, NumberingScheme::Smart,
              NumberingScheme::SmartInverted}) {
            expectDenseUnique(cfg, mode, scheme, 1);
        }
    }
}

TEST(Numbering, Figure1PathCountMatchesHandCount)
{
    // The figure-1 shaped routine in HeaderSplit mode:
    //   entry -> pre-loop -> header (path 1)
    //   header -> then -> join -> header (path 2)
    //   header -> else -> join -> header (path 3)
    //   header -> exit-block -> exit (path 4)
    const bytecode::Program p = test::figure1Program();
    const MethodCfg cfg = bytecode::buildCfg(p.methods[0]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const Numbering numbering =
        numberPaths(pdag, NumberingScheme::BallLarus);
    EXPECT_EQ(numbering.totalPaths, 4u);
}

TEST(Numbering, RandomProgramsDenseUnique)
{
    int checked = 0;
    for (std::uint64_t seed = 200; seed < 260; ++seed) {
        const bytecode::Program p =
            test::randomStructuredProgram(seed, 7);
        const MethodCfg cfg = bytecode::buildCfg(p.methods[0]);
        // Skip path-explosion cases to keep enumeration fast.
        const PDag probe = buildPDag(cfg, DagMode::HeaderSplit);
        const Numbering n =
            numberPaths(probe, NumberingScheme::BallLarus);
        if (n.overflow || n.totalPaths > 5000)
            continue;
        ++checked;
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            for (const NumberingScheme scheme :
                 {NumberingScheme::BallLarus, NumberingScheme::Smart,
                  NumberingScheme::SmartInverted}) {
                expectDenseUnique(cfg, mode, scheme, seed);
            }
        }
    }
    EXPECT_GT(checked, 20);
}

TEST(Numbering, SmartZeroesHottestEdge)
{
    const bytecode::Program p = test::callSwitchProgram();
    const MethodCfg cfg =
        bytecode::buildCfg(p.methods[p.mainMethod]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const DagEdgeFreqs freqs = syntheticFreqs(pdag, 9);
    const Numbering numbering =
        numberPaths(pdag, NumberingScheme::Smart, &freqs);
    ASSERT_FALSE(numbering.overflow);

    for (cfg::BlockId v = 0; v < pdag.dag.numBlocks(); ++v) {
        const auto &succs = pdag.dag.succs(v);
        if (succs.empty())
            continue;
        double best = -1.0;
        std::uint32_t best_idx = 0;
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            if (freqs[v][i] > best) {
                best = freqs[v][i];
                best_idx = i;
            }
        }
        EXPECT_EQ(numbering.val[v][best_idx], 0u)
            << "node " << v << ": hottest edge must carry no "
            << "instrumentation";
    }
}

TEST(Numbering, SmartInvertedZeroesColdestEdge)
{
    const bytecode::Program p = test::callSwitchProgram();
    const MethodCfg cfg =
        bytecode::buildCfg(p.methods[p.mainMethod]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const DagEdgeFreqs freqs = syntheticFreqs(pdag, 9);
    const Numbering numbering =
        numberPaths(pdag, NumberingScheme::SmartInverted, &freqs);
    ASSERT_FALSE(numbering.overflow);

    for (cfg::BlockId v = 0; v < pdag.dag.numBlocks(); ++v) {
        const auto &succs = pdag.dag.succs(v);
        if (succs.empty())
            continue;
        double worst = 1e300;
        std::uint32_t worst_idx = 0;
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            if (freqs[v][i] < worst) {
                worst = freqs[v][i];
                worst_idx = i;
            }
        }
        EXPECT_EQ(numbering.val[v][worst_idx], 0u);
    }
}

TEST(Numbering, NumPathsIsSumOverSuccessors)
{
    const bytecode::Program p = test::figure1Program();
    const MethodCfg cfg = bytecode::buildCfg(p.methods[0]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const Numbering numbering =
        numberPaths(pdag, NumberingScheme::BallLarus);
    for (cfg::BlockId v = 0; v < pdag.dag.numBlocks(); ++v) {
        if (v == pdag.dag.exit()) {
            EXPECT_EQ(numbering.numPaths[v], 1u);
            continue;
        }
        if (numbering.numPaths[v] == 0)
            continue; // unreachable
        std::uint64_t sum = 0;
        for (cfg::BlockId succ : pdag.dag.succs(v))
            sum += numbering.numPaths[succ];
        EXPECT_EQ(numbering.numPaths[v], sum);
    }
}

TEST(Numbering, OverflowDetectedOnPathExplosion)
{
    // 60 sequential diamonds: 2^60 paths > kMaxPaths (2^50).
    workload::MethodBuilder b("huge", 0, false);
    const std::uint32_t scratch = b.newLocal();
    b.iconst(0);
    b.istore(scratch);
    for (int i = 0; i < 60; ++i) {
        b.emit(bytecode::Opcode::Irnd);
        workload::Label taken = b.newLabel();
        workload::Label join = b.newLabel();
        b.branch(bytecode::Opcode::Ifeq, taken);
        b.iinc(scratch, 1);
        b.jump(join);
        b.bind(taken);
        b.iinc(scratch, 2);
        b.bind(join);
    }
    b.ret();
    const bytecode::Method method = b.build();
    const MethodCfg cfg = bytecode::buildCfg(method);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);
    const Numbering numbering =
        numberPaths(pdag, NumberingScheme::BallLarus);
    EXPECT_TRUE(numbering.overflow);
}

TEST(Numbering, EstimatedFrequenciesMapRealEdges)
{
    const bytecode::Program p = test::figure1Program();
    const MethodCfg cfg = bytecode::buildCfg(p.methods[0]);
    const PDag pdag = buildPDag(cfg, DagMode::HeaderSplit);

    // Synthetic CFG edge counts: edge (b, i) -> 100*b + i.
    std::vector<std::vector<std::uint64_t>> counts(
        cfg.graph.numBlocks());
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        counts[b].resize(cfg.graph.succs(b).size());
        for (std::uint32_t i = 0; i < counts[b].size(); ++i)
            counts[b][i] = 100 * b + i + 1;
    }

    const DagEdgeFreqs freqs =
        estimateDagEdgeFrequencies(cfg, pdag, counts);
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < counts[b].size(); ++i) {
            const cfg::EdgeRef dag_edge = pdag.dagEdgeForCfgEdge[b][i];
            ASSERT_NE(dag_edge.src, cfg::kInvalidBlock);
            EXPECT_DOUBLE_EQ(freqs[dag_edge.src][dag_edge.index],
                             static_cast<double>(counts[b][i]));
        }
    }

    // Header dummies carry the header's inflow.
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (!cfg.isLoopHeader[b])
            continue;
        double inflow = 0;
        for (cfg::BlockId pred = 0; pred < cfg.graph.numBlocks();
             ++pred) {
            const auto &succs = cfg.graph.succs(pred);
            for (std::uint32_t i = 0; i < succs.size(); ++i) {
                if (succs[i] == b)
                    inflow += static_cast<double>(counts[pred][i]);
            }
        }
        const cfg::EdgeRef entry_e = pdag.headerDummyEntry[b];
        const cfg::EdgeRef exit_e = pdag.headerDummyExit[b];
        EXPECT_DOUBLE_EQ(freqs[entry_e.src][entry_e.index], inflow);
        EXPECT_DOUBLE_EQ(freqs[exit_e.src][exit_e.index], inflow);
    }
}

} // namespace
} // namespace pep::profile
