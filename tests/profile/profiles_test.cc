/**
 * @file
 * Edge- and path-profile container tests: branch counters, bias,
 * flipping, merging, lazy expansion, and path->edge accumulation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "profile/edge_profile.hh"
#include "profile/path_profile.hh"
#include "support/panic.hh"

namespace pep::profile {
namespace {

using bytecode::MethodCfg;

MethodCfg
figure1Cfg()
{
    const bytecode::Program p = test::figure1Program();
    return bytecode::buildCfg(p.methods[0]);
}

cfg::BlockId
firstCondBlock(const MethodCfg &cfg)
{
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] == bytecode::TerminatorKind::Cond)
            return b;
    }
    return cfg::kInvalidBlock;
}

TEST(EdgeProfile, StartsEmpty)
{
    const MethodCfg cfg = figure1Cfg();
    const MethodEdgeProfile profile(cfg);
    EXPECT_TRUE(profile.empty());
    EXPECT_EQ(profile.totalCount(), 0u);
}

TEST(EdgeProfile, CountsAndBias)
{
    const MethodCfg cfg = figure1Cfg();
    MethodEdgeProfile profile(cfg);
    const cfg::BlockId b = firstCondBlock(cfg);
    ASSERT_NE(b, cfg::kInvalidBlock);
    profile.addEdge(cfg::EdgeRef{b, 0}, 3); // taken
    profile.addEdge(cfg::EdgeRef{b, 1});    // not taken
    const BranchCounts counts = profile.branch(b);
    EXPECT_EQ(counts.taken, 3u);
    EXPECT_EQ(counts.notTaken, 1u);
    EXPECT_DOUBLE_EQ(counts.takenBias(), 0.75);
    EXPECT_EQ(profile.totalCount(), 4u);
}

TEST(EdgeProfile, BranchQueryOnNonBranchBlockPanics)
{
    const MethodCfg cfg = figure1Cfg();
    const MethodEdgeProfile profile(cfg);
    // The synthetic exit block has no successors at all.
    EXPECT_THROW(profile.branch(cfg.graph.exit()),
                 support::PanicError);
}

TEST(EdgeProfile, UnobservedBranchBiasIsHalf)
{
    BranchCounts counts;
    EXPECT_DOUBLE_EQ(counts.takenBias(), 0.5);
}

TEST(EdgeProfile, FlippedSwapsCondBranchesOnly)
{
    const bytecode::Program p = test::callSwitchProgram();
    const MethodCfg cfg = bytecode::buildCfg(p.methods[p.mainMethod]);
    MethodEdgeProfile profile(cfg);
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < cfg.graph.succs(b).size(); ++i)
            profile.addEdge(cfg::EdgeRef{b, i}, 10 * b + i + 1);
    }
    const MethodEdgeProfile flipped = profile.flipped(cfg);
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        const auto &orig = profile.counts()[b];
        const auto &flip = flipped.counts()[b];
        if (cfg.terminator[b] == bytecode::TerminatorKind::Cond) {
            EXPECT_EQ(flip[0], orig[1]);
            EXPECT_EQ(flip[1], orig[0]);
        } else {
            EXPECT_EQ(flip, orig);
        }
    }
}

TEST(EdgeProfile, MergeAndClear)
{
    const MethodCfg cfg = figure1Cfg();
    MethodEdgeProfile a(cfg);
    MethodEdgeProfile b(cfg);
    const cfg::BlockId block = firstCondBlock(cfg);
    a.addEdge(cfg::EdgeRef{block, 0}, 2);
    b.addEdge(cfg::EdgeRef{block, 0}, 5);
    a.merge(b);
    EXPECT_EQ(a.edgeCount(cfg::EdgeRef{block, 0}), 7u);
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(EdgeProfileSet, SizedPerMethod)
{
    const bytecode::Program p = test::callSwitchProgram();
    std::vector<MethodCfg> cfgs;
    for (const auto &m : p.methods)
        cfgs.push_back(bytecode::buildCfg(m));
    EdgeProfileSet set(cfgs);
    ASSERT_EQ(set.perMethod.size(), p.methods.size());
    for (std::size_t m = 0; m < cfgs.size(); ++m) {
        EXPECT_EQ(set.perMethod[m].counts().size(),
                  cfgs[m].graph.numBlocks());
    }
}

TEST(EdgeProfileSet, MergeAddsPerMethodCounts)
{
    const bytecode::Program p = test::callSwitchProgram();
    std::vector<MethodCfg> cfgs;
    for (const auto &m : p.methods)
        cfgs.push_back(bytecode::buildCfg(m));
    EdgeProfileSet a(cfgs);
    EdgeProfileSet b(cfgs);

    // Any block with two outgoing edges will do (the switch block).
    std::size_t method = cfgs.size();
    cfg::BlockId block = cfg::kInvalidBlock;
    for (std::size_t m = 0; m < cfgs.size() && block == cfg::kInvalidBlock; ++m) {
        for (cfg::BlockId c = 0; c < cfgs[m].graph.numBlocks(); ++c) {
            if (cfgs[m].graph.succs(c).size() >= 2) {
                method = m;
                block = c;
                break;
            }
        }
    }
    ASSERT_NE(block, cfg::kInvalidBlock);
    a.perMethod[method].addEdge(cfg::EdgeRef{block, 0}, 2);
    b.perMethod[method].addEdge(cfg::EdgeRef{block, 0}, 3);
    b.perMethod[method].addEdge(cfg::EdgeRef{block, 1}, 4);

    a.merge(b);
    EXPECT_EQ(a.perMethod[method].edgeCount(cfg::EdgeRef{block, 0}), 5u);
    EXPECT_EQ(a.perMethod[method].edgeCount(cfg::EdgeRef{block, 1}), 4u);
    EXPECT_EQ(a.totalCount(), 9u);
    // merge() reads, never writes, its argument.
    EXPECT_EQ(b.totalCount(), 7u);
}

TEST(EdgeProfileSet, MergeRejectsDifferentPrograms)
{
    const bytecode::Program p = test::callSwitchProgram();
    std::vector<MethodCfg> cfgs;
    for (const auto &m : p.methods)
        cfgs.push_back(bytecode::buildCfg(m));
    EdgeProfileSet whole(cfgs);

    // Different method count.
    std::vector<MethodCfg> fewer(cfgs.begin(), cfgs.end() - 1);
    EdgeProfileSet truncated(fewer);
    EXPECT_THROW(whole.merge(truncated), support::PanicError);

    // Same method count, different CFG shape.
    std::vector<MethodCfg> reshaped = cfgs;
    std::rotate(reshaped.begin(), reshaped.begin() + 1,
                reshaped.end());
    EdgeProfileSet rotated(reshaped);
    EXPECT_THROW(whole.merge(rotated), support::PanicError);
}

class PathProfileFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg = figure1Cfg();
        pdag = buildPDag(cfg, DagMode::HeaderSplit);
        numbering = numberPaths(pdag, NumberingScheme::BallLarus);
        reconstructor = std::make_unique<PathReconstructor>(
            cfg, pdag, numbering);
    }

    MethodCfg cfg;
    PDag pdag;
    Numbering numbering;
    std::unique_ptr<PathReconstructor> reconstructor;
};

TEST_F(PathProfileFixture, AddSampleAccumulates)
{
    MethodPathProfile profile;
    profile.addSample(2);
    profile.addSample(2, 4);
    profile.addSample(0);
    EXPECT_EQ(profile.numDistinctPaths(), 2u);
    EXPECT_EQ(profile.totalCount(), 6u);
    ASSERT_NE(profile.find(2), nullptr);
    EXPECT_EQ(profile.find(2)->count, 5u);
    EXPECT_EQ(profile.find(7), nullptr);
}

TEST_F(PathProfileFixture, EnsureExpandedFillsEveryRecord)
{
    MethodPathProfile profile;
    for (std::uint64_t n = 0; n < numbering.totalPaths; ++n)
        profile.addSample(n, n + 1);
    profile.ensureExpanded(*reconstructor);
    for (const auto &[number, record] : profile.paths()) {
        EXPECT_TRUE(record.expanded);
        EXPECT_FALSE(record.cfgEdges.empty());
    }
}

TEST_F(PathProfileFixture, AccumulateEdgeProfileWeightsByCount)
{
    MethodPathProfile profile;
    profile.addSample(1, 10);

    MethodEdgeProfile edges(cfg);
    accumulateEdgeProfile(edges, profile, *reconstructor);

    const PathRecord *record = profile.find(1);
    ASSERT_NE(record, nullptr);
    for (const cfg::EdgeRef &e : record->cfgEdges)
        EXPECT_EQ(edges.edgeCount(e), 10u);
    EXPECT_EQ(edges.totalCount(), 10u * record->cfgEdges.size());
}

TEST_F(PathProfileFixture, ClearDropsRecords)
{
    PathProfileSet set(3);
    set.perMethod[1].addSample(0);
    set.clear();
    EXPECT_EQ(set.perMethod[1].numDistinctPaths(), 0u);
}

} // namespace
} // namespace pep::profile
