/**
 * @file
 * Arithmetic tests of the k-BLPP composite id space (profile/kpath.hh):
 * offsets are exact prefix sums of base^l, length-1 ids coincide with
 * raw Ball-Larus numbers (the k=1 degeneracy guarantee), encode/decode
 * round-trip densely over the whole id space, kEffective caps at the
 * id ceiling instead of overflowing, and the degenerate bases (0 for
 * disabled plans, 1 for single-path methods) stay well defined.
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "profile/kpath.hh"
#include "support/panic.hh"

namespace pep::profile {
namespace {

TEST(KPathScheme, OffsetsArePrefixSumsOfBasePowers)
{
    const KPathScheme scheme(3, 3);
    EXPECT_EQ(scheme.base(), 3u);
    EXPECT_EQ(scheme.kRequested(), 3u);
    EXPECT_EQ(scheme.kEffective(), 3u);
    const std::vector<std::uint64_t> want = {0, 3, 12, 39};
    EXPECT_EQ(scheme.offsets(), want);
    EXPECT_EQ(scheme.maxId(), 39u);
}

TEST(KPathScheme, LengthOneIdsAreRawBallLarusNumbers)
{
    const KPathScheme scheme(7, 4);
    for (std::uint64_t n = 0; n < 7; ++n) {
        EXPECT_EQ(scheme.encode(&n, 1), n);
        EXPECT_EQ(scheme.lengthOf(n), 1u);
        EXPECT_EQ(scheme.decode(n), std::vector<std::uint64_t>{n});
    }
}

TEST(KPathScheme, DegenerateK1IdSpaceIsExactlyTheRawRange)
{
    const KPathScheme scheme(5, 1);
    EXPECT_EQ(scheme.kEffective(), 1u);
    EXPECT_EQ(scheme.maxId(), 5u);
}

TEST(KPathScheme, EncodeDecodeRoundTripCoversTheWholeIdSpace)
{
    const KPathScheme scheme(3, 3);
    std::set<std::uint64_t> seen;
    for (std::uint64_t id = 0; id < scheme.maxId(); ++id) {
        const std::vector<std::uint64_t> digits = scheme.decode(id);
        ASSERT_GE(digits.size(), 1u);
        ASSERT_LE(digits.size(), scheme.kEffective());
        EXPECT_EQ(digits.size(), scheme.lengthOf(id));
        for (const std::uint64_t digit : digits)
            EXPECT_LT(digit, scheme.base());
        EXPECT_EQ(scheme.encode(digits), id);
        seen.insert(id);
    }
    // Dense: every id below maxId is a valid window, no gaps.
    EXPECT_EQ(seen.size(), scheme.maxId());
}

TEST(KPathScheme, AllZeroWindowsEncodeToTheLengthOffsets)
{
    // Smart numbering gives the hottest segment number 0, so the
    // all-hot window of any length must cost a single constant.
    const KPathScheme scheme(6, 4);
    for (std::uint32_t length = 1; length <= scheme.kEffective();
         ++length) {
        const std::vector<std::uint64_t> zeros(length, 0);
        EXPECT_EQ(scheme.encode(zeros), scheme.offsets()[length - 1]);
    }
}

TEST(KPathScheme, KEffectiveCapsAtTheIdCeiling)
{
    // base 2: offset(l+1) = 2^(l+1) - 2, largest fit under 2^62 is 61.
    EXPECT_EQ(kEffectiveFor(2, 100), 61u);
    // A huge base can never square under the cap.
    EXPECT_EQ(kEffectiveFor(1ull << 32, 4), 1u);
    // Small schemes keep the full request.
    EXPECT_EQ(kEffectiveFor(10, 8), 8u);
    // k = 0 normalizes to 1.
    EXPECT_EQ(kEffectiveFor(10, 0), 1u);

    const KPathScheme capped(2, 100);
    EXPECT_EQ(capped.kRequested(), 100u);
    EXPECT_EQ(capped.kEffective(), 61u);
    EXPECT_LE(capped.maxId(), kKPathIdCap);
}

TEST(KPathScheme, DisabledPlanBaseZeroHasEmptyIdSpace)
{
    const KPathScheme scheme(0, 4);
    EXPECT_EQ(scheme.maxId(), 0u);
    for (const std::uint64_t offset : scheme.offsets())
        EXPECT_EQ(offset, 0u);
}

TEST(KPathScheme, BaseOneGrowsLinearly)
{
    // One acyclic path: every window is all-zero, ids count lengths.
    const KPathScheme scheme(1, 4);
    EXPECT_EQ(scheme.kEffective(), 4u);
    const std::vector<std::uint64_t> want = {0, 1, 2, 3, 4};
    EXPECT_EQ(scheme.offsets(), want);
    for (std::uint32_t length = 1; length <= 4; ++length) {
        const std::vector<std::uint64_t> zeros(length, 0);
        const std::uint64_t id = scheme.encode(zeros);
        EXPECT_EQ(id, length - 1u);
        EXPECT_EQ(scheme.decode(id), zeros);
    }
}

TEST(KPathScheme, PanicsOnMalformedWindowsAndIds)
{
    const KPathScheme scheme(3, 2);
    const std::uint64_t bad_digit = 3;
    EXPECT_THROW(scheme.encode(&bad_digit, 1), support::PanicError);
    const std::vector<std::uint64_t> too_long = {0, 0, 0};
    EXPECT_THROW(scheme.encode(too_long), support::PanicError);
    EXPECT_THROW(scheme.encode(nullptr, 0), support::PanicError);
    EXPECT_THROW(scheme.decode(scheme.maxId()), support::PanicError);
    EXPECT_THROW(scheme.lengthOf(scheme.maxId()),
                 support::PanicError);
}

} // namespace
} // namespace pep::profile
