/**
 * @file
 * Instrumentation-plan checker tests: the checker accepts everything
 * the real profiling pipeline builds (fixtures, random structured
 * programs, every mode/scheme/placement combination) and rejects
 * seeded violations of each invariant — duplicate path ids, an
 * increment on a spanning-tree edge, a nonzero hot-edge value under
 * smart numbering, tampered back-edge bookkeeping, and plans left
 * enabled after numbering overflow, and flattened dispatch tables out
 * of sync with the nested ones. Ends with a cross-validation
 * against the interpreter: dynamically observed path ids must lie in
 * the statically proven id space.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "analysis/plan_check.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "profile/spanning_placement.hh"
#include "vm/cost_model.hh"
#include "vm/decoded_method.hh"
#include "vm/machine.hh"

namespace pep::analysis {
namespace {

using profile::DagMode;
using profile::NumberingScheme;
using profile::PlacementKind;

/** One fully built configuration, ready to check (and to tamper). */
struct Built
{
    bytecode::MethodCfg cfg;
    profile::PDag pdag;
    profile::DagEdgeFreqs freqs;
    profile::Numbering numbering;
    profile::InstrumentationPlan plan;
    profile::SpanningPlacement spanning;
    NumberingScheme scheme = NumberingScheme::BallLarus;
    PlacementKind placement = PlacementKind::Direct;
};

profile::DagEdgeFreqs
uniformFreqs(const cfg::Graph &dag)
{
    profile::DagEdgeFreqs freqs(dag.numBlocks());
    for (cfg::BlockId v = 0; v < dag.numBlocks(); ++v)
        freqs[v].assign(dag.succs(v).size(), 1.0);
    return freqs;
}

Built
build(const bytecode::Program &program, DagMode mode,
      NumberingScheme scheme, PlacementKind placement)
{
    Built b;
    b.cfg = bytecode::buildCfg(program.methods[program.mainMethod]);
    b.pdag = profile::buildPDag(b.cfg, mode);
    b.freqs = uniformFreqs(b.pdag.dag);
    b.numbering = profile::numberPaths(
        b.pdag, scheme,
        scheme == NumberingScheme::BallLarus ? nullptr : &b.freqs);
    b.plan = profile::buildInstrumentationPlan(b.cfg, b.pdag,
                                               b.numbering);
    b.scheme = scheme;
    b.placement = placement;
    if (placement == PlacementKind::SpanningTree) {
        b.spanning = profile::computeSpanningPlacement(
            b.pdag, b.numbering, &b.freqs);
        profile::applySpanningPlacement(b.cfg, b.pdag, b.spanning,
                                        b.plan);
    }
    return b;
}

PlanCheckInput
inputFor(const Built &b)
{
    PlanCheckInput input;
    input.cfg = &b.cfg;
    input.pdag = &b.pdag;
    input.numbering = &b.numbering;
    input.plan = &b.plan;
    input.placement = b.placement;
    input.spanning = b.placement == PlacementKind::SpanningTree
                         ? &b.spanning
                         : nullptr;
    input.scheme = b.scheme;
    input.freqs = &b.freqs;
    input.methodName = "main";
    return input;
}

bool
hasError(const DiagnosticList &diagnostics, const std::string &substr)
{
    for (const Diagnostic &d : diagnostics.all()) {
        if (d.severity == Severity::Error &&
            d.message.find(substr) != std::string::npos)
            return true;
    }
    return false;
}

std::string
renderAll(const DiagnosticList &diagnostics)
{
    std::string out;
    for (const Diagnostic &d : diagnostics.all())
        out += formatDiagnostic(d) + "\n";
    return out;
}

TEST(PlanCheck, AcceptsFixturesInEveryConfiguration)
{
    for (const bytecode::Program &program :
         {test::simpleLoopProgram(), test::figure1Program(),
          test::callSwitchProgram()}) {
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            for (const NumberingScheme scheme :
                 {NumberingScheme::BallLarus, NumberingScheme::Smart,
                  NumberingScheme::SmartInverted}) {
                for (const PlacementKind placement :
                     {PlacementKind::Direct,
                      PlacementKind::SpanningTree}) {
                    const Built b =
                        build(program, mode, scheme, placement);
                    DiagnosticList diagnostics;
                    EXPECT_TRUE(checkInstrumentationPlan(
                        inputFor(b), diagnostics))
                        << renderAll(diagnostics);
                }
            }
        }
    }
}

TEST(PlanCheck, AcceptsRandomStructuredPrograms)
{
    int checked = 0;
    for (std::uint64_t seed = 900; seed < 912; ++seed) {
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 8);
        for (const DagMode mode :
             {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
            const Built b = build(program, mode,
                                  NumberingScheme::BallLarus,
                                  PlacementKind::SpanningTree);
            DiagnosticList diagnostics;
            EXPECT_TRUE(
                checkInstrumentationPlan(inputFor(b), diagnostics))
                << "seed " << seed << "\n"
                << renderAll(diagnostics);
            ++checked;
        }
    }
    EXPECT_GE(checked, 24);
}

/** Find a DAG node with at least two outgoing edges. */
cfg::BlockId
branchingDagNode(const Built &b)
{
    for (cfg::BlockId v = 0; v < b.pdag.dag.numBlocks(); ++v) {
        if (b.pdag.dag.succs(v).size() >= 2)
            return v;
    }
    return cfg::kInvalidBlock;
}

TEST(PlanCheck, RejectsDuplicatePathId)
{
    // Seeded bug 1: two sibling edges share a value, so two distinct
    // paths collapse onto one id. The interval check must prove the
    // overlap statically.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    const cfg::BlockId v = branchingDagNode(b);
    ASSERT_NE(v, cfg::kInvalidBlock);

    profile::Numbering tampered = b.numbering;
    tampered.val[v][1] = tampered.val[v][0];
    b.numbering = tampered;
    b.plan = profile::buildInstrumentationPlan(b.cfg, b.pdag,
                                               b.numbering);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "duplicate path ids"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsGapInPathIds)
{
    // Shifting a sibling value up opens a hole in [0, numPaths).
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    const cfg::BlockId v = branchingDagNode(b);
    ASSERT_NE(v, cfg::kInvalidBlock);

    // Make the larger of the two sibling values larger still.
    const std::uint32_t hi =
        b.numbering.val[v][0] > b.numbering.val[v][1] ? 0 : 1;
    b.numbering.val[v][hi] += 1;
    b.plan = profile::buildInstrumentationPlan(b.cfg, b.pdag,
                                               b.numbering);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "path-id gap") ||
                hasError(diagnostics, "node"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsIncrementOnSpanningTreeEdge)
{
    // Seeded bug 2: a spanning-tree edge carries an increment. The
    // chord-only check must catch it even though the replayed sums
    // also drift.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus,
                    PlacementKind::SpanningTree);

    cfg::BlockId tv = cfg::kInvalidBlock;
    std::uint32_t ti = 0;
    for (cfg::BlockId v = 0;
         v < b.pdag.dag.numBlocks() && tv == cfg::kInvalidBlock; ++v) {
        for (std::uint32_t i = 0; i < b.spanning.inTree[v].size();
             ++i) {
            if (b.spanning.inTree[v][i]) {
                tv = v;
                ti = i;
                break;
            }
        }
    }
    ASSERT_NE(tv, cfg::kInvalidBlock) << "no tree edge found";

    b.spanning.increment[tv][ti] += 3;
    b.plan = profile::buildInstrumentationPlan(b.cfg, b.pdag,
                                               b.numbering);
    profile::applySpanningPlacement(b.cfg, b.pdag, b.spanning, b.plan);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics,
                         "increment placed on a spanning-tree edge"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsNonzeroHotEdgeIncrement)
{
    // Seeded bug 3: claim smart numbering but hand the checker a
    // Ball-Larus numbering and frequencies that favor the *second*
    // successor — the hottest edge then carries a nonzero value.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    b.scheme = NumberingScheme::Smart;
    bool biased = false;
    for (cfg::BlockId v = 0; v < b.pdag.dag.numBlocks(); ++v) {
        if (b.freqs[v].size() >= 2) {
            b.freqs[v][1] = 10.0;
            biased = true;
        }
    }
    ASSERT_TRUE(biased);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "smart numbering left value"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsBackEdgeThatDoesNotEndPath)
{
    Built b = build(test::figure1Program(), DagMode::BackEdgeTruncate,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    ASSERT_FALSE(b.cfg.backEdges.empty());
    const cfg::EdgeRef back = b.cfg.backEdges[0];
    b.plan.edgeActions[back.src][back.index].endsPath = false;

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics,
                         "truncated back edge does not end the path"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsTamperedBackEdgeEndAdd)
{
    Built b = build(test::figure1Program(), DagMode::BackEdgeTruncate,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    ASSERT_FALSE(b.cfg.backEdges.empty());
    const cfg::EdgeRef back = b.cfg.backEdges[0];
    b.plan.edgeActions[back.src][back.index].endAdd += 1;

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "back-edge end/restart"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsWrongEdgeIncrement)
{
    // A single off-by-one increment must fail both the consistency
    // check and the semantic replay.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    bool tampered = false;
    for (cfg::BlockId v = 0;
         v < b.cfg.graph.numBlocks() && !tampered; ++v) {
        for (std::uint32_t i = 0; i < b.plan.edgeActions[v].size();
             ++i) {
            if (!b.plan.edgeActions[v][i].endsPath) {
                b.plan.edgeActions[v][i].increment += 1;
                tampered = true;
                break;
            }
        }
    }
    ASSERT_TRUE(tampered);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
}

TEST(PlanCheck, RejectsEnabledPlanAfterOverflow)
{
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    b.numbering.overflow = true; // plan stays enabled: contradiction

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics,
                         "plan is enabled despite numbering overflow"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsTamperedFlatAction)
{
    // The hot path dispatches off the flattened table, so a corrupt
    // flat entry miscounts paths even when every nested invariant
    // holds. Tampering flat-only isolates check 8.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    ASSERT_FALSE(b.plan.flatEdgeActions.empty());
    b.plan.flatEdgeActions[0].increment += 7;

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "flattened action disagrees"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsStaleFlattenedTable)
{
    // The converse: mutate the nested table and "forget" to call
    // rebuildFlat() — the exact bug class check 8 exists to catch
    // (any pass that edits edgeActions must rebuild the mirror).
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    bool tampered = false;
    for (cfg::BlockId v = 0;
         v < b.cfg.graph.numBlocks() && !tampered; ++v) {
        if (!b.plan.edgeActions[v].empty()) {
            b.plan.edgeActions[v][0].increment += 5;
            tampered = true;
        }
    }
    ASSERT_TRUE(tampered);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "stale rebuildFlat"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, RejectsCorruptEdgeBase)
{
    // A wrong offset makes every lookup for that block hit another
    // block's actions; the prefix-sum property must be proven, not
    // assumed.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    ASSERT_GE(b.plan.edgeBase.size(), 2u);
    b.plan.edgeBase[1] += 1;

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "prefix sum") ||
                hasError(diagnostics, "flattened table covers"))
        << renderAll(diagnostics);
}

/**
 * Build main()'s template stream exactly as the lint pipeline does,
 * optionally tamper with it, and run check 9. Everything lives in one
 * scope so the DecodedMethod's back-pointers stay valid.
 */
DiagnosticList
checkTemplatesOf(const bytecode::Program &program,
                 const std::function<void(vm::DecodedMethod &)> &tamper,
                 bool &ok)
{
    const bytecode::Method &method =
        program.methods[program.mainMethod];
    const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
    const profile::PDag pdag =
        profile::buildPDag(cfg, DagMode::HeaderSplit);
    const profile::Numbering numbering = profile::numberPaths(
        pdag, NumberingScheme::BallLarus, nullptr);
    const profile::InstrumentationPlan plan =
        profile::buildInstrumentationPlan(cfg, pdag, numbering);

    const vm::MethodInfo info = vm::buildMethodInfo(method);
    vm::CompiledMethod cm;
    const vm::CostModel cost;
    cm.scaledCost.resize(bytecode::kNumOpcodes);
    for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op)
        cm.scaledCost[op] =
            cost.instrCost(static_cast<bytecode::Opcode>(op));
    cm.branchLayout.assign(cfg.graph.numBlocks(), -1);
    vm::DecodedMethod decoded =
        vm::translateMethod(method, info, cm);
    if (tamper)
        tamper(decoded);

    TemplateCheckInput input;
    input.code = &method;
    input.cfg = &cfg;
    input.plan = &plan;
    input.decoded = &decoded;
    input.methodName = method.name;

    DiagnosticList diagnostics;
    ok = checkTemplateStream(input, diagnostics);
    return diagnostics;
}

TEST(PlanCheck, TemplateStreamAcceptsTranslatedMethods)
{
    for (const bytecode::Program &program :
         {test::simpleLoopProgram(), test::figure1Program(),
          test::callSwitchProgram()}) {
        bool ok = false;
        const DiagnosticList diagnostics =
            checkTemplatesOf(program, nullptr, ok);
        EXPECT_TRUE(ok) << renderAll(diagnostics);
    }
    for (std::uint64_t seed = 900; seed < 912; ++seed) {
        bool ok = false;
        const DiagnosticList diagnostics = checkTemplatesOf(
            test::randomStructuredProgram(seed, 8), nullptr, ok);
        EXPECT_TRUE(ok) << "seed " << seed << "\n"
                        << renderAll(diagnostics);
    }
}

TEST(PlanCheck, TemplateStreamRejectsCorruptFlatBase)
{
    // A wrong burned-in base makes onEdgeFast index another block's
    // flat actions — the exact miscounting a stale or mistranslated
    // stream produces at runtime.
    bool ok = true;
    const DiagnosticList diagnostics = checkTemplatesOf(
        test::figure1Program(),
        [](vm::DecodedMethod &dm) { dm.stream[0].flatBase += 1; },
        ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(hasError(diagnostics, "carries flat base"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, TemplateStreamRejectsMismatchedEdgeBase)
{
    bool ok = true;
    const DiagnosticList diagnostics = checkTemplatesOf(
        test::figure1Program(),
        [](vm::DecodedMethod &dm) { dm.edgeBase[1] += 1; }, ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(hasError(diagnostics, "template edgeBase"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, TemplateStreamRejectsStaleLayout)
{
    // The static face of the stale-template bug class: a template
    // whose baked layout no longer matches the version's.
    bool ok = true;
    const DiagnosticList diagnostics = checkTemplatesOf(
        test::figure1Program(),
        [](vm::DecodedMethod &dm) {
            dm.stream[dm.pcToTemplate[0]].layout = 1;
        },
        ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(hasError(diagnostics, "stale translation"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, TemplateStreamRejectsRetargetedBranch)
{
    bool ok = true;
    const DiagnosticList diagnostics = checkTemplatesOf(
        test::figure1Program(),
        [](vm::DecodedMethod &dm) {
            for (vm::Template &t : dm.stream) {
                if (bytecode::isCondBranch(
                        static_cast<bytecode::Opcode>(t.op))) {
                    t.taken += 1;
                    return;
                }
            }
            FAIL() << "fixture has no conditional branch";
        },
        ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(hasError(diagnostics, "does not resolve"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, TemplateStreamRejectsTamperedSegmentCharge)
{
    bool ok = true;
    const DiagnosticList diagnostics = checkTemplatesOf(
        test::figure1Program(),
        [](vm::DecodedMethod &dm) { dm.stream[0].cost += 5; }, ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(hasError(diagnostics, "segment charges"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, ReportsMultipleViolationsAtOnce)
{
    // Diagnostics, not fail-fast: seed two independent bugs and expect
    // both families of findings in one run.
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    const cfg::BlockId v = branchingDagNode(b);
    ASSERT_NE(v, cfg::kInvalidBlock);
    b.numbering.val[v][1] = b.numbering.val[v][0];
    b.plan = profile::buildInstrumentationPlan(b.cfg, b.pdag,
                                               b.numbering);

    DiagnosticList diagnostics;
    EXPECT_FALSE(checkInstrumentationPlan(inputFor(b), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "duplicate path ids"));
    // The semantic replay independently notices the id collision.
    EXPECT_GE(diagnostics.errorCount(), 2u) << renderAll(diagnostics);
}

TEST(PlanCheck, KPathSchemeAuditAcceptsRealSchemes)
{
    // Check 10 accepts the scheme the engine actually layers over a
    // pipeline-built plan, for the degenerate and windowed ks alike.
    const Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                          NumberingScheme::BallLarus,
                          PlacementKind::Direct);
    for (const std::uint32_t k : {1u, 2u, 4u}) {
        const profile::KPathScheme kpath(b.plan.totalPaths, k);
        KPathCheckInput input;
        input.plan = &b.plan;
        input.kpath = &kpath;
        input.kRequested = k;
        input.methodName = "main";
        DiagnosticList diagnostics;
        EXPECT_TRUE(checkKPathScheme(input, diagnostics))
            << "k=" << k << "\n"
            << renderAll(diagnostics);
    }
}

TEST(PlanCheck, KPathSchemeAuditRejectsMismatchedBase)
{
    // A scheme built over another plan's path count would decode every
    // composite id into the wrong digits.
    const Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                          NumberingScheme::BallLarus,
                          PlacementKind::Direct);
    const profile::KPathScheme kpath(b.plan.totalPaths + 1, 2);
    KPathCheckInput input;
    input.plan = &b.plan;
    input.kpath = &kpath;
    input.kRequested = 2;
    input.methodName = "main";
    DiagnosticList diagnostics;
    EXPECT_FALSE(checkKPathScheme(input, diagnostics));
    EXPECT_TRUE(
        hasError(diagnostics, "disagrees with the plan's totalPaths"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, KPathSchemeAuditRejectsWrongRequestedK)
{
    // A scheme quietly built for a smaller k would profile shorter
    // windows than configured while passing every arithmetic check.
    const Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                          NumberingScheme::BallLarus,
                          PlacementKind::Direct);
    const profile::KPathScheme kpath(b.plan.totalPaths, 2);
    KPathCheckInput input;
    input.plan = &b.plan;
    input.kpath = &kpath;
    input.kRequested = 4;
    input.methodName = "main";
    DiagnosticList diagnostics;
    EXPECT_FALSE(checkKPathScheme(input, diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "but the profiler requested"))
        << renderAll(diagnostics);
}

TEST(PlanCheck, KPathSchemeAuditRequiresBaseZeroForDisabledPlans)
{
    Built b = build(test::figure1Program(), DagMode::HeaderSplit,
                    NumberingScheme::BallLarus, PlacementKind::Direct);
    b.plan.enabled = false;

    const profile::KPathScheme degenerate(0, 3);
    KPathCheckInput input;
    input.plan = &b.plan;
    input.kpath = &degenerate;
    input.kRequested = 3;
    input.methodName = "main";
    DiagnosticList clean;
    EXPECT_TRUE(checkKPathScheme(input, clean)) << renderAll(clean);

    const profile::KPathScheme stale(b.plan.totalPaths, 3);
    input.kpath = &stale;
    DiagnosticList diagnostics;
    EXPECT_FALSE(checkKPathScheme(input, diagnostics));
    EXPECT_TRUE(
        hasError(diagnostics, "disagrees with the plan's totalPaths"))
        << renderAll(diagnostics);
}

/** Replay machine with every method pinned at Opt2 (no inlining). */
struct OptMachine
{
    explicit OptMachine(const bytecode::Program &program)
        : machine(program, fastParams())
    {
        advice.finalLevel.assign(machine.numMethods(),
                                 vm::OptLevel::Opt2);
        advice.oneTimeEdges = machine.truthEdges();
        machine.enableReplay(&advice);
    }

    static vm::SimParams
    fastParams()
    {
        vm::SimParams params;
        params.tickCycles = 100'000;
        return params;
    }

    vm::ReplayAdvice advice;
    vm::Machine machine;
};

TEST(PlanCheck, CrossValidatesAgainstInterpreterPathIds)
{
    // Run the real pipeline: optimized code instrumented by the
    // ground-truth recorder. Every version's plan must pass the static
    // checker, and every dynamically observed path id must fall inside
    // the statically proven dense id space [0, totalPaths).
    for (const bytecode::Program &program :
         {test::simpleLoopProgram(), test::figure1Program(),
          test::callSwitchProgram()}) {
        OptMachine om(program);
        core::FullPathProfiler truth(om.machine,
                                     DagMode::HeaderSplit,
                                     /*charge_costs=*/false);
        om.machine.addHooks(&truth);
        om.machine.addCompileObserver(&truth);
        om.machine.runIteration();

        ASSERT_FALSE(truth.versionProfiles().empty());
        for (const auto &[key, vp] : truth.versionProfiles()) {
            const core::MethodProfilingState &state = *vp->state;
            const bytecode::MethodCfg &cfg =
                om.machine.info(key.first).cfg;
            const profile::DagEdgeFreqs freqs =
                uniformFreqs(state.pdag.dag);

            PlanCheckInput input;
            input.cfg = &cfg;
            input.pdag = &state.pdag;
            input.numbering = &state.numbering;
            input.plan = &state.plan;
            input.placement = PlacementKind::Direct;
            input.scheme = NumberingScheme::BallLarus;
            input.freqs = &freqs;
            input.methodName =
                program.methods[key.first].name;

            DiagnosticList diagnostics;
            ASSERT_TRUE(
                checkInstrumentationPlan(input, diagnostics))
                << renderAll(diagnostics);

            // The interpreter only ever produced ids the checker
            // proved unique and dense.
            EXPECT_GT(vp->paths.numDistinctPaths(), 0u);
            for (const auto &[id, record] : vp->paths.paths()) {
                EXPECT_LT(id, state.numbering.totalPaths);
                (void)record;
            }
        }
    }
}

} // namespace
} // namespace pep::analysis
