/**
 * @file
 * Tests for the generic dataflow solver: convergence and correct
 * fixpoints on a diamond, a loop, and an irreducible CFG, in both
 * directions, plus the treatment of unreachable blocks.
 */

#include <gtest/gtest.h>

#include "analysis/dataflow.hh"
#include "cfg/graph.hh"

namespace pep::analysis {
namespace {

/**
 * Toy union problem: the fixpoint at a block is the set of blocks on
 * some path from the boundary to it (inclusive). Forward: blocks on
 * some entry->b path; backward: blocks on some b->exit path.
 */
struct UnionProblem
{
    using Domain = std::vector<bool>;

    std::size_t numBlocks = 0;
    Direction dir = Direction::Forward;

    Direction direction() const { return dir; }
    Domain boundary() const { return Domain(numBlocks, false); }
    Domain init() const { return Domain(numBlocks, false); }

    bool
    join(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (std::size_t i = 0; i < numBlocks; ++i) {
            if (from[i] && !into[i]) {
                into[i] = true;
                changed = true;
            }
        }
        return changed;
    }

    Domain
    transfer(cfg::BlockId block, const Domain &in) const
    {
        Domain out = in;
        out[block] = true;
        return out;
    }
};

std::vector<bool>
bits(std::size_t n, std::initializer_list<cfg::BlockId> set)
{
    std::vector<bool> v(n, false);
    for (const cfg::BlockId b : set)
        v[b] = true;
    return v;
}

// entry(0) -> a, b; a -> j; b -> j; j -> exit(1)
cfg::Graph
diamond(cfg::BlockId &a, cfg::BlockId &b, cfg::BlockId &j)
{
    cfg::Graph g;
    a = g.addBlock();
    b = g.addBlock();
    j = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(g.entry(), b);
    g.addEdge(a, j);
    g.addEdge(b, j);
    g.addEdge(j, g.exit());
    return g;
}

TEST(Dataflow, ForwardDiamondConverges)
{
    cfg::BlockId a, b, j;
    const cfg::Graph g = diamond(a, b, j);
    const UnionProblem p{g.numBlocks(), Direction::Forward};
    const auto result = solveDataflow(g, p);

    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.iterations, 0u);
    // input[j] is the join over both arms; output adds j itself.
    EXPECT_EQ(result.input[j], bits(g.numBlocks(), {g.entry(), a, b}));
    EXPECT_EQ(result.output[j],
              bits(g.numBlocks(), {g.entry(), a, b, j}));
    EXPECT_EQ(result.output[g.exit()],
              bits(g.numBlocks(), {g.entry(), a, b, j, g.exit()}));
}

TEST(Dataflow, BackwardDiamondConverges)
{
    cfg::BlockId a, b, j;
    const cfg::Graph g = diamond(a, b, j);
    const UnionProblem p{g.numBlocks(), Direction::Backward};
    const auto result = solveDataflow(g, p);

    EXPECT_TRUE(result.converged);
    // Backward: output[b] = blocks on some b->exit path.
    EXPECT_EQ(result.output[a],
              bits(g.numBlocks(), {a, j, g.exit()}));
    EXPECT_EQ(result.output[g.entry()],
              bits(g.numBlocks(), {g.entry(), a, b, j, g.exit()}));
    // input[entry] joins both successors' outputs, excludes entry.
    EXPECT_EQ(result.input[g.entry()],
              bits(g.numBlocks(), {a, b, j, g.exit()}));
}

TEST(Dataflow, LoopReachesFixpoint)
{
    // entry -> h; h -> body; body -> h; h -> exit
    cfg::Graph g;
    const cfg::BlockId h = g.addBlock();
    const cfg::BlockId body = g.addBlock();
    g.addEdge(g.entry(), h);
    g.addEdge(h, body);
    g.addEdge(body, h);
    g.addEdge(h, g.exit());

    const UnionProblem p{g.numBlocks(), Direction::Forward};
    const auto result = solveDataflow(g, p);

    EXPECT_TRUE(result.converged);
    // The cycle feeds body back into h's input.
    EXPECT_EQ(result.input[h],
              bits(g.numBlocks(), {g.entry(), h, body}));
    EXPECT_EQ(result.output[g.exit()],
              bits(g.numBlocks(), {g.entry(), h, body, g.exit()}));
}

TEST(Dataflow, IrreducibleCfgReachesFixpoint)
{
    // Two-entry cycle {a, b}: entry -> a, entry -> b, a <-> b, a -> exit.
    cfg::Graph g;
    const cfg::BlockId a = g.addBlock();
    const cfg::BlockId b = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(g.entry(), b);
    g.addEdge(a, b);
    g.addEdge(b, a);
    g.addEdge(a, g.exit());

    const UnionProblem p{g.numBlocks(), Direction::Forward};
    const auto result = solveDataflow(g, p);

    EXPECT_TRUE(result.converged);
    // Each cycle member sees the other via the retreating edge.
    EXPECT_TRUE(result.input[a][b]);
    EXPECT_TRUE(result.input[b][a]);
    EXPECT_EQ(result.output[g.exit()],
              bits(g.numBlocks(), {g.entry(), a, b, g.exit()}));
}

TEST(Dataflow, UnreachableBlockKeepsInit)
{
    cfg::Graph g;
    const cfg::BlockId a = g.addBlock();
    const cfg::BlockId dead = g.addBlock();
    g.addEdge(g.entry(), a);
    g.addEdge(a, g.exit());
    g.addEdge(dead, g.exit()); // no in-edges: unreachable from entry

    const UnionProblem p{g.numBlocks(), Direction::Forward};
    const auto result = solveDataflow(g, p);

    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.output[dead], p.init());
    // The dead predecessor contributes nothing to exit.
    EXPECT_EQ(result.output[g.exit()],
              bits(g.numBlocks(), {g.entry(), a, g.exit()}));
}

TEST(Dataflow, DeterministicAcrossRuns)
{
    cfg::BlockId a, b, j;
    const cfg::Graph g = diamond(a, b, j);
    const UnionProblem p{g.numBlocks(), Direction::Forward};
    const auto first = solveDataflow(g, p);
    const auto second = solveDataflow(g, p);
    EXPECT_EQ(first.output, second.output);
    EXPECT_EQ(first.iterations, second.iterations);
}

} // namespace
} // namespace pep::analysis
