/**
 * @file
 * Tests for the pep-verify passes (analysis/verify/, docs/ANALYSIS.md):
 *
 *  - the examples corpus is clean under all three passes, statically
 *    (verifyProgram, lintProgram --verify) and on a live machine under
 *    both execution engines (verifyMachine);
 *  - the relayout-then-verify round trip: an in-place layout mutation
 *    followed by invalidateDecoded verifies clean, the same mutation
 *    without it is rejected by the invariant audits;
 *  - seeded-bug rejection per pass: each check catches a deliberately
 *    corrupted template stream / profile / plan mirror;
 *  - diagnostic ordering is deterministic.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.hh"
#include "analysis/lint.hh"
#include "analysis/verify/engine_equiv.hh"
#include "analysis/verify/invariants.hh"
#include "analysis/verify/realizability.hh"
#include "analysis/verify/verify.hh"
#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/verifier.hh"
#include "common/fixtures.hh"
#include "profile/instr_plan.hh"
#include "profile/kpath.hh"
#include "profile/numbering.hh"
#include "profile/path_profile.hh"
#include "profile/pdag.hh"
#include "profile/reconstruct.hh"
#include "vm/compiled_method.hh"
#include "vm/cost_model.hh"
#include "vm/decoded_method.hh"
#include "vm/machine.hh"

namespace {

using namespace pep;
using analysis::Diagnostic;
using analysis::DiagnosticList;
using analysis::Severity;

std::vector<std::filesystem::path>
examplePrograms()
{
    const std::filesystem::path dir =
        std::filesystem::path(PEP_SOURCE_DIR) / "examples" / "programs";
    std::vector<std::filesystem::path> files;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".pepasm")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

bytecode::Program
loadProgram(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const bytecode::AssembleResult assembled =
        bytecode::assemble(buffer.str());
    EXPECT_TRUE(assembled.ok) << assembled.error;
    return assembled.program;
}

/** True if some error carries the given (pass, check). */
bool
hasError(const DiagnosticList &diagnostics, const std::string &pass,
         const std::string &check)
{
    for (const Diagnostic &d : diagnostics.all()) {
        if (d.severity == Severity::Error && d.pass == pass &&
            d.check == check)
            return true;
    }
    return false;
}

std::string
describe(const DiagnosticList &diagnostics)
{
    std::ostringstream os;
    for (const Diagnostic &d : diagnostics.all())
        os << analysis::formatDiagnostic(d) << "\n";
    return os.str();
}

vm::SimParams
testParams(vm::EngineKind engine)
{
    vm::SimParams params;
    params.engine = engine;
    params.tickCycles = 9'000;
    params.maxCyclesPerIteration = 50'000'000;
    return params;
}

/**
 * The canonical full-opt translation the static passes check: Opt2,
 * unscaled costs, no layout information — exactly what verifyProgram
 * and the lint's template check synthesize.
 */
struct CanonicalTranslation
{
    vm::MethodInfo info;
    vm::CompiledMethod cm;
    vm::DecodedMethod decoded;
};

CanonicalTranslation
translateCanonical(const bytecode::Method &method)
{
    CanonicalTranslation t;
    t.info = vm::buildMethodInfo(method);
    t.cm.level = vm::OptLevel::Opt2;
    const vm::CostModel cost;
    t.cm.scaledCost.resize(bytecode::kNumOpcodes);
    for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op)
        t.cm.scaledCost[op] =
            cost.instrCost(static_cast<bytecode::Opcode>(op));
    t.cm.branchLayout.assign(t.info.cfg.graph.numBlocks(), -1);
    t.decoded = vm::translateMethod(method, t.info, t.cm);
    return t;
}

analysis::EngineEquivInput
equivInput(const bytecode::Method &method,
           const CanonicalTranslation &t)
{
    analysis::EngineEquivInput input;
    input.code = &method;
    input.info = &t.info;
    input.cm = &t.cm;
    input.decoded = &t.decoded;
    input.methodName = method.name;
    return input;
}

/** A verified example method that has a conditional branch. */
bytecode::Method
methodWithCondBranch()
{
    for (const auto &path : examplePrograms()) {
        bytecode::Program program = loadProgram(path);
        if (!bytecode::verifyProgram(program).ok)
            continue;
        for (const bytecode::Method &method : program.methods) {
            const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
            for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
                if (cfg.terminator[b] == bytecode::TerminatorKind::Cond)
                    return method;
            }
        }
    }
    ADD_FAILURE() << "no example method with a conditional branch";
    return {};
}

cfg::BlockId
firstCondBlock(const bytecode::MethodCfg &cfg)
{
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] == bytecode::TerminatorKind::Cond)
            return b;
    }
    return cfg::kInvalidBlock;
}

// ---- Pass 1: the examples corpus is clean, statically ----------------

TEST(VerifyProgram, ExamplesCleanStatically)
{
    for (const auto &path : examplePrograms()) {
        SCOPED_TRACE(path.filename().string());
        bytecode::Program program = loadProgram(path);

        DiagnosticList diagnostics;
        EXPECT_TRUE(analysis::verifyProgram(program, diagnostics))
            << describe(diagnostics);
        EXPECT_EQ(diagnostics.errorCount(), 0u)
            << describe(diagnostics);
    }
}

TEST(VerifyProgram, LintVerifyModeCleanOnExamples)
{
    // `pep_lint --verify`: plan checks (incl. the template-stream
    // check 9) plus the engine-equivalence pass over every example.
    for (const auto &path : examplePrograms()) {
        SCOPED_TRACE(path.filename().string());
        bytecode::Program program = loadProgram(path);

        analysis::LintOptions options;
        options.runMethodPasses = false;
        options.runVerifyPasses = true;
        const DiagnosticList diagnostics =
            analysis::lintProgram(program, options);
        EXPECT_EQ(diagnostics.errorCount(), 0u)
            << describe(diagnostics);
    }
}

// ---- verifyMachine over live runs, both engines ----------------------

class VerifyMachineTest
    : public ::testing::TestWithParam<vm::EngineKind>
{
};

INSTANTIATE_TEST_SUITE_P(Engines, VerifyMachineTest,
                         ::testing::Values(vm::EngineKind::Switch,
                                           vm::EngineKind::Threaded),
                         [](const auto &info) {
                             return std::string(
                                 vm::engineKindName(info.param));
                         });

TEST_P(VerifyMachineTest, ExamplesCleanAfterRun)
{
    for (const auto &path : examplePrograms()) {
        SCOPED_TRACE(path.filename().string());
        const bytecode::Program program = loadProgram(path);
        vm::Machine machine(program, testParams(GetParam()));
        for (int it = 0; it < 2; ++it)
            machine.runIteration();

        DiagnosticList diagnostics;
        EXPECT_TRUE(analysis::verifyMachine(machine, diagnostics))
            << describe(diagnostics);
    }
}

TEST_P(VerifyMachineTest, RelayoutThenVerifyRoundTrip)
{
    const bytecode::Program program =
        loadProgram(examplePrograms().front());
    vm::Machine machine(program, testParams(GetParam()));
    machine.runIteration();

    // Flip every installed layout the disciplined way: mutate, then
    // invalidate the version's cached template stream.
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const auto method = static_cast<bytecode::MethodId>(m);
        for (std::uint32_t v = 0; v < machine.numVersions(method); ++v) {
            vm::CompiledMethod *cm = machine.versionForUpdate(method, v);
            ASSERT_NE(cm, nullptr);
            for (std::int16_t &layout : cm->branchLayout)
                layout = layout == 1 ? 0 : 1;
            machine.invalidateDecoded(method, v);
        }
    }

    DiagnosticList clean;
    EXPECT_TRUE(analysis::verifyMachine(machine, clean))
        << describe(clean);

    // The machine still runs, and stays verifiable.
    machine.runIteration();
    DiagnosticList after_run;
    EXPECT_TRUE(analysis::verifyMachine(machine, after_run))
        << describe(after_run);

    // Now flip once more WITHOUT invalidating: the journal audit must
    // reject the unsanitized escape on every engine; with cached
    // template streams (threaded engine) the freshness audit also
    // catches the stale stream itself.
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const auto method = static_cast<bytecode::MethodId>(m);
        for (std::uint32_t v = 0; v < machine.numVersions(method); ++v) {
            vm::CompiledMethod *cm = machine.versionForUpdate(method, v);
            for (std::int16_t &layout : cm->branchLayout)
                layout = layout == 1 ? 0 : 1;
        }
    }

    DiagnosticList dirty;
    EXPECT_FALSE(analysis::verifyMachine(machine, dirty));
    EXPECT_TRUE(hasError(dirty, "invariants", "escape-unsanitized"))
        << describe(dirty);
    if (GetParam() == vm::EngineKind::Threaded) {
        EXPECT_TRUE(hasError(dirty, "invariants", "stale-template"))
            << describe(dirty);
    }
}

// ---- Pass 1 seeded bugs: engine equivalence --------------------------

TEST(EngineEquiv, CanonicalTranslationIsEquivalent)
{
    const bytecode::Method method = methodWithCondBranch();
    const CanonicalTranslation t = translateCanonical(method);
    DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::checkEngineEquivalence(equivInput(method, t),
                                                 diagnostics))
        << describe(diagnostics);
}

TEST(EngineEquiv, RejectsCorruptedSegmentCost)
{
    const bytecode::Method method = methodWithCondBranch();
    CanonicalTranslation t = translateCanonical(method);

    bool corrupted = false;
    for (vm::Template &tpl : t.decoded.stream) {
        if (tpl.cost > 0) {
            ++tpl.cost;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkEngineEquivalence(
        equivInput(method, t), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "engine-equiv", "segment-cost"))
        << describe(diagnostics);
}

TEST(EngineEquiv, RejectsCorruptedEdgeBase)
{
    const bytecode::Method method = methodWithCondBranch();
    CanonicalTranslation t = translateCanonical(method);
    ASSERT_GT(t.decoded.edgeBase.size(), 2u);
    ++t.decoded.edgeBase[2];

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkEngineEquivalence(
        equivInput(method, t), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "engine-equiv", "edge-base"))
        << describe(diagnostics);
}

TEST(EngineEquiv, RejectsCorruptedBakedLayout)
{
    const bytecode::Method method = methodWithCondBranch();
    CanonicalTranslation t = translateCanonical(method);

    const cfg::BlockId b = firstCondBlock(t.info.cfg);
    ASSERT_NE(b, cfg::kInvalidBlock);
    vm::Template &branch =
        t.decoded.stream[t.decoded.pcToTemplate[t.info.cfg.branchPc(b)]];
    branch.layout = 1; // installed version says -1

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkEngineEquivalence(
        equivInput(method, t), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "engine-equiv", "layout"))
        << describe(diagnostics);
}

TEST(EngineEquiv, RejectsCorruptedFlatEdgeId)
{
    const bytecode::Method method = methodWithCondBranch();
    CanonicalTranslation t = translateCanonical(method);

    const cfg::BlockId b = firstCondBlock(t.info.cfg);
    ASSERT_NE(b, cfg::kInvalidBlock);
    vm::Template &branch =
        t.decoded.stream[t.decoded.pcToTemplate[t.info.cfg.branchPc(b)]];
    ++branch.flatBase; // profile counters would fire the wrong edge id

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkEngineEquivalence(
        equivInput(method, t), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "engine-equiv", "control-exit"))
        << describe(diagnostics);
}

TEST(EngineEquiv, RejectsCorruptedHeaderFlag)
{
    const bytecode::Method method = methodWithCondBranch();
    CanonicalTranslation t = translateCanonical(method);

    const cfg::BlockId b = firstCondBlock(t.info.cfg);
    ASSERT_NE(b, cfg::kInvalidBlock);
    vm::Template &branch =
        t.decoded.stream[t.decoded.pcToTemplate[t.info.cfg.branchPc(b)]];
    branch.flags ^= vm::kTplTakenHeader; // yieldpoints would misfire

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkEngineEquivalence(
        equivInput(method, t), diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "engine-equiv", "yieldpoint"))
        << describe(diagnostics);
}

// ---- Pass 2 seeded bugs: profile realizability -----------------------

TEST(Realizability, TruthProfileConservesAndCorruptionIsRejected)
{
    const bytecode::Program program =
        loadProgram(examplePrograms().front());
    vm::Machine machine(program,
                        testParams(vm::EngineKind::Switch));
    machine.runIteration();

    analysis::RealizabilityOptions options;
    options.requireHeaderConservation = true; // full-frame truth counts
    options.what = "truth";

    DiagnosticList clean;
    EXPECT_TRUE(analysis::checkEdgeSetRealizability(
        machine, machine.truthEdges(), options, clean))
        << describe(clean);

    // One phantom crossing breaks Kirchhoff conservation at its source
    // block — no execution could have recorded the result.
    profile::EdgeProfileSet corrupt = machine.truthEdges();
    bool bumped = false;
    for (std::size_t m = 0; m < machine.numMethods() && !bumped; ++m) {
        const bytecode::MethodCfg &cfg =
            machine.info(static_cast<bytecode::MethodId>(m)).cfg;
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (!cfg.isCodeBlock(b) || cfg.isLoopHeader[b] ||
                cfg.graph.succs(b).empty())
                continue;
            corrupt.perMethod[m].addEdge({b, 0}, 1);
            bumped = true;
            break;
        }
    }
    ASSERT_TRUE(bumped);

    DiagnosticList rejected;
    EXPECT_FALSE(analysis::checkEdgeSetRealizability(
        machine, corrupt, options, rejected));
    EXPECT_TRUE(
        hasError(rejected, "realizability", "flow-conservation"))
        << describe(rejected);
}

TEST(Realizability, RejectsOutOfRangePathNumberAndOverBudget)
{
    const bytecode::Method method = methodWithCondBranch();
    const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
    const profile::PDag pdag =
        profile::buildPDag(cfg, profile::DagMode::HeaderSplit);
    const profile::Numbering numbering = profile::numberPaths(
        pdag, profile::NumberingScheme::BallLarus, nullptr);
    const profile::InstrumentationPlan plan =
        profile::buildInstrumentationPlan(cfg, pdag, numbering);
    ASSERT_TRUE(plan.enabled);
    ASSERT_GT(plan.totalPaths, 0u);
    const profile::PathReconstructor reconstructor(cfg, pdag,
                                                   numbering);

    analysis::RealizabilityOptions options;
    options.what = "path profile";

    profile::MethodPathProfile valid;
    valid.addSample(0);
    DiagnosticList clean;
    EXPECT_TRUE(analysis::checkPathProfileRealizability(
        plan, reconstructor, valid, options, /*max_total=*/1,
        method.name, false, 0, clean))
        << describe(clean);

    // A register value beyond the numbering's range cannot come from
    // correct instrumentation.
    profile::MethodPathProfile out_of_range;
    out_of_range.addSample(plan.totalPaths + 3);
    DiagnosticList range;
    EXPECT_FALSE(analysis::checkPathProfileRealizability(
        plan, reconstructor, out_of_range, options, 0, method.name,
        false, 0, range));
    EXPECT_TRUE(hasError(range, "realizability", "path-range"))
        << describe(range);

    // More recorded walks than the sampler took.
    profile::MethodPathProfile over_budget;
    over_budget.addSample(0, 10);
    DiagnosticList budget;
    EXPECT_FALSE(analysis::checkPathProfileRealizability(
        plan, reconstructor, over_budget, options, /*max_total=*/5,
        method.name, false, 0, budget));
    EXPECT_TRUE(hasError(budget, "realizability", "walk-bound"))
        << describe(budget);
}

TEST(Realizability, KPathWindowsMustChainThroughLoopHeaders)
{
    // Composite k-path ids are accepted only when their decoded
    // segments chain: digit j ends at the loop header digit j+1 starts
    // from, and nothing follows a segment that reached method exit.
    const bytecode::Program program = test::figure1Program();
    const bytecode::Method &method =
        program.methods[program.mainMethod];
    const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
    const profile::PDag pdag =
        profile::buildPDag(cfg, profile::DagMode::HeaderSplit);
    const profile::Numbering numbering = profile::numberPaths(
        pdag, profile::NumberingScheme::BallLarus, nullptr);
    const profile::InstrumentationPlan plan =
        profile::buildInstrumentationPlan(cfg, pdag, numbering);
    ASSERT_TRUE(plan.enabled);
    const profile::PathReconstructor reconstructor(cfg, pdag,
                                                   numbering);
    const profile::KPathScheme kpath(plan.totalPaths, 2);
    ASSERT_EQ(kpath.kEffective(), 2u);

    // A body segment loops header->header; an exit segment ends the
    // frame (endHeader == kInvalidBlock).
    std::uint64_t body = plan.totalPaths, exit_segment = plan.totalPaths;
    for (std::uint64_t n = 0; n < plan.totalPaths; ++n) {
        const profile::ReconstructedPath r =
            reconstructor.reconstruct(n);
        if (r.endHeader != cfg::kInvalidBlock &&
            r.startHeader == r.endHeader && body == plan.totalPaths)
            body = n;
        if (r.endHeader == cfg::kInvalidBlock &&
            exit_segment == plan.totalPaths)
            exit_segment = n;
    }
    ASSERT_LT(body, plan.totalPaths);
    ASSERT_LT(exit_segment, plan.totalPaths);

    analysis::RealizabilityOptions options;
    options.what = "k-path profile";
    options.walkMultiplicity = 2;

    // [body, body] chains and must verify clean.
    const std::vector<std::uint64_t> chained = {body, body};
    profile::MethodPathProfile valid;
    valid.addSample(kpath.encode(chained));
    DiagnosticList clean;
    EXPECT_TRUE(analysis::checkPathProfileRealizability(
        plan, reconstructor, valid, options, /*max_total=*/1,
        method.name, false, 0, clean, &kpath))
        << describe(clean);

    // [exit, body] claims a segment after the frame ended — no
    // execution produces that window.
    const std::vector<std::uint64_t> broken = {exit_segment, body};
    profile::MethodPathProfile unwalkable;
    unwalkable.addSample(kpath.encode(broken));
    DiagnosticList chain;
    EXPECT_FALSE(analysis::checkPathProfileRealizability(
        plan, reconstructor, unwalkable, options, /*max_total=*/1,
        method.name, false, 0, chain, &kpath));
    EXPECT_TRUE(hasError(chain, "realizability", "kpath-chain"))
        << describe(chain);

    // Ids past the composite id space are rejected with the k-aware
    // range message, and ids the raw numbering would reject are legal
    // composite windows under the scheme.
    profile::MethodPathProfile out_of_range;
    out_of_range.addSample(kpath.maxId() + 1);
    DiagnosticList range;
    EXPECT_FALSE(analysis::checkPathProfileRealizability(
        plan, reconstructor, out_of_range, options, /*max_total=*/1,
        method.name, false, 0, range, &kpath));
    EXPECT_TRUE(hasError(range, "realizability", "path-range"))
        << describe(range);
}

// ---- Pass 3 seeded bugs: invariant escape audits ---------------------

TEST(Invariants, PlanMirrorAuditCatchesNestedMutation)
{
    const bytecode::Method method = methodWithCondBranch();
    const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
    const profile::PDag pdag =
        profile::buildPDag(cfg, profile::DagMode::HeaderSplit);
    const profile::Numbering numbering = profile::numberPaths(
        pdag, profile::NumberingScheme::BallLarus, nullptr);
    profile::InstrumentationPlan plan =
        profile::buildInstrumentationPlan(cfg, pdag, numbering);
    ASSERT_TRUE(plan.enabled);

    DiagnosticList clean;
    EXPECT_TRUE(analysis::auditPlanMirror(plan, method.name, false, 0,
                                          clean))
        << describe(clean);

    // Mutate a nested action without rebuildFlat(): the flattened
    // mirror the interpreter reads is now stale.
    bool mutated = false;
    for (auto &block_actions : plan.edgeActions) {
        if (!block_actions.empty()) {
            block_actions.front().increment += 7;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);

    DiagnosticList stale;
    EXPECT_FALSE(analysis::auditPlanMirror(plan, method.name, false, 0,
                                           stale));
    EXPECT_TRUE(hasError(stale, "invariants", "flat-mirror"))
        << describe(stale);

    // rebuildFlat() discharges the invariant again.
    plan.rebuildFlat();
    DiagnosticList rebuilt;
    EXPECT_TRUE(analysis::auditPlanMirror(plan, method.name, false, 0,
                                          rebuilt))
        << describe(rebuilt);
}

// ---- Deterministic diagnostic ordering -------------------------------

TEST(Diagnostics, SortOrderIsDeterministic)
{
    std::vector<Diagnostic> diagnostics;
    auto make = [](std::string method, std::uint32_t version,
                   std::string pass, std::string check,
                   bytecode::Pc pc) {
        Diagnostic d;
        d.method = std::move(method);
        d.hasVersion = true;
        d.version = version;
        d.pass = std::move(pass);
        d.check = std::move(check);
        d.hasPc = true;
        d.pc = pc;
        return d;
    };
    diagnostics.push_back(make("b", 0, "engine-equiv", "layout", 4));
    diagnostics.push_back(make("a", 1, "engine-equiv", "layout", 9));
    diagnostics.push_back(make("a", 0, "realizability", "walk-bound", 2));
    diagnostics.push_back(make("a", 0, "engine-equiv", "yieldpoint", 7));
    diagnostics.push_back(make("a", 0, "engine-equiv", "layout", 3));
    diagnostics.push_back(make("a", 0, "engine-equiv", "layout", 1));

    analysis::sortDiagnostics(diagnostics);

    // (method, version, pass, check, location).
    EXPECT_EQ(diagnostics[0].method, "a");
    EXPECT_EQ(diagnostics[0].check, "layout");
    EXPECT_EQ(diagnostics[0].pc, 1u);
    EXPECT_EQ(diagnostics[1].pc, 3u);
    EXPECT_EQ(diagnostics[2].check, "yieldpoint");
    EXPECT_EQ(diagnostics[3].pass, "realizability");
    EXPECT_EQ(diagnostics[4].version, 1u);
    EXPECT_EQ(diagnostics[5].method, "b");

    // Sorting is idempotent and input-order independent.
    std::vector<Diagnostic> reversed(diagnostics.rbegin(),
                                     diagnostics.rend());
    analysis::sortDiagnostics(reversed);
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        EXPECT_EQ(reversed[i].method, diagnostics[i].method);
        EXPECT_EQ(reversed[i].check, diagnostics[i].check);
        EXPECT_EQ(reversed[i].pc, diagnostics[i].pc);
    }
}

} // namespace
