/**
 * @file
 * Seeded-bug rejection tests for the clone discipline (docs/OPT.md):
 * check 11 (checkClonedBody) must reject a cloned body whose origin
 * records or rootPcMap were corrupted, and the machine-level clone
 * audits (auditCloneJournal, the escape/sanitize journal) must reject
 * a clone flag flipped in place and a post-clone mutation that skipped
 * invalidateDecoded.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/plan_check.hh"
#include "analysis/verify/invariants.hh"
#include "analysis/verify/verify.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "opt/path_clone.hh"
#include "opt/pipeline.hh"
#include "opt/profile_consumer.hh"
#include "vm/inliner.hh"
#include "vm/layout.hh"
#include "vm/machine.hh"

namespace {

using namespace pep;
using analysis::Diagnostic;
using analysis::DiagnosticList;
using analysis::Severity;

bool
hasError(const DiagnosticList &diagnostics, const std::string &pass,
         const std::string &check)
{
    for (const Diagnostic &d : diagnostics.all()) {
        if (d.severity == Severity::Error && d.pass == pass &&
            d.check == check)
            return true;
    }
    return false;
}

/** Some "plan-check" error mentioning `needle`. */
bool
hasPlanCheckError(const DiagnosticList &diagnostics,
                  const std::string &needle)
{
    for (const Diagnostic &d : diagnostics.all()) {
        if (d.severity == Severity::Error && d.pass == "plan-check" &&
            d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

/** A well-formed cloned body of simpleLoopProgram's main. */
struct CloneRig
{
    bytecode::Program program = test::simpleLoopProgram();
    bytecode::MethodCfg cfg;
    opt::ClonedBody cloned;

    CloneRig()
        : cfg(bytecode::buildCfg(program.methods[program.mainMethod]))
    {
        // Hot back edge into the loop header; the greedy planner
        // anchors there (see path_clone_test).
        std::vector<std::vector<std::uint64_t>> weights(
            cfg.graph.numBlocks());
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
            weights[b].assign(cfg.graph.succs(b).size(), 0);
        cfg::BlockId header = cfg::kInvalidBlock;
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
            if (cfg.isCodeBlock(b) && cfg.isLoopHeader[b])
                header = b;
        EXPECT_NE(header, cfg::kInvalidBlock);
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (!cfg.isCodeBlock(b))
                continue;
            if (cfg.terminator[b] == bytecode::TerminatorKind::Goto &&
                cfg.graph.succs(b)[0] == header)
                weights[b][0] = 100;
            if (b == header) {
                weights[b][0] = 2;
                weights[b][1] = 100;
            }
        }
        const auto plan = opt::selectClonePath(cfg, weights, {});
        EXPECT_TRUE(plan.has_value());
        cloned = opt::buildClonedBody(program, program.mainMethod, cfg,
                                      *plan);
        EXPECT_NE(cloned.body, nullptr);
    }

    analysis::CloneCheckInput
    input() const
    {
        analysis::CloneCheckInput in;
        in.rootMethod = program.mainMethod;
        in.originalCfg = &cfg;
        in.body = cloned.body.get();
        in.methodName = "main";
        return in;
    }

    /** First clone-region Cond/Switch block of the synthesized CFG. */
    cfg::BlockId
    cloneRegionBranch() const
    {
        const bytecode::MethodCfg &synth = cloned.body->info.cfg;
        for (cfg::BlockId b = 0; b < synth.graph.numBlocks(); ++b) {
            if (!synth.isCodeBlock(b))
                continue;
            const auto kind = synth.terminator[b];
            if (synth.blockOfPc.size() > 0 &&
                (kind == bytecode::TerminatorKind::Cond ||
                 kind == bytecode::TerminatorKind::Switch)) {
                // Clone region = pcs at or above cloneStartPc.
                bool in_clone_region = false;
                for (bytecode::Pc pc = cloned.cloneStartPc;
                     pc < synth.blockOfPc.size(); ++pc)
                    in_clone_region |= synth.blockOfPc[pc] == b;
                if (in_clone_region)
                    return b;
            }
        }
        return cfg::kInvalidBlock;
    }
};

TEST(CloneCheck, AcceptsAWellFormedClone)
{
    CloneRig rig;
    DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::checkClonedBody(rig.input(), diagnostics));
    EXPECT_EQ(diagnostics.errorCount(), 0u);
}

TEST(CloneCheck, RejectsBranchBlockWithoutOrigin)
{
    CloneRig rig;
    const cfg::BlockId branch = rig.cloneRegionBranch();
    ASSERT_NE(branch, cfg::kInvalidBlock);

    rig.cloned.body->blockOrigin[branch] = vm::BlockOrigin{};
    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkClonedBody(rig.input(), diagnostics));
    EXPECT_TRUE(hasPlanCheckError(diagnostics, "no BlockOrigin"));
}

TEST(CloneCheck, RejectsOriginIntoAnotherMethod)
{
    CloneRig rig;
    const cfg::BlockId branch = rig.cloneRegionBranch();
    ASSERT_NE(branch, cfg::kInvalidBlock);

    rig.cloned.body->blockOrigin[branch].method =
        static_cast<bytecode::MethodId>(rig.program.mainMethod + 1);
    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkClonedBody(rig.input(), diagnostics));
    EXPECT_TRUE(hasPlanCheckError(diagnostics, "origin method"));
}

TEST(CloneCheck, RejectsOriginOfTheWrongShape)
{
    CloneRig rig;
    const cfg::BlockId branch = rig.cloneRegionBranch();
    ASSERT_NE(branch, cfg::kInvalidBlock);

    // Point the branch's origin at a block whose terminator kind
    // differs (a Goto/Return block): per-index counter sharing would
    // mix edges of different branches.
    const bytecode::MethodCfg &original = rig.cfg;
    cfg::BlockId wrong = cfg::kInvalidBlock;
    const auto kind =
        rig.cloned.body->info.cfg.terminator[branch];
    for (cfg::BlockId b = 0; b < original.graph.numBlocks(); ++b) {
        if (original.isCodeBlock(b) && original.terminator[b] != kind)
            wrong = b;
    }
    ASSERT_NE(wrong, cfg::kInvalidBlock);

    rig.cloned.body->blockOrigin[branch].block = wrong;
    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkClonedBody(rig.input(), diagnostics));
}

TEST(CloneCheck, RejectsCorruptRootPcMap)
{
    CloneRig rig;
    ASSERT_GE(rig.cloned.body->rootPcMap.size(), 2u);

    // Clones keep original code in place; a shifted map would make OSR
    // transfer a frame into the wrong instruction.
    rig.cloned.body->rootPcMap[1] = rig.cloned.body->rootPcMap[0];
    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::checkClonedBody(rig.input(), diagnostics));
    EXPECT_TRUE(hasPlanCheckError(diagnostics, "rootPcMap"));
}

/** A machine whose main was compiled with the cloning pipeline. */
struct ClonedMachineRig
{
    bytecode::Program program = test::simpleLoopProgram();
    vm::FixedLayoutSource source;
    opt::LayoutSourceConsumer consumer;
    opt::OptPipeline pipeline;
    vm::Machine machine;

    static profile::EdgeProfileSet
    probeProfile(const bytecode::Program &program)
    {
        vm::Machine probe(program, vm::SimParams{});
        probe.runIteration();
        return probe.truthEdges();
    }

    ClonedMachineRig()
        : source(probeProfile(program)), consumer(source),
          pipeline(consumer), machine(program, vm::SimParams{})
    {
        machine.addCompilePass(&pipeline);
        machine.compileNow(program.mainMethod, vm::OptLevel::Opt2);
        EXPECT_EQ(pipeline.stats().clonesApplied, 1u);
    }

    std::uint32_t
    clonedVersion() const
    {
        return machine.currentVersion(program.mainMethod)->version;
    }
};

TEST(CloneAudit, CleanCloneVerifiesClean)
{
    ClonedMachineRig rig;
    rig.machine.runIteration();
    DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::verifyMachine(rig.machine, diagnostics));
    EXPECT_EQ(diagnostics.errorCount(), 0u);
}

TEST(CloneAudit, RejectsCloneFlagFlippedInPlace)
{
    ClonedMachineRig rig;
    const std::uint32_t version = rig.clonedVersion();

    // Clearing the flag in place diverges the installed version from
    // its compile-journal record even though the escape/sanitize
    // discipline is followed to the letter.
    vm::CompiledMethod *cm =
        rig.machine.versionForUpdate(rig.program.mainMethod, version);
    ASSERT_NE(cm, nullptr);
    cm->cloneApplied = false;
    rig.machine.invalidateDecoded(rig.program.mainMethod, version);

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::auditCloneJournal(rig.machine, diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "invariants", "clone-journal"));
}

TEST(CloneAudit, RejectsSkippedInvalidateAfterCloneMutation)
{
    ClonedMachineRig rig;
    rig.machine.runIteration();
    const std::uint32_t version = rig.clonedVersion();

    // Seeded bug: retune the cloned version's layout but "forget" the
    // invalidateDecoded — the classic stale-template hazard, now on a
    // clone-synthesized CFG.
    vm::CompiledMethod *cm =
        rig.machine.versionForUpdate(rig.program.mainMethod, version);
    ASSERT_NE(cm, nullptr);
    for (std::size_t b = 0; b < cm->branchLayout.size(); ++b)
        if (cm->branchLayout[b] == 1)
            cm->branchLayout[b] = 0;

    DiagnosticList diagnostics;
    EXPECT_FALSE(analysis::verifyMachine(rig.machine, diagnostics));
    EXPECT_TRUE(hasError(diagnostics, "invariants", "escape-unsanitized"));
}

} // namespace
