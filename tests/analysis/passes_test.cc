/**
 * @file
 * Tests for the individual lint passes: liveness / dead stores,
 * unreachable code, the abstract stack/constant pass, and the
 * lintProgram pipeline glue.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/lint.hh"
#include "analysis/liveness.hh"
#include "analysis/stack_const.hh"
#include "analysis/unreachable.hh"
#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"

namespace pep::analysis {
namespace {

bytecode::Program
assembleMain(const std::string &body)
{
    return bytecode::assembleOrDie(body);
}

const bytecode::Method &
mainMethod(const bytecode::Program &program)
{
    return program.methods[program.mainMethod];
}

std::size_t
countMatching(const DiagnosticList &diagnostics, Severity severity,
              const std::string &pass, const std::string &substring)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics.all()) {
        if (d.severity == severity && d.pass == pass &&
            d.message.find(substring) != std::string::npos)
            ++n;
    }
    return n;
}

TEST(Liveness, FlagsStoreNeverRead)
{
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 2
    iconst 5
    istore 0
    iconst 1
    istore 1
    iload 1
    ifle done
done:
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const LivenessResult liveness = computeLiveness(m, cfg);

    DiagnosticList diagnostics;
    reportDeadStores(m, cfg, liveness, diagnostics);

    // Local 0 is written and never read; local 1 is read by iload.
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning, "liveness",
                            "dead store: local 0"),
              1u);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning, "liveness",
                            "dead store: local 1"),
              0u);
    // The dead istore sits at pc 1.
    for (const Diagnostic &d : diagnostics.all()) {
        if (d.message.find("local 0") != std::string::npos) {
            ASSERT_TRUE(d.hasPc);
            EXPECT_EQ(d.pc, 1u);
        }
    }
}

TEST(Liveness, LoopCarriedLocalStaysLive)
{
    // simpleLoopProgram: local 0 is the loop counter (iload in the
    // header, iinc in the latch) — live around the back edge, so its
    // stores are not dead. Local 1 is only ever written by an iinc,
    // but an iinc in a loop reads its own previous value on the next
    // iteration, so it keeps itself live: no dead store either.
    const bytecode::Program program = test::simpleLoopProgram();
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const LivenessResult liveness = computeLiveness(m, cfg);

    bool header_seen = false;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (!cfg.isCodeBlock(b) || !cfg.isLoopHeader[b])
            continue;
        header_seen = true;
        EXPECT_TRUE(liveness.liveIn[b][0])
            << "loop counter dead at header entry";
    }
    EXPECT_TRUE(header_seen);

    DiagnosticList diagnostics;
    reportDeadStores(m, cfg, liveness, diagnostics);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning, "liveness",
                            "local 0"),
              0u);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning, "liveness",
                            "local 1"),
              0u);
}

TEST(Unreachable, ReportsDeadRange)
{
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 1
    goto end
    iconst 1
    istore 0
    goto end
end:
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);

    DiagnosticList diagnostics;
    const std::size_t dead = reportUnreachableCode(m, cfg, diagnostics);

    EXPECT_EQ(dead, 3u); // iconst, istore, goto
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning,
                            "unreachable", "unreachable code"),
              1u);
    ASSERT_FALSE(diagnostics.empty());
    EXPECT_TRUE(diagnostics.all()[0].hasPc);
    EXPECT_EQ(diagnostics.all()[0].pc, 1u);
}

TEST(Unreachable, CleanMethodReportsNothing)
{
    const bytecode::Program program = test::figure1Program();
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);

    DiagnosticList diagnostics;
    EXPECT_EQ(reportUnreachableCode(m, cfg, diagnostics), 0u);
    EXPECT_TRUE(diagnostics.empty());
}

TEST(StackConst, FlagsDivisionByConstantZero)
{
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 1
    iconst 7
    iconst 0
    idiv
    istore 0
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const StackConstResult result = computeStackConst(program, m, cfg);

    DiagnosticList diagnostics;
    reportStackConstFindings(program, m, cfg, result, diagnostics);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning,
                            "stack-const", "constant zero"),
              1u);
}

TEST(StackConst, FlagsConstantBranch)
{
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 1
    iconst 0
    ifeq taken
    iinc 0 1
taken:
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const StackConstResult result = computeStackConst(program, m, cfg);

    DiagnosticList diagnostics;
    reportStackConstFindings(program, m, cfg, result, diagnostics);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning,
                            "stack-const", "always taken"),
              1u);
}

TEST(StackConst, JoinPreservesEqualConstants)
{
    // Both arms store 3 into local 0, so after the join the iload/ifle
    // pair is a compile-time-decided branch (3 <= 0 is never true).
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 1
    irnd
    ifeq other
    iconst 3
    istore 0
    goto join
other:
    iconst 3
    istore 0
join:
    iload 0
    ifle end
end:
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const StackConstResult result = computeStackConst(program, m, cfg);

    DiagnosticList diagnostics;
    reportStackConstFindings(program, m, cfg, result, diagnostics);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning,
                            "stack-const", "never taken"),
              1u);
}

TEST(StackConst, JoinWidensDifferingConstants)
{
    // Arms store different constants: the join must widen to top and
    // report nothing about the branch.
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 1
    irnd
    ifeq other
    iconst 3
    istore 0
    goto join
other:
    iconst 4
    istore 0
join:
    iload 0
    ifle end
end:
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const StackConstResult result = computeStackConst(program, m, cfg);

    DiagnosticList diagnostics;
    reportStackConstFindings(program, m, cfg, result, diagnostics);
    EXPECT_EQ(countMatching(diagnostics, Severity::Warning,
                            "stack-const", "taken"),
              0u);
}

TEST(StackConst, NotesConstantSwitchSelector)
{
    const bytecode::Program program = assembleMain(R"(
.globals 1
.method main 0 1
    iconst 1
    tableswitch 0 dflt c0 c1
c0: goto end
c1: goto end
dflt:
end:
    return
.end
.main main
)");
    const bytecode::Method &m = mainMethod(program);
    const bytecode::MethodCfg cfg = bytecode::buildCfg(m);
    const StackConstResult result = computeStackConst(program, m, cfg);

    DiagnosticList diagnostics;
    reportStackConstFindings(program, m, cfg, result, diagnostics);
    EXPECT_EQ(countMatching(diagnostics, Severity::Note, "stack-const",
                            "selector is constant"),
              1u);
}

TEST(Lint, VerifierErrorsStopCfgPasses)
{
    // Hand-built program that fails verification (stack underflow):
    // lintProgram must report it under pass "verify" and skip the
    // CFG-based passes (which would panic on unverified code).
    bytecode::Program program;
    program.globalSize = 0;
    bytecode::Method m;
    m.name = "bad";
    m.numLocals = 1;
    m.code = {bytecode::Instr{bytecode::Opcode::Iadd, 0, 0, {}},
              bytecode::Instr{bytecode::Opcode::Return, 0, 0, {}}};
    program.methods.push_back(std::move(m));
    program.mainMethod = 0;

    const DiagnosticList diagnostics = lintProgram(program);
    ASSERT_TRUE(diagnostics.hasErrors());
    for (const Diagnostic &d : diagnostics.all())
        EXPECT_EQ(d.pass, "verify");
}

TEST(Lint, FixturesProduceNoErrors)
{
    for (bytecode::Program program :
         {test::simpleLoopProgram(), test::figure1Program(),
          test::callSwitchProgram()}) {
        const DiagnosticList diagnostics = lintProgram(program);
        EXPECT_EQ(diagnostics.errorCount(), 0u);
        for (const Diagnostic &d : diagnostics.all()) {
            EXPECT_NE(d.severity, Severity::Error)
                << formatDiagnostic(d);
        }
    }
}

TEST(Lint, JsonRenderingIsWellFormed)
{
    bytecode::Program program = test::simpleLoopProgram();
    const DiagnosticList diagnostics = lintProgram(program);
    const std::string json = diagnosticsToJson(diagnostics.all());
    ASSERT_GE(json.size(), 3u);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.substr(json.size() - 2), "]\n");
    // Every diagnostic carries its pass and severity.
    for (const Diagnostic &d : diagnostics.all()) {
        EXPECT_NE(json.find(d.pass), std::string::npos);
        EXPECT_NE(json.find(severityName(d.severity)),
                  std::string::npos);
    }
}

} // namespace
} // namespace pep::analysis
