/**
 * @file
 * Corpus regression replay: every .pepasm reproducer the fuzzer ever
 * checked into tests/corpus/ is re-assembled and re-run through the
 * differential checker forever. Files whose header names an injection
 * must still make the (deliberately corrupted) run report violations —
 * proving the harness keeps catching the bug class — while files
 * without one must now run clean.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "bytecode/verifier.hh"
#include "testing/differ.hh"

namespace {

using namespace pep;
namespace fz = pep::testing;

std::filesystem::path
corpusDir()
{
    return std::filesystem::path(PEP_SOURCE_DIR) / "tests" / "corpus";
}

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(corpusDir())) {
        if (entry.path().extension() == ".pepasm")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzRegression, CorpusIsNotEmpty)
{
    // The injected-bug reproducer is checked in; an empty corpus means
    // the replay below silently tests nothing.
    EXPECT_FALSE(corpusFiles().empty());
}

TEST(FuzzRegression, ReplayEveryCorpusFile)
{
    for (const std::filesystem::path &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());

        std::ifstream in(path);
        ASSERT_TRUE(in.good());
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string source = buffer.str();

        const bytecode::AssembleResult assembled =
            bytecode::assemble(source);
        ASSERT_TRUE(assembled.ok) << assembled.error;
        bytecode::Program program = assembled.program;
        ASSERT_TRUE(bytecode::verifyProgram(program).ok);

        const fz::CorpusHeader header =
            fz::parseCorpusHeader(source);
        const fz::DiffOptions *config =
            fz::findConfig(header.config);
        ASSERT_NE(config, nullptr)
            << "unknown config " << header.config;

        fz::DiffOptions opts = *config;
        ASSERT_TRUE(
            fz::parseInjectKind(header.inject, opts.inject))
            << "unknown injection " << header.inject;

        const fz::DiffReport report =
            fz::runDiff(program, opts);
        if (opts.inject == fz::InjectKind::None) {
            // A real (since fixed) finding: must stay fixed.
            EXPECT_TRUE(report.ok())
                << (report.violations.empty()
                        ? ""
                        : report.violations.front());
        } else {
            // A harness self-test: the injection must stay caught.
            EXPECT_FALSE(report.ok());
        }
    }
}

} // namespace
