/**
 * @file
 * Self-tests of the differential fuzzing harness: the generator emits
 * verifier-clean programs covering the hard shapes, the differ is
 * clean on healthy profilers across the standard config matrix, fault
 * injection is caught, and the shrinker reduces a failing program to a
 * smaller one that still fails.
 */

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "bytecode/cfg_builder.hh"
#include "bytecode/instr.hh"
#include "bytecode/verifier.hh"
#include "support/panic.hh"
#include "testing/differ.hh"
#include "testing/generator.hh"
#include "testing/shrink.hh"

namespace {

using namespace pep;
namespace fz = pep::testing;

std::size_t
countOpcode(const bytecode::Program &program, bytecode::Opcode op)
{
    std::size_t n = 0;
    for (const bytecode::Method &method : program.methods)
        for (const bytecode::Instr &instr : method.code)
            n += instr.op == op ? 1 : 0;
    return n;
}

std::size_t
totalInstructions(const bytecode::Program &program)
{
    std::size_t n = 0;
    for (const bytecode::Method &method : program.methods)
        n += method.code.size();
    return n;
}

TEST(FuzzGenerator, ProgramsAreVerifierCleanAndCoverHardShapes)
{
    std::size_t switches = 0;
    std::size_t invokes = 0;
    std::size_t loops = 0;
    std::size_t shared_headers = 0;
    std::size_t parallel_edges = 0;

    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        fz::FuzzSpec spec;
        spec.seed = seed;
        bytecode::Program program = fz::generateProgram(spec);
        EXPECT_TRUE(bytecode::verifyProgram(program).ok)
            << "seed " << seed;

        switches += countOpcode(program, bytecode::Opcode::Tableswitch);
        invokes += countOpcode(program, bytecode::Opcode::Invoke);

        for (const bytecode::Method &method : program.methods) {
            const bytecode::MethodCfg cfg = bytecode::buildCfg(method);
            loops += cfg.backEdges.size();

            // Shared loop headers: several back edges into one block.
            std::set<cfg::BlockId> headers;
            for (const cfg::EdgeRef &edge : cfg.backEdges) {
                const cfg::BlockId dst = cfg.graph.edgeDst(edge);
                if (!headers.insert(dst).second)
                    ++shared_headers;
            }

            // Parallel edges (switch cases sharing a target block).
            for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
                const auto &succs = cfg.graph.succs(b);
                const std::set<cfg::BlockId> distinct(succs.begin(),
                                                      succs.end());
                parallel_edges += succs.size() - distinct.size();
            }
        }
    }

    EXPECT_GT(switches, 0u);
    EXPECT_GT(invokes, 0u);
    EXPECT_GT(loops, 40u); // well beyond the one driver loop per seed
    EXPECT_GT(shared_headers, 0u);
    EXPECT_GT(parallel_edges, 0u);
}

TEST(FuzzGenerator, DeterministicPerSeed)
{
    fz::FuzzSpec spec;
    spec.seed = 123;
    const bytecode::Program a = fz::generateProgram(spec);
    const bytecode::Program b = fz::generateProgram(spec);
    ASSERT_EQ(a.methods.size(), b.methods.size());
    for (std::size_t m = 0; m < a.methods.size(); ++m) {
        ASSERT_EQ(a.methods[m].code.size(), b.methods[m].code.size());
        for (std::size_t pc = 0; pc < a.methods[m].code.size(); ++pc) {
            EXPECT_EQ(a.methods[m].code[pc].op,
                      b.methods[m].code[pc].op);
            EXPECT_EQ(a.methods[m].code[pc].a, b.methods[m].code[pc].a);
        }
    }
}

TEST(FuzzGenerator, ItersEnvOverride)
{
    ::unsetenv("PEP_FUZZ_ITERS");
    EXPECT_EQ(fz::fuzzItersFromEnv(400), 400u);
    ::setenv("PEP_FUZZ_ITERS", "25", 1);
    EXPECT_EQ(fz::fuzzItersFromEnv(400), 25u);
    ::setenv("PEP_FUZZ_ITERS", "nonsense", 1);
    EXPECT_EQ(fz::fuzzItersFromEnv(400), 400u);
    ::unsetenv("PEP_FUZZ_ITERS");
}

TEST(FuzzGenerator, KIterEnvOverride)
{
    ::unsetenv("PEP_KITER");
    EXPECT_EQ(fz::kIterationsFromEnv(1), 1u);
    ::setenv("PEP_KITER", "4", 1);
    EXPECT_EQ(fz::kIterationsFromEnv(1), 4u);
    ::setenv("PEP_KITER", "0", 1);
    EXPECT_EQ(fz::kIterationsFromEnv(1), 1u);
    ::setenv("PEP_KITER", "nonsense", 1);
    EXPECT_EQ(fz::kIterationsFromEnv(1), 1u);
    ::unsetenv("PEP_KITER");
}

TEST(FuzzGenerator, ZeroLoopBiasIsByteIdenticalToLegacyStream)
{
    // The knob must not perturb the RNG stream when off: corpus seeds
    // recorded before the knob existed must replay unchanged.
    fz::FuzzSpec legacy;
    legacy.seed = 77;
    fz::FuzzSpec biased = legacy;
    biased.loopBias = 0.0;
    const bytecode::Program a = fz::generateProgram(legacy);
    const bytecode::Program b = fz::generateProgram(biased);
    ASSERT_EQ(a.methods.size(), b.methods.size());
    for (std::size_t m = 0; m < a.methods.size(); ++m) {
        ASSERT_EQ(a.methods[m].code.size(), b.methods[m].code.size());
        for (std::size_t pc = 0; pc < a.methods[m].code.size(); ++pc) {
            EXPECT_EQ(a.methods[m].code[pc].op,
                      b.methods[m].code[pc].op);
            EXPECT_EQ(a.methods[m].code[pc].a, b.methods[m].code[pc].a);
        }
    }
}

TEST(FuzzGenerator, LoopBiasProducesLoopHeavierCleanPrograms)
{
    std::size_t plain_loops = 0;
    std::size_t biased_loops = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        fz::FuzzSpec spec;
        spec.seed = seed;
        const bytecode::Program plain = fz::generateProgram(spec);
        spec.loopBias = 0.8;
        bytecode::Program biased = fz::generateProgram(spec);
        EXPECT_TRUE(bytecode::verifyProgram(biased).ok)
            << "seed " << seed;
        for (const bytecode::Method &method : plain.methods)
            plain_loops += bytecode::buildCfg(method).backEdges.size();
        for (const bytecode::Method &method : biased.methods)
            biased_loops += bytecode::buildCfg(method).backEdges.size();
    }
    EXPECT_GT(biased_loops, plain_loops);
}

TEST(Differ, CleanAcrossStandardConfigMatrix)
{
    std::size_t instrumented = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        fz::FuzzSpec spec;
        spec.seed = seed;
        const bytecode::Program program =
            fz::generateProgram(spec);
        for (const fz::DiffOptions &config :
             fz::standardConfigs()) {
            const fz::DiffReport report =
                fz::runDiff(program, config);
            EXPECT_TRUE(report.ok())
                << "seed " << seed << " config " << config.name << ": "
                << (report.violations.empty()
                        ? ""
                        : report.violations.front());
            instrumented += report.instrumentedVersions;
            EXPECT_EQ(report.blppPaths, report.oracleSegments);
        }
    }
    // The sweep must actually exercise instrumented code.
    EXPECT_GT(instrumented, 0u);
}

/** Find a seed the stale-flat injection bites on. */
std::uint64_t
findCaughtSeed(const fz::DiffOptions &opts)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        fz::FuzzSpec spec;
        spec.seed = seed;
        const bytecode::Program program =
            fz::generateProgram(spec);
        if (!fz::runDiff(program, opts).ok())
            return seed;
    }
    return 0;
}

TEST(Differ, StaleFlatInjectionIsCaughtAndCleanWithout)
{
    const fz::DiffOptions *base =
        fz::findConfig("smart-spanning-osr");
    ASSERT_NE(base, nullptr);
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::StaleFlatAfterSpanning;

    const std::uint64_t seed = findCaughtSeed(opts);
    ASSERT_NE(seed, 0u)
        << "no seed in 1..20 caught the stale-flat injection";

    fz::FuzzSpec spec;
    spec.seed = seed;
    const bytecode::Program program = fz::generateProgram(spec);
    const fz::DiffReport clean = fz::runDiff(program, *base);
    EXPECT_TRUE(clean.ok()) << clean.violations.front();
}

TEST(Differ, CorruptIncrementInjectionIsCaught)
{
    const fz::DiffOptions *base =
        fz::findConfig("headersplit-direct");
    ASSERT_NE(base, nullptr);
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::CorruptFlatIncrement;
    EXPECT_NE(findCaughtSeed(opts), 0u)
        << "no seed in 1..20 caught the corrupt-increment injection";
}

TEST(Differ, StaleTemplateInjectionDivergesTheEngines)
{
    const fz::DiffOptions *base =
        fz::findConfig("headersplit-direct");
    ASSERT_NE(base, nullptr);
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::StaleTemplate;

    const std::uint64_t seed = findCaughtSeed(opts);
    ASSERT_NE(seed, 0u)
        << "no seed in 1..20 caught the stale-template injection";

    // The violation must come from the engine cross-check — every
    // single-machine invariant still holds (the main run's event
    // stream is self-consistent even with flipped layouts).
    fz::FuzzSpec spec;
    spec.seed = seed;
    const bytecode::Program program = fz::generateProgram(spec);
    const fz::DiffReport caught = fz::runDiff(program, opts);
    ASSERT_FALSE(caught.ok());
    EXPECT_NE(caught.violations.front().find("engines:"),
              std::string::npos)
        << caught.violations.front();

    const fz::DiffReport clean = fz::runDiff(program, *base);
    EXPECT_TRUE(clean.ok()) << clean.violations.front();
}

TEST(Differ, StandardConfigMatrixCoversFusion)
{
    // The fusion legs (docs/ENGINE.md): superinstruction pairs alone,
    // and pairs + straightened traces under a k-iteration window with
    // the layout pass installed so retranslation re-specializes.
    const fz::DiffOptions *pairs = fz::findConfig("fuse-pairs");
    ASSERT_NE(pairs, nullptr);
    EXPECT_TRUE(pairs->fuse.pairs);
    EXPECT_FALSE(pairs->fuse.traces);

    const fz::DiffOptions *traces =
        fz::findConfig("fuse-traces-kiter2");
    ASSERT_NE(traces, nullptr);
    EXPECT_TRUE(traces->fuse.pairs);
    EXPECT_TRUE(traces->fuse.traces);
    EXPECT_EQ(traces->kIterations, 2u);
    EXPECT_TRUE(traces->optLayout);
}

TEST(Differ, StaleFusionInjectionIsCaughtAndCleanWithout)
{
    // A retranslation skipped after a profile-direction flip: switch
    // dispatch follows the new layout while the threaded engine keeps
    // executing traces straightened for the old one. The engine
    // cross-check must diverge under the trace-fusing config, and the
    // same programs must run clean without the injection.
    const fz::DiffOptions *base = fz::findConfig("fuse-traces-kiter2");
    ASSERT_NE(base, nullptr);
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::StaleFusion;

    const std::uint64_t seed = findCaughtSeed(opts);
    ASSERT_NE(seed, 0u)
        << "no seed in 1..20 caught the stale-fusion injection";

    fz::FuzzSpec spec;
    spec.seed = seed;
    const bytecode::Program program = fz::generateProgram(spec);
    const fz::DiffReport caught = fz::runDiff(program, opts);
    ASSERT_FALSE(caught.ok());

    const fz::DiffReport clean = fz::runDiff(program, *base);
    EXPECT_TRUE(clean.ok()) << clean.violations.front();
}

TEST(Differ, StandardConfigMatrixCoversKIterations)
{
    std::set<std::uint32_t> ks;
    for (const fz::DiffOptions &config : fz::standardConfigs())
        ks.insert(config.kIterations);
    EXPECT_TRUE(ks.count(1)) << "matrix lost the classic k=1 configs";
    EXPECT_TRUE(ks.count(2)) << "matrix lost the k=2 config";
    EXPECT_TRUE(ks.count(4)) << "matrix lost the k=4 configs";
}

TEST(Differ, TruncatedWindowInjectionIsCaughtAndCleanWithout)
{
    const fz::DiffOptions *base = fz::findConfig("kiter2-smart-osr");
    ASSERT_NE(base, nullptr);
    ASSERT_GT(base->kIterations, 1u)
        << "injection needs partial windows to drop";
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::TruncatedWindow;

    const std::uint64_t seed = findCaughtSeed(opts);
    ASSERT_NE(seed, 0u)
        << "no seed in 1..20 caught the truncated-window injection";

    fz::FuzzSpec spec;
    spec.seed = seed;
    const bytecode::Program program = fz::generateProgram(spec);
    const fz::DiffReport clean = fz::runDiff(program, *base);
    EXPECT_TRUE(clean.ok()) << clean.violations.front();

    // At k=1 every window is a single segment: there is nothing to
    // truncate, so the same injection must be invisible.
    fz::DiffOptions degenerate = opts;
    degenerate.kIterations = 1;
    const fz::DiffReport k1 = fz::runDiff(program, degenerate);
    EXPECT_TRUE(k1.ok()) << k1.violations.front();
}

TEST(Shrinker, ReducesInjectedFailureWhileItStillFails)
{
    const fz::DiffOptions *base =
        fz::findConfig("smart-spanning-osr");
    ASSERT_NE(base, nullptr);
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::StaleFlatAfterSpanning;

    const std::uint64_t seed = findCaughtSeed(opts);
    ASSERT_NE(seed, 0u);
    fz::FuzzSpec spec;
    spec.seed = seed;
    const bytecode::Program failing = fz::generateProgram(spec);

    const fz::FailPredicate still_fails =
        [&](const bytecode::Program &candidate) {
            try {
                return !fz::runDiff(candidate, opts).ok();
            } catch (const support::PanicError &) {
                return true;
            } catch (const support::FatalError &) {
                return false;
            }
        };
    ASSERT_TRUE(still_fails(failing));

    const fz::ShrinkResult shrunk =
        fz::shrinkProgram(failing, still_fails);
    EXPECT_TRUE(shrunk.changed);
    EXPECT_GT(shrunk.attempts, 0u);
    EXPECT_LT(totalInstructions(shrunk.program),
              totalInstructions(failing));
    EXPECT_LE(shrunk.program.methods.size(), failing.methods.size());
    EXPECT_TRUE(still_fails(shrunk.program));

    bytecode::Program verified = shrunk.program;
    EXPECT_TRUE(bytecode::verifyProgram(verified).ok);
}

TEST(Differ, StandardConfigMatrixCoversCloning)
{
    // The always-on cloning configurations: the full pipeline under
    // the Smart scheme, and the same with k-iteration paths so cloned
    // synthesized CFGs meet cross-iteration windows.
    const fz::DiffOptions *smart = fz::findConfig("clone-smart");
    ASSERT_NE(smart, nullptr);
    EXPECT_TRUE(smart->optClone);
    EXPECT_TRUE(smart->optLayout);

    const fz::DiffOptions *kiter = fz::findConfig("clone-kiter2");
    ASSERT_NE(kiter, nullptr);
    EXPECT_TRUE(kiter->optClone);
    EXPECT_EQ(kiter->kIterations, 2u);
}

TEST(Differ, BadCloneFoldInjectionIsCaughtAndCleanWithout)
{
    const fz::DiffOptions *base = fz::findConfig("clone-smart");
    ASSERT_NE(base, nullptr);

    // Seed 1 is known to tier a hot method to Opt2 with PEP profile
    // data in time for the cloning pass (the shrunk reproducer in
    // tests/corpus/ came from it). The clean run must install a clone
    // — otherwise this test proves nothing — and stay violation-free.
    fz::FuzzSpec spec;
    spec.seed = 1;
    const bytecode::Program program = fz::generateProgram(spec);
    const fz::DiffReport clean = fz::runDiff(program, *base);
    EXPECT_TRUE(clean.ok()) << clean.violations.front();
    bool cloned = false;
    for (const std::string &note : clean.notes)
        cloned = cloned ||
                 note.find("cloned versions") != std::string::npos;
    ASSERT_TRUE(cloned)
        << "seed 1 no longer installs a clone under clone-smart";

    // Corrupting the installed clone's origin map mid-run must be
    // caught: the interpreter's fold and the oracle's compile-time
    // snapshot fold diverge (check 1 / check 9).
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::BadCloneFold;
    const fz::DiffReport caught = fz::runDiff(program, opts);
    EXPECT_FALSE(caught.ok())
        << "bad-clone-fold injection went unnoticed";
}

TEST(Differ, BadCloneFoldWithoutACloneIsANoOp)
{
    const fz::DiffOptions *base = fz::findConfig("clone-smart");
    ASSERT_NE(base, nullptr);
    fz::DiffOptions opts = *base;
    opts.inject = fz::InjectKind::BadCloneFold;

    // Seed 2 never promotes anything far enough to clone: the
    // injection finds nothing to corrupt and must say so instead of
    // reporting a phantom violation.
    fz::FuzzSpec spec;
    spec.seed = 2;
    const bytecode::Program program = fz::generateProgram(spec);
    const fz::DiffReport report = fz::runDiff(program, opts);
    EXPECT_TRUE(report.ok())
        << report.violations.front();
    bool noted = false;
    for (const std::string &note : report.notes)
        noted = noted ||
                note.find("nothing to corrupt") != std::string::npos;
    EXPECT_TRUE(noted);
}

TEST(Differ, CorpusHeaderRoundTrip)
{
    fz::FuzzSpec spec;
    spec.seed = 5;
    const bytecode::Program program = fz::generateProgram(spec);
    const std::string text = fz::formatCorpusFile(
        program, "backedge", 5,
        fz::InjectKind::CorruptFlatIncrement, "why it failed");
    const fz::CorpusHeader header =
        fz::parseCorpusHeader(text);
    EXPECT_EQ(header.config, "backedge");
    EXPECT_EQ(header.inject, "corrupt-increment");
    EXPECT_EQ(header.seed, 5u);
}

} // namespace
