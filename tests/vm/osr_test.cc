/**
 * @file
 * On-stack replacement tests: a frame stuck in a long-running loop is
 * promoted mid-execution at a loop-header yieldpoint; path profilers
 * rebind cleanly thanks to header splitting.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"

namespace pep::vm {
namespace {

/** One long-running main loop: never returns until the very end, so
 *  without OSR it would stay at baseline the whole run. */
bytecode::Program
longLoopProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 1
.method main 0 2
    iconst 200000
    istore 0
loop:
    iload 0
    ifle done
    irnd
    iconst 1
    iand
    ifeq skip
    iinc 1 1
skip:
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
}

SimParams
osrParams(bool enable)
{
    SimParams params;
    params.tickCycles = 100'000;
    params.enableOsr = enable;
    return params;
}

TEST(Osr, PromotesLongRunningFrameMidLoop)
{
    Machine machine(longLoopProgram(), osrParams(true));
    machine.runIteration();
    EXPECT_GT(machine.stats().osrs, 0u);
    const CompiledMethod *cm = machine.currentVersion(0);
    ASSERT_NE(cm, nullptr);
    EXPECT_NE(cm->level, OptLevel::Baseline);
}

TEST(Osr, DisabledByDefault)
{
    Machine machine(longLoopProgram(), osrParams(false));
    machine.runIteration();
    EXPECT_EQ(machine.stats().osrs, 0u);
    // Without OSR, main never gets a second invocation: still baseline.
    EXPECT_EQ(machine.currentVersion(0)->level, OptLevel::Baseline);
}

TEST(Osr, SpeedsUpLongRunningLoops)
{
    Machine without(longLoopProgram(), osrParams(false));
    Machine with(longLoopProgram(), osrParams(true));
    const std::uint64_t slow = without.runIteration();
    const std::uint64_t fast = with.runIteration();
    // The loop runs ~200k iterations; optimized code more than pays
    // for the extra compile.
    EXPECT_LT(fast, slow);
}

TEST(Osr, PathProfilersRebindExactly)
{
    // PEP(always) and a free ground-truth recorder across an OSR: the
    // two must stay in perfect agreement, and profiling must cover the
    // post-OSR portion of the loop.
    class AlwaysSample final : public core::SamplingController
    {
      public:
        core::SampleAction
        onOpportunity(bool) override
        {
            return core::SampleAction::Sample;
        }
        void reset() override {}
        std::string name() const override { return "always"; }
    };

    const bytecode::Program program = longLoopProgram();
    Machine machine(program, osrParams(true));
    AlwaysSample always;
    core::PepProfiler pep(machine, always);
    core::FullPathProfiler truth(machine,
                                 profile::DagMode::HeaderSplit,
                                 /*charge_costs=*/false);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);
    machine.runIteration();

    ASSERT_GT(machine.stats().osrs, 0u);
    ASSERT_GT(truth.pathsStored(), 100'000u); // covered after OSR

    const auto pep_paths = metrics::canonicalize(pep);
    const auto truth_paths = metrics::canonicalize(truth);
    ASSERT_EQ(pep_paths.paths.size(), truth_paths.paths.size());
    for (const auto &[key, entry] : truth_paths.paths) {
        const auto it = pep_paths.paths.find(key);
        ASSERT_NE(it, pep_paths.paths.end());
        EXPECT_EQ(it->second.count, entry.count);
    }
}

TEST(Osr, BackEdgeModeProfilerStopsGracefully)
{
    // A classic-BLPP engine cannot rebind mid-path; it must drop the
    // frame without corrupting counts or crashing.
    const bytecode::Program program = longLoopProgram();
    Machine machine(program, osrParams(true));
    core::FullPathProfiler blpp(machine,
                                profile::DagMode::BackEdgeTruncate,
                                /*charge_costs=*/false);
    machine.addHooks(&blpp);
    machine.addCompileObserver(&blpp);
    machine.runIteration();
    ASSERT_GT(machine.stats().osrs, 0u);
    // Counts exist only if a post-OSR invocation happened (none here),
    // so zero stored paths is acceptable — the point is no panic and
    // a clean second iteration.
    machine.runIteration();
    EXPECT_GT(blpp.pathsStored(), 0u); // second invocation is opt'd
}

TEST(Osr, RepeatedPromotionsReachTopTier)
{
    // Opt1 first, then Opt2 via a second OSR within the same frame.
    SimParams params = osrParams(true);
    params.opt1SampleThreshold = 1;
    params.opt2SampleThreshold = 3;
    Machine machine(longLoopProgram(), params);
    machine.runIteration();
    EXPECT_GE(machine.stats().osrs, 2u);
    EXPECT_EQ(machine.currentVersion(0)->level, OptLevel::Opt2);
}

} // namespace
} // namespace pep::vm
