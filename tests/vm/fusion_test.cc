/**
 * @file
 * Tests of template fusion and trace straightening (docs/ENGINE.md):
 * deterministic superinstruction selection from the fusion menu,
 * operand burn-in and charge conservation of fused streams, golden
 * trace selection, the switch/threaded byte-identity contract across
 * the whole PEP_ENGINE x PEP_FUSE matrix (guarded exits included, on
 * mispredict-heavy runs), park/resume through fused streams, the
 * fusion-keyed translation cache, and seeded rejections of the
 * fused-stream plan check (check 12). Suite names start with
 * "FusionRuntime" so `ctest -R Runtime` (the TSan CI job) selects
 * them.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "analysis/diagnostics.hh"
#include "analysis/plan_check.hh"
#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "vm/cost_model.hh"
#include "vm/decoded_method.hh"
#include "vm/engine.hh"
#include "vm/interpreter.hh"
#include "vm/machine.hh"

namespace pep::vm {
namespace {

SimParams
fusedParams(EngineKind kind, FuseOptions fuse)
{
    SimParams params;
    params.engine = kind;
    params.fuse = fuse;
    params.tickCycles = 20'000; // fast ticks: exercise promotion
    return params;
}

/** Translate one method exactly as Machine::decodedFor would for a
 *  full-opt version with no layout information, under `fuse`. */
struct Translated
{
    MethodInfo info;
    CompiledMethod cm;
    DecodedMethod decoded;

    Translated(const bytecode::Method &method, FuseOptions fuse)
        : info(buildMethodInfo(method))
    {
        const CostModel cost;
        cm.level = OptLevel::Opt2;
        cm.scaledCost.resize(bytecode::kNumOpcodes);
        for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op)
            cm.scaledCost[op] =
                cost.instrCost(static_cast<bytecode::Opcode>(op));
        cm.branchLayout.assign(info.cfg.graph.numBlocks(), -1);
        decoded = translateMethod(method, info, cm, fuse);
    }
};

/** Run check 12 over a (possibly corrupted) stream; return the number
 *  of errors it reports. */
std::size_t
check12Errors(const DecodedMethod &decoded)
{
    analysis::FusedCheckInput input;
    input.decoded = &decoded;
    input.methodName = "main";
    analysis::DiagnosticList diagnostics;
    analysis::checkFusedStream(input, diagnostics);
    return diagnostics.errorCount();
}

constexpr FuseOptions kFuseMatrix[] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

// ---- the fusion menu -------------------------------------------------

TEST(FusionRuntimeMenu, OptionNamesRoundTrip)
{
    EXPECT_STREQ(fuseOptionsName({false, false}), "none");
    EXPECT_STREQ(fuseOptionsName({true, false}), "pairs");
    EXPECT_STREQ(fuseOptionsName({false, true}), "traces");
    EXPECT_STREQ(fuseOptionsName({true, true}), "pairs,traces");

    FuseOptions fuse;
    EXPECT_TRUE(parseFuseOptions("pairs,traces", fuse));
    EXPECT_TRUE(fuse.pairs);
    EXPECT_TRUE(fuse.traces);
    EXPECT_TRUE(parseFuseOptions("none", fuse));
    EXPECT_EQ(fuse, FuseOptions{});
    EXPECT_FALSE(parseFuseOptions("superblocks", fuse));
}

TEST(FusionRuntimeMenu, PairAndTripleSelectionIsDeterministic)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 3
    iconst 7
    istore 0
    iload 0
    iload 1
    iadd
    istore 2
    iload 2
    iconst 3
    if_icmpge done
    iinc 1 1
done:
    return
.end
.main main
)");
    const bytecode::Method &code = p.methods[p.mainMethod];

    // iconst+istore collapses to the ConstStore pair.
    const FusionMatch const_store = matchFusion(code, 0);
    EXPECT_EQ(const_store.top, kTopConstStore);
    EXPECT_EQ(const_store.len, 2u);

    // iload+iload+iadd: the triple wins over the LoadLoad pair.
    const FusionMatch lla = matchFusion(code, 2);
    EXPECT_EQ(lla.top, kTopLoadLoadArithBase);
    EXPECT_EQ(lla.len, 3u);
    EXPECT_EQ(static_cast<bytecode::Opcode>(lla.sub),
              bytecode::Opcode::Iadd);

    // iload+iconst+if_icmpge: the compare-and-branch triple.
    const int cmp_off =
        static_cast<int>(bytecode::Opcode::IfIcmpge) -
        static_cast<int>(bytecode::Opcode::IfIcmpeq);
    const FusionMatch lccb = matchFusion(code, 6);
    EXPECT_EQ(lccb.top, kTopLoadConstCmpBrBase + cmp_off);
    EXPECT_EQ(lccb.len, 3u);

    // iinc participates in no fusion.
    EXPECT_EQ(matchFusion(code, 9).len, 0u);

    // The menu is a pure function of the code bytes.
    for (bytecode::Pc pc = 0; pc < code.code.size(); ++pc) {
        const FusionMatch a = matchFusion(code, pc);
        const FusionMatch b = matchFusion(code, pc);
        EXPECT_EQ(a.top, b.top);
        EXPECT_EQ(a.len, b.len);
        EXPECT_EQ(a.sub, b.sub);
    }
}

// ---- translated streams ----------------------------------------------

TEST(FusionRuntimeTranslator, FusedStreamBurnsOperandsAndConserves)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 3
    iconst 7
    istore 0
    iload 0
    iload 1
    iadd
    istore 2
    iload 2
    iconst 3
    if_icmpge done
    iinc 1 1
done:
    return
.end
.main main
)");
    const bytecode::Method &code = p.methods[p.mainMethod];
    const Translated t(code, {true, false});

    // The ConstStore pair carries both constituents' operands and
    // covers both pcs in the pc map.
    const std::uint32_t cs = t.decoded.pcToTemplate[0];
    ASSERT_LT(cs, t.decoded.stream.size());
    const Template &const_store = t.decoded.stream[cs];
    EXPECT_EQ(const_store.op, kTopConstStore);
    EXPECT_EQ(const_store.fuseLen, 2u);
    EXPECT_EQ(const_store.a, 7);
    EXPECT_EQ(const_store.b, 0);
    EXPECT_EQ(t.decoded.pcToTemplate[1], cs);

    // The load-load-arith triple likewise.
    const std::uint32_t lla = t.decoded.pcToTemplate[2];
    const Template &arith = t.decoded.stream[lla];
    EXPECT_EQ(arith.op, kTopLoadLoadArithBase);
    EXPECT_EQ(arith.fuseLen, 3u);
    EXPECT_EQ(arith.a, 0);
    EXPECT_EQ(arith.b, 1);
    EXPECT_EQ(t.decoded.pcToTemplate[3], lla);
    EXPECT_EQ(t.decoded.pcToTemplate[4], lla);

    // Every fused template is the menu's own match at its pc.
    for (const Template &tpl : t.decoded.stream) {
        if (!isFusedTop(tpl.op))
            continue;
        const FusionMatch m = matchFusion(code, tpl.pc);
        EXPECT_EQ(m.top, tpl.op) << "pc " << tpl.pc;
        EXPECT_EQ(m.len, tpl.fuseLen) << "pc " << tpl.pc;
    }

    // Folded charges still conserve the per-instruction totals.
    std::uint64_t want_cost = 0;
    for (const bytecode::Instr &instr : code.code)
        want_cost += t.cm.scaledCost[static_cast<std::size_t>(instr.op)];
    std::uint64_t got_cost = 0;
    std::uint64_t got_ninstr = 0;
    for (const Template &tpl : t.decoded.stream) {
        got_cost += tpl.cost;
        got_ninstr += tpl.ninstr;
    }
    EXPECT_EQ(got_cost, want_cost);
    EXPECT_EQ(got_ninstr, code.code.size());

    // The stream shrank: fusion actually collapsed dispatches.
    const Translated plain(code, {false, false});
    EXPECT_LT(t.decoded.stream.size(), plain.decoded.stream.size());
}

TEST(FusionRuntimeTraces, SelectionIsDeterministicAndBatched)
{
    const bytecode::Program p = test::figure1Program();
    const bytecode::Method &code = p.methods[p.mainMethod];
    const Translated t(code, {true, true});

    // Selection is reproducible from (code, layout, fuse) and the
    // decoded stream records exactly it.
    EXPECT_EQ(t.decoded.traces,
              selectTraces(code, t.info, t.cm, {true, true}));
    ASSERT_FALSE(t.decoded.traces.empty());
    for (const auto &chain : t.decoded.traces)
        EXPECT_GE(chain.size(), 2u);
    for (std::size_t i = 0; i < t.decoded.traces.size(); ++i)
        for (const cfg::BlockId b : t.decoded.traces[i])
            EXPECT_EQ(t.decoded.blockTrace[b],
                      static_cast<std::int32_t>(i));

    // Interior conditionals became guards carrying a nonzero suffix
    // refund, and the batching zeroed interior leader charges: the
    // chain total sits on one template per trace.
    bool any_guard = false;
    for (const Template &tpl : t.decoded.stream) {
        if (!isGuardTop(tpl.op))
            continue;
        any_guard = true;
        EXPECT_EQ(static_cast<bytecode::Opcode>(tpl.sub),
                  code.code[tpl.pc].op);
        EXPECT_GT(tpl.swCount, 0u) << "guard refunds no suffix";
    }
    EXPECT_TRUE(any_guard);

    // Trace selection never happens without fuse.traces.
    const Translated pairs_only(code, {true, false});
    EXPECT_TRUE(pairs_only.decoded.traces.empty());
    for (const std::int32_t bt : pairs_only.decoded.blockTrace)
        EXPECT_EQ(bt, -1);
}

// ---- engine identity across the fuse matrix --------------------------

/** Everything a run may observe, minus the engine-private translation
 *  counters (methodsDecoded / templateInvalidations). */
std::string
observableState(const Machine &machine)
{
    std::ostringstream out;
    const auto dump_set = [&](const profile::EdgeProfileSet &set,
                              const char *tag) {
        for (std::size_t m = 0; m < set.perMethod.size(); ++m) {
            const auto &counts = set.perMethod[m].counts();
            for (std::size_t b = 0; b < counts.size(); ++b)
                for (std::size_t i = 0; i < counts[b].size(); ++i)
                    if (counts[b][i] != 0)
                        out << tag << ' ' << m << ' ' << b << ' ' << i
                            << ' ' << counts[b][i] << '\n';
        }
    };
    dump_set(machine.truthEdges(), "truth");
    dump_set(machine.oneTimeEdges(), "one-time");
    const MachineStats &s = machine.stats();
    out << "clock " << machine.now() << '\n'
        << "stats " << s.instructionsExecuted << ' '
        << s.methodInvocations << ' ' << s.yieldpointsExecuted << ' '
        << s.timerTicks << ' ' << s.compileCycles << ' ' << s.compiles
        << ' ' << s.osrs << ' ' << s.layoutMisses << ' '
        << s.branchesExecuted << '\n';
    return out.str();
}

std::string
runAdaptive(const bytecode::Program &p, EngineKind kind,
            FuseOptions fuse, int iterations)
{
    Machine machine(p, fusedParams(kind, fuse));
    for (int i = 0; i < iterations; ++i)
        machine.runIteration();
    return observableState(machine);
}

TEST(FusionRuntimeIdentity, WholeEngineFuseMatrixIsByteIdentical)
{
    const bytecode::Program fixtures[] = {
        test::simpleLoopProgram(),
        test::figure1Program(),
        test::callSwitchProgram(),
    };
    for (const bytecode::Program &p : fixtures) {
        const std::string baseline =
            runAdaptive(p, EngineKind::Switch, {}, 3);
        for (const FuseOptions &fuse : kFuseMatrix) {
            SCOPED_TRACE(fuseOptionsName(fuse));
            EXPECT_EQ(runAdaptive(p, EngineKind::Switch, fuse, 3),
                      baseline);
            EXPECT_EQ(runAdaptive(p, EngineKind::Threaded, fuse, 3),
                      baseline);
        }
    }
    for (std::uint64_t seed = 700; seed < 706; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const bytecode::Program p =
            test::randomStructuredProgram(seed, 6);
        const std::string baseline =
            runAdaptive(p, EngineKind::Switch, {}, 2);
        for (const FuseOptions &fuse : kFuseMatrix)
            EXPECT_EQ(runAdaptive(p, EngineKind::Threaded, fuse, 2),
                      baseline)
                << fuseOptionsName(fuse);
    }
}

TEST(FusionRuntimeIdentity, MispredictedGuardExitsStayIdentical)
{
    // figure1's irnd diamond sits inside a straightened trace under
    // the no-information layout: its guard fires the mispredicted exit
    // about half the time, refunding the unexecuted suffix. The run
    // must both *take* those exits and stay byte-identical.
    const bytecode::Program p = test::figure1Program();
    Machine th(p, fusedParams(EngineKind::Threaded, {true, true}));
    Machine sw(p, fusedParams(EngineKind::Switch, {}));
    for (int i = 0; i < 3; ++i) {
        th.runIteration();
        sw.runIteration();
    }
    EXPECT_GT(th.stats().layoutMisses, 0u)
        << "no guard ever took its mispredicted exit";
    EXPECT_EQ(observableState(th), observableState(sw));
}

// ---- park / resume ---------------------------------------------------

/** Requests a context switch at every yieldpoint, so frames park at
 *  every opportunity the contract allows. */
struct SwitchEveryYieldpoint : ThreadScheduler
{
    std::uint64_t yieldpoints = 0;

    bool
    onYieldpoint(std::uint32_t, YieldpointKind, bool) override
    {
        ++yieldpoints;
        return true;
    }
};

struct ParkedRun
{
    std::string state;
    std::uint64_t parks = 0;
};

ParkedRun
runWithConstantParking(const bytecode::Program &p, EngineKind kind,
                       FuseOptions fuse)
{
    Machine machine(p, fusedParams(kind, fuse));
    SwitchEveryYieldpoint scheduler;
    machine.setScheduler(&scheduler);
    Interpreter interp(machine, 0);
    interp.start(p.mainMethod);
    ParkedRun run;
    while (!interp.resume())
        ++run.parks;
    machine.setScheduler(nullptr);
    run.state = observableState(machine);
    return run;
}

TEST(FusionRuntimeParkResume, ParksRoundTripThroughFusedStreams)
{
    // Trace interiors are non-header single-predecessor blocks, so no
    // yieldpoint can fire mid-trace: park counts and every observable
    // must match the switch engine exactly, fused or not.
    const bytecode::Program fixtures[] = {
        test::simpleLoopProgram(),
        test::figure1Program(),
        test::callSwitchProgram(),
        test::randomStructuredProgram(601, 6),
    };
    for (const bytecode::Program &p : fixtures) {
        const ParkedRun sw =
            runWithConstantParking(p, EngineKind::Switch, {});
        for (const FuseOptions &fuse : kFuseMatrix) {
            SCOPED_TRACE(fuseOptionsName(fuse));
            const ParkedRun th =
                runWithConstantParking(p, EngineKind::Threaded, fuse);
            EXPECT_GT(sw.parks, 0u);
            EXPECT_EQ(sw.parks, th.parks);
            EXPECT_EQ(sw.state, th.state);
        }
    }
}

// ---- the fusion-keyed translation cache ------------------------------

TEST(FusionRuntimeCache, FuseOptionsArePartOfTheCacheKey)
{
    // A mid-run fusion change must retranslate — serving a stream
    // translated under another selection would be cross-mode cache
    // pollution (and under `traces`, executably wrong batching).
    const bytecode::Program p = test::simpleLoopProgram();

    SimParams params;
    params.engine = EngineKind::Threaded;
    Machine th(p, params);
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 1u);
    EXPECT_EQ(th.stats().templateInvalidations, 0u);

    th.setFuseOptions({true, true});
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 2u)
        << "stale-fuse stream was served from the cache";
    EXPECT_EQ(th.stats().templateInvalidations, 1u);

    // Same selection again: the cache is warm, nothing retranslates.
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 2u);

    // ...and back: the key is the tuple, not a monotonic flag.
    th.setFuseOptions({});
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 3u);
    EXPECT_EQ(th.stats().templateInvalidations, 2u);

    // The whole mode-switching run stays byte-identical to a switch
    // machine doing the same iterations.
    SimParams sw_params;
    sw_params.engine = EngineKind::Switch;
    Machine sw(p, sw_params);
    for (int i = 0; i < 4; ++i)
        sw.runIteration();
    EXPECT_EQ(observableState(th), observableState(sw));
}

// ---- check-12 seeded rejections --------------------------------------

TEST(FusionRuntimeCheck12, CleanStreamsPassAcrossTheMatrix)
{
    const bytecode::Program fixtures[] = {
        test::figure1Program(),
        test::callSwitchProgram(),
        test::randomStructuredProgram(620, 6),
    };
    for (const bytecode::Program &p : fixtures) {
        const bytecode::Method &code = p.methods[p.mainMethod];
        for (const FuseOptions &fuse : kFuseMatrix) {
            SCOPED_TRACE(fuseOptionsName(fuse));
            const Translated t(code, fuse);
            EXPECT_EQ(check12Errors(t.decoded), 0u);
        }
    }
}

TEST(FusionRuntimeCheck12, RejectsCorruptedOperandBurnIn)
{
    const bytecode::Program p = test::figure1Program();
    const Translated t(p.methods[p.mainMethod], {true, true});

    DecodedMethod broken = t.decoded;
    bool corrupted = false;
    for (Template &tpl : broken.stream) {
        if (isFusedTop(tpl.op)) {
            ++tpl.a; // no longer the constituent's operand
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted) << "figure1 produced no fused template";
    EXPECT_GT(check12Errors(broken), 0u);
}

TEST(FusionRuntimeCheck12, RejectsCorruptedGuardRefund)
{
    const bytecode::Program p = test::figure1Program();
    const Translated t(p.methods[p.mainMethod], {true, true});

    DecodedMethod broken = t.decoded;
    bool corrupted = false;
    for (Template &tpl : broken.stream) {
        if (isGuardTop(tpl.op)) {
            ++tpl.swFirst; // refunds more than the unexecuted suffix
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted) << "figure1 produced no trace guard";
    EXPECT_GT(check12Errors(broken), 0u);
}

TEST(FusionRuntimeCheck12, RejectsCorruptedTraceBatching)
{
    const bytecode::Program p = test::figure1Program();
    const Translated t(p.methods[p.mainMethod], {true, true});
    ASSERT_FALSE(t.decoded.traces.empty());

    // Zero the chain total on the head block's leader: the prepaid
    // charge vanishes.
    DecodedMethod broken = t.decoded;
    const cfg::BlockId head = broken.traces.front().front();
    bool corrupted = false;
    for (Template &tpl : broken.stream) {
        if (tpl.block == head && tpl.ninstr > 0) {
            tpl.cost = 0;
            tpl.ninstr = 0;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    EXPECT_GT(check12Errors(broken), 0u);
}

TEST(FusionRuntimeCheck12, RejectsTamperedTraceSelection)
{
    const bytecode::Program p = test::figure1Program();
    const Translated t(p.methods[p.mainMethod], {true, true});
    ASSERT_FALSE(t.decoded.traces.empty());

    // A stream claiming different chains than selectTraces derives.
    DecodedMethod dropped = t.decoded;
    dropped.traces.clear();
    for (std::int32_t &bt : dropped.blockTrace)
        bt = -1;
    EXPECT_GT(check12Errors(dropped), 0u);

    // Mutually inconsistent traces/blockTrace tables.
    DecodedMethod inconsistent = t.decoded;
    inconsistent.blockTrace[inconsistent.traces.front().front()] = -1;
    EXPECT_GT(check12Errors(inconsistent), 0u);
}

TEST(FusionRuntimeCheck12, RejectsFusedTopsOutsideTheirMode)
{
    // A fused superinstruction in a stream translated without
    // fuse.pairs (mode gating, check 12a): hand the checker a
    // pairs-fused stream relabelled as unfused.
    const bytecode::Program p = test::figure1Program();
    const Translated t(p.methods[p.mainMethod], {true, false});
    bool any_fused = false;
    for (const Template &tpl : t.decoded.stream)
        any_fused = any_fused || isFusedTop(tpl.op);
    ASSERT_TRUE(any_fused);

    DecodedMethod relabelled = t.decoded;
    relabelled.fuse = {};
    EXPECT_GT(check12Errors(relabelled), 0u);
}

} // namespace
} // namespace pep::vm
