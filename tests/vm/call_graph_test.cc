/**
 * @file
 * Dynamic call graph tests: ground-truth exactness, tick-driven
 * sampling, the overlap metric, and accuracy of the sampled graph on
 * a real workload.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "vm/call_graph.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep::vm {
namespace {

TEST(CallGraphStruct, CountsAndQueries)
{
    CallGraph graph;
    graph.addCall(0, 1, 5);
    graph.addCall(0, 2);
    graph.addCall(3, 1);
    EXPECT_EQ(graph.count(0, 1), 5u);
    EXPECT_EQ(graph.count(0, 2), 1u);
    EXPECT_EQ(graph.count(1, 0), 0u);
    EXPECT_EQ(graph.totalCalls(), 7u);

    const auto callees = graph.calleesOf(0);
    ASSERT_EQ(callees.size(), 2u);
    EXPECT_EQ(callees[0].first, 1u); // hottest first
    graph.clear();
    EXPECT_EQ(graph.totalCalls(), 0u);
}

TEST(CallGraphStruct, OverlapMetric)
{
    CallGraph a;
    CallGraph b;
    EXPECT_DOUBLE_EQ(callGraphOverlap(a, b), 1.0); // both empty
    a.addCall(0, 1, 10);
    EXPECT_DOUBLE_EQ(callGraphOverlap(a, b), 0.0); // one empty
    b.addCall(0, 1, 3); // same distribution, different scale
    EXPECT_DOUBLE_EQ(callGraphOverlap(a, b), 1.0);

    CallGraph c;
    c.addCall(0, 2, 10); // disjoint edge
    EXPECT_DOUBLE_EQ(callGraphOverlap(a, c), 0.0);

    // Hand-computed partial overlap: a = {e1: 0.5, e2: 0.5},
    // d = {e1: 0.25, e2: 0.75} -> min sums to 0.75.
    CallGraph e;
    e.addCall(0, 1, 2);
    e.addCall(0, 2, 2);
    CallGraph d;
    d.addCall(0, 1, 1);
    d.addCall(0, 2, 3);
    EXPECT_DOUBLE_EQ(callGraphOverlap(e, d), 0.75);
    EXPECT_DOUBLE_EQ(callGraphOverlap(d, e), 0.75);
}

TEST(CallGraphVm, TruthCountsEveryInvoke)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method leaf 0 0
    return
.end
.method mid 0 0
    invoke leaf
    invoke leaf
    return
.end
.method main 0 1
    iconst 3
    istore 0
loop:
    iload 0
    ifle done
    invoke mid
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    Machine machine(p, SimParams{});
    machine.runIteration();

    bytecode::MethodId leaf = 0;
    bytecode::MethodId mid = 0;
    bytecode::MethodId main_id = 0;
    ASSERT_TRUE(p.findMethod("leaf", leaf));
    ASSERT_TRUE(p.findMethod("mid", mid));
    ASSERT_TRUE(p.findMethod("main", main_id));

    EXPECT_EQ(machine.truthCalls().count(main_id, mid), 3u);
    EXPECT_EQ(machine.truthCalls().count(mid, leaf), 6u);
    EXPECT_EQ(machine.truthCalls().count(main_id, leaf), 0u);
    EXPECT_EQ(machine.truthCalls().totalCalls(), 9u);
}

TEST(CallGraphVm, SampledGraphApproximatesTruth)
{
    workload::WorkloadSpec spec = workload::standardSuite()[1];
    spec.outerIterations = 200;
    const bytecode::Program program = workload::generateWorkload(spec);
    SimParams params;
    params.tickCycles = 30'000; // dense ticks for a strong sample
    Machine machine(program, params);
    machine.runIteration();

    ASSERT_GT(machine.sampledCalls().totalCalls(), 200u);
    // Sampled shares should roughly match true shares.
    EXPECT_GT(callGraphOverlap(machine.truthCalls(),
                               machine.sampledCalls()),
              0.55);
    // And every sampled edge must be a real call edge.
    for (const auto &[edge, count] : machine.sampledCalls().edges()) {
        EXPECT_GT(machine.truthCalls().count(edge.first, edge.second),
                  0u);
    }
}

TEST(CallGraphVm, ClearTruthResetsGraphs)
{
    const bytecode::Program program = test::callSwitchProgram();
    Machine machine(program, SimParams{});
    machine.runIteration();
    ASSERT_GT(machine.truthCalls().totalCalls(), 0u);
    machine.clearTruth();
    EXPECT_EQ(machine.truthCalls().totalCalls(), 0u);
    EXPECT_EQ(machine.sampledCalls().totalCalls(), 0u);
}

} // namespace
} // namespace pep::vm
