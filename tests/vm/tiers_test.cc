/**
 * @file
 * Parameterized tier tests: a program's observable behaviour must be
 * identical at every optimization tier (only simulated cost changes),
 * and cost must be monotone in the tier. Also sweeps sampling
 * configurations to pin the exact per-tick sample arithmetic against
 * interpreter-driven yieldpoints.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "vm/machine.hh"

namespace pep::vm {
namespace {

bytecode::Program
checksumProgram()
{
    // Produces a data-dependent checksum in globals[0].
    return bytecode::assembleOrDie(R"(
.globals 2
.method step 1 2 returns
    iload 0
    iconst 13
    imul
    iconst 7
    ixor
    ireturn
.end
.method main 0 2
    iconst 3000
    istore 0
loop:
    iload 0
    ifle done
    irnd
    iconst 255
    iand
    invoke step
    iconst 0
    gload
    iadd
    iconst 0
    gstore
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
}

class TierSemantics : public ::testing::TestWithParam<OptLevel>
{
};

TEST_P(TierSemantics, BehaviourIsTierInvariant)
{
    const bytecode::Program program = checksumProgram();

    // Reference: all-baseline execution.
    std::int32_t expected = 0;
    {
        Machine machine(program, SimParams{});
        ReplayAdvice advice;
        advice.finalLevel.assign(machine.numMethods(),
                                 OptLevel::Baseline);
        advice.oneTimeEdges = machine.truthEdges();
        machine.enableReplay(&advice);
        machine.runIteration();
        expected = machine.globals()[0];
    }

    Machine machine(program, SimParams{});
    ReplayAdvice advice;
    advice.finalLevel.assign(machine.numMethods(), GetParam());
    advice.oneTimeEdges = machine.truthEdges();
    machine.enableReplay(&advice);
    machine.runIteration();
    EXPECT_EQ(machine.globals()[0], expected);
}

INSTANTIATE_TEST_SUITE_P(AllTiers, TierSemantics,
                         ::testing::Values(OptLevel::Baseline,
                                           OptLevel::Opt1,
                                           OptLevel::Opt2),
                         [](const auto &info) {
                             return std::string(
                                 optLevelName(info.param));
                         });

TEST(TierCosts, CyclesMonotoneInTier)
{
    const bytecode::Program program = checksumProgram();
    auto run_at = [&](OptLevel level) {
        Machine machine(program, SimParams{});
        ReplayAdvice advice;
        advice.finalLevel.assign(machine.numMethods(), level);
        advice.oneTimeEdges = machine.truthEdges();
        machine.enableReplay(&advice);
        machine.runIteration();                 // compile + run
        const std::uint64_t start = machine.now();
        machine.runIteration();                 // measured
        return machine.now() - start;
    };
    const std::uint64_t baseline = run_at(OptLevel::Baseline);
    const std::uint64_t opt1 = run_at(OptLevel::Opt1);
    const std::uint64_t opt2 = run_at(OptLevel::Opt2);
    EXPECT_GT(baseline, opt1);
    EXPECT_GT(opt1, opt2);
}

/** Sampling configurations swept against real interpreter ticks. */
struct SamplingSweep
{
    std::uint32_t samples;
    std::uint32_t stride;
};

class SamplingArithmetic
    : public ::testing::TestWithParam<SamplingSweep>
{
};

TEST_P(SamplingArithmetic, SamplesPerTickNeverExceedConfigured)
{
    const SamplingSweep sweep = GetParam();
    const bytecode::Program program = checksumProgram();

    SimParams params;
    params.tickCycles = 60'000;
    Machine machine(program, params);
    ReplayAdvice advice;
    advice.finalLevel.assign(machine.numMethods(), OptLevel::Opt2);
    advice.oneTimeEdges = machine.truthEdges();
    machine.enableReplay(&advice);

    core::SimplifiedArnoldGrove controller(sweep.samples,
                                           sweep.stride);
    core::PepProfiler pep(machine, controller);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);
    machine.runIteration();

    const std::uint64_t ticks = machine.stats().timerTicks;
    ASSERT_GT(ticks, 2u);
    // At most SAMPLES samples per tick (fewer when opportunities run
    // out before the burst completes).
    EXPECT_LE(pep.pepStats().samplesTaken, ticks * sweep.samples);
    // Strides are bounded by the rotating initial skip.
    EXPECT_LE(pep.pepStats().strides,
              ticks * (sweep.stride - 1));
    EXPECT_GT(pep.pepStats().samplesTaken, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SamplingArithmetic,
    ::testing::Values(SamplingSweep{1, 1}, SamplingSweep{4, 3},
                      SamplingSweep{16, 17}, SamplingSweep{64, 17},
                      SamplingSweep{256, 17}),
    [](const auto &info) {
        return "S" + std::to_string(info.param.samples) + "T" +
               std::to_string(info.param.stride);
    });

} // namespace
} // namespace pep::vm
