/**
 * @file
 * Advice-file serialization tests: round trips, validation against
 * the program's CFG shapes, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/fixtures.hh"
#include "testing/generator.hh"
#include "vm/advice_io.hh"
#include "workload/suite.hh"

namespace pep::vm {
namespace {

struct AdviceFixture : ::testing::Test
{
    void
    SetUp() override
    {
        workload::WorkloadSpec spec = workload::standardSuite()[0];
        spec.outerIterations = 60;
        program = workload::generateWorkload(spec);
        SimParams params;
        params.tickCycles = 100'000;
        Machine recorder(program, params);
        recorder.runIteration();
        advice = recorder.recordAdvice();
        for (std::size_t m = 0; m < recorder.numMethods(); ++m) {
            cfgs.push_back(recorder.info(
                static_cast<bytecode::MethodId>(m)).cfg);
        }
    }

    bytecode::Program program;
    ReplayAdvice advice;
    std::vector<bytecode::MethodCfg> cfgs;
};

TEST_F(AdviceFixture, RoundTripsExactly)
{
    const std::string text = serializeAdvice(advice);
    const ParseAdviceResult parsed = parseAdvice(text, cfgs);
    ASSERT_TRUE(parsed.ok) << parsed.error;

    ASSERT_EQ(parsed.advice.finalLevel.size(),
              advice.finalLevel.size());
    for (std::size_t m = 0; m < advice.finalLevel.size(); ++m) {
        EXPECT_EQ(parsed.advice.finalLevel[m], advice.finalLevel[m]);
        EXPECT_EQ(parsed.advice.oneTimeEdges.perMethod[m].counts(),
                  advice.oneTimeEdges.perMethod[m].counts());
    }
}

TEST_F(AdviceFixture, ParsedAdviceDrivesReplayIdentically)
{
    const ParseAdviceResult parsed =
        parseAdvice(serializeAdvice(advice), cfgs);
    ASSERT_TRUE(parsed.ok);

    SimParams params;
    params.tickCycles = 100'000;
    Machine a(program, params);
    a.enableReplay(&advice);
    Machine b(program, params);
    b.enableReplay(&parsed.advice);
    EXPECT_EQ(a.runIteration(), b.runIteration());
    EXPECT_EQ(a.runIteration(), b.runIteration());
}

TEST_F(AdviceFixture, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "pep_advice_test";
    ASSERT_TRUE(saveAdviceFile(path, advice));
    const ParseAdviceResult loaded = loadAdviceFile(path, cfgs);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.advice.finalLevel, advice.finalLevel);
    std::remove(path.c_str());
}

TEST_F(AdviceFixture, RejectsWrongProgram)
{
    // Advice for this program parsed against a different program's
    // CFGs must be rejected, not silently misapplied.
    const bytecode::Program other = test::callSwitchProgram();
    std::vector<bytecode::MethodCfg> other_cfgs;
    for (const auto &m : other.methods)
        other_cfgs.push_back(bytecode::buildCfg(m));
    const ParseAdviceResult parsed =
        parseAdvice(serializeAdvice(advice), other_cfgs);
    EXPECT_FALSE(parsed.ok);
}

TEST(AdviceParse, RejectsMalformedInputs)
{
    const bytecode::Program program = test::simpleLoopProgram();
    std::vector<bytecode::MethodCfg> cfgs{
        bytecode::buildCfg(program.methods[0])};

    const char *bad_inputs[] = {
        "",                                          // empty
        "not-advice 1\nend\n",                       // wrong magic
        "pep-advice 2\nend\n",                       // wrong version
        "pep-advice 1\nmethods 1\n",                 // missing end
        "pep-advice 1\nmethods 5\nend\n",            // count mismatch
        "pep-advice 1\nmethods 1\nlevel 9 0\nend\n", // bad method
        "pep-advice 1\nmethods 1\nlevel 0 7\nend\n", // bad level
        "pep-advice 1\nmethods 1\nedge 0 999 0 1\nend\n", // bad block
        "pep-advice 1\nmethods 1\nedge 0 0 99 1\nend\n",  // bad succ
        "pep-advice 1\nmethods 1\nedge 0 0 0 -4\nend\n",  // negative
        "pep-advice 1\nmethods 1\nfrob 1\nend\n",         // unknown
        "pep-advice 1\nmethods 1\nend\nlevel 0 0\n",      // after end
    };
    for (const char *input : bad_inputs) {
        const ParseAdviceResult parsed = parseAdvice(input, cfgs);
        EXPECT_FALSE(parsed.ok) << "accepted: " << input;
        EXPECT_FALSE(parsed.error.empty());
    }
}

/**
 * Property tests over generator-produced programs: the text format is
 * canonical, so serialize -> parse -> serialize must reproduce the
 * input byte for byte, for any advice an adaptive run can record.
 */
TEST(AdviceProperty, SerializeParseSerializeIsByteIdentical)
{
    for (const std::uint64_t seed :
         {3ull, 17ull, 99ull, 481ull, 12345ull}) {
        testing::FuzzSpec spec;
        spec.seed = seed;
        const bytecode::Program program =
            testing::generateProgram(spec);

        SimParams params;
        params.tickCycles = 20'000;
        Machine machine(program, params);
        machine.runIteration();
        machine.runIteration();
        const ReplayAdvice advice = machine.recordAdvice();

        std::vector<bytecode::MethodCfg> cfgs;
        for (std::size_t m = 0; m < machine.numMethods(); ++m) {
            cfgs.push_back(
                machine.info(static_cast<bytecode::MethodId>(m)).cfg);
        }

        const std::string first = serializeAdvice(advice);
        const ParseAdviceResult parsed = parseAdvice(first, cfgs);
        ASSERT_TRUE(parsed.ok) << "seed " << seed << ": "
                               << parsed.error;
        EXPECT_EQ(serializeAdvice(parsed.advice), first)
            << "seed " << seed;
    }
}

TEST(AdviceProperty, RejectsOutOfRangeLinesInValidAdvice)
{
    testing::FuzzSpec spec;
    spec.seed = 7;
    const bytecode::Program program = testing::generateProgram(spec);
    SimParams params;
    params.tickCycles = 20'000;
    Machine machine(program, params);
    machine.runIteration();

    std::vector<bytecode::MethodCfg> cfgs;
    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        cfgs.push_back(
            machine.info(static_cast<bytecode::MethodId>(m)).cfg);
    }
    const std::string valid =
        serializeAdvice(machine.recordAdvice());
    ASSERT_TRUE(parseAdvice(valid, cfgs).ok);

    // Splice one out-of-range record into otherwise valid advice: a
    // method id past the program, then edge coordinates past the CFG.
    const char *bad_lines[] = {
        "level 9999 1",
        "edge 9999 0 0 5",
        "edge 0 99999 0 5",
        "edge 0 0 99 5",
    };
    const std::size_t end_pos = valid.rfind("end");
    ASSERT_NE(end_pos, std::string::npos);
    for (const char *bad : bad_lines) {
        std::string text = valid;
        text.insert(end_pos, std::string(bad) + "\n");
        const ParseAdviceResult parsed = parseAdvice(text, cfgs);
        EXPECT_FALSE(parsed.ok) << "accepted spliced line: " << bad;
        EXPECT_FALSE(parsed.error.empty());
    }
}

TEST(AdviceParse, MissingFileReportsError)
{
    const bytecode::Program program = test::simpleLoopProgram();
    std::vector<bytecode::MethodCfg> cfgs{
        bytecode::buildCfg(program.methods[0])};
    const ParseAdviceResult loaded =
        loadAdviceFile("/nonexistent/pep-advice", cfgs);
    EXPECT_FALSE(loaded.ok);
}

} // namespace
} // namespace pep::vm
