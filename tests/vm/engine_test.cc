/**
 * @file
 * Tests of the pre-decoded threaded execution engine (docs/ENGINE.md):
 * translator edge cases over hand-written and random CFG shapes, the
 * switch/threaded observable byte-identity contract, park/resume
 * round-trips through mid-block scheduler switches, the clean
 * relayout-plus-invalidateDecoded path, and the translation-cache
 * counters.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "vm/cost_model.hh"
#include "vm/decoded_method.hh"
#include "vm/engine.hh"
#include "vm/interpreter.hh"
#include "vm/machine.hh"

namespace pep::vm {
namespace {

SimParams
engineParams(EngineKind kind)
{
    SimParams params;
    params.engine = kind;
    params.tickCycles = 20'000; // fast ticks: exercise promotion
    return params;
}

/** Translate one method exactly as Machine::decodedFor would for a
 *  full-opt version with no layout information. */
struct Translated
{
    MethodInfo info;
    CompiledMethod cm;
    DecodedMethod decoded;

    explicit Translated(const bytecode::Method &method)
        : info(buildMethodInfo(method))
    {
        const CostModel cost;
        cm.level = OptLevel::Opt2;
        cm.scaledCost.resize(bytecode::kNumOpcodes);
        for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op)
            cm.scaledCost[op] =
                cost.instrCost(static_cast<bytecode::Opcode>(op));
        cm.branchLayout.assign(info.cfg.graph.numBlocks(), -1);
        decoded = translateMethod(method, info, cm);
    }
};

/** Structural invariants every translation must satisfy. */
void
expectWellFormed(const bytecode::Method &method,
                 const Translated &t)
{
    const cfg::Graph &graph = t.info.cfg.graph;

    // edgeBase is the prefix sum of per-block successor counts.
    ASSERT_EQ(t.decoded.edgeBase.size(), graph.numBlocks() + 1);
    EXPECT_EQ(t.decoded.edgeBase[0], 0u);
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
        EXPECT_EQ(t.decoded.edgeBase[b + 1],
                  t.decoded.edgeBase[b] + graph.succs(b).size())
            << "block " << b;

    // Every pc maps to a template that pre-decodes that instruction.
    ASSERT_EQ(t.decoded.pcToTemplate.size(), method.code.size());
    for (bytecode::Pc pc = 0; pc < method.code.size(); ++pc) {
        const std::uint32_t idx = t.decoded.pcToTemplate[pc];
        ASSERT_LT(idx, t.decoded.stream.size()) << "pc " << pc;
        const Template &tpl = t.decoded.stream[idx];
        EXPECT_EQ(tpl.pc, pc);
        EXPECT_EQ(tpl.op, static_cast<std::uint8_t>(method.code[pc].op));
        EXPECT_EQ(tpl.flatBase, t.decoded.edgeBase[tpl.block]);
    }

    // Segment charges conserve the per-instruction totals.
    std::uint64_t want_cost = 0;
    for (const bytecode::Instr &instr : method.code)
        want_cost +=
            t.cm.scaledCost[static_cast<std::size_t>(instr.op)];
    std::uint64_t got_cost = 0;
    std::uint64_t got_ninstr = 0;
    for (const Template &tpl : t.decoded.stream) {
        got_cost += tpl.cost;
        got_ninstr += tpl.ninstr;
    }
    EXPECT_EQ(got_cost, want_cost);
    EXPECT_EQ(got_ninstr, method.code.size());
}

TEST(EngineKindTest, NamesRoundTrip)
{
    EXPECT_STREQ(engineKindName(EngineKind::Switch), "switch");
    EXPECT_STREQ(engineKindName(EngineKind::Threaded), "threaded");
    EngineKind kind = EngineKind::Switch;
    EXPECT_TRUE(parseEngineKind("threaded", kind));
    EXPECT_EQ(kind, EngineKind::Threaded);
    EXPECT_TRUE(parseEngineKind("switch", kind));
    EXPECT_EQ(kind, EngineKind::Switch);
    EXPECT_FALSE(parseEngineKind("goto", kind));
}

TEST(TranslatorTest, SingleBlockMethod)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    iconst 3
    istore 0
    iinc 0 2
    return
.end
.main main
)");
    const bytecode::Method &method = p.methods[p.mainMethod];
    const Translated t(method);
    expectWellFormed(method, t);

    // One block, no injected boundary ops: the stream is the code, the
    // pc map is the identity, and the whole body is one segment whose
    // charge sits on the leader.
    EXPECT_EQ(t.decoded.stream.size(), method.code.size());
    for (bytecode::Pc pc = 0; pc < method.code.size(); ++pc)
        EXPECT_EQ(t.decoded.pcToTemplate[pc], pc);
    EXPECT_EQ(t.decoded.stream[0].ninstr, method.code.size());
    for (std::size_t i = 1; i < t.decoded.stream.size(); ++i) {
        EXPECT_EQ(t.decoded.stream[i].cost, 0u);
        EXPECT_EQ(t.decoded.stream[i].ninstr, 0u);
    }
}

TEST(TranslatorTest, SelfLoopBranchTargetsItsOwnHeader)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    iconst 50
    istore 0
loop:
    iinc 0 -1
    iload 0
    ifgt loop
    return
.end
.main main
)");
    const bytecode::Method &method = p.methods[p.mainMethod];
    const Translated t(method);
    expectWellFormed(method, t);

    const Template *branch = nullptr;
    for (const Template &tpl : t.decoded.stream) {
        if (tpl.op == static_cast<std::uint8_t>(bytecode::Opcode::Ifgt))
            branch = &tpl;
    }
    ASSERT_NE(branch, nullptr);
    // The back edge loops to the branch's own block: the pre-resolved
    // taken target is the block's leader template, marked as a header.
    EXPECT_EQ(branch->takenBlock, branch->block);
    EXPECT_TRUE(branch->flags & kTplTakenHeader);
    EXPECT_EQ(branch->taken, t.decoded.pcToTemplate[branch->takenPc]);
    EXPECT_EQ(t.decoded.stream[branch->taken].block, branch->block);
    EXPECT_TRUE(t.info.cfg.isLoopHeader[branch->block]);
}

TEST(TranslatorTest, FallthroughBlockEndsGetInjectedEdgeOps)
{
    // simpleLoopProgram's `skip:` label splits a block mid-fallthrough,
    // so the preceding block ends without a terminator and translation
    // must inject a synthetic fall-edge template there.
    const bytecode::Program p = test::simpleLoopProgram();
    const bytecode::Method &method = p.methods[p.mainMethod];
    const Translated t(method);
    expectWellFormed(method, t);

    std::size_t fall_edges = 0;
    for (const Template &tpl : t.decoded.stream) {
        if (tpl.op != kTopFallEdge)
            continue;
        ++fall_edges;
        // The injected op resolves to the next block's leader and
        // shifts the pc map off the identity behind it.
        EXPECT_EQ(tpl.fall, t.decoded.pcToTemplate[tpl.fallPc]);
        EXPECT_EQ(t.decoded.stream[tpl.fall].pc, tpl.fallPc);
        EXPECT_NE(tpl.fallBlock, tpl.block);
        EXPECT_EQ(tpl.flatBase, t.decoded.edgeBase[tpl.block]);
    }
    EXPECT_GT(fall_edges, 0u);
    EXPECT_EQ(t.decoded.stream.size(),
              method.code.size() + fall_edges);
}

TEST(TranslatorTest, RandomStructuredMethodsStayWellFormed)
{
    for (std::uint64_t seed = 400; seed < 412; ++seed) {
        const bytecode::Program p =
            test::randomStructuredProgram(seed, 6);
        const bytecode::Method &method = p.methods[p.mainMethod];
        const Translated t(method);
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectWellFormed(method, t);
    }
}

// ---- engine equivalence ----------------------------------------------

/** Everything a run may observe, minus the engine-private translation
 *  counters (methodsDecoded / templateInvalidations). */
std::string
observableState(const Machine &machine)
{
    std::ostringstream out;
    const auto dump_set = [&](const profile::EdgeProfileSet &set,
                              const char *tag) {
        for (std::size_t m = 0; m < set.perMethod.size(); ++m) {
            const auto &counts = set.perMethod[m].counts();
            for (std::size_t b = 0; b < counts.size(); ++b)
                for (std::size_t i = 0; i < counts[b].size(); ++i)
                    if (counts[b][i] != 0)
                        out << tag << ' ' << m << ' ' << b << ' ' << i
                            << ' ' << counts[b][i] << '\n';
        }
    };
    dump_set(machine.truthEdges(), "truth");
    dump_set(machine.oneTimeEdges(), "one-time");
    const MachineStats &s = machine.stats();
    out << "clock " << machine.now() << '\n'
        << "stats " << s.instructionsExecuted << ' '
        << s.methodInvocations << ' ' << s.yieldpointsExecuted << ' '
        << s.timerTicks << ' ' << s.compileCycles << ' ' << s.compiles
        << ' ' << s.osrs << ' ' << s.layoutMisses << ' '
        << s.branchesExecuted << '\n';
    return out.str();
}

std::string
runAdaptive(const bytecode::Program &p, EngineKind kind, int iterations)
{
    Machine machine(p, engineParams(kind));
    for (int i = 0; i < iterations; ++i)
        machine.runIteration();
    return observableState(machine);
}

TEST(EngineIdentityTest, AdaptiveRunsAreObservablyIdentical)
{
    const bytecode::Program fixtures[] = {
        test::simpleLoopProgram(),
        test::figure1Program(),
        test::callSwitchProgram(),
    };
    for (const bytecode::Program &p : fixtures)
        EXPECT_EQ(runAdaptive(p, EngineKind::Switch, 3),
                  runAdaptive(p, EngineKind::Threaded, 3));
    for (std::uint64_t seed = 500; seed < 508; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const bytecode::Program p =
            test::randomStructuredProgram(seed, 6);
        EXPECT_EQ(runAdaptive(p, EngineKind::Switch, 2),
                  runAdaptive(p, EngineKind::Threaded, 2));
    }
}

TEST(EngineIdentityTest, InliningAndBackEdgeYieldpointsStayIdentical)
{
    SimParams base = engineParams(EngineKind::Switch);
    base.enableInlining = true;
    base.yieldpointsOnBackEdges = true;
    const bytecode::Program p = test::callSwitchProgram();

    SimParams threaded = base;
    threaded.engine = EngineKind::Threaded;
    Machine sw(p, base);
    Machine th(p, threaded);
    for (int i = 0; i < 3; ++i) {
        sw.runIteration();
        th.runIteration();
    }
    EXPECT_EQ(observableState(sw), observableState(th));
}

// ---- park / resume ---------------------------------------------------

/** Requests a context switch at every yieldpoint, so frames park at
 *  every opportunity the contract allows — including with the caller
 *  sitting mid-block at an Invoke while its callee's entry yieldpoint
 *  fires. */
struct SwitchEveryYieldpoint : ThreadScheduler
{
    std::uint64_t yieldpoints = 0;

    bool
    onYieldpoint(std::uint32_t, YieldpointKind, bool) override
    {
        ++yieldpoints;
        return true;
    }
};

struct ParkedRun
{
    std::string state;
    std::uint64_t parks = 0;
};

ParkedRun
runWithConstantParking(const bytecode::Program &p, EngineKind kind)
{
    Machine machine(p, engineParams(kind));
    SwitchEveryYieldpoint scheduler;
    machine.setScheduler(&scheduler);
    Interpreter interp(machine, 0);
    interp.start(p.mainMethod);
    ParkedRun run;
    while (!interp.resume())
        ++run.parks;
    machine.setScheduler(nullptr);
    run.state = observableState(machine);
    return run;
}

TEST(EngineParkResumeTest, MidBlockParksRoundTripIdentically)
{
    const bytecode::Program fixtures[] = {
        test::callSwitchProgram(),
        test::simpleLoopProgram(),
        test::randomStructuredProgram(601, 6),
        test::randomStructuredProgram(602, 6),
    };
    for (const bytecode::Program &p : fixtures) {
        const ParkedRun sw = runWithConstantParking(p, EngineKind::Switch);
        const ParkedRun th =
            runWithConstantParking(p, EngineKind::Threaded);
        EXPECT_GT(sw.parks, 0u);
        EXPECT_EQ(sw.parks, th.parks);
        EXPECT_EQ(sw.state, th.state);
    }
}

// ---- relayout + invalidation ----------------------------------------

/** Flip every installed version's branch layout (the relayout
 *  experiment's mutation) and return the touched (method, version)
 *  pairs so the caller can invalidate the decoded streams. */
std::vector<std::pair<bytecode::MethodId, std::uint32_t>>
flipAllLayouts(Machine &machine)
{
    std::vector<std::pair<bytecode::MethodId, std::uint32_t>> touched;
    for (bytecode::MethodId m = 0;
         m < static_cast<bytecode::MethodId>(machine.numMethods());
         ++m) {
        const CompiledMethod *current = machine.currentVersion(m);
        if (current == nullptr)
            continue;
        CompiledMethod *cm =
            machine.versionForUpdate(m, current->version);
        EXPECT_NE(cm, nullptr) << "method " << m;
        if (cm == nullptr)
            continue;
        for (std::int16_t &layout : cm->branchLayout)
            layout = layout == 1 ? 0 : 1;
        touched.emplace_back(m, current->version);
    }
    return touched;
}

TEST(EngineInvalidationTest, RelayoutWithInvalidationStaysIdentical)
{
    const bytecode::Program p = test::figure1Program();
    Machine sw(p, engineParams(EngineKind::Switch));
    Machine th(p, engineParams(EngineKind::Threaded));
    sw.runIteration();
    th.runIteration();
    ASSERT_EQ(observableState(sw), observableState(th));

    // Mutate both machines' installed plans identically, then follow
    // the contract: every touched version's template stream is dropped.
    // (The fuzzer's `stale-template` injection is this exact mutation
    // with the invalidation forgotten, and it must diverge.)
    flipAllLayouts(sw);
    const auto touched = flipAllLayouts(th);
    ASSERT_FALSE(touched.empty());
    for (const auto &[method, version] : touched) {
        sw.invalidateDecoded(method, version);
        th.invalidateDecoded(method, version);
    }
    EXPECT_GE(th.stats().templateInvalidations, touched.size());

    sw.runIteration();
    th.runIteration();
    EXPECT_EQ(observableState(sw), observableState(th));
    // The flip flipped real predictions: the second iteration pays
    // misses the first did not (figure1's loop branch is biased).
    EXPECT_GT(sw.stats().layoutMisses, 0u);
}

TEST(EngineCountersTest, TranslationCountersTrackTheCache)
{
    // Default tick period: this tiny program never ticks, so nothing
    // promotes and the counters are fully deterministic.
    const bytecode::Program p = test::simpleLoopProgram();

    // The switch engine never touches the translation cache.
    SimParams sw_params;
    sw_params.engine = EngineKind::Switch;
    Machine sw(p, sw_params);
    sw.runIteration();
    EXPECT_EQ(sw.stats().methodsDecoded, 0u);
    EXPECT_EQ(sw.stats().templateInvalidations, 0u);

    SimParams th_params;
    th_params.engine = EngineKind::Threaded;
    Machine th(p, th_params);
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 1u); // main's baseline version

    // Re-running with a live stream translates nothing new...
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 1u);

    // ...while invalidating forces exactly one re-translation.
    const CompiledMethod *cm = th.currentVersion(p.mainMethod);
    ASSERT_NE(cm, nullptr);
    th.invalidateDecoded(p.mainMethod, cm->version);
    EXPECT_EQ(th.stats().templateInvalidations, 1u);
    th.runIteration();
    EXPECT_EQ(th.stats().methodsDecoded, 2u);
}

} // namespace
} // namespace pep::vm
