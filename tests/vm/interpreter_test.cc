/**
 * @file
 * Interpreter semantics tests: every opcode's stack/locals behaviour
 * (including division edge cases and shift masking), branch
 * conditions, tableswitch ranges, calls and returns, runtime traps,
 * ground-truth edge counting, and determinism.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "support/panic.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep::vm {
namespace {

/** Run a main body that stores results via gstore; return globals. */
std::vector<std::int32_t>
runBody(const std::string &body, std::uint32_t globals = 8)
{
    const std::string source = ".globals " + std::to_string(globals) +
                               "\n.method main 0 8\n" + body +
                               "\n    return\n.end\n.main main\n";
    Machine machine(bytecode::assembleOrDie(source), SimParams{});
    machine.runIteration();
    return machine.globals();
}

/** Compute `expr` instructions and store the result to globals[0]. */
std::int32_t
evalToGlobal(const std::string &push_expr)
{
    const auto globals =
        runBody(push_expr + "\n    iconst 0\n    gstore");
    return globals[0];
}

TEST(Interp, ConstLoadStore)
{
    EXPECT_EQ(evalToGlobal(R"(
    iconst 41
    istore 0
    iload 0
    iconst 1
    iadd)"),
              42);
}

TEST(Interp, IincAccumulates)
{
    EXPECT_EQ(evalToGlobal(R"(
    iconst 5
    istore 0
    iinc 0 -7
    iload 0)"),
              -2);
}

TEST(Interp, StackOps)
{
    // dup: 3 3 -> mul = 9
    EXPECT_EQ(evalToGlobal("    iconst 3\n    dup\n    imul"), 9);
    // swap: 10 3 swap sub -> 3 - 10 = -7
    EXPECT_EQ(evalToGlobal(
                  "    iconst 10\n    iconst 3\n    swap\n    isub"),
              -7);
    // pop discards
    EXPECT_EQ(evalToGlobal(
                  "    iconst 1\n    iconst 99\n    pop"),
              1);
}

TEST(Interp, ArithmeticBasics)
{
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 3\n    iadd"), 10);
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 3\n    isub"), 4);
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 3\n    imul"), 21);
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 3\n    idiv"), 2);
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 3\n    irem"), 1);
    EXPECT_EQ(evalToGlobal("    iconst 12\n    iconst 10\n    iand"), 8);
    EXPECT_EQ(evalToGlobal("    iconst 12\n    iconst 10\n    ior"), 14);
    EXPECT_EQ(evalToGlobal("    iconst 12\n    iconst 10\n    ixor"), 6);
    EXPECT_EQ(evalToGlobal("    iconst 1\n    iconst 4\n    ishl"), 16);
    EXPECT_EQ(evalToGlobal("    iconst -16\n    iconst 2\n    ishr"),
              -4);
    EXPECT_EQ(evalToGlobal("    iconst 5\n    ineg"), -5);
}

TEST(Interp, DivisionEdgeCases)
{
    // Division by zero is defined as 0 (no trap).
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 0\n    idiv"), 0);
    EXPECT_EQ(evalToGlobal("    iconst 7\n    iconst 0\n    irem"), 0);
    // INT_MIN / -1 does not overflow-trap.
    EXPECT_EQ(evalToGlobal(
                  "    iconst -2147483648\n    iconst -1\n    idiv"),
              INT32_MIN);
    EXPECT_EQ(evalToGlobal(
                  "    iconst -2147483648\n    iconst -1\n    irem"),
              0);
}

TEST(Interp, ShiftsMaskTo31)
{
    EXPECT_EQ(evalToGlobal("    iconst 1\n    iconst 33\n    ishl"), 2);
    EXPECT_EQ(evalToGlobal("    iconst 8\n    iconst 35\n    ishr"), 1);
}

TEST(Interp, ArithmeticWrapsModulo32)
{
    EXPECT_EQ(evalToGlobal(
                  "    iconst 2147483647\n    iconst 1\n    iadd"),
              INT32_MIN);
    EXPECT_EQ(evalToGlobal(
                  "    iconst -2147483648\n    iconst 1\n    isub"),
              INT32_MAX);
}

TEST(Interp, GlobalsLoadStore)
{
    const auto globals = runBody(R"(
    iconst 17
    iconst 3
    gstore
    iconst 3
    gload
    iconst 2
    imul
    iconst 4
    gstore)");
    EXPECT_EQ(globals[3], 17);
    EXPECT_EQ(globals[4], 34);
}

TEST(Interp, GlobalsOutOfBoundsIsFatal)
{
    EXPECT_THROW(runBody("    iconst 1\n    iconst 99\n    gstore"),
                 support::FatalError);
    EXPECT_THROW(runBody("    iconst -1\n    gload\n    pop"),
                 support::FatalError);
}

struct BranchCase
{
    const char *mnemonic;
    std::int32_t lhs;
    std::int32_t rhs; // ignored for zero-compares
    bool expectTaken;
    bool twoOperand;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(BranchSemantics, TakenMatchesCondition)
{
    const BranchCase &c = GetParam();
    std::string body;
    if (c.twoOperand) {
        body = "    iconst " + std::to_string(c.lhs) + "\n    iconst " +
               std::to_string(c.rhs) + "\n    " + c.mnemonic +
               " taken\n";
    } else {
        body = "    iconst " + std::to_string(c.lhs) + "\n    " +
               c.mnemonic + " taken\n";
    }
    body += R"(
    iconst 0
    iconst 0
    gstore
    goto end
taken:
    iconst 1
    iconst 0
    gstore
end:)";
    const auto globals = runBody(body);
    EXPECT_EQ(globals[0], c.expectTaken ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, BranchSemantics,
    ::testing::Values(
        BranchCase{"ifeq", 0, 0, true, false},
        BranchCase{"ifeq", 1, 0, false, false},
        BranchCase{"ifne", 1, 0, true, false},
        BranchCase{"ifne", 0, 0, false, false},
        BranchCase{"iflt", -1, 0, true, false},
        BranchCase{"iflt", 0, 0, false, false},
        BranchCase{"ifge", 0, 0, true, false},
        BranchCase{"ifge", -1, 0, false, false},
        BranchCase{"ifgt", 1, 0, true, false},
        BranchCase{"ifgt", 0, 0, false, false},
        BranchCase{"ifle", 0, 0, true, false},
        BranchCase{"ifle", 1, 0, false, false},
        BranchCase{"if_icmpeq", 3, 3, true, true},
        BranchCase{"if_icmpeq", 3, 4, false, true},
        BranchCase{"if_icmpne", 3, 4, true, true},
        BranchCase{"if_icmpne", 3, 3, false, true},
        BranchCase{"if_icmplt", 2, 3, true, true},
        BranchCase{"if_icmplt", 3, 3, false, true},
        BranchCase{"if_icmpge", 3, 3, true, true},
        BranchCase{"if_icmpge", 2, 3, false, true},
        BranchCase{"if_icmpgt", 4, 3, true, true},
        BranchCase{"if_icmpgt", 3, 3, false, true},
        BranchCase{"if_icmple", 3, 3, true, true},
        BranchCase{"if_icmple", 4, 3, false, true}));

struct SwitchCase
{
    std::int32_t value;
    std::int32_t expected;
};

class SwitchSemantics : public ::testing::TestWithParam<SwitchCase>
{
};

TEST_P(SwitchSemantics, SelectsCaseOrDefault)
{
    const SwitchCase &c = GetParam();
    const auto globals = runBody(
        "    iconst " + std::to_string(c.value) + R"(
    tableswitch 10 dflt c0 c1 c2
c0: iconst 100
    goto store
c1: iconst 101
    goto store
c2: iconst 102
    goto store
dflt:
    iconst 999
store:
    iconst 0
    gstore)");
    EXPECT_EQ(globals[0], c.expected);
}

INSTANTIATE_TEST_SUITE_P(Ranges, SwitchSemantics,
                         ::testing::Values(SwitchCase{10, 100},
                                           SwitchCase{11, 101},
                                           SwitchCase{12, 102},
                                           SwitchCase{13, 999},
                                           SwitchCase{9, 999},
                                           SwitchCase{-5, 999},
                                           SwitchCase{1000000, 999}));

TEST(Interp, CallsPassArgumentsInOrder)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 2
.method sub2 2 2 returns
    iload 0
    iload 1
    isub
    ireturn
.end
.method main 0 1
    iconst 10
    iconst 3
    invoke sub2
    iconst 0
    gstore
    return
.end
.main main
)");
    Machine machine(p, SimParams{});
    machine.runIteration();
    EXPECT_EQ(machine.globals()[0], 7); // 10 - 3, not 3 - 10
}

TEST(Interp, RecursionComputesFactorial)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method fact 1 1 returns
    iload 0
    iconst 1
    if_icmpgt recurse
    iconst 1
    ireturn
recurse:
    iload 0
    iload 0
    iconst 1
    isub
    invoke fact
    imul
    ireturn
.end
.method main 0 1
    iconst 6
    invoke fact
    iconst 0
    gstore
    return
.end
.main main
)");
    Machine machine(p, SimParams{});
    machine.runIteration();
    EXPECT_EQ(machine.globals()[0], 720);
}

TEST(Interp, InfiniteRecursionHitsDepthLimit)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.method spin 0 0
    invoke spin
    return
.end
.method main 0 0
    invoke spin
    return
.end
.main main
)");
    SimParams params;
    params.maxCallDepth = 100;
    Machine machine(p, params);
    EXPECT_THROW(machine.runIteration(), support::FatalError);
}

TEST(Interp, GroundTruthEdgeCountsExactForFixedLoop)
{
    // Loop executes exactly 10 times; branch tests the counter.
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    iconst 10
    istore 0
loop:
    iload 0
    ifle done
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    Machine machine(p, SimParams{});
    machine.runIteration();

    const auto &cfg = machine.info(p.mainMethod).cfg;
    const auto &truth = machine.truthEdges().perMethod[p.mainMethod];
    // Find the conditional block (the loop header).
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] != bytecode::TerminatorKind::Cond)
            continue;
        const profile::BranchCounts counts = truth.branch(b);
        EXPECT_EQ(counts.taken, 1u);      // exits once
        EXPECT_EQ(counts.notTaken, 10u);  // ten iterations
    }
    EXPECT_GT(machine.stats().yieldpointsExecuted, 10u);
}

TEST(Interp, DeterministicAcrossIdenticalMachines)
{
    const bytecode::Program p =
        test::randomStructuredProgram(77, 10);
    Machine a(p, SimParams{});
    Machine b(p, SimParams{});
    const std::uint64_t ca = a.runIteration();
    const std::uint64_t cb = b.runIteration();
    EXPECT_EQ(ca, cb);
    EXPECT_EQ(a.stats().instructionsExecuted,
              b.stats().instructionsExecuted);
    EXPECT_EQ(a.globals(), b.globals());
}

TEST(Interp, RndSeedChangesBehaviour)
{
    const bytecode::Program p = test::simpleLoopProgram();
    SimParams pa;
    pa.rngSeed = 1;
    SimParams pb;
    pb.rngSeed = 2;
    Machine a(p, pa);
    Machine b(p, pb);
    a.runIteration();
    b.runIteration();
    // The diamond is taken ~half the time, so local 1's accumulation
    // (observable through executed-instruction counts) differs.
    EXPECT_NE(a.stats().instructionsExecuted,
              b.stats().instructionsExecuted);
}

TEST(Interp, IterationCycleBudgetEnforced)
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    SimParams params;
    params.maxCyclesPerIteration = 10'000;
    params.tickCycles = 2'000;
    Machine machine(workload::generateWorkload(spec), params);
    EXPECT_THROW(machine.runIteration(), support::FatalError);
}

} // namespace
} // namespace pep::vm
