/**
 * @file
 * Machine-level tests: load/verify, adaptive promotion, replay
 * compilation, compile-cost accounting, layout decisions and their
 * runtime cost, compile observers, and the cost model.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "support/panic.hh"
#include "vm/layout.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep::vm {
namespace {

SimParams
fastTick()
{
    SimParams params;
    params.tickCycles = 100'000;
    return params;
}

workload::WorkloadSpec
smallSpec()
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    spec.outerIterations = 80;
    return spec;
}

TEST(Machine, RejectsUnverifiableProgram)
{
    bytecode::Program p;
    bytecode::Method m;
    m.name = "main";
    m.code.push_back({bytecode::Opcode::Goto, 99, 0, {}});
    p.methods.push_back(std::move(m));
    EXPECT_THROW(Machine(p, SimParams{}), support::FatalError);
}

TEST(Machine, VerifierFailureReportsEveryDiagnostic)
{
    // Two independent verifier errors in one method: a goto to a
    // nonexistent pc, and a load from a local slot the method does
    // not have.  The fatal message must carry both, not just the
    // first — truncating to one diagnostic sends users on repeated
    // fix-one-rebuild-one round trips.
    bytecode::Program p;
    bytecode::Method m;
    m.name = "main";
    m.code.push_back({bytecode::Opcode::Goto, 99, 0, {}});
    m.code.push_back({bytecode::Opcode::Iload, 5, 0, {}});
    m.code.push_back({bytecode::Opcode::Return, 0, 0, {}});
    p.methods.push_back(std::move(m));
    try {
        Machine machine(p, SimParams{});
        FAIL() << "expected FatalError";
    } catch (const support::FatalError &err) {
        const std::string message = err.what();
        EXPECT_NE(message.find("bad goto target"), std::string::npos)
            << message;
        EXPECT_NE(message.find("local slot out of range"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("pc 0"), std::string::npos) << message;
        EXPECT_NE(message.find("pc 1"), std::string::npos) << message;
    }
}

TEST(Machine, FirstInvocationCompilesBaseline)
{
    const bytecode::Program p = test::simpleLoopProgram();
    Machine machine(p, SimParams{});
    EXPECT_EQ(machine.currentVersion(p.mainMethod), nullptr);
    machine.runIteration();
    const CompiledMethod *cm = machine.currentVersion(p.mainMethod);
    ASSERT_NE(cm, nullptr);
    EXPECT_EQ(cm->level, OptLevel::Baseline);
    EXPECT_TRUE(cm->baselineEdgeInstr);
    EXPECT_GT(machine.stats().compileCycles, 0u);
}

TEST(Machine, AdaptivePromotesHotMethods)
{
    const bytecode::Program program =
        workload::generateWorkload(smallSpec());
    Machine machine(program, fastTick());
    machine.runIteration();

    bytecode::MethodId hot0 = 0;
    ASSERT_TRUE(program.findMethod("hot_0", hot0));
    const CompiledMethod *cm = machine.currentVersion(hot0);
    ASSERT_NE(cm, nullptr);
    EXPECT_NE(cm->level, OptLevel::Baseline);
    EXPECT_GT(cm->version, 0u); // recompiled at least once

    // Cold methods stay baseline.
    bytecode::MethodId cold0 = 0;
    ASSERT_TRUE(program.findMethod("cold_0", cold0));
    EXPECT_EQ(machine.currentVersion(cold0)->level,
              OptLevel::Baseline);
}

TEST(Machine, OptTiersRunFasterThanBaseline)
{
    const bytecode::Program p = test::simpleLoopProgram();
    SimParams params;
    Machine machine(p, params);
    const CompiledMethod &baseline =
        machine.compileNow(p.mainMethod, OptLevel::Baseline);
    const CompiledMethod &opt2 =
        machine.compileNow(p.mainMethod, OptLevel::Opt2);
    const auto op =
        static_cast<std::size_t>(bytecode::Opcode::Iadd);
    EXPECT_GT(baseline.scaledCost[op], opt2.scaledCost[op]);
    EXPECT_DOUBLE_EQ(opt2.speedMultiplier, 1.0);
}

TEST(Machine, ReplayCompilesAtFinalLevelImmediately)
{
    const bytecode::Program program =
        workload::generateWorkload(smallSpec());

    ReplayAdvice advice;
    {
        Machine recorder(program, fastTick());
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }

    bytecode::MethodId hot0 = 0;
    ASSERT_TRUE(program.findMethod("hot_0", hot0));
    ASSERT_NE(advice.finalLevel[hot0], OptLevel::Baseline);

    Machine machine(program, fastTick());
    machine.enableReplay(&advice);
    machine.runIteration();

    const CompiledMethod *cm = machine.currentVersion(hot0);
    ASSERT_NE(cm, nullptr);
    EXPECT_EQ(cm->level, advice.finalLevel[hot0]);
    EXPECT_EQ(cm->version, 0u); // compiled once, directly at level
}

TEST(Machine, ReplaySecondIterationCompilesNothing)
{
    const bytecode::Program program =
        workload::generateWorkload(smallSpec());
    ReplayAdvice advice;
    {
        Machine recorder(program, fastTick());
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }
    Machine machine(program, fastTick());
    machine.enableReplay(&advice);
    machine.runIteration();
    const std::uint64_t compiles_after_first =
        machine.stats().compiles;
    machine.runIteration();
    EXPECT_EQ(machine.stats().compiles, compiles_after_first);
}

TEST(Machine, ReplayAdviceSuppliesOneTimeProfile)
{
    const bytecode::Program program =
        workload::generateWorkload(smallSpec());
    ReplayAdvice advice;
    {
        Machine recorder(program, fastTick());
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }
    Machine machine(program, fastTick());
    machine.enableReplay(&advice);
    // Before running anything, the one-time profile is pre-seeded.
    std::uint64_t total = 0;
    for (const auto &per_method : machine.oneTimeEdges().perMethod)
        total += per_method.totalCount();
    EXPECT_GT(total, 0u);
}

TEST(Machine, CompileObserverFiresForOptTiersOnly)
{
    struct Counter : CompileObserver
    {
        int optCompiles = 0;
        void
        onCompile(bytecode::MethodId, const CompiledMethod &cm) override
        {
            EXPECT_NE(cm.level, OptLevel::Baseline);
            ++optCompiles;
        }
    };
    const bytecode::Program p = test::simpleLoopProgram();
    Machine machine(p, SimParams{});
    Counter counter;
    machine.addCompileObserver(&counter);
    machine.compileNow(p.mainMethod, OptLevel::Baseline);
    EXPECT_EQ(counter.optCompiles, 0);
    machine.compileNow(p.mainMethod, OptLevel::Opt1);
    machine.compileNow(p.mainMethod, OptLevel::Opt2);
    EXPECT_EQ(counter.optCompiles, 2);
}

TEST(Machine, LayoutFollowsProfileBias)
{
    const bytecode::Program p = test::figure1Program();
    Machine machine(p, SimParams{});

    const auto &cfg = machine.info(p.mainMethod).cfg;
    profile::EdgeProfileSet profiles(
        std::vector<bytecode::MethodCfg>{cfg});
    // Bias every conditional toward taken.
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] == bytecode::TerminatorKind::Cond) {
            profiles.perMethod[0].addEdge(cfg::EdgeRef{b, 0}, 9);
            profiles.perMethod[0].addEdge(cfg::EdgeRef{b, 1}, 1);
        }
    }
    FixedLayoutSource source(std::move(profiles));
    machine.setLayoutSource(&source);

    const CompiledMethod &cm =
        machine.compileNow(p.mainMethod, OptLevel::Opt2);
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] == bytecode::TerminatorKind::Cond) {
            EXPECT_EQ(cm.layoutFor(b), 1);
        }
    }
}

TEST(Machine, BadLayoutCostsCycles)
{
    // Deterministic always-taken loop branch: a layout predicting
    // not-taken pays the penalty every iteration.
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 1
    iconst 2000
    istore 0
loop:
    iload 0
    iinc 0 -1
    ifgt loop
    return
.end
.main main
)");
    auto run_with_bias = [&](std::uint64_t taken,
                             std::uint64_t not_taken) {
        Machine machine(p, SimParams{});
        const auto &cfg = machine.info(p.mainMethod).cfg;
        profile::EdgeProfileSet profiles(
            std::vector<bytecode::MethodCfg>{cfg});
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            if (cfg.terminator[b] == bytecode::TerminatorKind::Cond) {
                profiles.perMethod[0].addEdge(cfg::EdgeRef{b, 0},
                                              taken);
                profiles.perMethod[0].addEdge(cfg::EdgeRef{b, 1},
                                              not_taken);
            }
        }
        FixedLayoutSource source(std::move(profiles));
        machine.setLayoutSource(&source);
        ReplayAdvice advice;
        advice.finalLevel.assign(machine.numMethods(),
                                 OptLevel::Opt2);
        advice.oneTimeEdges = machine.truthEdges(); // empty shape
        machine.enableReplay(&advice);
        machine.runIteration();
        return std::pair(machine.now(),
                         machine.stats().layoutMisses);
    };

    const auto [good_cycles, good_misses] = run_with_bias(9, 1);
    const auto [bad_cycles, bad_misses] = run_with_bias(1, 9);
    EXPECT_LT(good_cycles, bad_cycles);
    EXPECT_LT(good_misses, bad_misses);
}

TEST(Machine, GlobalsPersistAcrossIterations)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 0
    iconst 0
    gload
    iconst 1
    iadd
    iconst 0
    gstore
    return
.end
.main main
)");
    Machine machine(p, SimParams{});
    machine.runIteration();
    machine.runIteration();
    machine.runIteration();
    EXPECT_EQ(machine.globals()[0], 3);
}

TEST(Machine, InitialGlobalsApplied)
{
    const bytecode::Program p = bytecode::assembleOrDie(R"(
.globals 4
.data 7 8 9
.method main 0 0
    return
.end
.main main
)");
    Machine machine(p, SimParams{});
    EXPECT_EQ(machine.globals()[0], 7);
    EXPECT_EQ(machine.globals()[2], 9);
    EXPECT_EQ(machine.globals()[3], 0);
}

TEST(Machine, TimerTicksAdvanceWithCycles)
{
    const bytecode::Program program =
        workload::generateWorkload(smallSpec());
    SimParams params;
    params.tickCycles = 50'000;
    Machine machine(program, params);
    machine.runIteration();
    const std::uint64_t expected_ticks =
        machine.now() / params.tickCycles;
    // Ticks only fire at yieldpoints, so allow a small shortfall.
    EXPECT_GE(machine.stats().timerTicks, expected_ticks - 3);
    EXPECT_LE(machine.stats().timerTicks, expected_ticks + 1);
}

TEST(CostModelTest, TierMultipliersOrdered)
{
    const CostModel cost;
    EXPECT_GT(cost.baselineMultiplier, cost.opt1Multiplier);
    EXPECT_GT(cost.opt1Multiplier, 1.0);
    EXPECT_GT(cost.pathStoreHashCost, cost.pathStoreArrayCost);
    EXPECT_GT(cost.sampleHandlerCost, 0u);
    EXPECT_GE(cost.sampleHandlerCost, cost.strideHandlerCost);
}

TEST(CostModelTest, EveryOpcodeHasNonzeroCost)
{
    const CostModel cost;
    for (std::size_t i = 0; i < bytecode::kNumOpcodes; ++i) {
        EXPECT_GT(cost.instrCost(static_cast<bytecode::Opcode>(i)), 0u)
            << "opcode " << i;
    }
}

} // namespace
} // namespace pep::vm
