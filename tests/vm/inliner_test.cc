/**
 * @file
 * Inliner tests: semantic equivalence (inlined programs compute the
 * same results), fresh-frame local semantics at call sites inside
 * loops, eligibility rules, the IR-branch -> bytecode-branch counter
 * mapping (paper Section 4.3), profiling over inlined code, and OSR
 * transfer into an inlined body.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/overlap.hh"
#include "vm/inliner.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep::vm {
namespace {

SimParams
inliningParams(bool enable)
{
    SimParams params;
    params.tickCycles = 100'000;
    params.enableInlining = enable;
    return params;
}

/** Pin every method at Opt2 so inlined code runs from the start. */
struct OptMachine
{
    OptMachine(const bytecode::Program &program, bool inlining)
        : machine(program, inliningParams(inlining))
    {
        advice.finalLevel.assign(machine.numMethods(),
                                 OptLevel::Opt2);
        advice.oneTimeEdges = machine.truthEdges();
        machine.enableReplay(&advice);
    }

    ReplayAdvice advice;
    Machine machine;
};

/** A program whose result depends on correct call semantics. */
bytecode::Program
callHeavyProgram()
{
    return bytecode::assembleOrDie(R"(
.globals 4
.method mix 2 3 returns
    iload 0
    iload 1
    isub
    istore 2
    iload 2
    iconst 3
    imul
    ireturn
.end
.method acc 1 2 returns
    ; local 1 starts at 0 in every fresh frame; the result depends
    ; on that (regression test for inlined-local reinitialization).
    iload 1
    iload 0
    iadd
    ireturn
.end
.method main 0 3
    iconst 500
    istore 0
loop:
    iload 0
    ifle done
    iload 0
    iconst 7
    invoke mix
    istore 1
    iload 1
    invoke acc
    iconst 0
    gload
    iadd
    iconst 0
    gstore
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
}

TEST(Inliner, TransformsEligibleSites)
{
    const bytecode::Program program = callHeavyProgram();
    bytecode::MethodId main_id = 0;
    ASSERT_TRUE(program.findMethod("main", main_id));
    const auto body =
        inlineLeafCalls(program, main_id, InlineOptions{});
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->inlinedSites, 2u);
    // No Invoke survives (both callees were leaves).
    for (const auto &instr : body->method.code)
        EXPECT_NE(instr.op, bytecode::Opcode::Invoke);
    EXPECT_GT(body->method.numLocals, program.methods[main_id].numLocals);
}

TEST(Inliner, NothingToInlineReturnsNull)
{
    const bytecode::Program program = test::simpleLoopProgram();
    EXPECT_EQ(inlineLeafCalls(program, program.mainMethod,
                              InlineOptions{}),
              nullptr);
}

TEST(Inliner, RespectsSizeAndRecursionLimits)
{
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.method rec 0 0
    invoke rec
    return
.end
.method main 0 0
    invoke rec
    return
.end
.main main
)");
    // `rec` calls (itself), so it is not a leaf: nothing inlined.
    EXPECT_EQ(inlineLeafCalls(program, program.mainMethod,
                              InlineOptions{}),
              nullptr);

    // A size limit of zero rejects every callee.
    const bytecode::Program call_heavy = callHeavyProgram();
    bytecode::MethodId main_id = 0;
    ASSERT_TRUE(call_heavy.findMethod("main", main_id));
    InlineOptions tiny;
    tiny.maxCalleeSize = 0;
    EXPECT_EQ(inlineLeafCalls(call_heavy, main_id, tiny), nullptr);
}

TEST(Inliner, SemanticEquivalence)
{
    const bytecode::Program program = callHeavyProgram();
    OptMachine plain(program, false);
    OptMachine inlined(program, true);
    plain.machine.runIteration();
    inlined.machine.runIteration();

    // Same observable result...
    EXPECT_EQ(plain.machine.globals(), inlined.machine.globals());
    // ...with fewer invocations (the calls are gone)...
    EXPECT_LT(inlined.machine.stats().methodInvocations,
              plain.machine.stats().methodInvocations);
    // ...and fewer cycles (call overhead eliminated).
    EXPECT_LT(inlined.machine.now(), plain.machine.now());
}

TEST(Inliner, SemanticEquivalenceOnSuiteWorkload)
{
    workload::WorkloadSpec spec = workload::standardSuite()[1];
    spec.outerIterations = 40;
    const bytecode::Program program = workload::generateWorkload(spec);
    OptMachine plain(program, false);
    OptMachine inlined(program, true);
    plain.machine.runIteration();
    inlined.machine.runIteration();
    EXPECT_EQ(plain.machine.globals(), inlined.machine.globals());
    EXPECT_EQ(plain.machine.stats().branchesExecuted,
              inlined.machine.stats().branchesExecuted);
}

TEST(Inliner, TruthBranchCountersMapToBytecodeBranches)
{
    // The paper's Section 4.3 rule: branches of inlined code update
    // the original bytecode branch's counters. Ground-truth branch
    // counters must therefore be identical with and without inlining.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 2
.method pick 1 1 returns
    iload 0
    iconst 1
    iand
    ifeq even
    iconst 11
    ireturn
even:
    iconst 22
    ireturn
.end
.method main 0 2
    iconst 400
    istore 0
loop:
    iload 0
    ifle done
    iload 0
    invoke pick
    istore 1
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    OptMachine plain(program, false);
    OptMachine inlined(program, true);
    plain.machine.runIteration();
    inlined.machine.runIteration();

    bytecode::MethodId pick = 0;
    ASSERT_TRUE(program.findMethod("pick", pick));
    const auto &cfg = plain.machine.info(pick).cfg;
    bool compared = false;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] != bytecode::TerminatorKind::Cond)
            continue;
        const auto plain_counts =
            plain.machine.truthEdges().perMethod[pick].branch(b);
        const auto inlined_counts =
            inlined.machine.truthEdges().perMethod[pick].branch(b);
        EXPECT_EQ(plain_counts.taken, inlined_counts.taken);
        EXPECT_EQ(plain_counts.notTaken, inlined_counts.notTaken);
        EXPECT_GT(plain_counts.total(), 0u);
        compared = true;
    }
    EXPECT_TRUE(compared);
}

TEST(Inliner, PepProfilesInlinedCodeAndMapsEdges)
{
    class Always final : public core::SamplingController
    {
      public:
        core::SampleAction
        onOpportunity(bool) override
        {
            return core::SampleAction::Sample;
        }
        void reset() override {}
        std::string name() const override { return "always"; }
    };

    const bytecode::Program program = callHeavyProgram();
    OptMachine om(program, true);
    Always always;
    core::PepProfiler pep(om.machine, always);
    om.machine.addHooks(&pep);
    om.machine.addCompileObserver(&pep);
    om.machine.runIteration();

    ASSERT_GT(pep.pepStats().samplesRecorded, 0u);

    // PEP's per-bytecode-branch counters must agree in bias with the
    // ground truth (both mapped through the same block origins).
    const auto cfgs = [&] {
        std::vector<bytecode::MethodCfg> result;
        for (std::size_t m = 0; m < om.machine.numMethods(); ++m) {
            result.push_back(om.machine.info(
                static_cast<bytecode::MethodId>(m)).cfg);
        }
        return result;
    }();
    const double overlap = metrics::relativeOverlap(
        cfgs, om.machine.truthEdges(), pep.edgeProfile());
    EXPECT_GT(overlap, 0.999);
}

TEST(Inliner, CalleeWithLoopBringsItsHeaderAlong)
{
    // Inlining a loopy callee puts a loop header inside the caller's
    // code: yieldpoints fire there, PEP paths end there, and the loop
    // still computes the right answer.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 2
.method sum_to 1 3 returns
    iconst 0
    istore 1
loop:
    iload 0
    ifle done
    iload 1
    iload 0
    iadd
    istore 1
    iinc 0 -1
    goto loop
done:
    iload 1
    ireturn
.end
.method main 0 2
    iconst 200
    istore 0
outer:
    iload 0
    ifle done
    iconst 10
    invoke sum_to
    iconst 0
    gload
    iadd
    iconst 0
    gstore
    iinc 0 -1
    goto outer
done:
    return
.end
.main main
)");
    OptMachine plain(program, false);
    OptMachine inlined(program, true);
    plain.machine.runIteration();
    inlined.machine.runIteration();
    // sum_to(10) == 55, called 200 times.
    EXPECT_EQ(plain.machine.globals()[0], 55 * 200);
    EXPECT_EQ(inlined.machine.globals()[0], 55 * 200);

    // The inlined body's CFG must contain the callee's loop header in
    // addition to the caller's.
    const CompiledMethod *cm =
        inlined.machine.currentVersion(program.mainMethod);
    ASSERT_NE(cm, nullptr);
    ASSERT_NE(cm->inlinedBody, nullptr);
    EXPECT_EQ(cm->inlinedBody->info.cfg.numLoopHeaders(), 2u);
    // And the inlined run fires more yieldpoints than calls saved.
    EXPECT_GT(inlined.machine.stats().yieldpointsExecuted, 2000u);
}

TEST(Inliner, CalleeWithSwitchAndMultipleReturns)
{
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 2
.method grade 1 1 returns
    iload 0
    tableswitch 0 dflt c0 c1 c2
c0: iconst 100
    ireturn
c1: iconst 200
    ireturn
c2: iconst 300
    ireturn
dflt:
    iconst -1
    ireturn
.end
.method main 0 2
    iconst 300
    istore 0
loop:
    iload 0
    ifle done
    iload 0
    iconst 3
    iand
    invoke grade
    iconst 0
    gload
    iadd
    iconst 0
    gstore
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    OptMachine plain(program, false);
    OptMachine inlined(program, true);
    plain.machine.runIteration();
    inlined.machine.runIteration();
    EXPECT_EQ(plain.machine.globals()[0], inlined.machine.globals()[0]);

    // Switch case counters map back to the original bytecode switch.
    bytecode::MethodId grade = 0;
    ASSERT_TRUE(program.findMethod("grade", grade));
    const auto &cfg = plain.machine.info(grade).cfg;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.terminator[b] != bytecode::TerminatorKind::Switch)
            continue;
        for (std::uint32_t i = 0; i < cfg.graph.succs(b).size();
             ++i) {
            EXPECT_EQ(plain.machine.truthEdges().perMethod[grade]
                          .edgeCount(cfg::EdgeRef{b, i}),
                      inlined.machine.truthEdges().perMethod[grade]
                          .edgeCount(cfg::EdgeRef{b, i}));
        }
    }
}

TEST(Inliner, GroundTruthPathsCoverInlinedLoops)
{
    // Path profiling over an inlined loopy callee: the header inside
    // the splice truncates paths exactly like a native loop header.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 1
.method spin 1 1 returns
loop:
    iload 0
    ifle out
    iinc 0 -1
    goto loop
out:
    iconst 1
    ireturn
.end
.method main 0 1
    iconst 50
    istore 0
outer:
    iload 0
    ifle done
    iconst 4
    invoke spin
    pop
    iinc 0 -1
    goto outer
done:
    return
.end
.main main
)");
    OptMachine om(program, true);
    core::FullPathProfiler truth(om.machine,
                                 profile::DagMode::HeaderSplit,
                                 /*charge_costs=*/false);
    om.machine.addHooks(&truth);
    om.machine.addCompileObserver(&truth);
    om.machine.runIteration();

    // Every outer iteration runs the inner loop 4 times: inner-loop
    // paths dominate the stored-path count.
    // outer: 50 iterations x (outer header path + 5 inner header
    // paths) plus entry/exit paths.
    EXPECT_GT(truth.pathsStored(), 250u);
    EXPECT_EQ(om.machine.globals()[0], 0);
}

TEST(Inliner, OsrTransfersIntoInlinedBody)
{
    // A long main loop calling a leaf: OSR promotes main mid-loop to
    // an inlined Opt tier; execution must continue correctly.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 2
.method bump 1 1 returns
    iload 0
    iconst 1
    iadd
    ireturn
.end
.method main 0 2
    iconst 120000
    istore 0
loop:
    iload 0
    ifle done
    iconst 0
    gload
    invoke bump
    iconst 0
    gstore
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    SimParams params = inliningParams(true);
    params.enableOsr = true;
    Machine machine(program, params);
    machine.runIteration();
    EXPECT_GT(machine.stats().osrs, 0u);
    const CompiledMethod *cm =
        machine.currentVersion(program.mainMethod);
    ASSERT_NE(cm, nullptr);
    EXPECT_NE(cm->inlinedBody, nullptr);
    EXPECT_EQ(machine.globals()[0], 120000); // every bump happened
}

} // namespace
} // namespace pep::vm
