/**
 * @file
 * Tests for the Section 3.2 alternative yieldpoint placement: loop
 * yieldpoints on back edges rather than headers. With matching
 * back-edge path truncation, PEP's semantics become exactly classic
 * BLPP's, and full-rate sampling must reproduce the back-edge ground
 * truth perfectly.
 */

#include <gtest/gtest.h>

#include "common/fixtures.hh"
#include "core/baseline_profilers.hh"
#include "core/pep_profiler.hh"
#include "core/sampling.hh"
#include "metrics/path_accuracy.hh"
#include "vm/machine.hh"
#include "workload/suite.hh"

namespace pep::vm {
namespace {

class AlwaysSample final : public core::SamplingController
{
  public:
    core::SampleAction
    onOpportunity(bool) override
    {
        return core::SampleAction::Sample;
    }
    void reset() override {}
    std::string name() const override { return "always"; }
};

/** Counts yieldpoints by kind. */
class KindCounter final : public ExecutionHooks
{
  public:
    void
    onYieldpoint(const FrameView &, YieldpointKind kind, bool) override
    {
        ++counts[static_cast<std::size_t>(kind)];
    }

    std::array<std::uint64_t, 4> counts{};
};

SimParams
backEdgeParams()
{
    SimParams params;
    params.tickCycles = 120'000;
    params.yieldpointsOnBackEdges = true;
    return params;
}

TEST(BackEdgeYieldpoints, PlacementReplacesHeaderYieldpoints)
{
    const bytecode::Program program = test::simpleLoopProgram();

    KindCounter default_counter;
    {
        SimParams params;
        params.tickCycles = 120'000;
        Machine machine(program, params);
        machine.addHooks(&default_counter);
        machine.runIteration();
    }
    KindCounter back_counter;
    {
        Machine machine(program, backEdgeParams());
        machine.addHooks(&back_counter);
        machine.runIteration();
    }

    using K = YieldpointKind;
    // Default placement: headers, no back-edge yieldpoints.
    EXPECT_GT(default_counter.counts[std::size_t(K::LoopHeader)], 5u);
    EXPECT_EQ(default_counter.counts[std::size_t(K::BackEdge)], 0u);
    // Alternative placement: the reverse.
    EXPECT_EQ(back_counter.counts[std::size_t(K::LoopHeader)], 0u);
    EXPECT_GT(back_counter.counts[std::size_t(K::BackEdge)], 5u);
    // Entry/exit yieldpoints unaffected.
    EXPECT_EQ(back_counter.counts[std::size_t(K::MethodEntry)],
              default_counter.counts[std::size_t(K::MethodEntry)]);
    // The loop runs 10 times: 10 header yieldpoints (one per
    // iteration incl. the exit test) vs 9 back-edge ones.
    EXPECT_EQ(back_counter.counts[std::size_t(K::BackEdge)] + 1,
              default_counter.counts[std::size_t(K::LoopHeader)]);
}

TEST(BackEdgeYieldpoints, PepBlppModeMatchesGroundTruthExactly)
{
    workload::WorkloadSpec spec = workload::standardSuite()[0];
    spec.outerIterations = 50;
    const bytecode::Program program = workload::generateWorkload(spec);

    const SimParams params = backEdgeParams();
    ReplayAdvice advice;
    {
        Machine recorder(program, params);
        recorder.runIteration();
        advice = recorder.recordAdvice();
    }

    Machine machine(program, params);
    machine.enableReplay(&advice);
    AlwaysSample always;
    core::PepOptions options;
    options.mode = profile::DagMode::BackEdgeTruncate;
    core::PepProfiler pep(machine, always, options);
    core::FullPathProfiler truth(machine,
                                 profile::DagMode::BackEdgeTruncate,
                                 /*charge_costs=*/false);
    machine.addHooks(&pep);
    machine.addCompileObserver(&pep);
    machine.addHooks(&truth);
    machine.addCompileObserver(&truth);

    machine.runIteration();
    pep.clearProfiles();
    truth.clearPathProfiles();
    machine.runIteration();

    const auto pep_paths = metrics::canonicalize(pep);
    const auto truth_paths = metrics::canonicalize(truth);
    ASSERT_GT(truth_paths.paths.size(), 0u);
    ASSERT_EQ(pep_paths.paths.size(), truth_paths.paths.size());
    for (const auto &[key, entry] : truth_paths.paths) {
        const auto it = pep_paths.paths.find(key);
        ASSERT_NE(it, pep_paths.paths.end());
        EXPECT_EQ(it->second.count, entry.count);
    }
}

TEST(BackEdgeYieldpoints, OsrIsInertUnderBackEdgePlacement)
{
    // OSR transfers frames at loop-header yieldpoints; under back-edge
    // placement those never fire, so OSR must simply never trigger
    // (and certainly not crash) rather than fire at an unsafe point.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 1
.method main 0 2
    iconst 60000
    istore 0
loop:
    iload 0
    ifle done
    iinc 1 1
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    SimParams params = backEdgeParams();
    params.enableOsr = true;
    Machine machine(program, params);
    machine.runIteration();
    EXPECT_EQ(machine.stats().osrs, 0u);
    EXPECT_EQ(machine.currentVersion(0)->level, OptLevel::Baseline);
}

TEST(BackEdgeYieldpoints, SampledAccuracyComparableAcrossPlacements)
{
    workload::WorkloadSpec spec = workload::standardSuite()[4];
    spec.outerIterations = 120;
    const bytecode::Program program = workload::generateWorkload(spec);

    auto accuracy = [&](bool back_edges) {
        SimParams params;
        params.tickCycles = 120'000;
        params.yieldpointsOnBackEdges = back_edges;
        ReplayAdvice advice;
        {
            Machine recorder(program, params);
            recorder.runIteration();
            advice = recorder.recordAdvice();
        }
        Machine machine(program, params);
        machine.enableReplay(&advice);
        core::SimplifiedArnoldGrove controller(64, 17);
        core::PepOptions options;
        options.mode = back_edges ? profile::DagMode::BackEdgeTruncate
                                  : profile::DagMode::HeaderSplit;
        core::PepProfiler pep(machine, controller, options);
        core::FullPathProfiler truth(machine, options.mode,
                                     /*charge_costs=*/false);
        machine.addHooks(&pep);
        machine.addCompileObserver(&pep);
        machine.addHooks(&truth);
        machine.addCompileObserver(&truth);
        machine.runIteration();
        pep.clearProfiles();
        truth.clearPathProfiles();
        machine.runIteration();
        auto truth_paths = metrics::canonicalize(truth);
        auto pep_paths = metrics::canonicalize(pep);
        return metrics::wallPathAccuracy(truth_paths, pep_paths)
            .accuracy;
    };

    const double header_acc = accuracy(false);
    const double back_acc = accuracy(true);
    // Both placements produce usable profiles; the paper calls the
    // difference minor.
    EXPECT_GT(header_acc, 0.6);
    EXPECT_GT(back_acc, 0.6);
    EXPECT_NEAR(header_acc, back_acc, 0.25);
}

} // namespace
} // namespace pep::vm
