/**
 * @file
 * Regression tests for FixedLayoutSource (vm/layout.hh): a snapshot
 * recorded on a different (smaller) program must answer "no
 * information" for methods it never saw, not read out of bounds.
 */

#include <gtest/gtest.h>

#include "common/fixtures.hh"
#include "profile/edge_profile.hh"
#include "vm/layout.hh"
#include "vm/machine.hh"

namespace {

using namespace pep;

TEST(FixedLayoutSource, EmptyProfileHasNoInformation)
{
    vm::FixedLayoutSource source{profile::EdgeProfileSet{}};
    EXPECT_EQ(source.layoutProfile(0), nullptr);
    EXPECT_EQ(source.layoutProfile(7), nullptr);
}

TEST(FixedLayoutSource, OutOfRangeMethodIsNoInformation)
{
    // Snapshot of a one-method program queried for method ids beyond
    // it — the shape of replaying a probe machine's advice in a larger
    // program. This used to index perMethod out of bounds.
    vm::Machine probe(test::simpleLoopProgram(), vm::SimParams{});
    probe.runIteration();
    vm::FixedLayoutSource source(probe.truthEdges());

    const auto methods = source.profiles().perMethod.size();
    EXPECT_EQ(source.layoutProfile(
                  static_cast<bytecode::MethodId>(methods)),
              nullptr);
    EXPECT_EQ(source.layoutProfile(
                  static_cast<bytecode::MethodId>(methods + 41)),
              nullptr);
}

TEST(FixedLayoutSource, PopulatedMethodServesItsCounts)
{
    vm::Machine probe(test::simpleLoopProgram(), vm::SimParams{});
    probe.runIteration();
    const profile::EdgeProfileSet snapshot = probe.truthEdges();
    vm::FixedLayoutSource source(snapshot);

    const bytecode::MethodId main = 0;
    const profile::MethodEdgeProfile *served =
        source.layoutProfile(main);
    ASSERT_NE(served, nullptr);
    EXPECT_GT(served->totalCount(), 0u);
    EXPECT_EQ(served->counts(), snapshot.perMethod[main].counts());

    // A method that exists but recorded nothing is also "no
    // information" (totalCount gate), same contract as out-of-range.
    profile::EdgeProfileSet padded = snapshot;
    padded.perMethod.emplace_back();
    vm::FixedLayoutSource gated(padded);
    EXPECT_EQ(gated.layoutProfile(static_cast<bytecode::MethodId>(
                  padded.perMethod.size() - 1)),
              nullptr);
}

} // namespace
