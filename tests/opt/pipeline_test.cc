/**
 * @file
 * Tests for the reoptimization pipeline (opt/pipeline.hh): the
 * CompilePass applies cloning + chain layout on a live Machine, the
 * optimized machine stays byte-identical in observable behaviour to an
 * unoptimized one under BOTH execution engines, the machine verifies
 * clean afterwards (clone journal + check 11), and PEP_OPT parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/verify/verify.hh"
#include "common/fixtures.hh"
#include "opt/pipeline.hh"
#include "opt/profile_consumer.hh"
#include "profile/edge_profile.hh"
#include "vm/layout.hh"
#include "vm/machine.hh"

namespace {

using namespace pep;

vm::SimParams
engineParams(vm::EngineKind engine)
{
    vm::SimParams params;
    params.engine = engine;
    return params;
}

/** Ground-truth edge profile of one probe run (profile the pipeline
 *  machines feed on — a deterministic snapshot). */
profile::EdgeProfileSet
probeProfile(const bytecode::Program &program)
{
    vm::Machine probe(program, vm::SimParams{});
    probe.runIteration();
    return probe.truthEdges();
}

class PipelineEngineTest
    : public ::testing::TestWithParam<vm::EngineKind>
{
};

INSTANTIATE_TEST_SUITE_P(Engines, PipelineEngineTest,
                         ::testing::Values(vm::EngineKind::Switch,
                                           vm::EngineKind::Threaded),
                         [](const auto &info) {
                             return std::string(
                                 vm::engineKindName(info.param));
                         });

TEST_P(PipelineEngineTest, ClonesAndPreservesObservableBehaviour)
{
    const bytecode::Program program = test::simpleLoopProgram();
    const profile::EdgeProfileSet snapshot = probeProfile(program);

    // Reference: the same engine, no optimizer.
    vm::Machine plain(program, engineParams(GetParam()));
    plain.compileNow(program.mainMethod, vm::OptLevel::Opt2);

    // Optimized: cloning + chain layout fed by the probe profile.
    vm::FixedLayoutSource source(snapshot);
    opt::LayoutSourceConsumer consumer(source);
    opt::OptPipeline pipeline(consumer);
    vm::Machine piped(program, engineParams(GetParam()));
    piped.addCompilePass(&pipeline);
    piped.compileNow(program.mainMethod, vm::OptLevel::Opt2);

    ASSERT_EQ(pipeline.stats().clonesApplied, 1u)
        << "the hot loop must clone under the probe profile";
    EXPECT_GE(pipeline.stats().layoutsApplied, 1u);
    const vm::CompiledMethod *version =
        piped.currentVersion(program.mainMethod);
    ASSERT_NE(version, nullptr);
    EXPECT_TRUE(version->cloneApplied);
    ASSERT_NE(version->inlinedBody, nullptr);

    for (int it = 0; it < 3; ++it) {
        plain.runIteration();
        piped.runIteration();
    }

    // Layout and cloning are performance plans, never semantics: the
    // observable state is identical, and the bytecode-level branch
    // counts fold to exactly the same totals. (Frames running a
    // synthesized body record only Cond/Switch edges into ground
    // truth — the Section 4.3 sharing convention — so the comparison
    // is per branch block, not per edge.)
    EXPECT_EQ(plain.globals(), piped.globals());
    for (std::size_t m = 0; m < plain.numMethods(); ++m) {
        const auto method = static_cast<bytecode::MethodId>(m);
        const bytecode::MethodCfg &cfg = plain.info(method).cfg;
        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            const auto kind = cfg.terminator[b];
            if (kind != bytecode::TerminatorKind::Cond &&
                kind != bytecode::TerminatorKind::Switch)
                continue;
            EXPECT_EQ(plain.truthEdges().perMethod[m].counts()[b],
                      piped.truthEdges().perMethod[m].counts()[b])
                << "method " << m << " block " << b;
        }
    }
    EXPECT_EQ(plain.stats().methodInvocations,
              piped.stats().methodInvocations);

    // The optimized machine satisfies every machine-level invariant:
    // engine equivalence of the cloned version, template freshness,
    // the compile-journal clone audit and check 11.
    analysis::DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::verifyMachine(piped, diagnostics));
    EXPECT_EQ(diagnostics.errorCount(), 0u);
}

TEST_P(PipelineEngineTest, LayoutOnlyPipelineSkipsCloning)
{
    const bytecode::Program program = test::simpleLoopProgram();
    const profile::EdgeProfileSet snapshot = probeProfile(program);

    vm::FixedLayoutSource source(snapshot);
    opt::LayoutSourceConsumer consumer(source);
    opt::PipelineOptions options;
    options.clone = false;
    opt::OptPipeline pipeline(consumer, options);

    vm::Machine machine(program, engineParams(GetParam()));
    machine.addCompilePass(&pipeline);
    machine.compileNow(program.mainMethod, vm::OptLevel::Opt2);

    EXPECT_EQ(pipeline.stats().clonesApplied, 0u);
    EXPECT_EQ(pipeline.stats().clonesDeclined, 0u)
        << "a disabled pass must not even be attempted";
    EXPECT_GE(pipeline.stats().layoutsApplied, 1u);
    const vm::CompiledMethod *version =
        machine.currentVersion(program.mainMethod);
    ASSERT_NE(version, nullptr);
    EXPECT_FALSE(version->cloneApplied);

    // The profile-guided layout predicts some direction somewhere.
    bool predicted = false;
    for (std::int16_t direction : version->branchLayout)
        predicted = predicted || direction >= 0;
    EXPECT_TRUE(predicted);

    machine.runIteration();
    analysis::DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::verifyMachine(machine, diagnostics));
}

TEST(Pipeline, DeclinesWithoutProfileInformation)
{
    // No weights at compile time: the clone pass declines and the
    // layout pass leaves the version to the built-in predictor.
    const bytecode::Program program = test::simpleLoopProgram();
    vm::FixedLayoutSource source(profile::EdgeProfileSet{});
    opt::LayoutSourceConsumer consumer(source);
    opt::OptPipeline pipeline(consumer);

    vm::Machine machine(program, vm::SimParams{});
    machine.addCompilePass(&pipeline);
    machine.compileNow(program.mainMethod, vm::OptLevel::Opt2);

    EXPECT_EQ(pipeline.stats().runs, 1u);
    EXPECT_EQ(pipeline.stats().clonesApplied, 0u);
    EXPECT_EQ(pipeline.stats().clonesDeclined, 1u);
    EXPECT_EQ(pipeline.stats().layoutsApplied, 0u);
    const vm::CompiledMethod *version =
        machine.currentVersion(program.mainMethod);
    ASSERT_NE(version, nullptr);
    EXPECT_FALSE(version->cloneApplied);

    machine.runIteration();
    analysis::DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::verifyMachine(machine, diagnostics));
}

TEST(PipelineOptionsEnv, ParsesPepOptVariable)
{
    const char *saved = std::getenv("PEP_OPT");
    const std::string restore = saved ? saved : "";

    unsetenv("PEP_OPT");
    EXPECT_FALSE(opt::pipelineOptionsFromEnv().has_value());

    setenv("PEP_OPT", "layout", 1);
    std::optional<opt::PipelineOptions> options =
        opt::pipelineOptionsFromEnv();
    ASSERT_TRUE(options.has_value());
    EXPECT_TRUE(options->layout);
    EXPECT_FALSE(options->clone);

    setenv("PEP_OPT", "clone", 1);
    options = opt::pipelineOptionsFromEnv();
    ASSERT_TRUE(options.has_value());
    EXPECT_FALSE(options->layout);
    EXPECT_TRUE(options->clone);

    setenv("PEP_OPT", "layout,clone", 1);
    options = opt::pipelineOptionsFromEnv();
    ASSERT_TRUE(options.has_value());
    EXPECT_TRUE(options->layout);
    EXPECT_TRUE(options->clone);

    setenv("PEP_OPT", "none", 1);
    options = opt::pipelineOptionsFromEnv();
    ASSERT_TRUE(options.has_value());
    EXPECT_FALSE(options->layout);
    EXPECT_FALSE(options->clone);

    if (saved)
        setenv("PEP_OPT", restore.c_str(), 1);
    else
        unsetenv("PEP_OPT");
}

} // namespace
