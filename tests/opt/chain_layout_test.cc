/**
 * @file
 * Tests for the Pettis-Hansen chain-layout pass (opt/chain_layout.hh):
 * golden layouts on the canned fixture programs, the no-profile
 * degenerate case, determinism, and the property that the chosen
 * layout never scores worse than the unprofiled natural order under
 * the static fallthrough/icache cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "opt/chain_layout.hh"
#include "vm/cost_model.hh"
#include "vm/machine.hh"

namespace {

using namespace pep;

/** Weight table shaped like the CFG's successor lists, all zero. */
std::vector<std::vector<std::uint64_t>>
zeroWeights(const bytecode::MethodCfg &cfg)
{
    std::vector<std::vector<std::uint64_t>> weights(
        cfg.graph.numBlocks());
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
        weights[b].assign(cfg.graph.succs(b).size(), 0);
    return weights;
}

/** The loop-header block of a single-loop fixture method. */
cfg::BlockId
headerBlock(const bytecode::MethodCfg &cfg)
{
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
        if (cfg.isCodeBlock(b) && cfg.isLoopHeader[b])
            return b;
    return cfg::kInvalidBlock;
}

/** The first Cond block that is not the loop header (the diamond). */
cfg::BlockId
diamondBlock(const bytecode::MethodCfg &cfg)
{
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.isCodeBlock(b) && !cfg.isLoopHeader[b] &&
            cfg.terminator[b] == bytecode::TerminatorKind::Cond)
            return b;
    }
    return cfg::kInvalidBlock;
}

std::vector<cfg::BlockId>
naturalOrder(const bytecode::MethodCfg &cfg)
{
    std::vector<cfg::BlockId> natural;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
        if (cfg.isCodeBlock(b))
            natural.push_back(b);
    return natural;
}

TEST(ChainLayout, ZeroWeightsKeepNaturalOrderAndUnknownLayout)
{
    const bytecode::Program program = test::figure1Program();
    const bytecode::MethodCfg cfg =
        bytecode::buildCfg(program.methods[program.mainMethod]);

    const opt::ChainLayout layout = opt::computeChainLayout(
        cfg, zeroWeights(cfg), vm::CostModel{}, {});

    EXPECT_EQ(layout.order, naturalOrder(cfg));
    for (std::int16_t direction : layout.branchLayout)
        EXPECT_EQ(direction, -1);
    EXPECT_DOUBLE_EQ(layout.estimatedCost, layout.baselineCost);
}

TEST(ChainLayout, GoldenLayoutOnFigure1)
{
    // Figure 1's diamond with the taken arm hot: the derived layout
    // must predict the hot direction of every weighted branch and the
    // chain order must place the hot arm straight after the diamond.
    const bytecode::Program program = test::figure1Program();
    const bytecode::MethodCfg cfg =
        bytecode::buildCfg(program.methods[program.mainMethod]);
    const cfg::BlockId header = headerBlock(cfg);
    const cfg::BlockId diamond = diamondBlock(cfg);
    ASSERT_NE(header, cfg::kInvalidBlock);
    ASSERT_NE(diamond, cfg::kInvalidBlock);

    auto weights = zeroWeights(cfg);
    weights[header][0] = 2;   // taken: loop exit (cold)
    weights[header][1] = 100; // fall-through into the body (hot)
    weights[diamond][0] = 90; // taken arm hot
    weights[diamond][1] = 10;
    const cfg::BlockId hot_arm = cfg.graph.succs(diamond)[0];
    const cfg::BlockId cold_arm = cfg.graph.succs(diamond)[1];
    weights[hot_arm][0] = 90;
    weights[cold_arm][0] = 10;
    // The join's back edge into the header.
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (cfg.isCodeBlock(b) &&
            cfg.terminator[b] == bytecode::TerminatorKind::Goto &&
            cfg.graph.succs(b)[0] == header)
            weights[b][0] = 100;
    }

    const opt::ChainLayout layout = opt::computeChainLayout(
        cfg, weights, vm::CostModel{}, {});

    EXPECT_EQ(layout.branchLayout[diamond], 1) << "taken arm is hot";
    EXPECT_EQ(layout.branchLayout[header], 0)
        << "fall-through into the body is hot";

    // The hot arm immediately follows the diamond in the chain order.
    const auto at = std::find(layout.order.begin(), layout.order.end(),
                              diamond);
    ASSERT_NE(at, layout.order.end());
    ASSERT_NE(at + 1, layout.order.end());
    EXPECT_EQ(*(at + 1), hot_arm);

    // Predicting the hot directions must beat the unprofiled baseline
    // strictly: the baseline mispredicts the diamond's 90-weight arm.
    EXPECT_LT(layout.estimatedCost, layout.baselineCost);
}

TEST(ChainLayout, DeterministicAcrossRepeatedRuns)
{
    const bytecode::Program program = test::callSwitchProgram();
    vm::Machine machine(program, vm::SimParams{});
    machine.runIteration();

    for (std::size_t m = 0; m < machine.numMethods(); ++m) {
        const auto method = static_cast<bytecode::MethodId>(m);
        const bytecode::MethodCfg &cfg = machine.info(method).cfg;
        const auto &weights =
            machine.truthEdges().perMethod[m].counts();

        const opt::ChainLayout first = opt::computeChainLayout(
            cfg, weights, vm::CostModel{}, {});
        const opt::ChainLayout second = opt::computeChainLayout(
            cfg, weights, vm::CostModel{}, {});
        EXPECT_EQ(first.order, second.order);
        EXPECT_EQ(first.branchLayout, second.branchLayout);
        EXPECT_DOUBLE_EQ(first.estimatedCost, second.estimatedCost);
    }
}

TEST(ChainLayout, NeverScoresWorseThanBaselineOnRandomPrograms)
{
    // Property over random structured programs with real executed
    // weights: the pass's chosen (order, layout) never scores above
    // the unprofiled natural order, and the order stays a permutation
    // of the method's code blocks.
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const bytecode::Program program =
            test::randomStructuredProgram(seed, 10);
        vm::Machine machine(program, vm::SimParams{});
        machine.runIteration();

        const bytecode::MethodCfg &cfg = machine.info(0).cfg;
        const auto &weights = machine.truthEdges().perMethod[0].counts();

        const opt::ChainLayout layout = opt::computeChainLayout(
            cfg, weights, vm::CostModel{}, {});
        EXPECT_LE(layout.estimatedCost, layout.baselineCost + 1e-9);

        std::vector<cfg::BlockId> sorted = layout.order;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, naturalOrder(cfg))
            << "order must be a permutation of the code blocks";
    }
}

TEST(ChainLayout, EstimateChargesMissAndBreakTerms)
{
    // A two-way branch laid out against its hot direction pays
    // layoutMissPenalty per hot crossing; a successor that does not
    // follow its source in the order pays the icache term.
    const bytecode::Program program = test::figure1Program();
    const bytecode::MethodCfg cfg =
        bytecode::buildCfg(program.methods[program.mainMethod]);
    const cfg::BlockId diamond = diamondBlock(cfg);
    ASSERT_NE(diamond, cfg::kInvalidBlock);

    auto weights = zeroWeights(cfg);
    weights[diamond][0] = 50; // all weight on the taken arm

    const vm::CostModel cost;
    const std::vector<cfg::BlockId> order = naturalOrder(cfg);
    std::vector<std::int16_t> toward_hot(cfg.graph.numBlocks(), -1);
    std::vector<std::int16_t> against_hot(cfg.graph.numBlocks(), -1);
    toward_hot[diamond] = 1;
    against_hot[diamond] = 0;

    const double good = opt::estimateLayoutCost(cfg, weights, order,
                                                toward_hot, cost, {});
    const double bad = opt::estimateLayoutCost(cfg, weights, order,
                                               against_hot, cost, {});
    EXPECT_DOUBLE_EQ(bad - good,
                     50.0 * static_cast<double>(cost.layoutMissPenalty));

    // Doubling the icache factor doubles the break term only.
    opt::ChainLayoutOptions heavy;
    heavy.icachePenaltyFactor = 2.0;
    const double scaled = opt::estimateLayoutCost(
        cfg, weights, order, toward_hot, cost, heavy);
    EXPECT_GE(scaled, good);
}

} // namespace
