/**
 * @file
 * Tests for hot-path cloning (opt/path_clone.hh): plan selection from
 * edge weights and from observed hot paths, the structural contract of
 * the synthesized body (identity rootPcMap, byte-identical original
 * region except the anchor, valid BlockOrigins, pinned on-path
 * layout), and the plan-checker's check 11 accepting it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/diagnostics.hh"
#include "bytecode/assembler.hh"
#include "analysis/plan_check.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"
#include "opt/path_clone.hh"
#include "vm/inliner.hh"

namespace {

using namespace pep;

/** CFG landmarks of simpleLoopProgram's main. */
struct LoopShape
{
    bytecode::Program program;
    bytecode::MethodCfg cfg;

    cfg::BlockId header = cfg::kInvalidBlock;

    /** The `goto loop` block — the retargetable anchor into the
     *  header join. */
    cfg::BlockId backGoto = cfg::kInvalidBlock;

    /** The header's fall-through successor (the loop body). */
    cfg::BlockId body = cfg::kInvalidBlock;
};

LoopShape
loopShape()
{
    LoopShape s;
    s.program = test::simpleLoopProgram();
    s.cfg = bytecode::buildCfg(s.program.methods[s.program.mainMethod]);
    for (cfg::BlockId b = 0; b < s.cfg.graph.numBlocks(); ++b) {
        if (!s.cfg.isCodeBlock(b))
            continue;
        if (s.cfg.isLoopHeader[b])
            s.header = b;
    }
    EXPECT_NE(s.header, cfg::kInvalidBlock);
    for (cfg::BlockId b = 0; b < s.cfg.graph.numBlocks(); ++b) {
        if (s.cfg.isCodeBlock(b) &&
            s.cfg.terminator[b] == bytecode::TerminatorKind::Goto &&
            s.cfg.graph.succs(b)[0] == s.header)
            s.backGoto = b;
    }
    EXPECT_NE(s.backGoto, cfg::kInvalidBlock);
    s.body = s.cfg.graph.succs(s.header)[1]; // Cond fall-through leg
    return s;
}

/** Weights that make the back edge the hottest anchor and the
 *  header -> body continuation the hottest path. */
std::vector<std::vector<std::uint64_t>>
hotLoopWeights(const LoopShape &s)
{
    std::vector<std::vector<std::uint64_t>> weights(
        s.cfg.graph.numBlocks());
    for (cfg::BlockId b = 0; b < s.cfg.graph.numBlocks(); ++b)
        weights[b].assign(s.cfg.graph.succs(b).size(), 0);
    weights[s.backGoto][0] = 100; // anchor: goto -> header (join)
    weights[s.header][0] = 2;     // loop exit, cold
    weights[s.header][1] = 100;   // into the body, hot
    return weights;
}

TEST(PathClone, SelectsBackEdgeAnchoredPlanFromEdgeWeights)
{
    const LoopShape s = loopShape();
    const std::optional<opt::ClonePlan> plan =
        opt::selectClonePath(s.cfg, hotLoopWeights(s), {});

    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->anchor, s.backGoto);
    EXPECT_EQ(plan->anchorEdgeIndex, 0u);
    ASSERT_GE(plan->blocks.size(), 2u);
    EXPECT_EQ(plan->blocks[0], s.header);
    EXPECT_EQ(plan->blocks[1], s.body);
    EXPECT_EQ(plan->weight, 100u);
    EXPECT_EQ(plan->edgeIndex.size(), plan->blocks.size() - 1);
}

TEST(PathClone, PlanFromObservedHotPath)
{
    const LoopShape s = loopShape();

    // One observed loop iteration: back edge, header fall-through,
    // body branch back toward the goto block.
    opt::HotPath path;
    path.method = s.program.mainMethod;
    path.weight = 7;
    path.edges.push_back({s.backGoto, 0});
    path.edges.push_back({s.header, 1});

    const std::optional<opt::ClonePlan> plan =
        opt::planFromPath(s.cfg, path, {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->anchor, s.backGoto);
    EXPECT_EQ(plan->blocks[0], s.header);
    EXPECT_EQ(plan->weight, 7u);
}

TEST(PathClone, DeclinesColdOrShortPaths)
{
    const LoopShape s = loopShape();

    opt::CloneOptions heavy;
    heavy.minPathWeight = 1'000;
    EXPECT_FALSE(
        opt::selectClonePath(s.cfg, hotLoopWeights(s), heavy));

    opt::CloneOptions long_only;
    long_only.minPathBlocks = 32;
    EXPECT_FALSE(
        opt::selectClonePath(s.cfg, hotLoopWeights(s), long_only));

    // All-zero weights: nothing to anchor on.
    std::vector<std::vector<std::uint64_t>> zero(
        s.cfg.graph.numBlocks());
    for (cfg::BlockId b = 0; b < s.cfg.graph.numBlocks(); ++b)
        zero[b].assign(s.cfg.graph.succs(b).size(), 0);
    EXPECT_FALSE(opt::selectClonePath(s.cfg, zero, {}));
}

TEST(PathClone, ClonedBodyHonoursTheStructuralContract)
{
    const LoopShape s = loopShape();
    const std::optional<opt::ClonePlan> plan =
        opt::selectClonePath(s.cfg, hotLoopWeights(s), {});
    ASSERT_TRUE(plan.has_value());

    const opt::ClonedBody cloned = opt::buildClonedBody(
        s.program, s.program.mainMethod, s.cfg, *plan);
    ASSERT_NE(cloned.body, nullptr);

    const bytecode::Method &root =
        s.program.methods[s.program.mainMethod];
    const bytecode::Method &out = cloned.body->method;
    const std::size_t n0 = root.code.size();

    // The clone region is appended after the unchanged original code.
    EXPECT_EQ(cloned.cloneStartPc, n0);
    EXPECT_GT(out.code.size(), n0);

    // Original region: byte-identical except the retargeted anchor.
    const bytecode::Pc anchor_pc = s.cfg.branchPc(plan->anchor);
    for (bytecode::Pc pc = 0; pc < n0; ++pc) {
        if (pc == anchor_pc)
            continue;
        EXPECT_EQ(out.code[pc].op, root.code[pc].op) << "pc " << pc;
        EXPECT_EQ(out.code[pc].a, root.code[pc].a) << "pc " << pc;
        EXPECT_EQ(out.code[pc].b, root.code[pc].b) << "pc " << pc;
    }
    EXPECT_EQ(out.code[anchor_pc].op, bytecode::Opcode::Goto);
    EXPECT_EQ(out.code[anchor_pc].a,
              static_cast<std::int32_t>(cloned.cloneStartPc));

    // OSR contract: identity rootPcMap over the original region.
    ASSERT_EQ(cloned.body->rootPcMap.size(), n0);
    for (bytecode::Pc pc = 0; pc < n0; ++pc)
        EXPECT_EQ(cloned.body->rootPcMap[pc], pc);

    // Every branch block folds onto an original block of the same
    // terminator kind; the clone head is the copy of the path head.
    const bytecode::MethodCfg &clone_cfg = cloned.body->info.cfg;
    EXPECT_EQ(clone_cfg.blockOfPc[cloned.cloneStartPc],
              cloned.cloneHead);
    for (cfg::BlockId b = 0; b < clone_cfg.graph.numBlocks(); ++b) {
        if (!clone_cfg.isCodeBlock(b))
            continue;
        const auto kind = clone_cfg.terminator[b];
        if (kind != bytecode::TerminatorKind::Cond &&
            kind != bytecode::TerminatorKind::Switch)
            continue;
        const vm::BlockOrigin &origin = cloned.body->blockOrigin[b];
        ASSERT_TRUE(origin.valid()) << "branch block " << b;
        EXPECT_EQ(origin.method, s.program.mainMethod);
        EXPECT_EQ(s.cfg.terminator[origin.block], kind);
    }

    // The on-path direction of the cloned header (a mid-path Cond
    // whose on-path leg is the fall-through) is pinned to 0; original
    // region blocks are never pinned.
    ASSERT_EQ(cloned.forcedLayout.size(),
              clone_cfg.graph.numBlocks());
    bool pinned_header_clone = false;
    for (cfg::BlockId b = 0; b < clone_cfg.graph.numBlocks(); ++b) {
        if (!clone_cfg.isCodeBlock(b))
            continue;
        if (clone_cfg.firstPc[b] < n0) {
            EXPECT_EQ(cloned.forcedLayout[b], -1)
                << "original region must stay unpinned";
            continue;
        }
        if (cloned.body->blockOrigin[b].valid() &&
            cloned.body->blockOrigin[b].block == s.header) {
            EXPECT_EQ(cloned.forcedLayout[b], 0);
            pinned_header_clone = true;
        }
    }
    EXPECT_TRUE(pinned_header_clone);

    // The plan-checker's clone audit (check 11) accepts it.
    analysis::CloneCheckInput input;
    input.rootMethod = s.program.mainMethod;
    input.originalCfg = &s.cfg;
    input.body = cloned.body.get();
    input.methodName = root.name;
    analysis::DiagnosticList diagnostics;
    EXPECT_TRUE(analysis::checkClonedBody(input, diagnostics));
    EXPECT_EQ(diagnostics.errorCount(), 0u);
}

TEST(PathClone, CyclicPathIsClosedIntoAPrivateLoop)
{
    // A loop entered through an explicit goto: anchoring at the entry
    // goto lets the path wrap the whole loop body, whose back edge
    // then closes the copy into a private loop.
    const bytecode::Program program = bytecode::assembleOrDie(R"(
.globals 2
.method main 0 2
    iconst 10
    istore 0
    goto loop
loop:
    iload 0
    ifle done
    iinc 1 1
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)");
    const bytecode::MethodCfg cfg =
        bytecode::buildCfg(program.methods[program.mainMethod]);

    cfg::BlockId header = cfg::kInvalidBlock;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
        if (cfg.isCodeBlock(b) && cfg.isLoopHeader[b])
            header = b;
    ASSERT_NE(header, cfg::kInvalidBlock);
    cfg::BlockId entry_goto = cfg::kInvalidBlock;
    cfg::BlockId back_goto = cfg::kInvalidBlock;
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
        if (!cfg.isCodeBlock(b) ||
            cfg.terminator[b] != bytecode::TerminatorKind::Goto ||
            cfg.graph.succs(b)[0] != header)
            continue;
        if (cfg.isLoopHeader[b] || b > header)
            back_goto = b;
        else
            entry_goto = b;
    }
    ASSERT_NE(entry_goto, cfg::kInvalidBlock);
    ASSERT_NE(back_goto, cfg::kInvalidBlock);

    std::vector<std::vector<std::uint64_t>> weights(
        cfg.graph.numBlocks());
    for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b)
        weights[b].assign(cfg.graph.succs(b).size(), 0);
    weights[entry_goto][0] = 200; // the anchor into the loop
    weights[header][0] = 2;       // exit, cold
    weights[header][1] = 100;     // into the body
    weights[back_goto][0] = 100;  // around the loop

    const std::optional<opt::ClonePlan> plan =
        opt::selectClonePath(cfg, weights, {});
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->anchor, entry_goto);
    EXPECT_EQ(plan->blocks[0], header);
    ASSERT_NE(std::find(plan->blocks.begin(), plan->blocks.end(),
                        back_goto),
              plan->blocks.end());

    const opt::ClonedBody cloned = opt::buildClonedBody(
        program, program.mainMethod, cfg, *plan);
    ASSERT_NE(cloned.body, nullptr);
    EXPECT_TRUE(cloned.loopClosed);

    // The cloned back-goto targets the clone head, keeping
    // steady-state iterations inside the copy.
    const bytecode::MethodCfg &clone_cfg = cloned.body->info.cfg;
    bool found = false;
    for (cfg::BlockId b = 0; b < clone_cfg.graph.numBlocks(); ++b) {
        if (!clone_cfg.isCodeBlock(b) ||
            clone_cfg.firstPc[b] < cloned.cloneStartPc)
            continue;
        for (cfg::BlockId succ : clone_cfg.graph.succs(b)) {
            if (succ == cloned.cloneHead)
                found = true;
        }
    }
    EXPECT_TRUE(found);
}

} // namespace
