/**
 * @file
 * Verifier tests: every rejection rule (targets, falling off the end,
 * local bounds, call targets, stack discipline, return discipline,
 * program-level rules) plus maxStack computation.
 */

#include <gtest/gtest.h>

#include "bytecode/verifier.hh"

namespace pep::bytecode {
namespace {

Program
wrap(Method method)
{
    Program program;
    program.globalSize = 4;
    program.methods.push_back(std::move(method));
    program.mainMethod = 0;
    return program;
}

Method
makeMethod(std::vector<Instr> code, std::uint32_t locals = 4,
           std::uint32_t args = 0, bool returns = false)
{
    Method m;
    m.name = "m";
    m.numArgs = args;
    m.numLocals = locals;
    m.returnsValue = returns;
    m.code = std::move(code);
    return m;
}

Instr
op(Opcode o, std::int32_t a = 0, std::int32_t b = 0)
{
    return Instr{o, a, b, {}};
}

TEST(Verifier, AcceptsMinimal)
{
    Program p = wrap(makeMethod({op(Opcode::Return)}));
    EXPECT_TRUE(verifyProgram(p).ok);
}

TEST(Verifier, ComputesMaxStack)
{
    Program p = wrap(makeMethod({
        op(Opcode::Iconst, 1),
        op(Opcode::Iconst, 2),
        op(Opcode::Iconst, 3),
        op(Opcode::Iadd),
        op(Opcode::Iadd),
        op(Opcode::Istore, 0),
        op(Opcode::Return),
    }));
    ASSERT_TRUE(verifyProgram(p).ok);
    EXPECT_EQ(p.methods[0].maxStack, 3u);
}

TEST(Verifier, RejectsEmptyCode)
{
    Program p = wrap(makeMethod({}));
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsFallOffEnd)
{
    Program p = wrap(makeMethod({op(Opcode::Iconst, 1),
                                 op(Opcode::Istore, 0)}));
    const VerifyResult r = verifyProgram(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("falls off"), std::string::npos);
}

TEST(Verifier, RejectsCondBranchAtEnd)
{
    Program p = wrap(makeMethod({op(Opcode::Iconst, 0),
                                 op(Opcode::Ifeq, 0)}));
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsBadBranchTarget)
{
    Program p = wrap(makeMethod({op(Opcode::Goto, 99)}));
    EXPECT_FALSE(verifyProgram(p).ok);
    Program p2 = wrap(makeMethod({op(Opcode::Goto, -1)}));
    EXPECT_FALSE(verifyProgram(p2).ok);
}

TEST(Verifier, RejectsSelfBranch)
{
    // goto to itself is an empty infinite loop the CFG builder cannot
    // split; the verifier rejects it.
    Program p = wrap(makeMethod({op(Opcode::Goto, 0)}));
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsBadSwitchTargets)
{
    Instr sw{Opcode::Tableswitch, 0, 1, {99}};
    Program p = wrap(makeMethod({sw, op(Opcode::Return)}));
    EXPECT_FALSE(verifyProgram(p).ok);

    Instr sw2{Opcode::Tableswitch, 0, 99, {1}};
    Program p2 = wrap(makeMethod({sw2, op(Opcode::Return)}));
    EXPECT_FALSE(verifyProgram(p2).ok);
}

TEST(Verifier, RejectsLocalOutOfRange)
{
    Program p = wrap(makeMethod({op(Opcode::Iload, 4),
                                 op(Opcode::Pop),
                                 op(Opcode::Return)},
                                /*locals=*/4));
    EXPECT_FALSE(verifyProgram(p).ok);
    Program p2 = wrap(makeMethod({op(Opcode::Iinc, -1, 1),
                                  op(Opcode::Return)}));
    EXPECT_FALSE(verifyProgram(p2).ok);
}

TEST(Verifier, RejectsArgsExceedLocals)
{
    Method m = makeMethod({op(Opcode::Return)}, /*locals=*/1,
                          /*args=*/2);
    m.name = "f";
    Program p;
    p.globalSize = 0;
    p.methods.push_back(std::move(m));
    p.methods.push_back(makeMethod({op(Opcode::Return)}));
    p.mainMethod = 1;
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsBadInvokeIndex)
{
    Program p = wrap(makeMethod({op(Opcode::Invoke, 7),
                                 op(Opcode::Return)}));
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsStackUnderflow)
{
    Program p = wrap(makeMethod({op(Opcode::Iadd),
                                 op(Opcode::Return)}));
    const VerifyResult r = verifyProgram(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("underflow"), std::string::npos);
}

TEST(Verifier, RejectsInconsistentMergeDepth)
{
    // Path A pushes one value before the join; path B pushes none.
    Program p = wrap(makeMethod({
        op(Opcode::Iconst, 0), // 0: depth 1
        op(Opcode::Ifeq, 4),   // 1: consume; branch to 4 with depth 0
        op(Opcode::Iconst, 1), // 2: depth 1
        op(Opcode::Goto, 4),   // 3: to 4 with depth 1 -> mismatch
        op(Opcode::Return),    // 4
    }));
    const VerifyResult r = verifyProgram(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("merge"), std::string::npos);
}

TEST(Verifier, RejectsReturnWithStackResidue)
{
    Program p = wrap(makeMethod({op(Opcode::Iconst, 1),
                                 op(Opcode::Return)}));
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsIreturnInVoidMethod)
{
    Program p = wrap(makeMethod({op(Opcode::Iconst, 1),
                                 op(Opcode::Ireturn)}));
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, RejectsVoidReturnInValueMethod)
{
    Method m = makeMethod({op(Opcode::Return)}, 4, 0,
                          /*returns=*/true);
    m.name = "f";
    Program p;
    p.methods.push_back(std::move(m));
    p.methods.push_back(makeMethod({op(Opcode::Return)}));
    p.mainMethod = 1;
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, InvokeStackEffectUsesCalleeSignature)
{
    Method callee = makeMethod({op(Opcode::Iconst, 1),
                                op(Opcode::Ireturn)},
                               2, 2, /*returns=*/true);
    callee.name = "callee";
    Method caller = makeMethod({
        op(Opcode::Iconst, 1),
        op(Opcode::Iconst, 2),
        op(Opcode::Invoke, 1),
        op(Opcode::Pop),
        op(Opcode::Return),
    });
    caller.name = "main";
    Program p;
    p.methods.push_back(std::move(caller));
    p.methods.push_back(std::move(callee));
    p.mainMethod = 0;
    EXPECT_TRUE(verifyProgram(p).ok) << verifyProgram(p).error;
}

TEST(Verifier, ProgramRejectsMainWithArgs)
{
    Method m = makeMethod({op(Opcode::Return)}, 2, 1);
    Program p;
    p.methods.push_back(std::move(m));
    p.mainMethod = 0;
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, ProgramRejectsBadMainIndex)
{
    Program p = wrap(makeMethod({op(Opcode::Return)}));
    p.mainMethod = 5;
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, ProgramRejectsOversizedGlobalsInit)
{
    Program p = wrap(makeMethod({op(Opcode::Return)}));
    p.globalSize = 1;
    p.initialGlobals = {1, 2, 3};
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, ProgramRejectsNoMethods)
{
    Program p;
    EXPECT_FALSE(verifyProgram(p).ok);
}

TEST(Verifier, ErrorMentionsMethodAndPc)
{
    Program p = wrap(makeMethod({op(Opcode::Goto, 99)}));
    const VerifyResult r = verifyProgram(p);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("'m'"), std::string::npos);
    EXPECT_NE(r.error.find("pc 0"), std::string::npos);
}

TEST(Verifier, CollectsMultipleStructuralErrors)
{
    // Two independent bad branch targets: both must be reported, not
    // just the first.
    Program p = wrap(makeMethod({
        op(Opcode::Iconst, 0),
        op(Opcode::Ifeq, 99),
        op(Opcode::Goto, -5),
        op(Opcode::Return),
    }));
    const VerifyResult r = verifyProgram(p);
    ASSERT_FALSE(r.ok);
    ASSERT_GE(r.diagnostics.size(), 2u);

    bool saw_pc1 = false, saw_pc2 = false;
    for (const VerifyDiagnostic &d : r.diagnostics) {
        saw_pc1 |= d.hasPc && d.pc == 1;
        saw_pc2 |= d.hasPc && d.pc == 2;
    }
    EXPECT_TRUE(saw_pc1);
    EXPECT_TRUE(saw_pc2);
}

TEST(Verifier, CollectsErrorsAcrossMethods)
{
    Method bad1 = makeMethod({op(Opcode::Goto, 99)});
    bad1.name = "first";
    Method bad2 = makeMethod({op(Opcode::Iadd),
                              op(Opcode::Return)});
    bad2.name = "second";
    Method main = makeMethod({op(Opcode::Return)});
    main.name = "main";
    Program p;
    p.methods.push_back(std::move(bad1));
    p.methods.push_back(std::move(bad2));
    p.methods.push_back(std::move(main));
    p.mainMethod = 2;

    const VerifyResult r = verifyProgram(p);
    ASSERT_FALSE(r.ok);
    bool saw_first = false, saw_second = false;
    for (const VerifyDiagnostic &d : r.diagnostics) {
        saw_first |= d.method == "first";
        saw_second |= d.method == "second";
    }
    EXPECT_TRUE(saw_first);
    EXPECT_TRUE(saw_second);
}

TEST(Verifier, ErrorIsFirstDiagnosticFormatted)
{
    Program p = wrap(makeMethod({op(Opcode::Goto, 99)}));
    const VerifyResult r = verifyProgram(p);
    ASSERT_FALSE(r.ok);
    ASSERT_FALSE(r.diagnostics.empty());
    EXPECT_EQ(r.error, formatVerifyDiagnostic(r.diagnostics.front()));
}

TEST(Verifier, StackWalkContinuesPastBrokenPc)
{
    // Two separate stack underflows on independent branches of a
    // diamond: the walk stops *propagating* through each broken pc but
    // still scans the rest of the worklist, so both are reported.
    Program p = wrap(makeMethod({
        op(Opcode::Iconst, 0), // 0
        op(Opcode::Ifeq, 4),   // 1
        op(Opcode::Iadd),      // 2: underflow (left arm)
        op(Opcode::Return),    // 3
        op(Opcode::Pop),       // 4: underflow (right arm)
        op(Opcode::Return),    // 5
    }));
    const VerifyResult r = verifyProgram(p);
    ASSERT_FALSE(r.ok);

    bool saw_left = false, saw_right = false;
    for (const VerifyDiagnostic &d : r.diagnostics) {
        saw_left |= d.hasPc && d.pc == 2;
        saw_right |= d.hasPc && d.pc == 4;
    }
    EXPECT_TRUE(saw_left);
    EXPECT_TRUE(saw_right);
}

TEST(Verifier, UnreachableCodeIsToleratedStructurally)
{
    // Dead code after an unconditional goto still must satisfy
    // structural rules, but stack checking never reaches it.
    Program p = wrap(makeMethod({
        op(Opcode::Goto, 2),
        op(Opcode::Iadd), // dead; would underflow if reached
        op(Opcode::Return),
    }));
    EXPECT_TRUE(verifyProgram(p).ok);
}

} // namespace
} // namespace pep::bytecode
