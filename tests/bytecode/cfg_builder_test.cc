/**
 * @file
 * Bytecode -> CFG builder tests: leader identification, block extents,
 * the documented successor ordering (taken first, switch cases then
 * default, return -> exit), loop-header detection, and edge cases like
 * branches to the fall-through and parallel switch targets.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "common/fixtures.hh"

namespace pep::bytecode {
namespace {

const Method &
methodOf(const Program &program, const std::string &name)
{
    MethodId id = 0;
    EXPECT_TRUE(program.findMethod(name, id));
    return program.methods[id];
}

TEST(CfgBuilder, StraightLineIsOneBlock)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    iconst 1
    istore 0
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    // entry, exit, one code block
    EXPECT_EQ(cfg.graph.numBlocks(), 3u);
    const cfg::BlockId b = cfg.blockOfPc[0];
    EXPECT_EQ(cfg.firstPc[b], 0u);
    EXPECT_EQ(cfg.lastPc[b], 2u);
    EXPECT_EQ(cfg.terminator[b], TerminatorKind::Return);
    ASSERT_EQ(cfg.graph.succs(b).size(), 1u);
    EXPECT_EQ(cfg.graph.succs(b)[0], cfg.graph.exit());
    EXPECT_EQ(cfg.numLoopHeaders(), 0u);
    EXPECT_TRUE(cfg.reducible);
}

TEST(CfgBuilder, CondBranchSuccessorOrder)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    iconst 0
    ifeq taken
    iinc 0 1
taken:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    const cfg::BlockId branch_block = cfg.blockOfPc[1];
    EXPECT_EQ(cfg.terminator[branch_block], TerminatorKind::Cond);
    EXPECT_EQ(cfg.branchPc(branch_block), 1u);
    const auto &succs = cfg.graph.succs(branch_block);
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0], cfg.blockOfPc[3]); // taken target first
    EXPECT_EQ(succs[1], cfg.blockOfPc[2]); // fall-through second
}

TEST(CfgBuilder, BranchToFallthroughYieldsParallelEdges)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    iconst 0
    ifeq next
next:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    const cfg::BlockId branch_block = cfg.blockOfPc[1];
    const auto &succs = cfg.graph.succs(branch_block);
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0], succs[1]); // both edges reach the same block
}

TEST(CfgBuilder, SwitchSuccessorsCasesThenDefault)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    iconst 1
    tableswitch 0 dflt c0 c1
c0: return
c1: return
dflt:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    const cfg::BlockId sw = cfg.blockOfPc[1];
    EXPECT_EQ(cfg.terminator[sw], TerminatorKind::Switch);
    const auto &succs = cfg.graph.succs(sw);
    ASSERT_EQ(succs.size(), 3u);
    EXPECT_EQ(succs[0], cfg.blockOfPc[2]);
    EXPECT_EQ(succs[1], cfg.blockOfPc[3]);
    EXPECT_EQ(succs[2], cfg.blockOfPc[4]); // default last
}

TEST(CfgBuilder, SwitchWithDuplicateTargets)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    iconst 1
    tableswitch 0 shared shared shared
shared:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    const cfg::BlockId sw = cfg.blockOfPc[1];
    ASSERT_EQ(cfg.graph.succs(sw).size(), 3u); // parallel edges kept
}

TEST(CfgBuilder, FallthroughBlockSplitAtBranchTarget)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    iconst 0
    ifeq target
    iinc 0 1
target:
    iinc 0 2
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    const cfg::BlockId fall = cfg.blockOfPc[2];
    EXPECT_EQ(cfg.terminator[fall], TerminatorKind::Fallthrough);
    ASSERT_EQ(cfg.graph.succs(fall).size(), 1u);
    EXPECT_EQ(cfg.graph.succs(fall)[0], cfg.blockOfPc[3]);
}

TEST(CfgBuilder, LoopHeaderDetected)
{
    const Program p = test::simpleLoopProgram();
    const MethodCfg cfg = buildCfg(p.methods[p.mainMethod]);
    EXPECT_EQ(cfg.numLoopHeaders(), 1u);
    EXPECT_TRUE(cfg.reducible);
    ASSERT_EQ(cfg.backEdges.size(), 1u);
    const cfg::BlockId header =
        cfg.graph.edgeDst(cfg.backEdges[0]);
    EXPECT_TRUE(cfg.isLoopHeader[header]);
    // The header starts at the branch target of the loop's goto.
    EXPECT_EQ(cfg.firstPc[header], 2u);
}

TEST(CfgBuilder, EntryEdgeToFirstBlock)
{
    const Program p = test::figure1Program();
    const MethodCfg cfg = buildCfg(p.methods[p.mainMethod]);
    ASSERT_EQ(cfg.graph.succs(cfg.graph.entry()).size(), 1u);
    EXPECT_EQ(cfg.graph.succs(cfg.graph.entry())[0],
              cfg.blockOfPc[0]);
    EXPECT_TRUE(cfg.graph.validate().empty());
}

TEST(CfgBuilder, EveryPcMappedToItsBlock)
{
    const Program p = test::callSwitchProgram();
    for (const Method &method : p.methods) {
        const MethodCfg cfg = buildCfg(method);
        for (Pc pc = 0; pc < method.code.size(); ++pc) {
            const cfg::BlockId b = cfg.blockOfPc[pc];
            ASSERT_NE(b, cfg::kInvalidBlock);
            EXPECT_GE(pc, cfg.firstPc[b]);
            EXPECT_LE(pc, cfg.lastPc[b]);
        }
    }
}

TEST(CfgBuilder, DeadCodeBecomesUnreachableBlock)
{
    const Program p = assembleOrDie(R"(
.method main 0 1
    goto end
    iinc 0 1
end:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    const cfg::DfsResult dfs = cfg::depthFirstSearch(cfg.graph);
    EXPECT_FALSE(dfs.reachable[cfg.blockOfPc[1]]);
}

TEST(CfgBuilder, NestedLoopsHaveTwoHeaders)
{
    const Program p = assembleOrDie(R"(
.method main 0 2
    iconst 3
    istore 0
outer:
    iload 0
    ifle done
    iconst 2
    istore 1
inner:
    iload 1
    ifle outer_tail
    iinc 1 -1
    goto inner
outer_tail:
    iinc 0 -1
    goto outer
done:
    return
.end
.main main
)");
    const MethodCfg cfg = buildCfg(methodOf(p, "main"));
    EXPECT_EQ(cfg.numLoopHeaders(), 2u);
    EXPECT_EQ(cfg.backEdges.size(), 2u);
    EXPECT_TRUE(cfg.reducible);
}

TEST(CfgBuilder, RandomStructuredProgramsAreReducible)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const Program p = test::randomStructuredProgram(seed, 8);
        const MethodCfg cfg = buildCfg(p.methods[0]);
        EXPECT_TRUE(cfg.reducible) << "seed " << seed;
        EXPECT_TRUE(cfg.graph.validate().empty()) << "seed " << seed;
    }
}

} // namespace
} // namespace pep::bytecode
