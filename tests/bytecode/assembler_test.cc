/**
 * @file
 * Assembler and disassembler tests: syntax acceptance, label and
 * method resolution (including forward references), error reporting,
 * and disassembly round-trips.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "bytecode/disassembler.hh"
#include "bytecode/verifier.hh"

namespace pep::bytecode {
namespace {

TEST(Assembler, MinimalProgram)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
    return
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.program.methods.size(), 1u);
    EXPECT_EQ(r.program.methods[0].name, "main");
    ASSERT_EQ(r.program.methods[0].code.size(), 1u);
    EXPECT_EQ(r.program.methods[0].code[0].op, Opcode::Return);
}

TEST(Assembler, LabelsForwardAndBackward)
{
    const AssembleResult r = assemble(R"(
.method main 0 1
    goto fwd
back:
    return
fwd:
    goto back
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
    const auto &code = r.program.methods[0].code;
    EXPECT_EQ(code[0].a, 2); // fwd
    EXPECT_EQ(code[2].a, 1); // back
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    const AssembleResult r = assemble(R"(
.method main 0 1
loop: iinc 0 1
    goto loop
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.methods[0].code[1].a, 0);
}

TEST(Assembler, CommentsIgnored)
{
    const AssembleResult r = assemble(R"(
; full line comment
.method main 0 0   ; trailing
    return         # hash comment
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
}

TEST(Assembler, InvokeForwardReference)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
    invoke callee
    return
.end
.method callee 0 0
    return
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.methods[0].code[0].a, 1);
}

TEST(Assembler, TableswitchOperands)
{
    const AssembleResult r = assemble(R"(
.method main 0 1
    iconst 1
    tableswitch 5 dflt c0 c1
c0: return
c1: return
dflt:
    return
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
    const Instr &sw = r.program.methods[0].code[1];
    EXPECT_EQ(sw.op, Opcode::Tableswitch);
    EXPECT_EQ(sw.a, 5);
    ASSERT_EQ(sw.table.size(), 2u);
    EXPECT_EQ(sw.table[0], 2);
    EXPECT_EQ(sw.table[1], 3);
    EXPECT_EQ(sw.b, 4);
}

TEST(Assembler, GlobalsAndData)
{
    const AssembleResult r = assemble(R"(
.globals 16
.data 1 2 3
.data 4
.method main 0 0
    return
.end
.main main
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.globalSize, 16u);
    ASSERT_EQ(r.program.initialGlobals.size(), 4u);
    EXPECT_EQ(r.program.initialGlobals[3], 4);
}

TEST(Assembler, ReturnsFlagParsed)
{
    const AssembleResult r = assemble(R"(
.method f 2 4 returns
    iconst 1
    ireturn
.end
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.program.methods[0].returnsValue);
    EXPECT_EQ(r.program.methods[0].numArgs, 2u);
    EXPECT_EQ(r.program.methods[0].numLocals, 4u);
}

// ---- error paths -----------------------------------------------------------

TEST(AssemblerErrors, UndefinedLabel)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
    goto nowhere
.end
)");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("nowhere"), std::string::npos);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
    frobnicate
.end
)");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateMethod)
{
    const AssembleResult r = assemble(R"(
.method f 0 0
    return
.end
.method f 0 0
    return
.end
)");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
x:
x:
    return
.end
)");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, UnknownInvokeTarget)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
    invoke ghost
    return
.end
)");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, InstructionOutsideMethod)
{
    const AssembleResult r = assemble("    iconst 1\n");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, MissingEnd)
{
    const AssembleResult r = assemble(R"(
.method main 0 0
    return
)");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, UnknownMainMethod)
{
    const AssembleResult r = assemble(R"(
.method f 0 0
    return
.end
.main ghost
)");
    EXPECT_FALSE(r.ok);
}

TEST(AssemblerErrors, ErrorsCarryLineNumbers)
{
    const AssembleResult r = assemble(
        ".method main 0 0\n    bogus\n.end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

// ---- disassembler ------------------------------------------------------------

TEST(Disassembler, RoundTripsProgram)
{
    const std::string source = R"(
.globals 8
.data 7 8
.method helper 1 2 returns
    iload 0
    iconst 3
    iadd
    ireturn
.end
.method main 0 2
    iconst 4
    istore 0
loop:
    iload 0
    ifle done
    iload 0
    invoke helper
    istore 1
    iinc 0 -1
    goto loop
done:
    return
.end
.main main
)";
    AssembleResult first = assemble(source);
    ASSERT_TRUE(first.ok) << first.error;

    const std::string text = disassembleProgram(first.program);
    AssembleResult second = assemble(text);
    ASSERT_TRUE(second.ok) << second.error << "\n" << text;

    ASSERT_EQ(first.program.methods.size(),
              second.program.methods.size());
    for (std::size_t m = 0; m < first.program.methods.size(); ++m) {
        const auto &code1 = first.program.methods[m].code;
        const auto &code2 = second.program.methods[m].code;
        ASSERT_EQ(code1.size(), code2.size());
        for (std::size_t pc = 0; pc < code1.size(); ++pc) {
            EXPECT_EQ(code1[pc].op, code2[pc].op);
            EXPECT_EQ(code1[pc].a, code2[pc].a);
            EXPECT_EQ(code1[pc].b, code2[pc].b);
            EXPECT_EQ(code1[pc].table, code2[pc].table);
        }
    }
    EXPECT_EQ(first.program.globalSize, second.program.globalSize);
    EXPECT_EQ(first.program.initialGlobals,
              second.program.initialGlobals);
    EXPECT_EQ(first.program.mainMethod, second.program.mainMethod);
}

TEST(Disassembler, RendersInvokeByName)
{
    Program program;
    Method callee;
    callee.name = "callee";
    program.methods.push_back(callee);
    Instr call{Opcode::Invoke, 0, 0, {}};
    EXPECT_EQ(disassembleInstr(program, call), "invoke callee");
    Instr bad{Opcode::Invoke, 99, 0, {}};
    EXPECT_NE(disassembleInstr(program, bad).find("<bad:99>"),
              std::string::npos);
}

TEST(Mnemonics, RoundTripAllOpcodes)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        Opcode parsed;
        ASSERT_TRUE(opcodeFromMnemonic(mnemonic(op), parsed))
            << "opcode " << i;
        EXPECT_EQ(parsed, op);
    }
    Opcode out;
    EXPECT_FALSE(opcodeFromMnemonic("nonsense", out));
}

} // namespace
} // namespace pep::bytecode
