/**
 * @file
 * Robustness fuzzing. The verifier is the VM's trust boundary: for
 * arbitrary (mutated) code it must return a clean verdict without
 * crashing, and anything it accepts must execute without tripping an
 * internal invariant (fatal runtime errors like out-of-bounds globals
 * are fine; panics are bugs). The assembler likewise must reject
 * arbitrary token soup gracefully.
 */

#include <gtest/gtest.h>

#include "bytecode/assembler.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/verifier.hh"
#include "support/panic.hh"
#include "support/rng.hh"
#include "testing/generator.hh"
#include "vm/machine.hh"

namespace pep::bytecode {
namespace {

namespace fz = pep::testing;

/** A fuzz-generator program for the given round's seed. */
Program
roundProgram(std::uint64_t seed)
{
    fz::FuzzSpec spec;
    spec.seed = seed;
    return fz::generateProgram(spec);
}

/** Randomly mutate one instruction field of a program. */
void
mutate(support::Rng &rng, Program &program)
{
    Method &method =
        program.methods[rng.nextBounded(program.methods.size())];
    if (method.code.empty())
        return;
    Instr &instr = method.code[rng.nextBounded(method.code.size())];
    switch (rng.nextBounded(4)) {
      case 0:
        instr.op = static_cast<Opcode>(rng.nextBounded(kNumOpcodes));
        break;
      case 1:
        instr.a = static_cast<std::int32_t>(rng.nextRange(-3, 80));
        break;
      case 2:
        instr.b = static_cast<std::int32_t>(rng.nextRange(-3, 80));
        break;
      default:
        if (!instr.table.empty()) {
            instr.table[rng.nextBounded(instr.table.size())] =
                static_cast<std::int32_t>(rng.nextRange(-3, 80));
        }
        break;
    }
}

TEST(VerifierFuzz, NeverCrashesAndAcceptedProgramsRun)
{
    support::Rng rng(0xf522);
    std::size_t accepted = 0;
    std::size_t rejected = 0;

    const std::size_t rounds = fz::fuzzItersFromEnv(400);
    for (std::size_t round = 0; round < rounds; ++round) {
        Program program = roundProgram(1000 + round);
        const std::size_t mutations = 1 + rng.nextBounded(4);
        for (std::size_t i = 0; i < mutations; ++i)
            mutate(rng, program);

        VerifyResult verdict;
        // The verifier must return, not throw.
        ASSERT_NO_THROW(verdict = verifyProgram(program))
            << "round " << round;

        if (!verdict.ok) {
            ++rejected;
            EXPECT_FALSE(verdict.error.empty());
            continue;
        }
        ++accepted;

        // Accepted programs must build CFGs and run to completion (or
        // hit a *fatal* runtime condition) without internal panics.
        vm::SimParams params;
        params.tickCycles = 50'000;
        params.maxCyclesPerIteration = 3'000'000;
        try {
            vm::Machine machine(program, params);
            machine.runIteration();
        } catch (const support::FatalError &) {
            // Defined runtime error (bounds, depth, budget): fine.
        } catch (const support::PanicError &e) {
            FAIL() << "round " << round
                   << ": verified program panicked: " << e.what();
        }
    }
    // The mutator must exercise both sides of the boundary.
    EXPECT_GT(accepted, 20u);
    EXPECT_GT(rejected, 20u);
}

TEST(AssemblerFuzz, TokenSoupNeverCrashes)
{
    static const char *vocabulary[] = {
        ".method", ".end",   ".main",  ".globals", ".data", "main",
        "0",       "1",      "-1",     "99",       "label:", "label",
        "iconst",  "iload",  "goto",   "ifeq",     "invoke", "return",
        "ireturn", "iadd",   "gstore", "tableswitch", "returns", ":",
    };
    support::Rng rng(0xa55);
    for (int round = 0; round < 500; ++round) {
        std::string source;
        const std::size_t tokens = rng.nextBounded(60);
        for (std::size_t i = 0; i < tokens; ++i) {
            source += vocabulary[rng.nextBounded(
                std::size(vocabulary))];
            source += rng.nextBool(0.25) ? "\n" : " ";
        }
        AssembleResult result;
        ASSERT_NO_THROW(result = assemble(source))
            << "round " << round << "\n"
            << source;
        if (!result.ok) {
            EXPECT_FALSE(result.error.empty());
        }
    }
}

TEST(CfgBuilderFuzz, VerifiedMutantsAlwaysBuildSaneCfgs)
{
    support::Rng rng(0xcf9);
    std::size_t built = 0;
    const std::size_t rounds = fz::fuzzItersFromEnv(300);
    for (std::size_t round = 0; round < rounds; ++round) {
        Program program = roundProgram(2000 + round);
        mutate(rng, program);
        if (!verifyProgram(program).ok)
            continue;
        for (const Method &method : program.methods) {
            const MethodCfg cfg = buildCfg(method);
            EXPECT_TRUE(cfg.graph.validate().empty());
            // Every pc belongs to exactly its block's range.
            for (Pc pc = 0; pc < method.code.size(); ++pc) {
                const cfg::BlockId b = cfg.blockOfPc[pc];
                ASSERT_NE(b, cfg::kInvalidBlock);
                EXPECT_GE(pc, cfg.firstPc[b]);
                EXPECT_LE(pc, cfg.lastPc[b]);
            }
            ++built;
        }
    }
    EXPECT_GT(built, 30u);
}

} // namespace
} // namespace pep::bytecode
