/**
 * @file
 * Unit tests for the support utilities: RNG determinism and
 * distribution sanity, statistics helpers, string utilities, the table
 * printer, and the panic/fatal error paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/panic.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace pep::support {
namespace {

// ---- rng -----------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    std::set<std::uint64_t> values;
    for (int i = 0; i < 16; ++i)
        values.insert(rng.next());
    EXPECT_GT(values.size(), 10u); // not stuck at a fixed point
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(10), 10u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(11);
    std::vector<int> buckets(8, 0);
    const int n = 80'000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBounded(8)];
    for (int count : buckets) {
        EXPECT_NEAR(count, n / 8, n / 80); // within 10%
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(5);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
    EXPECT_FALSE(rng.nextBool(-1.0));
    EXPECT_TRUE(rng.nextBool(2.0));
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, TripCountRespectsMinimumAndMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t trips = rng.nextTripCount(8.0, 2);
        EXPECT_GE(trips, 2u);
        sum += static_cast<double>(trips);
    }
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ForkChildContinuesParentSequence)
{
    // The non-overlap scheme (see rng.hh): the child takes over the
    // parent's current position, and the parent jumps 2^128 ahead. So
    // the child must reproduce exactly what the un-forked parent would
    // have produced next.
    Rng forked(42);
    Rng reference(42);
    Rng child = forked.fork();
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(child.next(), reference.next());
}

TEST(Rng, JumpMatchesForkedParent)
{
    // fork() == copy + jump(): the post-fork parent must be exactly a
    // jumped copy of the original.
    Rng forked(77);
    (void)forked.fork();
    Rng jumped(77);
    jumped.jump();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(forked.next(), jumped.next());
}

TEST(Rng, SiblingForksNeverCollide)
{
    // Statistical sanity on top of the structural guarantee: draw a
    // window from many sibling forks and from the parent; with 64-bit
    // outputs no value should repeat across streams (a birthday
    // collision over 2^64 at this sample size is ~2^-31).
    Rng parent(1234);
    std::set<std::uint64_t> seen;
    std::size_t drawn = 0;
    for (int f = 0; f < 32; ++f) {
        Rng child = parent.fork();
        for (int i = 0; i < 512; ++i) {
            seen.insert(child.next());
            ++drawn;
        }
    }
    for (int i = 0; i < 512; ++i) {
        seen.insert(parent.next());
        ++drawn;
    }
    EXPECT_EQ(seen.size(), drawn);
}

TEST(Rng, ForkedStreamIsRoughlyUniform)
{
    // A fork must stay a healthy generator, not a degenerate corner of
    // the state space.
    Rng parent(99);
    Rng child = parent.fork();
    std::vector<int> buckets(8, 0);
    const int n = 80'000;
    for (int i = 0; i < n; ++i)
        ++buckets[child.nextBounded(8)];
    for (int count : buckets) {
        EXPECT_NEAR(count, n / 8, n / 80); // within 10%
    }
}

TEST(Rng, SplitmixAdvancesState)
{
    std::uint64_t state = 0;
    const std::uint64_t v1 = splitmix64(state);
    const std::uint64_t v2 = splitmix64(state);
    EXPECT_NE(v1, v2);
    EXPECT_NE(state, 0u);
}

// ---- stats ----------------------------------------------------------------

TEST(Stats, MeanAndEmpty)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, GeomeanSkipsNonPositiveValues)
{
    // Zero and negative values have no logarithm: the geomean is
    // taken over the positive subset, and is 0.0 when that subset is
    // empty (documented in stats.hh).  The earlier implementation fed
    // log(0) = -inf into the sum and returned 0 or NaN for the whole
    // vector, wrecking overhead averages when one benchmark measured
    // a zero-cycle delta.
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, -3.0}), 0.0);
    EXPECT_NEAR(geomean({2.0, 0.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({-1.0, 9.0}), 9.0, 1e-12);
    EXPECT_FALSE(std::isnan(geomean({-1.0, -2.0})));
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(formatOverhead(1.012), "+1.2%");
    EXPECT_EQ(formatOverhead(0.99), "-1.0%");
    EXPECT_EQ(formatPercent(0.943), "94.3%");
    EXPECT_EQ(formatPercent(0.5, 0), "50%");
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
}

// ---- strings ----------------------------------------------------------------

TEST(Strings, SplitWhitespace)
{
    const auto tokens = splitWhitespace("  a\tbc  d \n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0], "a");
    EXPECT_EQ(tokens[1], "bc");
    EXPECT_EQ(tokens[2], "d");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, SplitCharKeepsEmptyFields)
{
    const auto fields = splitChar("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[3], "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
    EXPECT_EQ(trim("ab"), "ab");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strings, ParseInt)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseInt("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("x", v));
}

// ---- table ------------------------------------------------------------------

TEST(Table, AlignsColumns)
{
    Table table;
    table.header({"name", "value"});
    table.row({"a", "1"});
    table.row({"long-name", "22"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Right-aligned numeric column: "22" ends at same offset as header.
    const auto lines = splitChar(out, '\n');
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[0].size(), lines[3].size());
}

TEST(Table, SeparatorRendersFullWidthRule)
{
    Table table;
    table.header({"a", "b"});
    table.row({"1", "2"});
    table.separator();
    table.row({"3", "4"});
    const std::string out = table.str();
    // Header rule plus the explicit separator.
    std::size_t rules = 0;
    for (const std::string &line : splitChar(out, '\n')) {
        if (!line.empty() &&
            line.find_first_not_of('-') == std::string::npos) {
            ++rules;
        }
    }
    EXPECT_EQ(rules, 2u);
}

TEST(Table, RowCellCountMismatchPanics)
{
    Table table;
    table.header({"a", "b"});
    EXPECT_THROW(table.row({"only-one"}), PanicError);
}

// ---- panic/fatal ---------------------------------------------------------------

TEST(Panic, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
    try {
        fatal("bad input");
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad input"),
                  std::string::npos);
    }
}

TEST(Panic, AssertMacroCarriesLocation)
{
    try {
        PEP_ASSERT(1 == 2);
        FAIL() << "should have thrown";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("support_test.cc"), std::string::npos);
    }
}

TEST(Panic, AssertMsgIncludesStream)
{
    try {
        const int x = 7;
        PEP_ASSERT_MSG(x == 0, "x was " << x);
        FAIL() << "should have thrown";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("x was 7"),
                  std::string::npos);
    }
}

} // namespace
} // namespace pep::support
