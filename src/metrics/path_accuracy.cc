#include "metrics/path_accuracy.hh"

#include <algorithm>

#include "vm/inliner.hh"

namespace pep::metrics {

double
CanonicalPathProfile::totalFlow() const
{
    double total = 0.0;
    for (const auto &[key, entry] : paths) {
        total += static_cast<double>(entry.count) *
                 static_cast<double>(entry.numBranches);
    }
    return total;
}

CanonicalPathProfile
canonicalize(core::PathEngine &engine)
{
    CanonicalPathProfile result;
    for (auto &[version_key, vp] : engine.versionProfiles()) {
        if (!vp->state->reconstructor)
            continue;
        vp->paths.ensureExpanded(*vp->state->reconstructor,
                                 &vp->state->kpath);
        const bool inlined =
            vp->state->compiled && vp->state->compiled->inlinedBody;
        for (const auto &[number, record] : vp->paths.paths()) {
            CanonicalPathKey key;
            key.method = version_key.first;
            key.shape = inlined ? version_key.second + 1 : 0;
            key.edges.reserve(record.cfgEdges.size());
            for (const cfg::EdgeRef &edge : record.cfgEdges) {
                key.edges.push_back(
                    (static_cast<std::uint64_t>(edge.src) << 32) |
                    edge.index);
            }
            CanonicalPathProfile::Entry &entry =
                result.paths[std::move(key)];
            entry.count += record.count;
            entry.numBranches = record.numBranches;
        }
    }
    return result;
}

std::vector<RankedPath>
rankByFlow(const CanonicalPathProfile &profile, std::size_t top)
{
    std::vector<RankedPath> ranked;
    ranked.reserve(profile.paths.size());
    const double total = profile.totalFlow();
    for (const auto &[key, entry] : profile.paths) {
        RankedPath r;
        r.key = &key;
        r.count = entry.count;
        r.flow = static_cast<double>(entry.count) *
                 static_cast<double>(entry.numBranches);
        r.flowShare = total > 0.0 ? r.flow / total : 0.0;
        ranked.push_back(r);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedPath &a, const RankedPath &b) {
                         if (a.flow != b.flow)
                             return a.flow > b.flow;
                         return *a.key < *b.key;
                     });
    if (top != 0 && ranked.size() > top)
        ranked.resize(top);
    return ranked;
}

WallAccuracy
wallPathAccuracy(const CanonicalPathProfile &actual,
                 const CanonicalPathProfile &estimated,
                 double hot_threshold)
{
    WallAccuracy result;
    result.numActualPaths = actual.paths.size();

    const double total_flow = actual.totalFlow();
    if (total_flow <= 0.0)
        return result;
    const double cutoff = hot_threshold * total_flow;

    // Actual hot paths and their flow.
    std::map<CanonicalPathKey, double> hot_actual;
    double hot_flow = 0.0;
    for (const auto &[key, entry] : actual.paths) {
        const double flow = static_cast<double>(entry.count) *
                            static_cast<double>(entry.numBranches);
        if (flow > cutoff) {
            hot_actual.emplace(key, flow);
            hot_flow += flow;
        }
    }
    result.numHotPaths = hot_actual.size();
    if (hot_actual.empty())
        return result;

    // Estimated hot set: the |H_actual| hottest estimated paths.
    struct EstPath
    {
        const CanonicalPathKey *key;
        double flow;
    };
    std::vector<EstPath> est_paths;
    est_paths.reserve(estimated.paths.size());
    for (const auto &[key, entry] : estimated.paths) {
        est_paths.push_back(
            EstPath{&key, static_cast<double>(entry.count) *
                              static_cast<double>(entry.numBranches)});
    }
    std::stable_sort(est_paths.begin(), est_paths.end(),
                     [](const EstPath &a, const EstPath &b) {
                         if (a.flow != b.flow)
                             return a.flow > b.flow;
                         return *a.key < *b.key;
                     });
    if (est_paths.size() > hot_actual.size())
        est_paths.resize(hot_actual.size());

    // Flow of the intersection, measured in *actual* flow.
    double matched_flow = 0.0;
    for (const EstPath &est : est_paths) {
        const auto it = hot_actual.find(*est.key);
        if (it != hot_actual.end())
            matched_flow += it->second;
    }

    result.accuracy = matched_flow / hot_flow;
    return result;
}

} // namespace pep::metrics
