#ifndef PEP_METRICS_OVERLAP_HH
#define PEP_METRICS_OVERLAP_HH

/**
 * @file
 * Edge-profile accuracy metrics from the paper:
 *
 *  - *Relative overlap* (Section 6.4): how well the estimated profile
 *    predicts each conditional branch's taken/not-taken *bias*,
 *    weighted by the branch's actual execution frequency:
 *
 *      Accuracy(b) = 1 - |taken_actual(b) - taken_estimated(b)|
 *      Accuracy    = sum_b freq_actual(b) * Accuracy(b)
 *                    / sum_b freq_actual(b)
 *
 *  - *Absolute overlap* (what earlier work calls just "overlap"):
 *    agreement of normalized edge *frequencies*:
 *
 *      Overlap = sum_e min(P_actual(e), P_estimated(e))
 *
 *    where P is an edge's share of the profile's total edge count.
 */

#include <vector>

#include "bytecode/cfg_builder.hh"
#include "profile/edge_profile.hh"

namespace pep::metrics {

/**
 * Relative overlap over all conditional branches with nonzero actual
 * frequency. Branches the estimated profile never saw get an unbiased
 * 0.5 estimate. Returns a value in [0, 1]; 1 for an empty universe.
 */
double relativeOverlap(const std::vector<bytecode::MethodCfg> &cfgs,
                       const profile::EdgeProfileSet &actual,
                       const profile::EdgeProfileSet &estimated);

/**
 * Absolute overlap over all CFG edges of all methods, each profile
 * normalized by its own total count. Returns a value in [0, 1]; 1 when
 * both profiles are empty, 0 when exactly one is.
 */
double absoluteOverlap(const profile::EdgeProfileSet &actual,
                       const profile::EdgeProfileSet &estimated);

} // namespace pep::metrics

#endif // PEP_METRICS_OVERLAP_HH
