#include "metrics/overlap.hh"

#include <cmath>

#include "support/panic.hh"

namespace pep::metrics {

double
relativeOverlap(const std::vector<bytecode::MethodCfg> &cfgs,
                const profile::EdgeProfileSet &actual,
                const profile::EdgeProfileSet &estimated)
{
    PEP_ASSERT(actual.perMethod.size() == cfgs.size());
    PEP_ASSERT(estimated.perMethod.size() == cfgs.size());

    double weighted = 0.0;
    double total_weight = 0.0;

    for (std::size_t m = 0; m < cfgs.size(); ++m) {
        const bytecode::MethodCfg &method_cfg = cfgs[m];
        const cfg::Graph &graph = method_cfg.graph;
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (method_cfg.terminator[b] !=
                bytecode::TerminatorKind::Cond) {
                continue;
            }
            const profile::BranchCounts act =
                actual.perMethod[m].branch(b);
            if (act.total() == 0)
                continue;
            const profile::BranchCounts est =
                estimated.perMethod[m].branch(b);
            const double accuracy =
                1.0 - std::fabs(act.takenBias() - est.takenBias());
            const double weight = static_cast<double>(act.total());
            weighted += weight * accuracy;
            total_weight += weight;
        }
    }
    return total_weight == 0.0 ? 1.0 : weighted / total_weight;
}

double
absoluteOverlap(const profile::EdgeProfileSet &actual,
                const profile::EdgeProfileSet &estimated)
{
    PEP_ASSERT(actual.perMethod.size() == estimated.perMethod.size());

    double total_act = 0.0;
    double total_est = 0.0;
    for (std::size_t m = 0; m < actual.perMethod.size(); ++m) {
        total_act +=
            static_cast<double>(actual.perMethod[m].totalCount());
        total_est +=
            static_cast<double>(estimated.perMethod[m].totalCount());
    }
    if (total_act == 0.0 && total_est == 0.0)
        return 1.0;
    if (total_act == 0.0 || total_est == 0.0)
        return 0.0;

    double overlap = 0.0;
    for (std::size_t m = 0; m < actual.perMethod.size(); ++m) {
        const auto &act_counts = actual.perMethod[m].counts();
        const auto &est_counts = estimated.perMethod[m].counts();
        PEP_ASSERT(act_counts.size() == est_counts.size());
        for (std::size_t b = 0; b < act_counts.size(); ++b) {
            for (std::size_t i = 0; i < act_counts[b].size(); ++i) {
                const double pa =
                    static_cast<double>(act_counts[b][i]) / total_act;
                const double pe =
                    static_cast<double>(est_counts[b][i]) / total_est;
                overlap += std::min(pa, pe);
            }
        }
    }
    return overlap;
}

} // namespace pep::metrics
