#ifndef PEP_METRICS_PATH_ACCURACY_HH
#define PEP_METRICS_PATH_ACCURACY_HH

/**
 * @file
 * Path-profile accuracy via the Wall weight-matching scheme with the
 * branch-flow metric (paper Section 6.3).
 *
 * Path numbers are only meaningful relative to one numbering of one
 * compiled version, so profiles are first *canonicalized*: every path
 * is keyed by its method and its CFG-edge sequence (which uniquely
 * identifies a path including its start/end points) and counts are
 * merged across compiled versions. Canonical profiles from different
 * numbering schemes (PEP with smart numbering vs a ground-truth
 * recorder with Ball-Larus numbering) are then directly comparable.
 *
 * Flow of a path p: F(p) = freq(p) * b_p, with b_p the number of
 * branches on p. A path is *hot* if its flow exceeds `hotThreshold`
 * (paper: 0.125%) of total flow. Accuracy is the fraction of actual
 * hot-path flow present in the estimated top-|H_actual| paths:
 *
 *   Accuracy = F(H_estimated ∩ H_actual) / F(H_actual)
 */

#include <cstdint>
#include <map>
#include <vector>

#include "core/path_engine.hh"

namespace pep::metrics {

/** Version- and numbering-independent path identity. */
struct CanonicalPathKey
{
    bytecode::MethodId method = 0;

    /**
     * CFG shape tag: 0 for the method's own bytecode CFG (all
     * non-inlined versions share it), or version+1 for an inlined
     * body, whose block ids live in a different coordinate space and
     * must not be merged with the base CFG's.
     */
    std::uint32_t shape = 0;

    /** CFG edges encoded as (src << 32) | succIndex. */
    std::vector<std::uint64_t> edges;

    bool
    operator<(const CanonicalPathKey &other) const
    {
        if (method != other.method)
            return method < other.method;
        if (shape != other.shape)
            return shape < other.shape;
        return edges < other.edges;
    }
};

/** A canonicalized path profile. */
struct CanonicalPathProfile
{
    struct Entry
    {
        std::uint64_t count = 0;
        std::uint32_t numBranches = 0;
    };

    std::map<CanonicalPathKey, Entry> paths;

    /** Sum of freq * branches over all paths. */
    double totalFlow() const;
};

/**
 * Canonicalize an engine's collected path profiles (expands any
 * unexpanded records, hence non-const).
 */
CanonicalPathProfile canonicalize(core::PathEngine &engine);

/** Result of Wall weight-matching. */
struct WallAccuracy
{
    /** F(H_est ∩ H_act) / F(H_act); 1.0 when there are no hot paths. */
    double accuracy = 1.0;

    /** Number of actual hot paths (|H_actual|). */
    std::size_t numHotPaths = 0;

    /** Distinct paths in the actual profile. */
    std::size_t numActualPaths = 0;
};

/**
 * Wall weight-matching accuracy of `estimated` against `actual`.
 * `hot_threshold` is the hot-path flow fraction (paper: 0.00125).
 */
WallAccuracy wallPathAccuracy(const CanonicalPathProfile &actual,
                              const CanonicalPathProfile &estimated,
                              double hot_threshold = 0.00125);

/** One entry of a flow ranking. */
struct RankedPath
{
    const CanonicalPathKey *key = nullptr;

    /** freq * branches. */
    double flow = 0.0;

    /** This path's share of the profile's total flow, in [0, 1]. */
    double flowShare = 0.0;

    std::uint64_t count = 0;
};

/**
 * The profile's paths ranked by branch-flow, hottest first (at most
 * `top` entries; 0 means all). Keys point into `profile`, which must
 * outlive the result. Deterministic: ties break by key order.
 */
std::vector<RankedPath>
rankByFlow(const CanonicalPathProfile &profile, std::size_t top = 0);

} // namespace pep::metrics

#endif // PEP_METRICS_PATH_ACCURACY_HH
