#ifndef PEP_CFG_GRAPH_HH
#define PEP_CFG_GRAPH_HH

/**
 * @file
 * Control-flow graph structure. A Graph owns a set of basic blocks
 * (identified by dense BlockId indices) and ordered successor lists.
 * Successor order is semantically meaningful for clients (e.g., the
 * bytecode CFG builder puts the taken target first for conditional
 * branches), and edges are identified as (source block, successor index)
 * so that parallel edges — which occur with switches and are significant
 * for path profiling — remain distinct.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace pep::cfg {

/** Dense index of a basic block within its Graph. */
using BlockId = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId kInvalidBlock = static_cast<BlockId>(-1);

/**
 * Identity of one CFG edge: the `index`-th successor of block `src`.
 * Parallel edges (same src/dst) get distinct indices.
 */
struct EdgeRef
{
    BlockId src = kInvalidBlock;
    std::uint32_t index = 0;

    bool
    operator==(const EdgeRef &other) const
    {
        return src == other.src && index == other.index;
    }

    bool
    operator<(const EdgeRef &other) const
    {
        if (src != other.src)
            return src < other.src;
        return index < other.index;
    }
};

/**
 * A directed graph over basic blocks with a designated entry and exit.
 * Entry and exit are ordinary blocks created by the constructor; clients
 * add further blocks and edges. Predecessor lists are maintained
 * incrementally.
 */
class Graph
{
  public:
    /** Create a graph containing only the synthetic entry and exit. */
    Graph();

    /** Add a block and return its id. */
    BlockId addBlock();

    /**
     * Add an edge from src's successor list tail to dst; returns the edge.
     * Parallel edges are allowed.
     */
    EdgeRef addEdge(BlockId src, BlockId dst);

    /** The synthetic entry block (always id 0). */
    BlockId entry() const { return 0; }

    /** The synthetic exit block (always id 1). */
    BlockId exit() const { return 1; }

    /** Number of blocks, including entry and exit. */
    std::size_t numBlocks() const { return succs_.size(); }

    /** Total number of edges. */
    std::size_t numEdges() const { return num_edges_; }

    /** Ordered successor list of a block. */
    const std::vector<BlockId> &succs(BlockId b) const;

    /** Predecessor list of a block (insertion order). */
    const std::vector<BlockId> &preds(BlockId b) const;

    /** Destination block of an edge. */
    BlockId edgeDst(EdgeRef e) const;

    /** All edges, in (src, index) order. */
    std::vector<EdgeRef> allEdges() const;

    /**
     * Check structural sanity: entry has no predecessors, exit has no
     * successors, every edge endpoint is a valid block. Returns an empty
     * string if OK, else a description of the first problem.
     */
    std::string validate() const;

  private:
    std::vector<std::vector<BlockId>> succs_;
    std::vector<std::vector<BlockId>> preds_;
    std::size_t num_edges_ = 0;
};

} // namespace pep::cfg

#endif // PEP_CFG_GRAPH_HH
