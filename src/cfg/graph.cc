#include "cfg/graph.hh"

#include <sstream>

#include "support/panic.hh"

namespace pep::cfg {

Graph::Graph()
{
    addBlock(); // entry, id 0
    addBlock(); // exit, id 1
}

BlockId
Graph::addBlock()
{
    const BlockId id = static_cast<BlockId>(succs_.size());
    succs_.emplace_back();
    preds_.emplace_back();
    return id;
}

EdgeRef
Graph::addEdge(BlockId src, BlockId dst)
{
    PEP_ASSERT(src < succs_.size() && dst < succs_.size());
    EdgeRef e{src, static_cast<std::uint32_t>(succs_[src].size())};
    succs_[src].push_back(dst);
    preds_[dst].push_back(src);
    ++num_edges_;
    return e;
}

const std::vector<BlockId> &
Graph::succs(BlockId b) const
{
    PEP_ASSERT(b < succs_.size());
    return succs_[b];
}

const std::vector<BlockId> &
Graph::preds(BlockId b) const
{
    PEP_ASSERT(b < preds_.size());
    return preds_[b];
}

BlockId
Graph::edgeDst(EdgeRef e) const
{
    PEP_ASSERT(e.src < succs_.size());
    PEP_ASSERT(e.index < succs_[e.src].size());
    return succs_[e.src][e.index];
}

std::vector<EdgeRef>
Graph::allEdges() const
{
    std::vector<EdgeRef> edges;
    edges.reserve(num_edges_);
    for (BlockId b = 0; b < succs_.size(); ++b) {
        for (std::uint32_t i = 0; i < succs_[b].size(); ++i)
            edges.push_back(EdgeRef{b, i});
    }
    return edges;
}

std::string
Graph::validate() const
{
    std::ostringstream os;
    if (!preds_[entry()].empty()) {
        os << "entry block has " << preds_[entry()].size()
           << " predecessor(s)";
        return os.str();
    }
    if (!succs_[exit()].empty()) {
        os << "exit block has " << succs_[exit()].size()
           << " successor(s)";
        return os.str();
    }
    return {};
}

} // namespace pep::cfg
