#ifndef PEP_CFG_DOT_HH
#define PEP_CFG_DOT_HH

/**
 * @file
 * Graphviz dot output for CFGs, used by the profile-explorer example and
 * for debugging. Labels are supplied by callbacks so any client-side
 * annotation (bytecode ranges, edge values) can be rendered.
 */

#include <functional>
#include <string>

#include "cfg/graph.hh"

namespace pep::cfg {

/** Options controlling dot rendering. */
struct DotOptions
{
    /** Graph name emitted in the digraph header. */
    std::string name = "cfg";

    /** Label for each block; defaults to the block id. */
    std::function<std::string(BlockId)> blockLabel;

    /** Label for each edge; empty string omits the label. */
    std::function<std::string(EdgeRef)> edgeLabel;
};

/** Render the graph in Graphviz dot syntax. */
std::string toDot(const Graph &graph, const DotOptions &options = {});

} // namespace pep::cfg

#endif // PEP_CFG_DOT_HH
