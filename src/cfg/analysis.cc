#include "cfg/analysis.hh"

#include <algorithm>

#include "support/panic.hh"

namespace pep::cfg {

DfsResult
depthFirstSearch(const Graph &graph)
{
    const std::size_t n = graph.numBlocks();
    DfsResult result;
    result.rpoIndex.assign(n, -1);
    result.reachable.assign(n, false);

    // Iterative DFS computing postorder and retreating edges. A block is
    // "on stack" from discovery until its postorder number is assigned.
    enum class Color : std::uint8_t { White, OnStack, Done };
    std::vector<Color> color(n, Color::White);

    struct Frame
    {
        BlockId block;
        std::uint32_t nextSucc;
    };
    std::vector<Frame> stack;
    std::vector<BlockId> postorder;
    postorder.reserve(n);

    color[graph.entry()] = Color::OnStack;
    result.reachable[graph.entry()] = true;
    stack.push_back(Frame{graph.entry(), 0});

    while (!stack.empty()) {
        Frame &frame = stack.back();
        const auto &succs = graph.succs(frame.block);
        if (frame.nextSucc < succs.size()) {
            const std::uint32_t idx = frame.nextSucc++;
            const BlockId succ = succs[idx];
            if (color[succ] == Color::White) {
                color[succ] = Color::OnStack;
                result.reachable[succ] = true;
                stack.push_back(Frame{succ, 0});
            } else if (color[succ] == Color::OnStack) {
                result.retreatingEdges.push_back(
                    EdgeRef{frame.block, idx});
            }
        } else {
            postorder.push_back(frame.block);
            color[frame.block] = Color::Done;
            stack.pop_back();
        }
    }

    result.reversePostorder.assign(postorder.rbegin(), postorder.rend());
    for (std::size_t i = 0; i < result.reversePostorder.size(); ++i)
        result.rpoIndex[result.reversePostorder[i]] =
            static_cast<std::int32_t>(i);
    return result;
}

LoopInfo
findLoops(const Graph &graph, const DfsResult &dfs)
{
    LoopInfo info;
    info.loopHeader.assign(graph.numBlocks(), false);
    info.backEdges = dfs.retreatingEdges;
    for (const EdgeRef &e : info.backEdges) {
        const BlockId header = graph.edgeDst(e);
        if (!info.loopHeader[header]) {
            info.loopHeader[header] = true;
            ++info.numHeaders;
        }
    }
    return info;
}

std::vector<BlockId>
immediateDominators(const Graph &graph, const DfsResult &dfs)
{
    const std::size_t n = graph.numBlocks();
    std::vector<BlockId> idom(n, kInvalidBlock);
    idom[graph.entry()] = graph.entry();

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (dfs.rpoIndex[a] > dfs.rpoIndex[b])
                a = idom[a];
            while (dfs.rpoIndex[b] > dfs.rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : dfs.reversePostorder) {
            if (b == graph.entry())
                continue;
            BlockId new_idom = kInvalidBlock;
            for (BlockId p : graph.preds(b)) {
                if (!dfs.reachable[p] || idom[p] == kInvalidBlock)
                    continue;
                if (new_idom == kInvalidBlock)
                    new_idom = p;
                else
                    new_idom = intersect(new_idom, p);
            }
            if (new_idom != kInvalidBlock && idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<BlockId> &idom, BlockId a, BlockId b)
{
    PEP_ASSERT(b < idom.size());
    if (idom[b] == kInvalidBlock)
        return false; // b unreachable
    BlockId cur = b;
    for (;;) {
        if (cur == a)
            return true;
        const BlockId up = idom[cur];
        if (up == cur)
            return false; // reached entry
        cur = up;
    }
}

bool
isReducible(const Graph &graph)
{
    const DfsResult dfs = depthFirstSearch(graph);
    const std::vector<BlockId> idom = immediateDominators(graph, dfs);
    for (const EdgeRef &e : dfs.retreatingEdges) {
        if (!dominates(idom, graph.edgeDst(e), e.src))
            return false;
    }
    return true;
}

std::vector<BlockId>
topologicalOrder(const Graph &graph)
{
    const DfsResult dfs = depthFirstSearch(graph);
    PEP_ASSERT_MSG(dfs.retreatingEdges.empty(),
                   "topologicalOrder called on a cyclic graph");
    // For an acyclic graph, reverse postorder is a topological order.
    return dfs.reversePostorder;
}

} // namespace pep::cfg
