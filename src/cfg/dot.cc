#include "cfg/dot.hh"

#include <sstream>

namespace pep::cfg {

namespace {

std::string
escapeLabel(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
toDot(const Graph &graph, const DotOptions &options)
{
    std::ostringstream os;
    os << "digraph " << options.name << " {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";

    for (BlockId b = 0; b < graph.numBlocks(); ++b) {
        std::string label;
        if (options.blockLabel) {
            label = options.blockLabel(b);
        } else if (b == graph.entry()) {
            label = "ENTRY";
        } else if (b == graph.exit()) {
            label = "EXIT";
        } else {
            label = "B" + std::to_string(b);
        }
        os << "  n" << b << " [label=\"" << escapeLabel(label)
           << "\"];\n";
    }

    for (const EdgeRef &e : graph.allEdges()) {
        os << "  n" << e.src << " -> n" << graph.edgeDst(e);
        if (options.edgeLabel) {
            const std::string label = options.edgeLabel(e);
            if (!label.empty())
                os << " [label=\"" << escapeLabel(label) << "\"]";
        }
        os << ";\n";
    }

    os << "}\n";
    return os.str();
}

} // namespace pep::cfg
