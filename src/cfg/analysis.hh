#ifndef PEP_CFG_ANALYSIS_HH
#define PEP_CFG_ANALYSIS_HH

/**
 * @file
 * CFG analyses needed by path profiling: depth-first orders, retreating
 * (loop back) edges and loop headers, dominators, reducibility, and
 * topological order for acyclic graphs.
 *
 * PEP truncates paths at loop headers. For reducible CFGs the headers are
 * the targets of back edges (edges whose target dominates their source);
 * for irreducible CFGs we conservatively treat the target of every
 * DFS-retreating edge as a header, which still guarantees the truncated
 * graph is acyclic (every cycle contains a retreating edge).
 */

#include <vector>

#include "cfg/graph.hh"

namespace pep::cfg {

/** Result of a depth-first traversal from the entry block. */
struct DfsResult
{
    /** Blocks in reverse postorder (entry first). Unreachable omitted. */
    std::vector<BlockId> reversePostorder;

    /** Position of each block in reversePostorder; -1 if unreachable. */
    std::vector<std::int32_t> rpoIndex;

    /** Edges whose target was on the DFS stack when traversed. */
    std::vector<EdgeRef> retreatingEdges;

    /** True if the block is reachable from entry. */
    std::vector<bool> reachable;
};

/** Run an iterative DFS from entry, with deterministic successor order. */
DfsResult depthFirstSearch(const Graph &graph);

/** Loop structure derived from a DFS. */
struct LoopInfo
{
    /** loopHeader[b] is true if some retreating edge targets b. */
    std::vector<bool> loopHeader;

    /** The retreating edges ("back edges" when the graph is reducible). */
    std::vector<EdgeRef> backEdges;

    /** Number of distinct headers. */
    std::size_t numHeaders = 0;
};

/** Identify loop headers and back edges. */
LoopInfo findLoops(const Graph &graph, const DfsResult &dfs);

/**
 * Immediate dominators (Cooper-Harvey-Kennedy iterative algorithm).
 * idom[entry] == entry; idom[b] == kInvalidBlock for unreachable b.
 */
std::vector<BlockId> immediateDominators(const Graph &graph,
                                         const DfsResult &dfs);

/** True if `a` dominates `b` under the given idom tree. */
bool dominates(const std::vector<BlockId> &idom, BlockId a, BlockId b);

/**
 * True if the CFG is reducible: every retreating edge's target dominates
 * its source.
 */
bool isReducible(const Graph &graph);

/**
 * Topological order of an acyclic graph (reachable blocks only, entry
 * first). Panics if a cycle exists among reachable blocks.
 */
std::vector<BlockId> topologicalOrder(const Graph &graph);

} // namespace pep::cfg

#endif // PEP_CFG_ANALYSIS_HH
