#ifndef PEP_ANALYSIS_PLAN_CHECK_HH
#define PEP_ANALYSIS_PLAN_CHECK_HH

/**
 * @file
 * Static instrumentation-plan checker: machine-checks the invariants
 * PEP's correctness rests on, per (method, P-DAG, numbering, plan):
 *
 *  1. DAG well-formedness: structurally valid and acyclic.
 *  2. Numbering soundness: at every DAG node the outgoing edge values
 *     carve [0, numPaths(node)) into disjoint, exhaustive intervals
 *     [val(e), val(e) + numPaths(dst(e))). By induction this proves
 *     every Entry->Exit path gets a *unique* id and the ids are *dense*
 *     in [0, totalPaths) — Ball-Larus's theorem, checked instance-wise.
 *  3. Overflow safety: totalPaths stays under kMaxPaths and no partial
 *     register sum can exceed totalPaths - 1, so the u64 path register
 *     cannot wrap under Direct placement.
 *  4. Plan consistency: edge increments equal the numbering's edge
 *     values (Direct) or the spanning placement's chord increments
 *     (SpanningTree); end/restart pairs sit exactly at loop headers
 *     (HeaderSplit) or truncated back edges (BackEdgeTruncate) and
 *     carry the dummy edges' values; numInstrumentedEdges matches.
 *  5. Chord-only placement (SpanningTree): spanning-tree edges carry no
 *     increment, the tree is acyclic, and it spans every live node.
 *  6. Smart-numbering cost (scheme Smart): the hottest outgoing edge of
 *     every DAG node has value 0, i.e. hot edges cost nothing.
 *  7. Bounded semantic proof: when totalPaths <= simulateLimit, every
 *     Entry->Exit DAG path is enumerated independently of the greedy
 *     reconstructor; replaying the *plan's* register actions over each
 *     path must reproduce the path's Ball-Larus number, and the numbers
 *     must cover [0, totalPaths) exactly.
 *  8. Flattened-table fidelity: the contiguous flatEdgeActions mirror
 *     the interpreter executes agrees memberwise with the nested
 *     edgeActions the checks above reason about, and edgeBase holds
 *     exact prefix sums of the CFG's successor counts.
 *  9. Template-stream fidelity (checkTemplateStream, docs/ENGINE.md):
 *     the threaded engine's pre-decoded template stream agrees
 *     memberwise with the plan's flattened tables — the structural
 *     flat-edge base burned into every template equals the plan's
 *     edgeBase prefix sums (so `flatBase + successor` indexes
 *     flatEdgeActions exactly like `edgeBase[src] + index`), every pc
 *     maps to a template carrying its opcode, block and branch layout,
 *     control transfers resolve to their targets' templates, and the
 *     folded segment charges conserve the version's scaled costs.
 * 10. k-path id-space audit (checkKPathScheme, docs/KBLPP.md): a
 *     version's KPathScheme must be the arithmetically exact id space
 *     over its plan — base equals the enabled plan's totalPaths, the
 *     length offsets are precise prefix sums of base^l, kEffective is
 *     the *maximal* length fitting under the id cap (never less, so no
 *     silent window shrinkage), length-1 ids coincide with raw
 *     Ball-Larus numbers (the k=1 degeneracy guarantee), and
 *     encode/decode round-trip at the id-space corners.
 * 11. Cloned-body origin audit (checkClonedBody, docs/OPT.md): a
 *     version whose body the path-cloning pass synthesized must fold
 *     exactly onto the original CFG — every Cond/Switch block carries
 *     a valid BlockOrigin naming an original block of the same
 *     terminator kind and successor arity (so per-index counter
 *     sharing is well-defined), only synthesized glue Gotos may lack
 *     an origin, and the rootPcMap is the identity over the original
 *     code region (the OSR contract for clones). Combined with checks
 *     1-10 over the synthesized CFG's own plan, this validates
 *     cloned-CFG instrumentation end to end.
 * 12. Fused-stream composition (checkFusedStream, docs/ENGINE.md): a
 *     stream translated under PEP_FUSE must compose exactly from its
 *     constituents — every fused superinstruction is the deterministic
 *     fusion-menu match at its pc with the constituents' operands
 *     burned in and every constituent pc mapping back to it; trace
 *     selection is reproducible from (code, layout, fuse); trace
 *     charge batching conserves the switch engine's per-block costs
 *     (head carries the chain total, interiors zero, guards refund
 *     exactly the unexecuted suffix); and synthetic tops appear only
 *     under the fusion mode that produces them.
 *
 * All violations are reported as diagnostics (pass "plan-check"), not
 * panics, so a lint run can show every broken invariant at once.
 */

#include <cstdint>
#include <string>

#include "analysis/diagnostics.hh"
#include "bytecode/cfg_builder.hh"
#include "profile/instr_plan.hh"
#include "profile/kpath.hh"
#include "profile/numbering.hh"
#include "profile/pdag.hh"
#include "profile/spanning_placement.hh"

namespace pep::vm {
struct DecodedMethod;
struct InlinedBody;
}

namespace pep::analysis {

/** Everything the checker inspects for one method. */
struct PlanCheckInput
{
    const bytecode::MethodCfg *cfg = nullptr;
    const profile::PDag *pdag = nullptr;
    const profile::Numbering *numbering = nullptr;
    const profile::InstrumentationPlan *plan = nullptr;

    profile::PlacementKind placement = profile::PlacementKind::Direct;

    /** Required when placement == SpanningTree. */
    const profile::SpanningPlacement *spanning = nullptr;

    profile::NumberingScheme scheme =
        profile::NumberingScheme::BallLarus;

    /** Required for the hot-edge check when scheme == Smart. */
    const profile::DagEdgeFreqs *freqs = nullptr;

    /** Method name used in diagnostics. */
    std::string methodName;

    /** Path-enumeration budget for the semantic proof (check 7). */
    std::uint64_t simulateLimit = 4096;
};

/**
 * Run every applicable check; append findings to `diagnostics`.
 * Returns true if no *errors* were added (warnings/notes allowed).
 */
bool checkInstrumentationPlan(const PlanCheckInput &input,
                              DiagnosticList &diagnostics);

/** Everything the template-stream check inspects (check 9). `code`
 *  and `cfg` must be the code the stream executes (the inlined body's
 *  when the version has one). */
struct TemplateCheckInput
{
    const bytecode::Method *code = nullptr;
    const bytecode::MethodCfg *cfg = nullptr;
    const profile::InstrumentationPlan *plan = nullptr;
    const vm::DecodedMethod *decoded = nullptr;

    /** Method name used in diagnostics. */
    std::string methodName;
};

/**
 * Check 9: prove a translated template stream (vm/decoded_method.hh)
 * is memberwise-consistent with the plan's flattened tables. Static
 * counterpart of the fuzzer's engine cross-check, exactly as check 8
 * is the static counterpart of its flat/nested dispatch check.
 * Returns true if no errors were added.
 */
bool checkTemplateStream(const TemplateCheckInput &input,
                         DiagnosticList &diagnostics);

/** Everything the k-path id-space audit inspects (check 10). */
struct KPathCheckInput
{
    const profile::InstrumentationPlan *plan = nullptr;
    const profile::KPathScheme *kpath = nullptr;

    /** The window length the profiler was configured with; kEffective
     *  may be lower only when forced by the id cap. */
    std::uint32_t kRequested = 1;

    /** Method name used in diagnostics. */
    std::string methodName;
};

/**
 * Check 10: audit one version's k-path id space against its plan
 * (docs/KBLPP.md). Returns true if no errors were added.
 */
bool checkKPathScheme(const KPathCheckInput &input,
                      DiagnosticList &diagnostics);

/** Everything the cloned-body audit inspects (check 11). */
struct CloneCheckInput
{
    /** The method the cloned version belongs to. */
    bytecode::MethodId rootMethod = 0;

    /** That method's original CFG. */
    const bytecode::MethodCfg *originalCfg = nullptr;

    /** The synthesized body the version executes. */
    const vm::InlinedBody *body = nullptr;

    /** Method name used in diagnostics. */
    std::string methodName;
};

/**
 * Check 11: audit a clone-synthesized body's origin records against
 * the original CFG (docs/OPT.md). Returns true if no errors were
 * added.
 */
bool checkClonedBody(const CloneCheckInput &input,
                     DiagnosticList &diagnostics);

/** Everything the fused-stream audit inspects (check 12). The
 *  DecodedMethod's own `code`/`info`/`source` back-pointers supply the
 *  constituents the composition is proved against. */
struct FusedCheckInput
{
    const vm::DecodedMethod *decoded = nullptr;

    /** Method name used in diagnostics. */
    std::string methodName;
};

/**
 * Check 12: prove a fused/straightened template stream composes
 * exactly from its constituent opcode templates (docs/ENGINE.md).
 * Complements check 9, which validates the per-instruction fields
 * fusion leaves untouched. Returns true if no errors were added.
 */
bool checkFusedStream(const FusedCheckInput &input,
                      DiagnosticList &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_PLAN_CHECK_HH
