#include "analysis/diagnostics.hh"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace pep::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    return "unknown";
}

void
DiagnosticList::add(Diagnostic diagnostic)
{
    diagnostics_.push_back(std::move(diagnostic));
}

Diagnostic &
DiagnosticList::report(Severity severity, std::string pass,
                       std::string method, std::string message)
{
    Diagnostic d;
    d.severity = severity;
    d.pass = std::move(pass);
    d.method = std::move(method);
    d.message = std::move(message);
    diagnostics_.push_back(std::move(d));
    return diagnostics_.back();
}

Diagnostic &
DiagnosticList::reportAtPc(Severity severity, std::string pass,
                           std::string method, bytecode::Pc pc,
                           std::string message)
{
    Diagnostic &d = report(severity, std::move(pass), std::move(method),
                           std::move(message));
    d.hasPc = true;
    d.pc = pc;
    return d;
}

Diagnostic &
DiagnosticList::reportAtEdge(Severity severity, std::string pass,
                             std::string method, cfg::EdgeRef edge,
                             std::string message)
{
    Diagnostic &d = report(severity, std::move(pass), std::move(method),
                           std::move(message));
    d.hasEdge = true;
    d.edge = edge;
    return d;
}

std::size_t
DiagnosticList::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics_)
        n += d.severity == severity ? 1 : 0;
    return n;
}

void
DiagnosticList::merge(const DiagnosticList &other)
{
    diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                        other.diagnostics_.end());
}

bool
diagnosticLess(const Diagnostic &a, const Diagnostic &b)
{
    const auto key = [](const Diagnostic &d) {
        return std::make_tuple(
            std::cref(d.method), d.hasVersion, d.version,
            std::cref(d.pass), std::cref(d.check), d.hasPc, d.pc,
            d.hasEdge, d.edge.src, d.edge.index,
            static_cast<int>(d.severity), std::cref(d.message));
    };
    return key(a) < key(b);
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::stable_sort(diagnostics.begin(), diagnostics.end(),
                     diagnosticLess);
}

std::string
formatDiagnostic(const Diagnostic &diagnostic)
{
    std::ostringstream os;
    os << severityName(diagnostic.severity) << ": ["
       << diagnostic.pass;
    if (!diagnostic.check.empty())
        os << '/' << diagnostic.check;
    os << "]";
    if (!diagnostic.method.empty())
        os << " method '" << diagnostic.method << "'";
    if (diagnostic.hasVersion)
        os << " v" << diagnostic.version;
    if (diagnostic.hasPc)
        os << " pc " << diagnostic.pc;
    if (diagnostic.hasEdge) {
        os << " edge (" << diagnostic.edge.src << ","
           << diagnostic.edge.index << ")";
    }
    os << ": " << diagnostic.message;
    return os.str();
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
void
appendJsonString(std::ostringstream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

std::string
diagnosticsToJson(const std::vector<Diagnostic> &diagnostics)
{
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const Diagnostic &d : diagnostics) {
        os << (first ? "" : ",") << "\n  {";
        first = false;
        os << "\"severity\": \"" << severityName(d.severity) << "\", ";
        os << "\"pass\": ";
        appendJsonString(os, d.pass);
        if (!d.check.empty()) {
            os << ", \"check\": ";
            appendJsonString(os, d.check);
        }
        os << ", \"method\": ";
        appendJsonString(os, d.method);
        if (d.hasVersion)
            os << ", \"version\": " << d.version;
        if (d.hasPc)
            os << ", \"pc\": " << d.pc;
        if (d.hasEdge) {
            os << ", \"edge\": {\"src\": " << d.edge.src
               << ", \"index\": " << d.edge.index << "}";
        }
        os << ", \"message\": ";
        appendJsonString(os, d.message);
        os << "}";
    }
    os << "\n]\n";
    return os.str();
}

} // namespace pep::analysis
