#include "analysis/plan_check.hh"

#include <algorithm>
#include <functional>
#include <numeric>
#include <sstream>

#include "support/panic.hh"
#include "vm/compiled_method.hh"
#include "vm/decoded_method.hh"
#include "vm/inliner.hh"
#include "vm/machine.hh"

namespace pep::analysis {

namespace {

using profile::DagEdgeKind;
using profile::DagMode;
using profile::InstrumentationPlan;
using profile::KPathScheme;
using profile::Numbering;
using profile::PDag;
using profile::PlacementKind;

/** Caps repeated same-kind findings so a broken method stays readable. */
constexpr std::size_t kMaxPerCategory = 8;

class Checker
{
  public:
    Checker(const PlanCheckInput &input, DiagnosticList &diagnostics)
        : in_(input), diags_(diagnostics), dag_(input.pdag->dag)
    {
    }

    bool
    run()
    {
        const std::size_t before = diags_.errorCount();
        if (!checkStructure())
            return diags_.errorCount() == before;

        if (in_.numbering->overflow) {
            note("numbering overflowed (more than 2^50 paths); "
                 "instrumentation disabled");
            if (in_.plan->enabled) {
                error("plan is enabled despite numbering overflow");
            }
            checkFlattenedTables();
            return diags_.errorCount() == before;
        }

        checkNumberingIntervals();
        checkRegisterBounds();
        checkPlanConsistency();
        checkFlattenedTables();
        if (in_.placement == PlacementKind::SpanningTree)
            checkChordOnly();
        if (in_.scheme == profile::NumberingScheme::Smart &&
            in_.freqs != nullptr) {
            checkHotEdgesFree();
        }
        checkSemantics();
        return diags_.errorCount() == before;
    }

  private:
    // ---- reporting helpers -------------------------------------------

    void
    error(const std::string &message)
    {
        diags_.report(Severity::Error, "plan-check", in_.methodName,
                      message);
    }

    void
    errorAtEdge(cfg::EdgeRef edge, const std::string &message)
    {
        diags_.reportAtEdge(Severity::Error, "plan-check",
                            in_.methodName, edge, message);
    }

    void
    note(const std::string &message)
    {
        diags_.report(Severity::Note, "plan-check", in_.methodName,
                      message);
    }

    /** Report unless the category already hit its cap. */
    bool
    capped(std::size_t &counter)
    {
        if (counter == kMaxPerCategory)
            note("further findings of this kind suppressed");
        return counter++ >= kMaxPerCategory;
    }

    // ---- check 1: DAG well-formedness --------------------------------

    bool
    checkStructure()
    {
        const std::string problem = dag_.validate();
        if (!problem.empty()) {
            error("P-DAG is structurally invalid: " + problem);
            return false;
        }

        // Kahn's algorithm; leftover nodes mean a cycle.
        const std::size_t n = dag_.numBlocks();
        std::vector<std::size_t> indegree(n, 0);
        for (cfg::BlockId v = 0; v < n; ++v)
            for (const cfg::BlockId s : dag_.succs(v))
                ++indegree[s];
        std::vector<cfg::BlockId> ready;
        for (cfg::BlockId v = 0; v < n; ++v)
            if (indegree[v] == 0)
                ready.push_back(v);
        topo_.clear();
        while (!ready.empty()) {
            const cfg::BlockId v = ready.back();
            ready.pop_back();
            topo_.push_back(v);
            for (const cfg::BlockId s : dag_.succs(v))
                if (--indegree[s] == 0)
                    ready.push_back(s);
        }
        if (topo_.size() != n) {
            error("P-DAG contains a cycle: path numbering is unsound");
            return false;
        }
        return true;
    }

    // ---- check 2: interval tiling => unique + dense ids --------------

    void
    checkNumberingIntervals()
    {
        const Numbering &numbering = *in_.numbering;
        if (numbering.numPaths.size() != dag_.numBlocks()) {
            error("numbering numPaths has wrong arity");
            return;
        }
        if (numbering.numPaths[dag_.exit()] != 1) {
            error("numPaths(Exit) != 1");
        }
        if (numbering.totalPaths !=
            numbering.numPaths[dag_.entry()]) {
            error("totalPaths does not equal numPaths(Entry)");
        }

        std::size_t overlaps = 0, gaps = 0;
        for (cfg::BlockId v = 0; v < dag_.numBlocks(); ++v) {
            const std::uint64_t total = numbering.numPaths[v];
            if (dag_.succs(v).empty() || total == 0)
                continue;

            struct Interval
            {
                std::uint64_t start;
                std::uint64_t span;
                std::uint32_t index;
            };
            std::vector<Interval> intervals;
            for (std::uint32_t i = 0; i < dag_.succs(v).size(); ++i) {
                const std::uint64_t span =
                    numbering.numPaths[dag_.succs(v)[i]];
                if (span == 0)
                    continue; // dead successor contributes no paths
                intervals.push_back(
                    Interval{numbering.val[v][i], span, i});
            }
            std::sort(intervals.begin(), intervals.end(),
                      [](const Interval &a, const Interval &b) {
                          if (a.start != b.start)
                              return a.start < b.start;
                          return a.index < b.index;
                      });

            std::uint64_t cursor = 0;
            for (const Interval &iv : intervals) {
                if (iv.start < cursor) {
                    if (!capped(overlaps)) {
                        std::ostringstream os;
                        os << "duplicate path ids: interval ["
                           << iv.start << ", " << iv.start + iv.span
                           << ") of edge " << iv.index
                           << " overlaps its sibling at node " << v;
                        errorAtEdge(cfg::EdgeRef{v, iv.index},
                                    os.str());
                    }
                    cursor = std::max(cursor, iv.start + iv.span);
                    continue;
                }
                if (iv.start > cursor && !capped(gaps)) {
                    std::ostringstream os;
                    os << "path-id gap: ids [" << cursor << ", "
                       << iv.start << ") at node " << v
                       << " are never assigned (numbering not dense)";
                    errorAtEdge(cfg::EdgeRef{v, iv.index}, os.str());
                }
                cursor = iv.start + iv.span;
            }
            if (cursor != total && !capped(gaps)) {
                std::ostringstream os;
                os << "node " << v << ": outgoing intervals cover "
                   << cursor << " ids but numPaths is " << total;
                error(os.str());
            }
        }
    }

    // ---- check 3: u64 overflow safety --------------------------------

    void
    checkRegisterBounds()
    {
        const Numbering &numbering = *in_.numbering;
        if (numbering.totalPaths > profile::kMaxPaths) {
            error("totalPaths exceeds kMaxPaths without overflow flag");
            return;
        }
        if (numbering.totalPaths == 0)
            return;

        // Longest-sum DP over the (already verified acyclic) DAG: the
        // largest value the register can reach mid-path under Direct
        // placement. A sound numbering keeps every partial sum at most
        // totalPaths - 1, far below u64 wrap.
        const std::uint64_t unreachable =
            static_cast<std::uint64_t>(-1);
        std::vector<std::uint64_t> max_reg(dag_.numBlocks(),
                                           unreachable);
        max_reg[dag_.entry()] = 0;
        std::size_t reported = 0;
        for (const cfg::BlockId v : topo_) {
            if (max_reg[v] == unreachable)
                continue;
            for (std::uint32_t i = 0; i < dag_.succs(v).size(); ++i) {
                const std::uint64_t val = numbering.val[v][i];
                const std::uint64_t sum = max_reg[v] + val;
                if (sum < max_reg[v] ||
                    sum >= numbering.totalPaths) {
                    if (!capped(reported)) {
                        std::ostringstream os;
                        os << "path register can reach " << sum
                           << " >= totalPaths ("
                           << numbering.totalPaths
                           << "); u64 overflow safety not provable";
                        errorAtEdge(cfg::EdgeRef{v, i}, os.str());
                    }
                    continue;
                }
                const cfg::BlockId dst = dag_.succs(v)[i];
                if (max_reg[dst] == unreachable ||
                    sum > max_reg[dst]) {
                    max_reg[dst] = sum;
                }
            }
        }
    }

    // ---- check 4: plan actions match the numbering/placement ---------

    /** The increment the plan should carry for a DAG edge. */
    std::uint64_t
    expectedValue(cfg::EdgeRef dag_edge) const
    {
        if (in_.placement == PlacementKind::SpanningTree)
            return in_.spanning
                       ->increment[dag_edge.src][dag_edge.index];
        return in_.numbering->edgeValue(dag_edge);
    }

    void
    checkPlanConsistency()
    {
        const InstrumentationPlan &plan = *in_.plan;
        const PDag &pdag = *in_.pdag;
        const bytecode::MethodCfg &cfg = *in_.cfg;
        const cfg::Graph &graph = cfg.graph;

        if (!plan.enabled) {
            error("plan disabled despite valid numbering");
            return;
        }
        if (plan.totalPaths != in_.numbering->totalPaths)
            error("plan totalPaths disagrees with numbering");
        if (plan.mode != pdag.mode)
            error("plan mode disagrees with P-DAG mode");
        if (plan.edgeActions.size() != graph.numBlocks() ||
            plan.headerActions.size() != graph.numBlocks()) {
            error("plan action tables have wrong arity");
            return;
        }

        // Truncated back edges, for BackEdgeTruncate lookups.
        auto back_index = [&](cfg::EdgeRef e) -> std::size_t {
            for (std::size_t k = 0; k < cfg.backEdges.size(); ++k)
                if (cfg.backEdges[k] == e)
                    return k;
            return cfg.backEdges.size();
        };

        std::size_t mismatches = 0;
        std::size_t instrumented = 0;
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (plan.edgeActions[b].size() != graph.succs(b).size()) {
                error("plan edge actions have wrong arity");
                return;
            }
            for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
                const cfg::EdgeRef cfg_edge{b, i};
                const profile::EdgeAction &action =
                    plan.edgeActions[b][i];
                const cfg::EdgeRef dag_edge =
                    pdag.dagEdgeForCfgEdge[b][i];

                if (dag_edge.src == cfg::kInvalidBlock) {
                    // Truncated back edge (BackEdgeTruncate mode).
                    checkTruncatedBackEdge(cfg_edge, action,
                                           back_index(cfg_edge),
                                           mismatches);
                    continue;
                }
                if (action.endsPath && !capped(mismatches)) {
                    errorAtEdge(cfg_edge,
                                "path-ending action on a "
                                "non-truncated edge");
                }
                const std::uint64_t expected =
                    expectedValue(dag_edge);
                if (action.increment != expected &&
                    !capped(mismatches)) {
                    std::ostringstream os;
                    os << "edge increment " << action.increment
                       << " does not match expected " << expected;
                    errorAtEdge(cfg_edge, os.str());
                }
                if (action.increment != 0)
                    ++instrumented;
            }
        }
        if (instrumented != plan.numInstrumentedEdges) {
            std::ostringstream os;
            os << "numInstrumentedEdges is "
               << plan.numInstrumentedEdges << " but " << instrumented
               << " edges carry increments";
            error(os.str());
        }

        checkHeaderActions(mismatches);
    }

    void
    checkTruncatedBackEdge(cfg::EdgeRef cfg_edge,
                           const profile::EdgeAction &action,
                           std::size_t k, std::size_t &mismatches)
    {
        const PDag &pdag = *in_.pdag;
        if (pdag.mode != DagMode::BackEdgeTruncate) {
            errorAtEdge(cfg_edge,
                        "CFG edge missing from the P-DAG outside "
                        "BackEdgeTruncate mode");
            return;
        }
        if (k == in_.cfg->backEdges.size()) {
            errorAtEdge(cfg_edge,
                        "truncated edge is not a known back edge");
            return;
        }
        if (!action.endsPath) {
            errorAtEdge(cfg_edge,
                        "truncated back edge does not end the path");
            return;
        }
        const cfg::BlockId header =
            in_.cfg->graph.edgeDst(cfg_edge);
        const std::uint64_t want_end =
            expectedValue(pdag.backEdgeDummyExit[k]);
        const std::uint64_t want_restart =
            expectedValue(pdag.headerDummyEntry[header]);
        if ((action.endAdd != want_end ||
             action.restart != want_restart) &&
            !capped(mismatches)) {
            std::ostringstream os;
            os << "back-edge end/restart (" << action.endAdd << ", "
               << action.restart << ") should be (" << want_end
               << ", " << want_restart << ")";
            errorAtEdge(cfg_edge, os.str());
        }
    }

    void
    checkHeaderActions(std::size_t &mismatches)
    {
        const InstrumentationPlan &plan = *in_.plan;
        const PDag &pdag = *in_.pdag;
        const bytecode::MethodCfg &cfg = *in_.cfg;

        for (cfg::BlockId b = 0; b < cfg.graph.numBlocks(); ++b) {
            const profile::HeaderAction &action =
                plan.headerActions[b];
            const bool is_split_header =
                pdag.mode == DagMode::HeaderSplit &&
                cfg.isLoopHeader[b];
            if (action.endsPath != is_split_header) {
                if (capped(mismatches))
                    continue;
                std::ostringstream os;
                os << "block " << b
                   << (is_split_header
                           ? ": loop header lacks its end/restart pair"
                           : ": end/restart pair on a non-header");
                error(os.str());
                continue;
            }
            if (!is_split_header)
                continue;
            const std::uint64_t want_end =
                expectedValue(pdag.headerDummyExit[b]);
            const std::uint64_t want_restart =
                expectedValue(pdag.headerDummyEntry[b]);
            if ((action.endAdd != want_end ||
                 action.restart != want_restart) &&
                !capped(mismatches)) {
                std::ostringstream os;
                os << "header " << b << " end/restart ("
                   << action.endAdd << ", " << action.restart
                   << ") should be (" << want_end << ", "
                   << want_restart << ")";
                error(os.str());
            }
        }
    }

    // ---- check 8: flattened tables mirror the nested ones -------------

    /**
     * The interpreter executes the flattened mirror (flatEdgeActions
     * indexed by edgeBase[src] + index), never the nested tables the
     * builders and the checks above reason about. Prove the mirror is
     * faithful: edgeBase must hold exact prefix sums of the CFG's
     * successor counts, and every flattened action must equal its
     * nested counterpart memberwise.
     */
    void
    checkFlattenedTables()
    {
        const InstrumentationPlan &plan = *in_.plan;
        const cfg::Graph &graph = in_.cfg->graph;

        if (plan.edgeBase.size() != graph.numBlocks() + 1) {
            error("flattened edgeBase has wrong arity");
            return;
        }
        std::uint32_t expected_base = 0;
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (plan.edgeBase[b] != expected_base) {
                std::ostringstream os;
                os << "edgeBase[" << b << "] is " << plan.edgeBase[b]
                   << " but the prefix sum of successor counts is "
                   << expected_base;
                error(os.str());
                return;
            }
            expected_base +=
                static_cast<std::uint32_t>(graph.succs(b).size());
        }
        if (plan.edgeBase.back() != expected_base ||
            plan.flatEdgeActions.size() != expected_base) {
            std::ostringstream os;
            os << "flattened table covers "
               << plan.flatEdgeActions.size() << " edges (base "
               << plan.edgeBase.back() << ") but the CFG has "
               << expected_base;
            error(os.str());
            return;
        }

        if (plan.edgeActions.size() != graph.numBlocks()) {
            error("plan action tables have wrong arity");
            return;
        }
        std::size_t mismatches = 0;
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (plan.edgeActions[b].size() != graph.succs(b).size()) {
                error("plan edge actions have wrong arity");
                return;
            }
            for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
                const profile::EdgeAction &nested =
                    plan.edgeActions[b][i];
                const profile::EdgeAction &flat =
                    plan.flatAction(cfg::EdgeRef{b, i});
                if (flat.increment == nested.increment &&
                    flat.endsPath == nested.endsPath &&
                    flat.endAdd == nested.endAdd &&
                    flat.restart == nested.restart) {
                    continue;
                }
                if (!capped(mismatches)) {
                    errorAtEdge(cfg::EdgeRef{b, i},
                                "flattened action disagrees with the "
                                "nested table (stale rebuildFlat?)");
                }
            }
        }
    }

    // ---- check 5: chord-only placement --------------------------------

    void
    checkChordOnly()
    {
        const profile::SpanningPlacement *spanning = in_.spanning;
        if (spanning == nullptr) {
            error("SpanningTree placement without placement data");
            return;
        }
        const std::size_t n = dag_.numBlocks();
        if (spanning->inTree.size() != n ||
            spanning->increment.size() != n) {
            error("spanning placement has wrong arity");
            return;
        }

        // Tree edges must be increment-free ("chords only").
        std::size_t on_tree = 0;
        for (cfg::BlockId v = 0; v < n; ++v) {
            for (std::uint32_t i = 0; i < dag_.succs(v).size(); ++i) {
                if (spanning->inTree[v][i] &&
                    spanning->increment[v][i] != 0 &&
                    !capped(on_tree)) {
                    errorAtEdge(
                        cfg::EdgeRef{v, i},
                        "increment placed on a spanning-tree edge");
                }
            }
        }

        // The tree (plus the virtual Exit->Entry edge) must be acyclic
        // and must connect every node the DAG can route flow through.
        std::vector<std::size_t> parent(n);
        std::iota(parent.begin(), parent.end(), std::size_t{0});
        std::function<std::size_t(std::size_t)> find =
            [&](std::size_t x) {
                while (parent[x] != x) {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                return x;
            };
        auto unite = [&](std::size_t a, std::size_t b) {
            const std::size_t ra = find(a), rb = find(b);
            if (ra == rb)
                return false;
            parent[ra] = rb;
            return true;
        };
        unite(dag_.exit(), dag_.entry());
        for (cfg::BlockId v = 0; v < n; ++v) {
            for (std::uint32_t i = 0; i < dag_.succs(v).size(); ++i) {
                if (!spanning->inTree[v][i])
                    continue;
                if (!unite(v, dag_.succs(v)[i])) {
                    errorAtEdge(cfg::EdgeRef{v, i},
                                "spanning tree contains a cycle");
                }
            }
        }
        const cfg::DfsResult dfs = cfg::depthFirstSearch(dag_);
        for (cfg::BlockId v = 0; v < n; ++v) {
            if (dfs.reachable[v] &&
                find(v) != find(dag_.entry())) {
                std::ostringstream os;
                os << "spanning tree does not span node " << v;
                error(os.str());
            }
        }
    }

    // ---- check 6: smart numbering leaves hot edges free ---------------

    void
    checkHotEdgesFree()
    {
        const profile::DagEdgeFreqs &freqs = *in_.freqs;
        std::size_t hot = 0;
        for (cfg::BlockId v = 0; v < dag_.numBlocks(); ++v) {
            if (dag_.succs(v).empty() ||
                in_.numbering->numPaths[v] == 0) {
                continue;
            }
            std::uint32_t hottest = 0;
            for (std::uint32_t i = 1; i < dag_.succs(v).size(); ++i) {
                if (freqs[v][i] > freqs[v][hottest])
                    hottest = i;
            }
            if (in_.numbering->val[v][hottest] != 0 &&
                !capped(hot)) {
                std::ostringstream os;
                os << "smart numbering left value "
                   << in_.numbering->val[v][hottest]
                   << " on the hottest outgoing edge of node " << v;
                errorAtEdge(cfg::EdgeRef{v, hottest}, os.str());
            }
        }
    }

    // ---- check 7: bounded exhaustive semantic proof -------------------

    /** True path count, saturated just above the enumeration budget. */
    std::uint64_t
    truePathCount() const
    {
        const std::uint64_t cap = in_.simulateLimit + 1;
        std::vector<std::uint64_t> count(dag_.numBlocks(), 0);
        count[dag_.exit()] = 1;
        for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
            const cfg::BlockId v = *it;
            if (v == dag_.exit())
                continue;
            std::uint64_t sum = 0;
            for (const cfg::BlockId s : dag_.succs(v))
                sum = std::min(cap, sum + count[s]);
            count[v] = sum;
        }
        return count[dag_.entry()];
    }

    /** Replay the plan's register actions over one DAG path. */
    bool
    replayPlan(const std::vector<cfg::EdgeRef> &path,
               std::uint64_t &result)
    {
        const PDag &pdag = *in_.pdag;
        const InstrumentationPlan &plan = *in_.plan;
        std::uint64_t reg = 0;

        for (std::size_t i = 0; i < path.size(); ++i) {
            const cfg::EdgeRef e = path[i];
            const profile::DagEdgeMeta &meta = pdag.meta(e);
            switch (meta.kind) {
              case DagEdgeKind::DummyEntry: {
                if (i != 0) {
                    errorAtEdge(e, "DummyEntry edge mid-path");
                    return false;
                }
                const cfg::BlockId header =
                    pdag.cfgBlock[dag_.edgeDst(e)];
                if (pdag.mode == DagMode::HeaderSplit) {
                    reg = plan.headerActions[header].restart;
                } else {
                    // Restart lives on the back edges ending at this
                    // header; all of them share the value.
                    bool found = false;
                    for (const cfg::EdgeRef &back :
                         in_.cfg->backEdges) {
                        if (in_.cfg->graph.edgeDst(back) == header) {
                            reg = plan
                                      .edgeActions[back.src]
                                                  [back.index]
                                      .restart;
                            found = true;
                            break;
                        }
                    }
                    if (!found) {
                        errorAtEdge(
                            e, "DummyEntry header has no back edge");
                        return false;
                    }
                }
                break;
              }
              case DagEdgeKind::DummyExit: {
                if (i + 1 != path.size()) {
                    errorAtEdge(e, "DummyExit edge mid-path");
                    return false;
                }
                if (pdag.mode == DagMode::HeaderSplit) {
                    const cfg::BlockId header =
                        pdag.cfgBlock[e.src];
                    result =
                        reg + plan.headerActions[header].endAdd;
                } else {
                    std::size_t k = in_.cfg->backEdges.size();
                    for (std::size_t j = 0;
                         j < pdag.backEdgeDummyExit.size(); ++j) {
                        if (pdag.backEdgeDummyExit[j] == e) {
                            k = j;
                            break;
                        }
                    }
                    if (k == in_.cfg->backEdges.size()) {
                        errorAtEdge(e,
                                    "DummyExit edge matches no "
                                    "back edge");
                        return false;
                    }
                    const cfg::EdgeRef back = in_.cfg->backEdges[k];
                    result =
                        reg +
                        plan.edgeActions[back.src][back.index].endAdd;
                }
                return true;
              }
              case DagEdgeKind::Real: {
                const cfg::EdgeRef ce = meta.cfgEdge;
                const profile::EdgeAction &action =
                    plan.edgeActions[ce.src][ce.index];
                reg += action.increment;
                break;
              }
            }
        }
        result = reg; // ended at method exit via real edges
        return true;
    }

    void
    checkSemantics()
    {
        const Numbering &numbering = *in_.numbering;
        const std::uint64_t true_paths = truePathCount();
        if (true_paths > in_.simulateLimit) {
            std::ostringstream os;
            os << "semantic enumeration skipped (" << true_paths
               << "+ paths exceed the budget of "
               << in_.simulateLimit << ")";
            note(os.str());
            return;
        }
        if (true_paths != numbering.totalPaths) {
            std::ostringstream os;
            os << "DAG has " << true_paths
               << " Entry->Exit paths but numbering claims "
               << numbering.totalPaths;
            error(os.str());
        }

        // Iterative DFS enumerating every Entry->Exit edge sequence.
        std::vector<std::uint64_t> seen_ids;
        std::vector<cfg::EdgeRef> path;
        std::vector<std::uint32_t> cursor{0};
        std::vector<cfg::BlockId> nodes{dag_.entry()};
        std::size_t divergences = 0;

        while (!cursor.empty()) {
            const cfg::BlockId v = nodes.back();
            if (v == dag_.exit() || cursor.back() >=
                                        dag_.succs(v).size()) {
                if (v == dag_.exit()) {
                    std::uint64_t bl = 0;
                    for (const cfg::EdgeRef &e : path)
                        bl += numbering.edgeValue(e);
                    seen_ids.push_back(bl);
                    std::uint64_t replayed = 0;
                    if (replayPlan(path, replayed) &&
                        replayed != bl && !capped(divergences)) {
                        std::ostringstream os;
                        os << "plan register replay yields "
                           << replayed
                           << " but the path's Ball-Larus number is "
                           << bl;
                        error(os.str());
                    }
                }
                cursor.pop_back();
                nodes.pop_back();
                if (!path.empty())
                    path.pop_back();
                if (!cursor.empty())
                    ++cursor.back();
                continue;
            }
            const std::uint32_t i = cursor.back();
            path.push_back(cfg::EdgeRef{v, i});
            nodes.push_back(dag_.succs(v)[i]);
            cursor.push_back(0);
        }

        std::sort(seen_ids.begin(), seen_ids.end());
        std::size_t bad_ids = 0;
        for (std::size_t i = 0; i < seen_ids.size(); ++i) {
            if (seen_ids[i] == i)
                continue;
            if (capped(bad_ids))
                break;
            std::ostringstream os;
            if (i > 0 && seen_ids[i] == seen_ids[i - 1]) {
                os << "duplicate path id " << seen_ids[i];
            } else {
                os << "path ids are not dense: slot " << i
                   << " holds id " << seen_ids[i];
            }
            error(os.str());
        }
    }

    const PlanCheckInput &in_;
    DiagnosticList &diags_;
    const cfg::Graph &dag_;
    std::vector<cfg::BlockId> topo_;
};

} // namespace

bool
checkInstrumentationPlan(const PlanCheckInput &input,
                         DiagnosticList &diagnostics)
{
    PEP_ASSERT(input.cfg && input.pdag && input.numbering &&
               input.plan);
    Checker checker(input, diagnostics);
    return checker.run();
}

// ---- check 9: template-stream fidelity --------------------------------

bool
checkTemplateStream(const TemplateCheckInput &in,
                    DiagnosticList &diagnostics)
{
    PEP_ASSERT(in.code && in.cfg && in.plan && in.decoded);
    const std::size_t before = diagnostics.errorCount();
    const auto error = [&](const std::string &message) {
        diagnostics.report(Severity::Error, "plan-check",
                           in.methodName, message);
    };
    std::size_t mismatches = 0;
    const auto capped = [&]() {
        if (mismatches == kMaxPerCategory) {
            diagnostics.report(Severity::Note, "plan-check",
                               in.methodName,
                               "further findings of this kind "
                               "suppressed");
        }
        return mismatches++ >= kMaxPerCategory;
    };

    const vm::DecodedMethod &dm = *in.decoded;
    const InstrumentationPlan &plan = *in.plan;
    const bytecode::MethodCfg &cfg = *in.cfg;
    const bytecode::Method &code = *in.code;
    const vm::CompiledMethod &cm = *dm.source;

    // 9a. The structural flat-edge base burned into templates must be
    // the plan's edgeBase, memberwise — this is what lets onEdgeFast
    // index flatEdgeActions with `flatBase + successor` and skip the
    // base lookup.
    if (dm.edgeBase.size() != plan.edgeBase.size()) {
        error("template edgeBase has wrong arity");
        return diagnostics.errorCount() == before;
    }
    for (std::size_t b = 0; b < dm.edgeBase.size(); ++b) {
        if (dm.edgeBase[b] != plan.edgeBase[b]) {
            std::ostringstream os;
            os << "template edgeBase[" << b << "] is "
               << dm.edgeBase[b] << " but the plan's is "
               << plan.edgeBase[b];
            error(os.str());
            return diagnostics.errorCount() == before;
        }
    }
    if (plan.enabled &&
        plan.flatEdgeActions.size() != dm.edgeBase.back()) {
        std::ostringstream os;
        os << "templates address " << dm.edgeBase.back()
           << " flat edges but the plan holds "
           << plan.flatEdgeActions.size();
        error(os.str());
        return diagnostics.errorCount() == before;
    }

    // 9b. Every pc maps to a template that re-encodes exactly that
    // instruction: opcode (or, for fused/guard templates, a synthetic
    // top covering it — check 12 proves the composition), block, the
    // block's flat base and the version's branch layout.
    if (dm.pcToTemplate.size() != code.code.size()) {
        error("pcToTemplate has wrong arity");
        return diagnostics.errorCount() == before;
    }
    for (bytecode::Pc pc = 0; pc < code.code.size(); ++pc) {
        const std::uint32_t tpl = dm.pcToTemplate[pc];
        if (tpl >= dm.stream.size()) {
            std::ostringstream os;
            os << "pc " << pc << " maps to template " << tpl
               << " outside the stream";
            error(os.str());
            return diagnostics.errorCount() == before;
        }
        const vm::Template &t = dm.stream[tpl];
        const cfg::BlockId block = cfg.blockOfPc[pc];
        bool op_ok;
        if (vm::isFusedTop(t.op)) {
            // Constituent coverage: pc inside the fused span.
            op_ok = t.pc <= pc && pc < t.pc + t.fuseLen;
        } else if (vm::isGuardTop(t.op)) {
            op_ok = t.pc == pc &&
                    vm::branchOpcodeOfTop(t.op) == code.code[pc].op;
        } else {
            op_ok = t.pc == pc &&
                    t.op == static_cast<std::uint8_t>(code.code[pc].op);
        }
        if ((!op_ok || t.block != block ||
             t.flatBase != dm.edgeBase[block] ||
             t.layout != cm.layoutFor(block)) &&
            !capped()) {
            std::ostringstream os;
            os << "template for pc " << pc
               << " disagrees with the instruction it pre-decodes "
                  "(stale translation?)";
            error(os.str());
        }
    }

    // 9c. Control transfers must resolve to their targets' templates,
    // and injected fall-through boundaries must address their block's
    // single CFG edge.
    const auto check_target = [&](const vm::Template &t,
                                  bytecode::Pc target_pc,
                                  std::uint32_t target_tpl,
                                  cfg::BlockId target_block,
                                  const char *what) {
        if (target_pc >= code.code.size()) {
            if (!capped())
                error(std::string(what) + " target pc out of range");
            return;
        }
        if ((target_tpl != dm.pcToTemplate[target_pc] ||
             target_block != cfg.blockOfPc[target_pc]) &&
            !capped()) {
            std::ostringstream os;
            os << what << " target of the template at pc " << t.pc
               << " does not resolve to pc " << target_pc
               << "'s template";
            error(os.str());
        }
    };
    for (const vm::Template &t : dm.stream) {
        const auto op = static_cast<bytecode::Opcode>(t.op);
        if (static_cast<std::size_t>(t.block) + 1 >=
                dm.edgeBase.size() ||
            t.flatBase != dm.edgeBase[t.block]) {
            if (!capped()) {
                std::ostringstream os;
                os << "template at pc " << t.pc
                   << " carries flat base " << t.flatBase
                   << " for block " << t.block;
                error(os.str());
            }
            continue;
        }
        if (t.op == vm::kTopFallEdge || t.op == vm::kTopTraceFall) {
            check_target(t, t.fallPc, t.fall, t.fallBlock,
                         "fall-through");
            if (cfg.graph.succs(t.block).size() != 1 && !capped()) {
                std::ostringstream os;
                os << "fall-edge template at pc " << t.pc
                   << " fires edge " << t.flatBase
                   << " but block " << t.block << " has "
                   << cfg.graph.succs(t.block).size() << " successors";
                error(os.str());
            }
        } else if (vm::isGuardTop(t.op) || vm::isFusedBranchTop(t.op)) {
            check_target(t, t.takenPc, t.taken, t.takenBlock, "taken");
            check_target(t, t.fallPc, t.fall, t.fallBlock,
                         "fall-through");
        } else if (op == bytecode::Opcode::Goto) {
            check_target(t, t.takenPc, t.taken, t.takenBlock, "taken");
        } else if (op == bytecode::Opcode::Tableswitch) {
            if (t.swFirst + t.swCount + 1 > dm.switchCases.size()) {
                if (!capped())
                    error("switch case slice out of range");
                continue;
            }
            for (std::uint32_t i = 0; i <= t.swCount; ++i) {
                const vm::SwitchCase &sc =
                    dm.switchCases[t.swFirst + i];
                check_target(t, sc.pc, sc.tpl, sc.block, "switch");
            }
        } else if (bytecode::isCondBranch(op)) {
            check_target(t, t.takenPc, t.taken, t.takenBlock, "taken");
            check_target(t, t.fallPc, t.fall, t.fallBlock,
                         "fall-through");
        }
    }

    // 9d. Segment folding conserves the version's scaled costs: the
    // stream charges exactly the cycles and instruction count the
    // switch engine would charge one instruction at a time.
    std::uint64_t want_cost = 0;
    for (const bytecode::Instr &instr : code.code)
        want_cost += cm.scaledCost[static_cast<std::size_t>(instr.op)];
    std::uint64_t got_cost = 0;
    std::uint64_t got_ninstr = 0;
    for (const vm::Template &t : dm.stream) {
        got_cost += t.cost;
        got_ninstr += t.ninstr;
    }
    if (got_cost != want_cost || got_ninstr != code.code.size()) {
        std::ostringstream os;
        os << "segment charges sum to " << got_cost << " cycles / "
           << got_ninstr << " instructions but the code costs "
           << want_cost << " / " << code.code.size();
        error(os.str());
    }

    return diagnostics.errorCount() == before;
}

bool
checkKPathScheme(const KPathCheckInput &in, DiagnosticList &diagnostics)
{
    PEP_ASSERT(in.plan && in.kpath);
    const std::size_t before = diagnostics.errorCount();
    const auto error = [&](const std::string &message) {
        diagnostics.report(Severity::Error, "plan-check",
                           in.methodName, message);
    };

    const InstrumentationPlan &plan = *in.plan;
    const KPathScheme &kpath = *in.kpath;
    const std::uint64_t want_base = plan.enabled ? plan.totalPaths : 0;
    const std::uint32_t k_requested =
        in.kRequested == 0 ? 1 : in.kRequested;

    // 10a. The scheme is layered over exactly this plan: base ==
    // totalPaths (0 for a disabled plan), and the requested k is the
    // profiler's.
    if (kpath.base() != want_base) {
        std::ostringstream os;
        os << "k-path scheme base " << kpath.base()
           << " disagrees with the plan's totalPaths " << want_base;
        error(os.str());
        return false;
    }
    if (kpath.kRequested() != k_requested) {
        std::ostringstream os;
        os << "k-path scheme was built for k=" << kpath.kRequested()
           << " but the profiler requested k=" << k_requested;
        error(os.str());
        return false;
    }

    // 10b. Offsets are exact prefix sums of base^l with no wrap, and
    // the whole id space sits under the cap.
    const std::vector<std::uint64_t> &offsets = kpath.offsets();
    if (offsets.size() != kpath.kEffective() + 1 || offsets[0] != 0) {
        error("k-path offsets table has the wrong shape");
        return false;
    }
    std::uint64_t power = 1;
    for (std::uint32_t l = 1; l < offsets.size(); ++l) {
        power *= kpath.base();
        if (offsets[l] != offsets[l - 1] + power) {
            std::ostringstream os;
            os << "k-path offset for length " << l << " is "
               << offsets[l] << ", want " << offsets[l - 1] + power;
            error(os.str());
            return false;
        }
    }
    if (kpath.maxId() > profile::kKPathIdCap) {
        std::ostringstream os;
        os << "k-path id space " << kpath.maxId()
           << " exceeds the id cap " << profile::kKPathIdCap;
        error(os.str());
    }

    // 10c. kEffective is in range and *maximal*: shrinking the window
    // below the requested k is legal only when one more length would
    // blow the id cap. A scheme quietly built for a smaller k would
    // pass every arithmetic check yet profile shorter windows than
    // configured — this is the check that catches it.
    if (kpath.kEffective() < 1 || kpath.kEffective() > k_requested) {
        std::ostringstream os;
        os << "kEffective " << kpath.kEffective()
           << " outside [1, " << k_requested << "]";
        error(os.str());
        return false;
    }
    if (kpath.kEffective() !=
        profile::kEffectiveFor(kpath.base(), k_requested)) {
        std::ostringstream os;
        os << "kEffective " << kpath.kEffective()
           << " is not the maximal window length for base "
           << kpath.base() << " and k=" << k_requested << " (want "
           << profile::kEffectiveFor(kpath.base(), k_requested) << ")";
        error(os.str());
    }

    // 10d. k=1 degeneracy: length-1 ids coincide with the raw
    // Ball-Larus numbers, and encode/decode round-trip at the id-space
    // corners (all-zero digits — the Smart-numbering all-hot window —
    // and all base-1 digits).
    if (plan.enabled && kpath.base() > 0) {
        const std::uint64_t probe = kpath.base() - 1;
        if (kpath.encode(&probe, 1) != probe) {
            error("length-1 k-path ids do not equal raw Ball-Larus "
                  "numbers — the k=1 degeneracy guarantee is broken");
        }
        for (std::uint32_t l = 1; l <= kpath.kEffective(); ++l) {
            const std::vector<std::uint64_t> zeros(l, 0);
            const std::vector<std::uint64_t> tops(l, probe);
            for (const auto &digits : {zeros, tops}) {
                const std::uint64_t id = kpath.encode(digits);
                if (id >= kpath.maxId() || kpath.decode(id) != digits) {
                    std::ostringstream os;
                    os << "k-path encode/decode round-trip fails at a "
                          "length-"
                       << l << " id-space corner";
                    error(os.str());
                    break;
                }
            }
        }
    }

    return diagnostics.errorCount() == before;
}

// ---- check 11: cloned-body origin audit -------------------------------

bool
checkClonedBody(const CloneCheckInput &in, DiagnosticList &diagnostics)
{
    PEP_ASSERT(in.originalCfg && in.body);
    const std::size_t before = diagnostics.errorCount();
    const auto error = [&](const std::string &message) {
        diagnostics.report(Severity::Error, "plan-check",
                           in.methodName, message);
    };

    const bytecode::MethodCfg &original = *in.originalCfg;
    const bytecode::MethodCfg &cloned = in.body->info.cfg;
    const cfg::Graph &graph = cloned.graph;

    if (in.body->blockOrigin.size() != graph.numBlocks()) {
        error("cloned body's blockOrigin table does not cover its CFG");
        return false;
    }

    // 11a. OSR contract: the original code region is unmoved, so the
    // rootPcMap must be the identity over it.
    const std::size_t original_size = original.blockOfPc.size();
    if (in.body->rootPcMap.size() != original_size) {
        std::ostringstream os;
        os << "cloned body's rootPcMap covers "
           << in.body->rootPcMap.size() << " pcs, the original method "
           << original_size;
        error(os.str());
    } else {
        for (bytecode::Pc pc = 0; pc < original_size; ++pc) {
            if (in.body->rootPcMap[pc] != pc) {
                std::ostringstream os;
                os << "cloned body's rootPcMap[" << pc << "] is "
                   << in.body->rootPcMap[pc]
                   << "; clones keep original code in place, so the "
                      "map must be the identity";
                error(os.str());
                break;
            }
        }
    }

    // 11b. Origin records: every Cond/Switch block needs one (that is
    // where profile folding and layout sharing happen); only
    // synthesized glue Gotos may go without. Valid origins must name a
    // code block of this method with the same terminator kind and —
    // for branches — the same successor arity, or per-index counter
    // sharing would mix edges of different branches.
    std::size_t findings = 0;
    for (cfg::BlockId b = 2; b < graph.numBlocks(); ++b) {
        if (!cloned.isCodeBlock(b))
            continue;
        if (findings >= kMaxPerCategory)
            break;
        const bytecode::TerminatorKind kind = cloned.terminator[b];
        const vm::BlockOrigin &origin = in.body->blockOrigin[b];
        if (!origin.valid()) {
            if (kind == bytecode::TerminatorKind::Cond ||
                kind == bytecode::TerminatorKind::Switch) {
                std::ostringstream os;
                os << "cloned block " << b
                   << " branches but has no BlockOrigin — its "
                      "taken/not-taken counters have nowhere to fold";
                error(os.str());
                ++findings;
            }
            continue;
        }
        if (origin.method != in.rootMethod) {
            std::ostringstream os;
            os << "cloned block " << b << " claims origin method "
               << origin.method << " but clones never splice other "
               << "methods (root is " << in.rootMethod << ")";
            error(os.str());
            ++findings;
            continue;
        }
        if (origin.block >= original.graph.numBlocks() ||
            !original.isCodeBlock(origin.block)) {
            std::ostringstream os;
            os << "cloned block " << b
               << " names nonexistent origin block " << origin.block;
            error(os.str());
            ++findings;
            continue;
        }
        if (kind == bytecode::TerminatorKind::Cond ||
            kind == bytecode::TerminatorKind::Switch ||
            kind == bytecode::TerminatorKind::Goto ||
            kind == bytecode::TerminatorKind::Return) {
            if (original.terminator[origin.block] != kind) {
                std::ostringstream os;
                os << "cloned block " << b << " (terminator kind "
                   << static_cast<int>(kind)
                   << ") folds onto original block " << origin.block
                   << " of kind "
                   << static_cast<int>(
                          original.terminator[origin.block]);
                error(os.str());
                ++findings;
                continue;
            }
        }
        if ((kind == bytecode::TerminatorKind::Cond ||
             kind == bytecode::TerminatorKind::Switch) &&
            graph.succs(b).size() !=
                original.graph.succs(origin.block).size()) {
            std::ostringstream os;
            os << "cloned block " << b << " has "
               << graph.succs(b).size()
               << " successors but its origin block " << origin.block
               << " has " << original.graph.succs(origin.block).size()
               << " — per-index counter sharing is ill-defined";
            error(os.str());
            ++findings;
        }
    }

    return diagnostics.errorCount() == before;
}

// ---- check 12: fused-stream composition -------------------------------

bool
checkFusedStream(const FusedCheckInput &in, DiagnosticList &diagnostics)
{
    PEP_ASSERT(in.decoded && in.decoded->code && in.decoded->info &&
               in.decoded->source);
    const std::size_t before = diagnostics.errorCount();
    const auto error = [&](const std::string &message) {
        diagnostics.report(Severity::Error, "plan-check",
                           in.methodName, message);
    };
    std::size_t mismatches = 0;
    const auto capped = [&]() {
        if (mismatches == kMaxPerCategory) {
            diagnostics.report(Severity::Note, "plan-check",
                               in.methodName,
                               "further findings of this kind "
                               "suppressed");
        }
        return mismatches++ >= kMaxPerCategory;
    };

    const vm::DecodedMethod &dm = *in.decoded;
    const bytecode::Method &code = *dm.code;
    const vm::MethodInfo &info = *dm.info;
    const bytecode::MethodCfg &cfg = info.cfg;
    const vm::CompiledMethod &cm = *dm.source;
    const std::size_t n = code.code.size();

    if (dm.pcToTemplate.size() != n) {
        error("pcToTemplate has wrong arity");
        return diagnostics.errorCount() == before;
    }
    for (bytecode::Pc pc = 0; pc < n; ++pc) {
        if (dm.pcToTemplate[pc] >= dm.stream.size()) {
            error("pcToTemplate points outside the stream");
            return diagnostics.errorCount() == before;
        }
    }

    // 12a. Mode gating: synthetic tops may only appear under the
    // fusion selection that produces them, and vice versa for the
    // trace tables.
    for (const vm::Template &t : dm.stream) {
        if (vm::isFusedTop(t.op) && !dm.fuse.pairs) {
            error("fused superinstruction present without fuse.pairs");
            return diagnostics.errorCount() == before;
        }
        if ((vm::isGuardTop(t.op) || t.op == vm::kTopTraceFall) &&
            !dm.fuse.traces) {
            error("trace template present without fuse.traces");
            return diagnostics.errorCount() == before;
        }
    }
    if (!dm.fuse.traces && !dm.traces.empty()) {
        error("trace table present without fuse.traces");
        return diagnostics.errorCount() == before;
    }

    // 12b. Trace selection determinism: the recorded chains must be
    // exactly what selection derives from (code, layout, fuse).
    const std::vector<std::vector<cfg::BlockId>> want_traces =
        vm::selectTraces(code, info, cm, dm.fuse);
    if (dm.traces != want_traces) {
        std::ostringstream os;
        os << "trace table holds " << dm.traces.size()
           << " chains but selection derives " << want_traces.size()
           << " (stale or tampered trace selection)";
        error(os.str());
        return diagnostics.errorCount() == before;
    }
    if (dm.blockTrace.size() !=
        (dm.fuse.traces ? cfg.graph.numBlocks() : dm.blockTrace.size())) {
        error("blockTrace has wrong arity");
        return diagnostics.errorCount() == before;
    }
    for (std::size_t ti = 0; ti < dm.traces.size(); ++ti) {
        for (cfg::BlockId b : dm.traces[ti]) {
            if (b >= dm.blockTrace.size() ||
                dm.blockTrace[b] != static_cast<std::int32_t>(ti)) {
                error("blockTrace disagrees with the trace table");
                return diagnostics.errorCount() == before;
            }
        }
    }

    // Segment leaders, re-derived: block leaders plus post-Invoke
    // resume points (the fusion barrier).
    std::vector<bool> seg_leader(n, false);
    if (n > 0)
        seg_leader[0] = true;
    for (bytecode::Pc pc = 0; pc < n; ++pc) {
        if (info.leaderPc[pc])
            seg_leader[pc] = true;
        if (code.code[pc].op == bytecode::Opcode::Invoke && pc + 1 < n)
            seg_leader[pc + 1] = true;
    }

    // 12c. Fused composition: every fused template is the fusion-menu
    // match at its pc, covers exactly its constituent pcs, stays inside
    // one segment, and burns in the constituents' operands; every
    // guard is a conditional branch at an interior trace exit.
    for (std::size_t i = 0; i < dm.stream.size(); ++i) {
        const vm::Template &t = dm.stream[i];
        if (vm::isFusedTop(t.op)) {
            const vm::FusionMatch m = vm::matchFusion(code, t.pc);
            if ((m.top != t.op || m.len != t.fuseLen ||
                 m.sub != t.sub) &&
                !capped()) {
                std::ostringstream os;
                os << "fused template at pc " << t.pc << " (top "
                   << static_cast<unsigned>(t.op)
                   << ") is not the fusion-menu match for its "
                      "constituents";
                error(os.str());
                continue;
            }
            bool span_ok = t.pc + t.fuseLen <= n;
            for (std::uint8_t j = 0; span_ok && j < t.fuseLen; ++j) {
                if (dm.pcToTemplate[t.pc + j] != i ||
                    cfg.blockOfPc[t.pc + j] != t.block)
                    span_ok = false;
                if (j > 0 && seg_leader[t.pc + j])
                    span_ok = false;
            }
            if (!span_ok && !capped()) {
                std::ostringstream os;
                os << "fused template at pc " << t.pc
                   << " crosses a segment boundary or its "
                      "constituent pcs do not map back to it";
                error(os.str());
                continue;
            }
            // Operand burn-in (see Template field notes).
            bool ops_ok = t.a == code.code[t.pc].a;
            if (t.fuseLen == 3 || t.op == vm::kTopConstStore ||
                t.op == vm::kTopLoadStore || t.op == vm::kTopLoadLoad)
                ops_ok = ops_ok && t.b == code.code[t.pc + 1].a;
            if (vm::isFusedBranchTop(t.op)) {
                const bytecode::Pc last = t.pc + t.fuseLen - 1;
                ops_ok = ops_ok &&
                         t.takenPc == static_cast<bytecode::Pc>(
                                          code.code[last].a) &&
                         t.fallPc == last + 1;
            }
            if (!ops_ok && !capped()) {
                std::ostringstream os;
                os << "fused template at pc " << t.pc
                   << " burned in operands that disagree with its "
                      "constituent instructions";
                error(os.str());
            }
        } else if (vm::isGuardTop(t.op)) {
            const bytecode::Opcode want_op = vm::branchOpcodeOfTop(t.op);
            if ((t.fuseLen != 1 || t.pc >= n ||
                 code.code[t.pc].op != want_op ||
                 t.sub != static_cast<std::uint8_t>(want_op)) &&
                !capped()) {
                std::ostringstream os;
                os << "guard template at pc " << t.pc
                   << " does not encode the branch instruction at "
                      "that pc";
                error(os.str());
                continue;
            }
            // Guards exist only at interior exits of a trace whose
            // layout predicts fall-through.
            const std::int32_t ti = t.block < dm.blockTrace.size()
                                        ? dm.blockTrace[t.block]
                                        : -1;
            const bool interior =
                ti >= 0 &&
                dm.traces[static_cast<std::size_t>(ti)].back() !=
                    t.block &&
                cfg.lastPc[t.block] == t.pc;
            if ((!interior || cm.layoutFor(t.block) == 1) && !capped()) {
                std::ostringstream os;
                os << "guard template at pc " << t.pc
                   << " is not an interior predicted-fall-through "
                      "trace exit";
                error(os.str());
            }
        }
    }

    // 12d. Trace charge batching: the head leader charges the chain's
    // whole switch-engine cost, interior leaders charge zero, interior
    // branches are guards refunding exactly the unexecuted suffix, and
    // interior fall-through ends are TraceFall templates.
    for (std::size_t ti = 0; ti < dm.traces.size(); ++ti) {
        const std::vector<cfg::BlockId> &chain = dm.traces[ti];
        std::vector<std::uint64_t> member_cost(chain.size());
        std::vector<std::uint64_t> member_ninstr(chain.size());
        std::uint64_t total_cost = 0;
        std::uint64_t total_ninstr = 0;
        for (std::size_t i = 0; i < chain.size(); ++i) {
            const cfg::BlockId b = chain[i];
            for (bytecode::Pc pc = cfg.firstPc[b]; pc <= cfg.lastPc[b];
                 ++pc) {
                member_cost[i] += cm.scaledCost[static_cast<std::size_t>(
                    code.code[pc].op)];
            }
            member_ninstr[i] = cfg.lastPc[b] - cfg.firstPc[b] + 1;
            total_cost += member_cost[i];
            total_ninstr += member_ninstr[i];
        }
        for (std::size_t i = 0; i < chain.size(); ++i) {
            const cfg::BlockId b = chain[i];
            const vm::Template &lt =
                dm.stream[dm.pcToTemplate[cfg.firstPc[b]]];
            const std::uint64_t want_cost = i == 0 ? total_cost : 0;
            const std::uint64_t want_ninstr = i == 0 ? total_ninstr : 0;
            if ((lt.cost != want_cost || lt.ninstr != want_ninstr) &&
                !capped()) {
                std::ostringstream os;
                os << "trace " << ti << " member block " << b
                   << " charges " << lt.cost << " cycles / "
                   << lt.ninstr << " instructions, want " << want_cost
                   << " / " << want_ninstr
                   << " (trace batching broken)";
                error(os.str());
            }
        }
        std::uint64_t suffix_cost = total_cost;
        std::uint64_t suffix_ninstr = total_ninstr;
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            suffix_cost -= member_cost[i];
            suffix_ninstr -= member_ninstr[i];
            const cfg::BlockId b = chain[i];
            const bytecode::Pc end_pc = cfg.lastPc[b];
            const vm::Template &et = dm.stream[dm.pcToTemplate[end_pc]];
            if (cfg.terminator[b] == bytecode::TerminatorKind::Cond) {
                if (!vm::isGuardTop(et.op)) {
                    if (!capped()) {
                        std::ostringstream os;
                        os << "interior branch of trace " << ti
                           << " at pc " << end_pc
                           << " is not a guard template";
                        error(os.str());
                    }
                    continue;
                }
                if ((et.swFirst != suffix_cost ||
                     et.swCount != suffix_ninstr) &&
                    !capped()) {
                    std::ostringstream os;
                    os << "guard at pc " << end_pc << " refunds "
                       << et.swFirst << " cycles / " << et.swCount
                       << " instructions, want " << suffix_cost
                       << " / " << suffix_ninstr;
                    error(os.str());
                }
            } else {
                // The TraceFall boundary directly follows the
                // block-end instruction's template.
                const std::uint32_t end_tpl = dm.pcToTemplate[end_pc];
                const bool tf_ok =
                    end_tpl + 1 < dm.stream.size() &&
                    dm.stream[end_tpl + 1].op == vm::kTopTraceFall &&
                    dm.stream[end_tpl + 1].block == b;
                if (!tf_ok && !capped()) {
                    std::ostringstream os;
                    os << "interior fall-through end of trace " << ti
                       << " at pc " << end_pc
                       << " is not a TraceFall template";
                    error(os.str());
                }
            }
        }
    }

    return diagnostics.errorCount() == before;
}

} // namespace pep::analysis
