#ifndef PEP_ANALYSIS_DIAGNOSTICS_HH
#define PEP_ANALYSIS_DIAGNOSTICS_HH

/**
 * @file
 * Structured diagnostics for the static-analysis passes and pep-lint.
 * A diagnostic names the pass that produced it, the method it applies
 * to, an optional pc and/or CFG edge location, a severity, and a
 * message. DiagnosticList accumulates them across passes; formatting
 * helpers render one-line text ("error: [pass] method 'm' pc 3: ...")
 * and a machine-readable JSON array for tooling.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/instr.hh"
#include "cfg/graph.hh"

namespace pep::analysis {

/** How bad a diagnostic is. */
enum class Severity : std::uint8_t
{
    Error,   ///< an invariant is violated; the artifact is unusable
    Warning, ///< suspicious but well-formed (dead store, dead code)
    Note,    ///< informational (skipped checks, statistics)
};

/** Text name of a severity ("error" / "warning" / "note"). */
const char *severityName(Severity severity);

/** One finding of one pass. */
struct Diagnostic
{
    Severity severity = Severity::Error;

    /** Pass that produced the finding (e.g. "verify", "plan-check"). */
    std::string pass;

    /** Check within the pass (e.g. "flow-conservation"); empty when
     *  the pass has a single check. Part of the sort key. */
    std::string check;

    /** Method the finding applies to; empty for program-level. */
    std::string method;

    /** Compiled version the finding applies to, when it has one
     *  (the verify passes inspect per-version state). */
    bool hasVersion = false;
    std::uint32_t version = 0;

    /** Bytecode location, when the finding has one. */
    bool hasPc = false;
    bytecode::Pc pc = 0;

    /** CFG edge location, when the finding has one. */
    bool hasEdge = false;
    cfg::EdgeRef edge;

    std::string message;
};

/**
 * Deterministic ordering: (method, version, pass, check, pc, edge,
 * severity, message). Tools sort with this before emitting so CI diffs
 * and corpus replays are stable regardless of pass scheduling.
 */
bool diagnosticLess(const Diagnostic &a, const Diagnostic &b);

/** Stable-sort a diagnostic vector with diagnosticLess. */
void sortDiagnostics(std::vector<Diagnostic> &diagnostics);

/** Accumulates diagnostics across passes, preserving insertion order. */
class DiagnosticList
{
  public:
    void add(Diagnostic diagnostic);

    /** Convenience constructors; each returns the added diagnostic. */
    Diagnostic &report(Severity severity, std::string pass,
                       std::string method, std::string message);
    Diagnostic &reportAtPc(Severity severity, std::string pass,
                           std::string method, bytecode::Pc pc,
                           std::string message);
    Diagnostic &reportAtEdge(Severity severity, std::string pass,
                             std::string method, cfg::EdgeRef edge,
                             std::string message);

    const std::vector<Diagnostic> &all() const { return diagnostics_; }

    std::size_t count(Severity severity) const;
    std::size_t errorCount() const { return count(Severity::Error); }
    std::size_t warningCount() const { return count(Severity::Warning); }
    bool hasErrors() const { return errorCount() > 0; }
    bool empty() const { return diagnostics_.empty(); }

    /** Append another list's diagnostics. */
    void merge(const DiagnosticList &other);

  private:
    std::vector<Diagnostic> diagnostics_;
};

/** One-line human-readable rendering. */
std::string formatDiagnostic(const Diagnostic &diagnostic);

/** JSON array rendering (stable key order, no external deps). */
std::string diagnosticsToJson(const std::vector<Diagnostic> &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_DIAGNOSTICS_HH
