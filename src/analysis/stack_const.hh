#ifndef PEP_ANALYSIS_STACK_CONST_HH
#define PEP_ANALYSIS_STACK_CONST_HH

/**
 * @file
 * Abstract stack-depth / constant-propagation pass. A forward dataflow
 * whose domain is an abstract machine state: the operand-stack depth,
 * one constant-or-top abstract value per stack slot, and one per local.
 * Join meets values pointwise (equal constants survive, anything else
 * becomes top) and flags depth disagreements.
 *
 * Where the verifier reports the *first* stack-discipline violation and
 * stops, this pass reaches a fixpoint and then reports every finding
 * with a pc-level location:
 *
 *  - error:   operand-stack underflow, inconsistent depth at a merge
 *  - warning: Idiv/Irem whose divisor is constant zero (defined to
 *             yield 0, almost certainly unintended)
 *  - warning: conditional branch whose outcome is a compile-time
 *             constant (always / never taken)
 *  - note:    tableswitch whose selector is constant
 *
 * Runs on verified methods (the CFG builder requires verified code),
 * so the errors fire only when the pass is pointed at a state the
 * verifier was bypassed for — e.g. fuzzing the lint itself.
 */

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostics.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/method.hh"

namespace pep::analysis {

/** Constant-or-unknown abstract value. */
struct AbsValue
{
    bool isConst = false;
    std::int32_t value = 0;

    bool
    operator==(const AbsValue &other) const
    {
        return isConst == other.isConst &&
               (!isConst || value == other.value);
    }

    static AbsValue
    constant(std::int32_t v)
    {
        return AbsValue{true, v};
    }

    static AbsValue top() { return AbsValue{}; }
};

/** Abstract machine state at a program point. */
struct AbsState
{
    /** False = bottom: no execution reaches this point (yet). */
    bool reachable = false;

    /** True once a join saw mismatched stack depths. */
    bool depthConflict = false;

    /** Abstract operand stack, bottom first; size() is the depth. */
    std::vector<AbsValue> stack;

    /** Abstract local slots. */
    std::vector<AbsValue> locals;

    bool operator==(const AbsState &other) const = default;
};

/** Fixpoint states per block (input = block entry, forward direction). */
struct StackConstResult
{
    std::vector<AbsState> atEntry;
    std::vector<AbsState> atExit;
};

/** Solve the abstract interpretation for a method. The program is
 *  needed to resolve Invoke arities. */
StackConstResult computeStackConst(const bytecode::Program &program,
                                   const bytecode::Method &method,
                                   const bytecode::MethodCfg &method_cfg);

/** Emit the diagnostics listed in the file comment (pass "stack-const"). */
void reportStackConstFindings(const bytecode::Program &program,
                              const bytecode::Method &method,
                              const bytecode::MethodCfg &method_cfg,
                              const StackConstResult &result,
                              DiagnosticList &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_STACK_CONST_HH
