#include "analysis/stack_const.hh"

#include <sstream>

namespace pep::analysis {

namespace {

using bytecode::Instr;
using bytecode::Method;
using bytecode::MethodCfg;
using bytecode::Opcode;
using bytecode::Program;

/** Wrap an int64 intermediate to the VM's int32 semantics. */
std::int32_t
wrap32(std::int64_t v)
{
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(v)));
}

/** Fold a binary arithmetic op (lhs pushed first). */
AbsValue
foldBinary(Opcode op, AbsValue lhs, AbsValue rhs)
{
    if (!lhs.isConst || !rhs.isConst)
        return AbsValue::top();
    const std::int64_t a = lhs.value;
    const std::int64_t b = rhs.value;
    switch (op) {
      case Opcode::Iadd:
        return AbsValue::constant(wrap32(a + b));
      case Opcode::Isub:
        return AbsValue::constant(wrap32(a - b));
      case Opcode::Imul:
        return AbsValue::constant(wrap32(a * b));
      case Opcode::Idiv:
        return AbsValue::constant(b == 0 ? 0 : wrap32(a / b));
      case Opcode::Irem:
        return AbsValue::constant(b == 0 ? 0 : wrap32(a % b));
      case Opcode::Iand:
        return AbsValue::constant(wrap32(a & b));
      case Opcode::Ior:
        return AbsValue::constant(wrap32(a | b));
      case Opcode::Ixor:
        return AbsValue::constant(wrap32(a ^ b));
      case Opcode::Ishl:
        return AbsValue::constant(wrap32(a << (b & 31)));
      case Opcode::Ishr:
        return AbsValue::constant(
            static_cast<std::int32_t>(lhs.value >> (b & 31)));
      default:
        return AbsValue::top();
    }
}

/** Evaluate a two-way branch condition; false if not constant. */
bool
foldBranch(Opcode op, const AbsValue *lhs, const AbsValue *rhs,
           bool &taken)
{
    if (bytecode::isCmpBranch(op)) {
        if (!lhs || !rhs || !lhs->isConst || !rhs->isConst)
            return false;
        const std::int32_t a = lhs->value;
        const std::int32_t b = rhs->value;
        switch (op) {
          case Opcode::IfIcmpeq: taken = a == b; return true;
          case Opcode::IfIcmpne: taken = a != b; return true;
          case Opcode::IfIcmplt: taken = a < b; return true;
          case Opcode::IfIcmpge: taken = a >= b; return true;
          case Opcode::IfIcmpgt: taken = a > b; return true;
          case Opcode::IfIcmple: taken = a <= b; return true;
          default: return false;
        }
    }
    if (!lhs || !lhs->isConst)
        return false;
    const std::int32_t a = lhs->value;
    switch (op) {
      case Opcode::Ifeq: taken = a == 0; return true;
      case Opcode::Ifne: taken = a != 0; return true;
      case Opcode::Iflt: taken = a < 0; return true;
      case Opcode::Ifge: taken = a >= 0; return true;
      case Opcode::Ifgt: taken = a > 0; return true;
      case Opcode::Ifle: taken = a <= 0; return true;
      default: return false;
    }
}

/**
 * Abstractly execute one instruction. Returns false (with `error`
 * filled) on stack underflow; the state is then unusable.
 */
bool
step(const Program &program, const Instr &instr, AbsState &state,
     std::string &error)
{
    auto pop = [&](AbsValue &out) -> bool {
        if (state.stack.empty()) {
            error = "operand stack underflow";
            return false;
        }
        out = state.stack.back();
        state.stack.pop_back();
        return true;
    };
    AbsValue a, b;

    switch (instr.op) {
      case Opcode::Iconst:
        state.stack.push_back(AbsValue::constant(instr.a));
        return true;
      case Opcode::Iload:
        state.stack.push_back(
            state.locals[static_cast<std::size_t>(instr.a)]);
        return true;
      case Opcode::Istore:
        if (!pop(a))
            return false;
        state.locals[static_cast<std::size_t>(instr.a)] = a;
        return true;
      case Opcode::Iinc: {
        AbsValue &slot = state.locals[static_cast<std::size_t>(instr.a)];
        slot = foldBinary(Opcode::Iadd, slot,
                          AbsValue::constant(instr.b));
        return true;
      }
      case Opcode::Dup:
        if (!pop(a))
            return false;
        state.stack.push_back(a);
        state.stack.push_back(a);
        return true;
      case Opcode::Pop:
        return pop(a);
      case Opcode::Swap:
        if (!pop(b) || !pop(a))
            return false;
        state.stack.push_back(b);
        state.stack.push_back(a);
        return true;
      case Opcode::Ineg:
        if (!pop(a))
            return false;
        state.stack.push_back(
            a.isConst
                ? AbsValue::constant(wrap32(-std::int64_t{a.value}))
                : AbsValue::top());
        return true;
      case Opcode::Iadd:
      case Opcode::Isub:
      case Opcode::Imul:
      case Opcode::Idiv:
      case Opcode::Irem:
      case Opcode::Iand:
      case Opcode::Ior:
      case Opcode::Ixor:
      case Opcode::Ishl:
      case Opcode::Ishr:
        if (!pop(b) || !pop(a))
            return false;
        state.stack.push_back(foldBinary(instr.op, a, b));
        return true;
      case Opcode::Gload:
        if (!pop(a))
            return false;
        state.stack.push_back(AbsValue::top());
        return true;
      case Opcode::Gstore:
        return pop(a) && pop(b);
      case Opcode::Irnd:
        state.stack.push_back(AbsValue::top());
        return true;
      case Opcode::Invoke: {
        const auto callee = static_cast<std::size_t>(instr.a);
        if (instr.a < 0 || callee >= program.methods.size()) {
            error = "invoke of invalid method index";
            return false;
        }
        const Method &m = program.methods[callee];
        for (std::uint32_t i = 0; i < m.numArgs; ++i) {
            if (!pop(a))
                return false;
        }
        if (m.returnsValue)
            state.stack.push_back(AbsValue::top());
        return true;
      }
      case Opcode::Goto:
        return true;
      case Opcode::Tableswitch:
        return pop(a);
      case Opcode::Return:
        return true;
      case Opcode::Ireturn:
        return pop(a);
      default:
        if (bytecode::isCmpBranch(instr.op))
            return pop(b) && pop(a);
        if (bytecode::isCondBranch(instr.op))
            return pop(a);
        error = "unknown opcode";
        return false;
    }
}

/** Join two abstract values (equal constants survive). */
AbsValue
joinValue(AbsValue a, AbsValue b)
{
    if (a.isConst && b.isConst && a.value == b.value)
        return a;
    return AbsValue::top();
}

struct StackConstProblem
{
    using Domain = AbsState;

    const Program &program;
    const Method &method;
    const MethodCfg &cfg;

    Direction direction() const { return Direction::Forward; }

    Domain
    boundary() const
    {
        AbsState state;
        state.reachable = true;
        state.locals.assign(method.numLocals, AbsValue::constant(0));
        // Arguments arrive from the caller with unknown values.
        for (std::uint32_t i = 0;
             i < method.numArgs && i < method.numLocals; ++i) {
            state.locals[i] = AbsValue::top();
        }
        return state;
    }

    Domain init() const { return AbsState{}; }

    bool
    join(Domain &into, const Domain &from) const
    {
        if (!from.reachable)
            return false;
        if (!into.reachable) {
            into = from;
            return true;
        }
        Domain merged = into;
        merged.depthConflict = into.depthConflict || from.depthConflict;
        if (into.stack.size() != from.stack.size()) {
            // The verifier rejects this; flag it and keep the shorter
            // stack so iteration still terminates.
            merged.depthConflict = true;
            if (from.stack.size() < merged.stack.size())
                merged.stack.resize(from.stack.size());
        }
        for (std::size_t i = 0; i < merged.stack.size(); ++i)
            merged.stack[i] = joinValue(merged.stack[i], from.stack[i]);
        for (std::size_t i = 0; i < merged.locals.size(); ++i)
            merged.locals[i] =
                joinValue(merged.locals[i], from.locals[i]);
        const bool changed = !(merged == into);
        into = std::move(merged);
        return changed;
    }

    Domain
    transfer(cfg::BlockId block, const Domain &in) const
    {
        if (!in.reachable || !cfg.isCodeBlock(block))
            return in;
        AbsState state = in;
        std::string error;
        for (bytecode::Pc pc = cfg.firstPc[block];
             pc <= cfg.lastPc[block]; ++pc) {
            if (!step(program, method.code[pc], state, error))
                return AbsState{}; // underflow: nothing flows out
        }
        return state;
    }
};

} // namespace

StackConstResult
computeStackConst(const Program &program, const Method &method,
                  const MethodCfg &method_cfg)
{
    const StackConstProblem problem{program, method, method_cfg};
    DataflowResult<StackConstProblem> solved =
        solveDataflow(method_cfg.graph, problem);

    StackConstResult result;
    result.atEntry = std::move(solved.input);
    result.atExit = std::move(solved.output);
    return result;
}

void
reportStackConstFindings(const Program &program, const Method &method,
                         const MethodCfg &method_cfg,
                         const StackConstResult &result,
                         DiagnosticList &diagnostics)
{
    const std::string &name = method.name;

    for (cfg::BlockId b = 0; b < method_cfg.graph.numBlocks(); ++b) {
        if (!method_cfg.isCodeBlock(b))
            continue;
        const AbsState &entry = result.atEntry[b];
        if (!entry.reachable)
            continue;
        if (entry.depthConflict) {
            diagnostics.reportAtPc(
                Severity::Error, "stack-const", name,
                method_cfg.firstPc[b],
                "inconsistent stack depth at merge point");
        }

        // Re-simulate the block to get per-pc states for reporting.
        AbsState state = entry;
        for (bytecode::Pc pc = method_cfg.firstPc[b];
             pc <= method_cfg.lastPc[b]; ++pc) {
            const Instr &instr = method.code[pc];

            if ((instr.op == Opcode::Idiv ||
                 instr.op == Opcode::Irem) &&
                !state.stack.empty() && state.stack.back().isConst &&
                state.stack.back().value == 0) {
                std::ostringstream os;
                os << bytecode::mnemonic(instr.op)
                   << " by constant zero (yields 0)";
                diagnostics.reportAtPc(Severity::Warning, "stack-const",
                                       name, pc, os.str());
            }

            if (bytecode::isCondBranch(instr.op)) {
                const std::size_t depth = state.stack.size();
                const AbsValue *rhs =
                    depth >= 1 ? &state.stack[depth - 1] : nullptr;
                const AbsValue *lhs =
                    depth >= 2 ? &state.stack[depth - 2] : nullptr;
                bool taken = false;
                const bool constant =
                    bytecode::isCmpBranch(instr.op)
                        ? foldBranch(instr.op, lhs, rhs, taken)
                        : foldBranch(instr.op, rhs, nullptr, taken);
                if (constant) {
                    std::ostringstream os;
                    os << "branch condition is constant: "
                       << bytecode::mnemonic(instr.op) << " is "
                       << (taken ? "always" : "never") << " taken";
                    diagnostics.reportAtPc(Severity::Warning,
                                           "stack-const", name, pc,
                                           os.str());
                }
            }

            if (instr.op == Opcode::Tableswitch &&
                !state.stack.empty() && state.stack.back().isConst) {
                std::ostringstream os;
                os << "switch selector is constant ("
                   << state.stack.back().value << ")";
                diagnostics.reportAtPc(Severity::Note, "stack-const",
                                       name, pc, os.str());
            }

            std::string error;
            if (!step(program, instr, state, error)) {
                diagnostics.reportAtPc(Severity::Error, "stack-const",
                                       name, pc, error);
                break;
            }
        }
    }
}

} // namespace pep::analysis
