#ifndef PEP_ANALYSIS_LINT_HH
#define PEP_ANALYSIS_LINT_HH

/**
 * @file
 * The full lint pipeline over one program, shared by the pep-lint CLI
 * and the test suite:
 *
 *  1. bytecode verification (multi-diagnostic), reported under pass
 *     "verify"; if it finds errors the CFG-based passes are skipped
 *     (the CFG builder requires verified code);
 *  2. per-method dataflow lints: dead stores (liveness), unreachable
 *     code, abstract stack-depth/constant findings;
 *  3. instrumentation-plan checking: for every method, the P-DAG,
 *     numbering, and plan are built exactly as the profiling pipeline
 *     would and statically checked — both DAG modes, Direct and
 *     spanning-tree placement, Ball-Larus and smart numbering — and
 *     the method is translated for the threaded execution engine and
 *     its template stream checked against the plan's flattened tables
 *     (plan-checker check 9, docs/ENGINE.md).
 */

#include <cstdint>

#include "analysis/diagnostics.hh"
#include "bytecode/method.hh"

namespace pep::analysis {

/** Which parts of the pipeline to run. */
struct LintOptions
{
    bool runVerifier = true;
    bool runMethodPasses = true;
    bool runPlanChecks = true;

    /** Also run the symbolic engine-equivalence pass over the threaded
     *  engine's canonical translation of every method
     *  (analysis/verify/engine_equiv.hh, `pep_lint --verify`). */
    bool runVerifyPasses = false;

    /** Path-enumeration budget for the plan checker's semantic proof. */
    std::uint64_t simulateLimit = 4096;
};

/**
 * Lint one program. The program is mutated only the way verification
 * mutates it (maxStack is filled in).
 */
DiagnosticList lintProgram(bytecode::Program &program,
                           const LintOptions &options = {});

} // namespace pep::analysis

#endif // PEP_ANALYSIS_LINT_HH
