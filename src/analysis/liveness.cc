#include "analysis/liveness.hh"

#include <sstream>

namespace pep::analysis {

namespace {

using bytecode::Instr;
using bytecode::Method;
using bytecode::MethodCfg;
using bytecode::Opcode;

/** Apply one instruction's use/def effect backward to a live set. */
void
applyBackward(const Instr &instr, std::vector<bool> &live)
{
    switch (instr.op) {
      case Opcode::Istore:
        live[static_cast<std::size_t>(instr.a)] = false;
        break;
      case Opcode::Iload:
        live[static_cast<std::size_t>(instr.a)] = true;
        break;
      case Opcode::Iinc:
        // Defines and uses the slot: live before iff used after — but
        // the increment itself reads the old value, so the slot is
        // live before regardless.
        live[static_cast<std::size_t>(instr.a)] = true;
        break;
      default:
        break; // no local effect
    }
}

/** Backward union dataflow over live-slot bitsets. */
struct LivenessProblem
{
    using Domain = std::vector<bool>;

    const Method &method;
    const MethodCfg &cfg;

    Direction direction() const { return Direction::Backward; }

    Domain
    boundary() const
    {
        // Nothing is observable after the method returns.
        return Domain(method.numLocals, false);
    }

    Domain init() const { return Domain(method.numLocals, false); }

    bool
    join(Domain &into, const Domain &from) const
    {
        bool changed = false;
        for (std::size_t i = 0; i < into.size(); ++i) {
            if (from[i] && !into[i]) {
                into[i] = true;
                changed = true;
            }
        }
        return changed;
    }

    Domain
    transfer(cfg::BlockId block, const Domain &live_out) const
    {
        Domain live = live_out;
        if (!cfg.isCodeBlock(block))
            return live;
        for (bytecode::Pc pc = cfg.lastPc[block] + 1;
             pc-- > cfg.firstPc[block];) {
            applyBackward(method.code[pc], live);
        }
        return live;
    }
};

} // namespace

LivenessResult
computeLiveness(const Method &method, const MethodCfg &method_cfg)
{
    const LivenessProblem problem{method, method_cfg};
    DataflowResult<LivenessProblem> solved =
        solveDataflow(method_cfg.graph, problem);

    LivenessResult result;
    // Backward problem: input is the block-exit state, output the
    // block-entry state.
    result.liveOut = std::move(solved.input);
    result.liveIn = std::move(solved.output);
    return result;
}

void
reportDeadStores(const Method &method, const MethodCfg &method_cfg,
                 const LivenessResult &liveness,
                 DiagnosticList &diagnostics)
{
    const cfg::DfsResult dfs = cfg::depthFirstSearch(method_cfg.graph);

    for (cfg::BlockId b = 0; b < method_cfg.graph.numBlocks(); ++b) {
        if (!method_cfg.isCodeBlock(b) || !dfs.reachable[b])
            continue;
        // Walk backward through the block, tracking liveness after
        // each instruction so every store gets a per-pc verdict.
        std::vector<bool> live = liveness.liveOut[b];
        for (bytecode::Pc pc = method_cfg.lastPc[b] + 1;
             pc-- > method_cfg.firstPc[b];) {
            const Instr &instr = method.code[pc];
            const bool is_store = instr.op == Opcode::Istore ||
                                  instr.op == Opcode::Iinc;
            if (is_store &&
                !live[static_cast<std::size_t>(instr.a)]) {
                std::ostringstream os;
                os << "dead store: local " << instr.a
                   << " is never read after this "
                   << bytecode::mnemonic(instr.op);
                diagnostics.reportAtPc(Severity::Warning, "liveness",
                                       method.name, pc, os.str());
            }
            applyBackward(instr, live);
        }
    }
}

} // namespace pep::analysis
