#include "analysis/unreachable.hh"

#include <sstream>

#include "cfg/analysis.hh"

namespace pep::analysis {

std::size_t
reportUnreachableCode(const bytecode::Method &method,
                      const bytecode::MethodCfg &method_cfg,
                      DiagnosticList &diagnostics)
{
    const cfg::DfsResult dfs = cfg::depthFirstSearch(method_cfg.graph);

    // Dead pcs, in order; consecutive dead blocks merge into one range.
    std::vector<bool> dead(method.code.size(), false);
    std::size_t num_dead = 0;
    for (cfg::BlockId b = 0; b < method_cfg.graph.numBlocks(); ++b) {
        if (!method_cfg.isCodeBlock(b) || dfs.reachable[b])
            continue;
        for (bytecode::Pc pc = method_cfg.firstPc[b];
             pc <= method_cfg.lastPc[b]; ++pc) {
            dead[pc] = true;
            ++num_dead;
        }
    }

    for (std::size_t pc = 0; pc < dead.size();) {
        if (!dead[pc]) {
            ++pc;
            continue;
        }
        std::size_t end = pc;
        while (end + 1 < dead.size() && dead[end + 1])
            ++end;
        std::ostringstream os;
        os << "unreachable code: pcs " << pc << ".." << end
           << " cannot execute";
        diagnostics.reportAtPc(Severity::Warning, "unreachable",
                               method.name,
                               static_cast<bytecode::Pc>(pc), os.str());
        pc = end + 1;
    }
    return num_dead;
}

} // namespace pep::analysis
