#ifndef PEP_ANALYSIS_DATAFLOW_HH
#define PEP_ANALYSIS_DATAFLOW_HH

/**
 * @file
 * Generic monotone dataflow framework over cfg::Graph. A Problem
 * describes a join-semilattice and a per-block transfer function; the
 * solver runs a reverse-postorder worklist to the (guaranteed, for
 * monotone problems over finite lattices) fixpoint.
 *
 * Problem concept:
 *
 *   struct P {
 *       using Domain = ...;                  // must be copyable and ==
 *       analysis::Direction direction() const;
 *       Domain boundary() const;             // state at entry (forward)
 *                                            // or exit (backward)
 *       Domain init() const;                 // optimistic initial state
 *       // Join `from` into `into`; return true if `into` changed.
 *       bool join(Domain &into, const Domain &from) const;
 *       Domain transfer(cfg::BlockId block, const Domain &in) const;
 *   };
 *
 * For a forward problem, result.input[b] is the state at block entry
 * (join over predecessors' output) and result.output[b] the state at
 * block exit. For a backward problem the roles flip: input[b] is the
 * state at block *exit* (join over successors' output) and output[b]
 * the state at block entry. Blocks unreachable from the traversal root
 * keep init() in both slots.
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "cfg/analysis.hh"
#include "cfg/graph.hh"
#include "support/panic.hh"

namespace pep::analysis {

/** Direction of propagation. */
enum class Direction : std::uint8_t
{
    Forward,
    Backward,
};

/** Fixpoint of one dataflow problem. */
template <typename Problem>
struct DataflowResult
{
    using Domain = typename Problem::Domain;

    /** State flowing into each block's transfer (see file comment). */
    std::vector<Domain> input;

    /** Each block's transfer output. */
    std::vector<Domain> output;

    /** Total block visits until the fixpoint (a convergence metric). */
    std::size_t iterations = 0;

    /** False only if the iteration cap was hit (non-monotone problem). */
    bool converged = true;
};

/**
 * Solve `problem` over `graph` to fixpoint. Deterministic: blocks are
 * processed in reverse postorder (forward) or reversed reverse
 * postorder (backward), and the worklist is FIFO.
 */
template <typename Problem>
DataflowResult<Problem>
solveDataflow(const cfg::Graph &graph, const Problem &problem)
{
    using Domain = typename Problem::Domain;

    const bool backward = problem.direction() == Direction::Backward;
    const cfg::DfsResult dfs = cfg::depthFirstSearch(graph);
    std::vector<cfg::BlockId> order = dfs.reversePostorder;
    if (backward)
        std::reverse(order.begin(), order.end());

    const std::size_t n = graph.numBlocks();
    const cfg::BlockId boundary_block =
        backward ? graph.exit() : graph.entry();

    DataflowResult<Problem> result;
    result.input.assign(n, problem.init());
    result.output.assign(n, problem.init());

    std::deque<cfg::BlockId> worklist(order.begin(), order.end());
    std::vector<bool> queued(n, false);
    for (const cfg::BlockId b : order)
        queued[b] = true;

    // Generous cap: a monotone problem over a finite lattice converges
    // in O(blocks * lattice height) visits; this only trips on a buggy
    // (non-monotone) transfer.
    const std::size_t cap = 64 + n * n * 16;

    while (!worklist.empty()) {
        const cfg::BlockId b = worklist.front();
        worklist.pop_front();
        queued[b] = false;

        if (++result.iterations > cap) {
            result.converged = false;
            break;
        }

        Domain in = b == boundary_block ? problem.boundary()
                                        : problem.init();
        const std::vector<cfg::BlockId> &feeders =
            backward ? graph.succs(b) : graph.preds(b);
        for (const cfg::BlockId f : feeders)
            problem.join(in, result.output[f]);

        Domain out = problem.transfer(b, in);
        result.input[b] = std::move(in);
        if (out == result.output[b])
            continue;
        result.output[b] = std::move(out);

        const std::vector<cfg::BlockId> &dependents =
            backward ? graph.preds(b) : graph.succs(b);
        for (const cfg::BlockId d : dependents) {
            if (!queued[d]) {
                queued[d] = true;
                worklist.push_back(d);
            }
        }
    }
    return result;
}

} // namespace pep::analysis

#endif // PEP_ANALYSIS_DATAFLOW_HH
