#ifndef PEP_ANALYSIS_LIVENESS_HH
#define PEP_ANALYSIS_LIVENESS_HH

/**
 * @file
 * Local-variable liveness: a backward union dataflow over the method
 * CFG whose domain is the set of live local slots. Built on the generic
 * solver (dataflow.hh); the per-block transfer walks the block's
 * bytecode in reverse applying use/def effects (Iload uses, Istore
 * defines, Iinc uses then defines).
 *
 * The derived lint: a store (Istore/Iinc) whose slot is dead
 * immediately after it is a *dead store* — its value can never be
 * observed. Reported as warnings with pc-level locations.
 */

#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostics.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/method.hh"

namespace pep::analysis {

/** Liveness fixpoint: live-in/live-out local sets per block. */
struct LivenessResult
{
    /** liveIn[b][slot]: slot is live at block entry. */
    std::vector<std::vector<bool>> liveIn;

    /** liveOut[b][slot]: slot is live at block exit. */
    std::vector<std::vector<bool>> liveOut;
};

/** Solve liveness for a verified method. */
LivenessResult computeLiveness(const bytecode::Method &method,
                               const bytecode::MethodCfg &method_cfg);

/**
 * Report dead stores as warnings (pass "liveness"). Only reachable
 * blocks are checked; unreachable code is the unreachable pass's job.
 */
void reportDeadStores(const bytecode::Method &method,
                      const bytecode::MethodCfg &method_cfg,
                      const LivenessResult &liveness,
                      DiagnosticList &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_LIVENESS_HH
