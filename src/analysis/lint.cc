#include "analysis/lint.hh"

#include "analysis/liveness.hh"
#include "analysis/verify/engine_equiv.hh"
#include "analysis/plan_check.hh"
#include "analysis/stack_const.hh"
#include "analysis/unreachable.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/verifier.hh"
#include "profile/instr_plan.hh"
#include "profile/numbering.hh"
#include "profile/pdag.hh"
#include "profile/spanning_placement.hh"
#include "vm/compiled_method.hh"
#include "vm/cost_model.hh"
#include "vm/decoded_method.hh"
#include "vm/machine.hh"

namespace pep::analysis {

namespace {

using profile::DagMode;
using profile::NumberingScheme;
using profile::PlacementKind;

/** Uniform DAG edge frequencies (lint has no runtime profile). */
profile::DagEdgeFreqs
uniformFreqs(const cfg::Graph &dag)
{
    profile::DagEdgeFreqs freqs(dag.numBlocks());
    for (cfg::BlockId v = 0; v < dag.numBlocks(); ++v)
        freqs[v].assign(dag.succs(v).size(), 1.0);
    return freqs;
}

/** Build and check one (mode, scheme, placement) configuration. */
void
checkOnePlan(const bytecode::Method &method,
             const bytecode::MethodCfg &cfg, DagMode mode,
             NumberingScheme scheme, PlacementKind placement,
             std::uint64_t simulate_limit,
             DiagnosticList &diagnostics)
{
    const profile::PDag pdag = profile::buildPDag(cfg, mode);
    const profile::DagEdgeFreqs freqs = uniformFreqs(pdag.dag);
    const profile::Numbering numbering = profile::numberPaths(
        pdag, scheme,
        scheme == NumberingScheme::BallLarus ? nullptr : &freqs);
    profile::InstrumentationPlan plan =
        profile::buildInstrumentationPlan(cfg, pdag, numbering);

    profile::SpanningPlacement spanning;
    if (placement == PlacementKind::SpanningTree && plan.enabled) {
        spanning =
            profile::computeSpanningPlacement(pdag, numbering, &freqs);
        profile::applySpanningPlacement(cfg, pdag, spanning, plan);
    }

    PlanCheckInput input;
    input.cfg = &cfg;
    input.pdag = &pdag;
    input.numbering = &numbering;
    input.plan = &plan;
    input.placement = placement;
    input.spanning =
        placement == PlacementKind::SpanningTree ? &spanning : nullptr;
    input.scheme = scheme;
    input.freqs = &freqs;
    input.methodName = method.name;
    input.simulateLimit = simulate_limit;
    checkInstrumentationPlan(input, diagnostics);
}

/**
 * Check 9: translate the method for the threaded engine exactly as
 * Machine::decodedFor would (full-opt costs, no layout information)
 * and prove the template stream consistent with the canonical plan's
 * flattened tables. The plan's edgeBase is structural — identical
 * across every (mode, scheme, placement) built above — so one
 * representative plan suffices.
 */
void
checkTemplates(const bytecode::Method &method,
               const bytecode::MethodCfg &cfg, bool check_stream,
               bool check_equivalence, DiagnosticList &diagnostics)
{
    const profile::PDag pdag =
        profile::buildPDag(cfg, DagMode::HeaderSplit);
    const profile::Numbering numbering =
        profile::numberPaths(pdag, NumberingScheme::BallLarus, nullptr);
    const profile::InstrumentationPlan plan =
        profile::buildInstrumentationPlan(cfg, pdag, numbering);

    const vm::MethodInfo info = vm::buildMethodInfo(method);
    vm::CompiledMethod cm;
    cm.level = vm::OptLevel::Opt2;
    const vm::CostModel cost;
    cm.scaledCost.resize(bytecode::kNumOpcodes);
    for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op)
        cm.scaledCost[op] =
            cost.instrCost(static_cast<bytecode::Opcode>(op));
    cm.branchLayout.assign(cfg.graph.numBlocks(), -1);

    // One translation per fusion selection: checks 9 and 12 plus the
    // symbolic engine-equivalence pass must hold across the whole
    // PEP_FUSE matrix (the canonical no-information layout predicts
    // fall-through everywhere, so `traces` forms real chains here).
    const vm::FuseOptions fuse_matrix[] = {
        {false, false}, {true, false}, {false, true}, {true, true}};
    for (const vm::FuseOptions &fuse : fuse_matrix) {
        const vm::DecodedMethod decoded =
            translateMethod(method, info, cm, fuse);

        if (check_stream) {
            TemplateCheckInput input;
            input.code = &method;
            input.cfg = &cfg;
            input.plan = &plan;
            input.decoded = &decoded;
            input.methodName = method.name;
            checkTemplateStream(input, diagnostics);

            FusedCheckInput fused;
            fused.decoded = &decoded;
            fused.methodName = method.name;
            checkFusedStream(fused, diagnostics);
        }

        // The symbolic engine-equivalence pass (verify pass 1) on the
        // same canonical translation.
        if (check_equivalence) {
            EngineEquivInput input;
            input.code = &method;
            input.info = &info;
            input.cm = &cm;
            input.decoded = &decoded;
            input.methodName = method.name;
            checkEngineEquivalence(input, diagnostics);
        }
    }
}

} // namespace

DiagnosticList
lintProgram(bytecode::Program &program, const LintOptions &options)
{
    DiagnosticList diagnostics;

    if (options.runVerifier) {
        const bytecode::VerifyResult verified =
            bytecode::verifyProgram(program);
        for (const bytecode::VerifyDiagnostic &d :
             verified.diagnostics) {
            Diagnostic &out = diagnostics.report(
                Severity::Error, "verify", d.method, d.message);
            out.hasPc = d.hasPc;
            out.pc = d.pc;
        }
        // The CFG builder panics on unverified code; stop here.
        if (!verified.ok)
            return diagnostics;
    }

    if (!options.runMethodPasses && !options.runPlanChecks &&
        !options.runVerifyPasses)
        return diagnostics;

    for (const bytecode::Method &method : program.methods) {
        const bytecode::MethodCfg cfg = bytecode::buildCfg(method);

        if (options.runMethodPasses) {
            const LivenessResult liveness =
                computeLiveness(method, cfg);
            reportDeadStores(method, cfg, liveness, diagnostics);
            reportUnreachableCode(method, cfg, diagnostics);
            const StackConstResult stack_const =
                computeStackConst(program, method, cfg);
            reportStackConstFindings(program, method, cfg, stack_const,
                                     diagnostics);
        }

        if (options.runPlanChecks) {
            for (const DagMode mode :
                 {DagMode::HeaderSplit, DagMode::BackEdgeTruncate}) {
                checkOnePlan(method, cfg, mode,
                             NumberingScheme::BallLarus,
                             PlacementKind::Direct,
                             options.simulateLimit, diagnostics);
                checkOnePlan(method, cfg, mode,
                             NumberingScheme::BallLarus,
                             PlacementKind::SpanningTree,
                             options.simulateLimit, diagnostics);
                checkOnePlan(method, cfg, mode,
                             NumberingScheme::Smart,
                             PlacementKind::Direct,
                             options.simulateLimit, diagnostics);
            }
        }

        if (options.runPlanChecks || options.runVerifyPasses) {
            checkTemplates(method, cfg, options.runPlanChecks,
                           options.runVerifyPasses, diagnostics);
        }
    }
    return diagnostics;
}

} // namespace pep::analysis
