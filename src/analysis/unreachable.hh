#ifndef PEP_ANALYSIS_UNREACHABLE_HH
#define PEP_ANALYSIS_UNREACHABLE_HH

/**
 * @file
 * Unreachable-code detection. The verifier tolerates dead code (it must
 * be structurally well-formed but its stack discipline is never
 * checked), so this pass reports every code block the CFG cannot reach
 * from entry as a warning, one diagnostic per maximal dead pc range.
 */

#include "analysis/diagnostics.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/method.hh"

namespace pep::analysis {

/**
 * Report unreachable code blocks (pass "unreachable"); returns the
 * number of dead instructions found.
 */
std::size_t reportUnreachableCode(const bytecode::Method &method,
                                  const bytecode::MethodCfg &method_cfg,
                                  DiagnosticList &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_UNREACHABLE_HH
