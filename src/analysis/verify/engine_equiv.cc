#include "analysis/verify/engine_equiv.hh"

#include <sstream>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "vm/compiled_method.hh"
#include "vm/decoded_method.hh"
#include "vm/machine.hh"

namespace pep::analysis {

namespace {

using bytecode::Opcode;
using bytecode::TerminatorKind;

/** Caps repeated same-kind findings so a broken version stays readable. */
constexpr std::size_t kMaxPerCategory = 8;

/**
 * The abstract effect of leaving a basic block through one successor:
 * which dense flat-edge id the profilers see, where control lands, and
 * whether the transfer fires loop-header events. Derived independently
 * from the bytecode (reference semantics, what the switch engine does)
 * and from the template stream (what the threaded engine does); the
 * two must agree memberwise.
 */
struct ExitEffect
{
    std::uint32_t flatId = 0;
    bool toExit = false;       ///< method exit (Return/Ireturn)
    bytecode::Pc targetPc = 0; ///< meaningful when !toExit
    bool headerEvent = false;  ///< target is a loop-header leader
};

class EquivChecker
{
  public:
    EquivChecker(const EngineEquivInput &input,
                 DiagnosticList &diagnostics)
        : in_(input), diags_(diagnostics), cfg_(input.info->cfg),
          code_(*input.code), cm_(*input.cm), dm_(*input.decoded)
    {
    }

    bool
    run()
    {
        const std::size_t before = diags_.errorCount();
        if (!checkStreamShape())
            return diags_.errorCount() == before;
        checkEdgeBase();
        sumTemplateCharges();
        checkTraceShape();
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            if (cfg_.isCodeBlock(b))
                checkBlock(b);
        }
        checkTraces();
        return diags_.errorCount() == before;
    }

  private:
    // ---- reporting helpers -------------------------------------------

    Diagnostic &
    stamp(Diagnostic &d, const char *check)
    {
        d.check = check;
        d.hasVersion = in_.hasVersion;
        d.version = in_.version;
        return d;
    }

    void
    error(const char *check, const std::string &message)
    {
        stamp(diags_.report(Severity::Error, "engine-equiv",
                            in_.methodName, message),
              check);
    }

    void
    errorAtPc(const char *check, bytecode::Pc pc,
              const std::string &message)
    {
        stamp(diags_.reportAtPc(Severity::Error, "engine-equiv",
                                in_.methodName, pc, message),
              check);
    }

    void
    errorAtEdge(const char *check, cfg::EdgeRef edge,
                const std::string &message)
    {
        stamp(diags_.reportAtEdge(Severity::Error, "engine-equiv",
                                  in_.methodName, edge, message),
              check);
    }

    /** Report unless the category already hit its cap. */
    bool
    capped(std::size_t &counter)
    {
        if (counter == kMaxPerCategory) {
            stamp(diags_.report(Severity::Note, "engine-equiv",
                                in_.methodName,
                                "further findings of this kind "
                                "suppressed"),
                  "capped");
        }
        return counter++ >= kMaxPerCategory;
    }

    // ---- prerequisites ------------------------------------------------

    /** The pc->template map must cover the code and stay in bounds;
     *  everything below indexes through it. */
    bool
    checkStreamShape()
    {
        const std::size_t n = code_.code.size();
        if (dm_.pcToTemplate.size() != n) {
            std::ostringstream os;
            os << "pcToTemplate has " << dm_.pcToTemplate.size()
               << " entries for " << n << " instructions";
            error("stream-shape", os.str());
            return false;
        }
        for (bytecode::Pc pc = 0; pc < n; ++pc) {
            if (dm_.pcToTemplate[pc] >= dm_.stream.size()) {
                std::ostringstream os;
                os << "pcToTemplate[" << pc << "] = "
                   << dm_.pcToTemplate[pc] << " is out of the stream's "
                   << dm_.stream.size() << " templates";
                error("stream-shape", os.str());
                return false;
            }
        }
        for (const vm::Template &t : dm_.stream) {
            if (t.block >= cfg_.graph.numBlocks()) {
                std::ostringstream os;
                os << "template at pc " << t.pc
                   << " names nonexistent block " << t.block;
                error("stream-shape", os.str());
                return false;
            }
        }
        return true;
    }

    /** Structural flat-edge bases: the stream's burned-in edgeBase must
     *  be the CFG's successor-count prefix sums — the indices every
     *  enabled plan's flatEdgeActions are laid out by. */
    void
    checkEdgeBase()
    {
        const cfg::Graph &graph = cfg_.graph;
        refBase_.resize(graph.numBlocks() + 1);
        std::uint32_t next = 0;
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            refBase_[b] = next;
            next += static_cast<std::uint32_t>(graph.succs(b).size());
        }
        refBase_.back() = next;

        std::size_t mismatches = 0;
        if (dm_.edgeBase.size() != refBase_.size()) {
            std::ostringstream os;
            os << "edgeBase has " << dm_.edgeBase.size()
               << " entries, CFG implies " << refBase_.size();
            error("edge-base", os.str());
            return;
        }
        for (std::size_t b = 0; b < refBase_.size(); ++b) {
            if (dm_.edgeBase[b] != refBase_[b] && !capped(mismatches)) {
                std::ostringstream os;
                os << "edgeBase[" << b << "] = " << dm_.edgeBase[b]
                   << " but the CFG's successor prefix sum is "
                   << refBase_[b];
                error("edge-base", os.str());
            }
        }
    }

    // ---- per-block charge sums ---------------------------------------

    /** Segment charges are folded onto segment-leader templates, and a
     *  segment never crosses a block boundary (every block leader is a
     *  segment leader), so summing per owning block is exact. Trace
     *  batching moves whole-block sums onto the trace head, so blocks
     *  inside a trace are excluded here and compared at trace
     *  granularity by checkTraces() instead. */
    void
    sumTemplateCharges()
    {
        tplCost_.assign(cfg_.graph.numBlocks(), 0);
        tplNinstr_.assign(cfg_.graph.numBlocks(), 0);
        fallEdgeTpl_.assign(cfg_.graph.numBlocks(), -1);
        for (std::size_t i = 0; i < dm_.stream.size(); ++i) {
            const vm::Template &t = dm_.stream[i];
            tplCost_[t.block] += t.cost;
            tplNinstr_[t.block] += t.ninstr;
            if ((t.op == vm::kTopFallEdge || t.op == vm::kTopTraceFall) &&
                fallEdgeTpl_[t.block] < 0)
                fallEdgeTpl_[t.block] = static_cast<std::int64_t>(i);
        }
    }

    /** The switch engine's cost of one block (scaled per-instruction
     *  sums) and its instruction count. */
    std::uint64_t
    refBlockCost(cfg::BlockId b) const
    {
        std::uint64_t cost = 0;
        for (bytecode::Pc pc = cfg_.firstPc[b]; pc <= cfg_.lastPc[b];
             ++pc) {
            cost += cm_.scaledCost[static_cast<std::size_t>(
                code_.code[pc].op)];
        }
        return cost;
    }

    bool
    inTrace(cfg::BlockId b) const
    {
        return b < dm_.blockTrace.size() && dm_.blockTrace[b] >= 0;
    }

    /** traces / blockTrace must describe each other before the charge
     *  comparisons lean on them. */
    void
    checkTraceShape()
    {
        tracesUsable_ = true;
        if (dm_.traces.empty() && dm_.blockTrace.empty())
            return;
        if (dm_.blockTrace.size() != cfg_.graph.numBlocks()) {
            std::ostringstream os;
            os << "blockTrace has " << dm_.blockTrace.size()
               << " entries for " << cfg_.graph.numBlocks() << " blocks";
            error("trace-shape", os.str());
            tracesUsable_ = false;
            return;
        }
        std::vector<std::int32_t> expect(cfg_.graph.numBlocks(), -1);
        for (std::size_t ti = 0; ti < dm_.traces.size(); ++ti) {
            if (dm_.traces[ti].size() < 2) {
                std::ostringstream os;
                os << "trace " << ti << " has "
                   << dm_.traces[ti].size()
                   << " blocks (a trace straightens at least two)";
                error("trace-shape", os.str());
                tracesUsable_ = false;
            }
            for (cfg::BlockId b : dm_.traces[ti]) {
                if (b >= cfg_.graph.numBlocks() || expect[b] != -1) {
                    std::ostringstream os;
                    os << "trace " << ti
                       << " member block " << b
                       << " is out of range or already in a trace";
                    error("trace-shape", os.str());
                    tracesUsable_ = false;
                    continue;
                }
                expect[b] = static_cast<std::int32_t>(ti);
            }
        }
        for (cfg::BlockId b = 0;
             tracesUsable_ && b < cfg_.graph.numBlocks(); ++b) {
            if (dm_.blockTrace[b] != expect[b]) {
                std::ostringstream os;
                os << "blockTrace[" << b << "] = " << dm_.blockTrace[b]
                   << " but the trace list implies " << expect[b];
                error("trace-shape", os.str());
                tracesUsable_ = false;
            }
        }
    }

    /**
     * Trace-granularity charge equivalence: the head leader carries the
     * whole chain's switch-engine cost, interior leaders carry zero,
     * and every interior guard's stashed refund equals the
     * switch-engine cost of the unexecuted suffix — so a mispredicted
     * exit leaves the clock exactly where per-instruction charging
     * would have.
     */
    void
    checkTraces()
    {
        if (!tracesUsable_)
            return;
        for (std::size_t ti = 0; ti < dm_.traces.size(); ++ti) {
            const std::vector<cfg::BlockId> &chain = dm_.traces[ti];
            std::uint64_t total_cost = 0;
            std::uint64_t total_ninstr = 0;
            std::vector<std::uint64_t> member_cost(chain.size());
            std::vector<std::uint64_t> member_ninstr(chain.size());
            for (std::size_t i = 0; i < chain.size(); ++i) {
                member_cost[i] = refBlockCost(chain[i]);
                member_ninstr[i] =
                    cfg_.lastPc[chain[i]] - cfg_.firstPc[chain[i]] + 1;
                total_cost += member_cost[i];
                total_ninstr += member_ninstr[i];
            }
            const cfg::BlockId head = chain[0];
            if ((tplCost_[head] != total_cost ||
                 tplNinstr_[head] != total_ninstr) &&
                !capped(costMismatches_)) {
                std::ostringstream os;
                os << "trace " << ti << " head block " << head
                   << " charges " << tplCost_[head] << " cycles / "
                   << tplNinstr_[head]
                   << " instructions but the chain's bytecode cost is "
                   << total_cost << " / " << total_ninstr;
                errorAtPc("trace-cost", cfg_.firstPc[head], os.str());
            }
            std::uint64_t suffix_cost = total_cost;
            std::uint64_t suffix_ninstr = total_ninstr;
            for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
                suffix_cost -= member_cost[i];
                suffix_ninstr -= member_ninstr[i];
                const cfg::BlockId b = chain[i + 1];
                if ((tplCost_[b] != 0 || tplNinstr_[b] != 0) &&
                    !capped(costMismatches_)) {
                    std::ostringstream os;
                    os << "trace " << ti << " interior block " << b
                       << " still charges " << tplCost_[b]
                       << " cycles (interior charges must be batched "
                          "onto the head)";
                    errorAtPc("trace-cost", cfg_.firstPc[b], os.str());
                }
                const cfg::BlockId exit_block = chain[i];
                if (cfg_.terminator[exit_block] != TerminatorKind::Cond)
                    continue;
                const vm::Template &gt = dm_.stream[dm_.pcToTemplate[
                    cfg_.lastPc[exit_block]]];
                if (!vm::isGuardTop(gt.op)) {
                    std::ostringstream os;
                    os << "trace " << ti << " interior branch of block "
                       << exit_block
                       << " is not a guard template (top "
                       << static_cast<unsigned>(gt.op) << ")";
                    errorAtPc("trace-guard", cfg_.lastPc[exit_block],
                              os.str());
                    continue;
                }
                if ((gt.swFirst != suffix_cost ||
                     gt.swCount != suffix_ninstr) &&
                    !capped(costMismatches_)) {
                    std::ostringstream os;
                    os << "guard of block " << exit_block
                       << " refunds " << gt.swFirst << " cycles / "
                       << gt.swCount
                       << " instructions but the unexecuted suffix "
                          "costs "
                       << suffix_cost << " / " << suffix_ninstr;
                    errorAtPc("trace-guard", cfg_.lastPc[exit_block],
                              os.str());
                }
            }
        }
    }

    // ---- one block ----------------------------------------------------

    void
    checkBlock(cfg::BlockId b)
    {
        const bytecode::Pc first = cfg_.firstPc[b];
        const bytecode::Pc last = cfg_.lastPc[b];
        const bytecode::Instr &term = code_.code[last];

        // Cycle charges and instruction counts. The switch engine
        // charges scaledCost per instruction; the threaded engine
        // charges the folded sums. Equal per block => equal on every
        // execution (both engines execute whole blocks between edges).
        if (!tracesUsable_ || !inTrace(b)) {
            const std::uint64_t ref_cost = refBlockCost(b);
            const std::uint64_t ref_ninstr = last - first + 1;
            if (ref_cost != tplCost_[b] && !capped(costMismatches_)) {
                std::ostringstream os;
                os << "block " << b << " bytecode cost " << ref_cost
                   << " != template segment sum " << tplCost_[b];
                errorAtPc("segment-cost", first, os.str());
            }
            if (ref_ninstr != tplNinstr_[b] &&
                !capped(costMismatches_)) {
                std::ostringstream os;
                os << "block " << b << " holds " << ref_ninstr
                   << " instructions but templates charge "
                   << tplNinstr_[b];
                errorAtPc("segment-cost", first, os.str());
            }
        }

        // Reference (bytecode) exits.
        std::vector<ExitEffect> ref;
        const TerminatorKind kind = cfg_.terminator[b];
        switch (kind) {
          case TerminatorKind::Cond:
            ref.push_back(refExit(b, 0, static_cast<bytecode::Pc>(term.a)));
            ref.push_back(refExit(b, 1, last + 1));
            break;
          case TerminatorKind::Switch: {
            for (std::size_t i = 0; i < term.table.size(); ++i) {
                ref.push_back(refExit(
                    b, static_cast<std::uint32_t>(i),
                    static_cast<bytecode::Pc>(term.table[i])));
            }
            ref.push_back(refExit(
                b, static_cast<std::uint32_t>(term.table.size()),
                static_cast<bytecode::Pc>(term.b)));
            break;
          }
          case TerminatorKind::Goto:
            ref.push_back(refExit(b, 0, static_cast<bytecode::Pc>(term.a)));
            break;
          case TerminatorKind::Return: {
            ExitEffect e;
            e.flatId = refBase_[b];
            e.toExit = true;
            ref.push_back(e);
            break;
          }
          case TerminatorKind::Fallthrough:
            ref.push_back(refExit(b, 0, last + 1));
            break;
          case TerminatorKind::None:
            return; // not a code block; filtered by the caller
        }

        // The CFG the profilers index by must agree with the bytecode
        // the engines execute (successor lists in convention order).
        checkCfgShape(b, ref);

        // Template exits, plus the layout/baseline reads on branches.
        std::vector<ExitEffect> tpl;
        if (!templateExits(b, kind, term, tpl))
            return; // shape errors already reported

        if (ref.size() != tpl.size()) {
            std::ostringstream os;
            os << "block " << b << " has " << ref.size()
               << " bytecode exits but " << tpl.size()
               << " template exits";
            errorAtPc("control-exit", last, os.str());
            return;
        }
        for (std::size_t i = 0; i < ref.size(); ++i) {
            compareExit(b, static_cast<std::uint32_t>(i), ref[i],
                        tpl[i]);
        }
    }

    ExitEffect
    refExit(cfg::BlockId b, std::uint32_t index, bytecode::Pc target)
    {
        ExitEffect e;
        e.flatId = refBase_[b] + index;
        e.targetPc = target;
        e.headerEvent = target < in_.info->headerLeaderPc.size() &&
                        in_.info->headerLeaderPc[target];
        return e;
    }

    /** Successor lists must mirror the bytecode's target order — the
     *  flat ids both engines fire are positions in these lists. */
    void
    checkCfgShape(cfg::BlockId b, const std::vector<ExitEffect> &ref)
    {
        const auto &succs = cfg_.graph.succs(b);
        if (succs.size() != ref.size()) {
            std::ostringstream os;
            os << "block " << b << " has " << succs.size()
               << " CFG successors but " << ref.size()
               << " bytecode exits";
            errorAtPc("cfg-shape", cfg_.lastPc[b], os.str());
            return;
        }
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (ref[i].toExit)
                continue; // Return's successor is the synthetic exit
            const cfg::BlockId target_block =
                cfg_.blockOfPc[ref[i].targetPc];
            if (succs[i] != target_block && !capped(cfgMismatches_)) {
                std::ostringstream os;
                os << "successor " << i << " of block " << b << " is "
                   << succs[i] << " but the bytecode targets pc "
                   << ref[i].targetPc << " in block " << target_block;
                errorAtEdge("cfg-shape",
                            {b, static_cast<std::uint32_t>(i)},
                            os.str());
            }
        }
    }

    /** Resolve a transfer's target template and prove the dispatch
     *  lands on the target pc's template. */
    void
    checkTransfer(cfg::BlockId b, std::uint32_t target_tpl,
                  bytecode::Pc target_pc, const char *what)
    {
        if (target_tpl != dm_.pcToTemplate[target_pc] &&
            !capped(transferMismatches_)) {
            std::ostringstream os;
            os << what << " of block " << b << " dispatches to template "
               << target_tpl << " but pc " << target_pc
               << " lives at template " << dm_.pcToTemplate[target_pc];
            errorAtPc("control-exit", cfg_.lastPc[b], os.str());
        }
    }

    /** Build the template stream's exits for one block and check the
     *  terminator template's layout/baseline reads. Returns false when
     *  the stream's shape around the terminator is too broken to
     *  compare exits. */
    bool
    templateExits(cfg::BlockId b, TerminatorKind kind,
                  const bytecode::Instr &term, std::vector<ExitEffect> &out)
    {
        const bytecode::Pc last = cfg_.lastPc[b];
        const vm::Template &tt = dm_.stream[dm_.pcToTemplate[last]];
        // A fused template spans fuseLen constituent pcs starting at
        // its pc; the terminator must be one of them.
        if (!(tt.pc <= last && last < tt.pc + tt.fuseLen) ||
            tt.block != b) {
            std::ostringstream os;
            os << "terminator template of block " << b
               << " carries pc " << tt.pc << " block " << tt.block;
            errorAtPc("control-exit", last, os.str());
            return false;
        }

        const auto push = [&](std::uint32_t index, bytecode::Pc pc,
                              bool header) {
            ExitEffect e;
            e.flatId = tt.flatBase + index;
            e.targetPc = pc;
            e.headerEvent = header;
            out.push_back(e);
        };

        switch (kind) {
          case TerminatorKind::Cond: {
            // Acceptable forms: the plain conditional-branch template,
            // a fused compare-and-branch superinstruction, or (inside
            // a trace) a guard — all carry the same exit fields.
            const bool plain_cond =
                tt.op < bytecode::kNumOpcodes &&
                bytecode::isCondBranch(static_cast<Opcode>(tt.op));
            if (!plain_cond && !vm::isGuardTop(tt.op) &&
                !vm::isFusedBranchTop(tt.op)) {
                errorAtPc("control-exit", last,
                          "terminator template is not a conditional "
                          "branch");
                return false;
            }
            checkBranchReads(b, tt, last);
            push(0, tt.takenPc, tt.flags & vm::kTplTakenHeader);
            push(1, tt.fallPc, tt.flags & vm::kTplFallHeader);
            checkTransfer(b, tt.taken, tt.takenPc, "taken exit");
            checkTransfer(b, tt.fall, tt.fallPc, "fall exit");
            return true;
          }
          case TerminatorKind::Switch: {
            if (static_cast<Opcode>(tt.op) != Opcode::Tableswitch) {
                errorAtPc("control-exit", last,
                          "terminator template is not a Tableswitch");
                return false;
            }
            checkBranchReads(b, tt, last);
            if (tt.a != term.a) {
                std::ostringstream os;
                os << "switch low bound " << tt.a
                   << " != bytecode's " << term.a;
                errorAtPc("control-exit", last, os.str());
            }
            if (tt.swCount != term.table.size()) {
                std::ostringstream os;
                os << "switch template has " << tt.swCount
                   << " cases, bytecode has " << term.table.size();
                errorAtPc("control-exit", last, os.str());
                return false;
            }
            const std::size_t end = static_cast<std::size_t>(tt.swFirst) +
                                    tt.swCount + 1;
            if (end > dm_.switchCases.size()) {
                errorAtPc("control-exit", last,
                          "switch-case slice is out of bounds");
                return false;
            }
            for (std::uint32_t i = 0; i <= tt.swCount; ++i) {
                const vm::SwitchCase &sc =
                    dm_.switchCases[tt.swFirst + i];
                push(i, sc.pc, sc.isHeader != 0);
                checkTransfer(b, sc.tpl, sc.pc, "switch exit");
            }
            return true;
          }
          case TerminatorKind::Goto:
            push(0, tt.takenPc, tt.flags & vm::kTplTakenHeader);
            checkTransfer(b, tt.taken, tt.takenPc, "goto exit");
            return true;
          case TerminatorKind::Return: {
            ExitEffect e;
            e.flatId = tt.flatBase;
            e.toExit = true;
            out.push_back(e);
            return true;
          }
          case TerminatorKind::Fallthrough: {
            if (static_cast<Opcode>(tt.op) == Opcode::Invoke) {
                // Invoke ends the block: its template fires the edge.
                if (!(tt.flags & vm::kTplEndsBlock)) {
                    errorAtPc("control-exit", last,
                              "block-ending Invoke template lacks "
                              "kTplEndsBlock: the threaded engine "
                              "would fire no block-end edge");
                    return false;
                }
                push(0, tt.fallPc, tt.flags & vm::kTplFallHeader);
                checkTransfer(b, tt.fall, tt.fallPc, "invoke fall");
                return true;
            }
            // Plain fall-through: the injected FallEdge template.
            if (fallEdgeTpl_[b] < 0) {
                errorAtPc("control-exit", last,
                          "fall-through block has no FallEdge "
                          "template: the threaded engine would fire "
                          "no block-end edge");
                return false;
            }
            const vm::Template &fe = dm_.stream[static_cast<std::size_t>(
                fallEdgeTpl_[b])];
            ExitEffect e;
            e.flatId = fe.flatBase;
            e.targetPc = fe.fallPc;
            e.headerEvent = fe.flags & vm::kTplFallHeader;
            out.push_back(e);
            checkTransfer(b, fe.fall, fe.fallPc, "fall edge");
            return true;
          }
          case TerminatorKind::None:
            return false;
        }
        return false;
    }

    /** Layout and baseline-counter reads on Cond/Switch terminators:
     *  the template's baked copies must equal the version's live state
     *  (miss penalties and one-time counters fire identically). */
    void
    checkBranchReads(cfg::BlockId b, const vm::Template &tt,
                     bytecode::Pc last)
    {
        if (tt.layout != cm_.layoutFor(b) && !capped(layoutMismatches_)) {
            std::ostringstream os;
            os << "template layout " << tt.layout
               << " != installed branchLayout " << cm_.layoutFor(b)
               << " (stale template: layout misses diverge)";
            errorAtPc("layout", last, os.str());
        }
        const bool tpl_baseline = tt.flags & vm::kTplBaselineEdge;
        if (tpl_baseline != cm_.baselineEdgeInstr &&
            !capped(baselineMismatches_)) {
            std::ostringstream os;
            os << "template baseline-edge flag "
               << (tpl_baseline ? "set" : "clear")
               << " but the version's baselineEdgeInstr is "
               << (cm_.baselineEdgeInstr ? "true" : "false");
            errorAtPc("baseline", last, os.str());
        }
    }

    void
    compareExit(cfg::BlockId b, std::uint32_t index,
                const ExitEffect &ref, const ExitEffect &tpl)
    {
        if (ref.flatId != tpl.flatId && !capped(exitMismatches_)) {
            std::ostringstream os;
            os << "flat edge id " << tpl.flatId
               << " under the threaded engine but " << ref.flatId
               << " under switch dispatch";
            errorAtEdge("control-exit", {b, index}, os.str());
        }
        if (ref.toExit != tpl.toExit && !capped(exitMismatches_)) {
            errorAtEdge("control-exit", {b, index},
                        "one engine leaves the method, the other "
                        "transfers");
            return;
        }
        if (!ref.toExit && ref.targetPc != tpl.targetPc &&
            !capped(exitMismatches_)) {
            std::ostringstream os;
            os << "threaded engine transfers to pc " << tpl.targetPc
               << ", switch dispatch to pc " << ref.targetPc;
            errorAtEdge("control-exit", {b, index}, os.str());
        }
        if (ref.headerEvent != tpl.headerEvent &&
            !capped(headerMismatches_)) {
            std::ostringstream os;
            os << "loop-header events "
               << (tpl.headerEvent ? "fire" : "do not fire")
               << " under the threaded engine but "
               << (ref.headerEvent ? "fire" : "do not fire")
               << " under switch dispatch";
            errorAtEdge("yieldpoint", {b, index}, os.str());
        }
    }

    const EngineEquivInput &in_;
    DiagnosticList &diags_;
    const bytecode::MethodCfg &cfg_;
    const bytecode::Method &code_;
    const vm::CompiledMethod &cm_;
    const vm::DecodedMethod &dm_;

    std::vector<std::uint32_t> refBase_;
    std::vector<std::uint64_t> tplCost_;
    std::vector<std::uint64_t> tplNinstr_;
    std::vector<std::int64_t> fallEdgeTpl_;
    bool tracesUsable_ = true;

    std::size_t costMismatches_ = 0;
    std::size_t cfgMismatches_ = 0;
    std::size_t transferMismatches_ = 0;
    std::size_t layoutMismatches_ = 0;
    std::size_t baselineMismatches_ = 0;
    std::size_t exitMismatches_ = 0;
    std::size_t headerMismatches_ = 0;
};

} // namespace

bool
checkEngineEquivalence(const EngineEquivInput &input,
                       DiagnosticList &diagnostics)
{
    EquivChecker checker(input, diagnostics);
    return checker.run();
}

} // namespace pep::analysis
