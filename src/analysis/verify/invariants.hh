#ifndef PEP_ANALYSIS_VERIFY_INVARIANTS_HH
#define PEP_ANALYSIS_VERIFY_INVARIANTS_HH

/**
 * @file
 * Pass 3 of pep-verify: invariant escape audits (docs/ANALYSIS.md).
 * Two repository invariants allow in-place mutation of installed state
 * only when a re-establishing call follows:
 *
 *  - the flat-mirror rule: `InstrumentationPlan::flatEdgeActions` /
 *    `edgeBase` are derived from the nested `edgeActions`; any nested
 *    mutation must be followed by `rebuildFlat()` before the plan is
 *    executed (PR-2, enforced dynamically by the differ's
 *    stale-flat/corrupt-flat injections);
 *  - the template rule: the threaded engine's cached template streams
 *    bake in an installed version's branch layout, costs and flags;
 *    any in-place version mutation (`Machine::versionForUpdate`) must
 *    be followed by `Machine::invalidateDecoded` (docs/ENGINE.md,
 *    enforced dynamically by the stale-template injection).
 *
 * These audits prove the *current* state discharges both rules:
 *
 *  - auditPlanMirror re-derives the flat mirror from the nested
 *    actions and compares memberwise — a stale or corrupted mirror is
 *    caught without executing a single instruction;
 *  - auditMachineDecoded re-translates every version with a cached
 *    stream (translation is a pure function of the installed version)
 *    and compares memberwise — a stale stream is caught the same way;
 *  - auditMutationJournal walks the machine's escape/sanitize journal
 *    and proves every `versionForUpdate` escape was followed by a
 *    matching `invalidateDecoded` — the conservative source-discipline
 *    check: it flags a skipped invalidate even if the mutation happened
 *    to leave the baked-in state unchanged;
 *  - auditCloneJournal extends the discipline to the path-cloning
 *    pass (src/opt/path_clone.hh): every installed version must appear
 *    in the machine's compile journal with a matching cloneApplied
 *    flag — a clone-applied version absent from the journal, or whose
 *    installed flag disagrees with its recorded compile, acquired its
 *    synthesized body outside Machine::compile()'s pass pipeline and
 *    therefore outside the template rule the pipeline guarantees
 *    (in-place mutations after the compile remain the mutation
 *    journal's concern).
 *
 * Findings are reported under pass "invariants".
 */

#include <cstdint>
#include <string>

#include "analysis/diagnostics.hh"
#include "profile/instr_plan.hh"

namespace pep::vm {
class Machine;
}

namespace pep::analysis {

/**
 * Prove a plan's flattened mirror is exactly what rebuildFlat() would
 * derive from its nested edgeActions. Returns true if no errors were
 * added.
 */
bool auditPlanMirror(const profile::InstrumentationPlan &plan,
                     const std::string &method_name, bool has_version,
                     std::uint32_t version,
                     DiagnosticList &diagnostics);

/**
 * Prove every cached template stream equals a fresh translation of its
 * installed version. Returns true if no errors were added.
 */
bool auditMachineDecoded(const vm::Machine &machine,
                         DiagnosticList &diagnostics);

/**
 * Prove every versionForUpdate escape in the machine's mutation
 * journal is followed by a matching invalidateDecoded sanitize.
 * Returns true if no errors were added.
 */
bool auditMutationJournal(const vm::Machine &machine,
                          DiagnosticList &diagnostics);

/**
 * Prove every installed version's clone state matches the machine's
 * compile journal: the version was recorded by compile(), its
 * cloneApplied flag agrees with the record, and clone-applied versions
 * really carry a synthesized body. Returns true if no errors were
 * added.
 */
bool auditCloneJournal(const vm::Machine &machine,
                       DiagnosticList &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_VERIFY_INVARIANTS_HH
