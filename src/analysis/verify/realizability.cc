#include "analysis/verify/realizability.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "profile/reconstruct.hh"
#include "support/panic.hh"
#include "vm/machine.hh"

namespace pep::analysis {

namespace {

constexpr std::size_t kMaxPerCategory = 8;
constexpr char kPass[] = "realizability";

/** Blocks reachable from the CFG entry (edges out of the others must
 *  never fire, so their counts must be zero). */
std::vector<bool>
reachableBlocks(const cfg::Graph &graph)
{
    std::vector<bool> seen(graph.numBlocks(), false);
    std::vector<cfg::BlockId> work{graph.entry()};
    seen[graph.entry()] = true;
    while (!work.empty()) {
        const cfg::BlockId b = work.back();
        work.pop_back();
        for (const cfg::BlockId s : graph.succs(b)) {
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    return seen;
}

class EdgeChecker
{
  public:
    EdgeChecker(const bytecode::MethodCfg &cfg,
                const profile::MethodEdgeProfile &profile,
                const RealizabilityOptions &options,
                const std::string &method_name,
                DiagnosticList &diagnostics)
        : cfg_(cfg), profile_(profile), opts_(options),
          method_(method_name), diags_(diagnostics)
    {
    }

    bool
    run()
    {
        const std::size_t before = diags_.errorCount();
        if (!checkShape())
            return diags_.errorCount() == before;
        checkConservation();
        checkReachability();
        checkWalkBounds();
        return diags_.errorCount() == before;
    }

  private:
    void
    error(const char *check, const std::string &message)
    {
        Diagnostic &d =
            diags_.report(Severity::Error, kPass, method_, message);
        d.check = check;
    }

    void
    errorAtEdge(const char *check, cfg::EdgeRef edge,
                const std::string &message)
    {
        Diagnostic &d = diags_.reportAtEdge(Severity::Error, kPass,
                                            method_, edge, message);
        d.check = check;
    }

    bool
    capped(const char *check, std::size_t &counter)
    {
        if (counter == kMaxPerCategory) {
            Diagnostic &d = diags_.report(
                Severity::Note, kPass, method_,
                "further findings of this kind suppressed");
            d.check = check;
        }
        return counter++ >= kMaxPerCategory;
    }

    bool
    checkShape()
    {
        const auto &counts = profile_.counts();
        if (counts.size() != cfg_.graph.numBlocks()) {
            std::ostringstream os;
            os << opts_.what << " count table has " << counts.size()
               << " blocks, CFG has " << cfg_.graph.numBlocks();
            error("shape", os.str());
            return false;
        }
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            if (counts[b].size() != cfg_.graph.succs(b).size()) {
                std::ostringstream os;
                os << opts_.what << " block " << b << " has "
                   << counts[b].size() << " edge counters for "
                   << cfg_.graph.succs(b).size() << " successors";
                error("shape", os.str());
                return false;
            }
        }
        return true;
    }

    std::uint64_t
    outflow(cfg::BlockId b) const
    {
        std::uint64_t sum = 0;
        for (const std::uint64_t c : profile_.counts()[b])
            sum += c;
        return sum;
    }

    /** Kirchhoff: whatever flows into a code block must flow out.
     *  Sampled paths are walks whose endpoints are method entry/exit
     *  and loop headers, so interior (non-header) blocks conserve for
     *  any sum of recorded walks; complete-frame truth counts conserve
     *  at headers too. */
    void
    checkConservation()
    {
        const auto &counts = profile_.counts();
        std::vector<std::uint64_t> inflow(cfg_.graph.numBlocks(), 0);
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            const auto &succs = cfg_.graph.succs(b);
            for (std::size_t i = 0; i < succs.size(); ++i)
                inflow[succs[i]] += counts[b][i];
        }
        std::size_t findings = 0;
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            if (!cfg_.isCodeBlock(b))
                continue;
            if (cfg_.isLoopHeader[b] && !opts_.requireHeaderConservation)
                continue;
            const std::uint64_t out = outflow(b);
            if (inflow[b] != out &&
                !capped("flow-conservation", findings)) {
                std::ostringstream os;
                os << opts_.what << " violates flow conservation at "
                   << (cfg_.isLoopHeader[b] ? "header " : "block ") << b
                   << ": inflow " << inflow[b] << ", outflow " << out
                   << " — no execution can record this";
                error("flow-conservation", os.str());
            }
        }
    }

    void
    checkReachability()
    {
        const std::vector<bool> reachable = reachableBlocks(cfg_.graph);
        std::size_t findings = 0;
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            if (reachable[b])
                continue;
            const auto &counts = profile_.counts()[b];
            for (std::size_t i = 0; i < counts.size(); ++i) {
                if (counts[i] != 0 &&
                    !capped("unreachable-flow", findings)) {
                    std::ostringstream os;
                    os << opts_.what << " records " << counts[i]
                       << " executions of an edge leaving statically "
                          "unreachable block "
                       << b;
                    errorAtEdge("unreachable-flow",
                                {b, static_cast<std::uint32_t>(i)},
                                os.str());
                }
            }
        }
    }

    /** Each recorded walk is acyclic in the P-DAG, so it crosses any
     *  CFG edge at most once and enters/leaves the method at most
     *  once; `maxWalks` walks bound every counter. */
    void
    checkWalkBounds()
    {
        if (opts_.maxWalks == 0)
            return;
        std::size_t findings = 0;
        const auto &counts = profile_.counts();
        // A k-BLPP window concatenates up to `walkMultiplicity` acyclic
        // segments, so one walk may cross an edge that many times.
        const std::uint64_t multiplicity =
            opts_.walkMultiplicity == 0 ? 1 : opts_.walkMultiplicity;
        const std::uint64_t per_edge = opts_.maxWalks * multiplicity;
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            for (std::size_t i = 0; i < counts[b].size(); ++i) {
                if (counts[b][i] > per_edge &&
                    !capped("walk-bound", findings)) {
                    std::ostringstream os;
                    os << opts_.what << " counts "
                       << counts[b][i] << " crossings of one edge but "
                          "only "
                       << opts_.maxWalks << " walks were recorded";
                    if (multiplicity > 1) {
                        os << " (x" << multiplicity
                           << " segments per window)";
                    }
                    errorAtEdge("walk-bound",
                                {b, static_cast<std::uint32_t>(i)},
                                os.str());
                }
            }
        }
        const std::uint64_t entry_out = outflow(cfg_.graph.entry());
        if (entry_out > opts_.maxWalks && !capped("walk-bound", findings)) {
            std::ostringstream os;
            os << opts_.what << " records " << entry_out
               << " method entries but only " << opts_.maxWalks
               << " walks";
            error("walk-bound", os.str());
        }
        std::uint64_t exit_in = 0;
        for (cfg::BlockId b = 0; b < cfg_.graph.numBlocks(); ++b) {
            const auto &succs = cfg_.graph.succs(b);
            for (std::size_t i = 0; i < succs.size(); ++i) {
                if (succs[i] == cfg_.graph.exit())
                    exit_in += counts[b][i];
            }
        }
        if (exit_in > opts_.maxWalks && !capped("walk-bound", findings)) {
            std::ostringstream os;
            os << opts_.what << " records " << exit_in
               << " method exits but only " << opts_.maxWalks
               << " walks";
            error("walk-bound", os.str());
        }
    }

    const bytecode::MethodCfg &cfg_;
    const profile::MethodEdgeProfile &profile_;
    const RealizabilityOptions &opts_;
    const std::string &method_;
    DiagnosticList &diags_;
};

} // namespace

bool
checkEdgeProfileRealizability(const bytecode::MethodCfg &cfg,
                              const profile::MethodEdgeProfile &profile,
                              const RealizabilityOptions &options,
                              const std::string &method_name,
                              DiagnosticList &diagnostics)
{
    EdgeChecker checker(cfg, profile, options, method_name, diagnostics);
    return checker.run();
}

bool
checkEdgeSetRealizability(const vm::Machine &machine,
                          const profile::EdgeProfileSet &set,
                          const RealizabilityOptions &options,
                          DiagnosticList &diagnostics)
{
    const std::size_t before = diagnostics.errorCount();
    if (set.perMethod.size() != machine.numMethods()) {
        std::ostringstream os;
        os << options.what << " covers " << set.perMethod.size()
           << " methods, the program has " << machine.numMethods();
        Diagnostic &d = diagnostics.report(Severity::Error, kPass,
                                           /*method=*/"", os.str());
        d.check = "shape";
        return false;
    }
    for (bytecode::MethodId m = 0; m < machine.numMethods(); ++m) {
        checkEdgeProfileRealizability(
            machine.info(m).cfg, set.perMethod[m], options,
            machine.program().methods[m].name, diagnostics);
    }
    return diagnostics.errorCount() == before;
}

bool
checkPathProfileRealizability(
    const profile::InstrumentationPlan &plan,
    const profile::PathReconstructor &reconstructor,
    const profile::MethodPathProfile &paths,
    const RealizabilityOptions &options, std::uint64_t max_total,
    const std::string &method_name, bool has_version,
    std::uint32_t version, DiagnosticList &diagnostics,
    const profile::KPathScheme *kpath)
{
    const std::size_t before = diagnostics.errorCount();
    const auto report = [&](const char *check,
                            const std::string &message) {
        Diagnostic &d = diagnostics.report(Severity::Error, kPass,
                                           method_name, message);
        d.check = check;
        d.hasVersion = has_version;
        d.version = version;
    };

    if (!plan.enabled) {
        if (paths.numDistinctPaths() != 0) {
            std::ostringstream os;
            os << options.what << " records "
               << paths.numDistinctPaths()
               << " paths against a disabled (overflowed) plan";
            report("path-range", os.str());
        }
        return diagnostics.errorCount() == before;
    }

    // Hash-map iteration order is unspecified; sort the numbers first
    // so diagnostics come out deterministically.
    std::vector<std::uint64_t> numbers;
    numbers.reserve(paths.paths().size());
    for (const auto &entry : paths.paths())
        numbers.push_back(entry.first);
    std::sort(numbers.begin(), numbers.end());

    // Under a k-BLPP scheme, composite window ids extend the valid
    // range past the per-segment numbering.
    const std::uint64_t id_limit =
        kpath != nullptr ? kpath->maxId() : plan.totalPaths;

    std::size_t range_findings = 0;
    std::uint64_t total = 0;
    for (const std::uint64_t number : numbers) {
        total += paths.find(number)->count;
        if (number >= id_limit) {
            if (range_findings++ < kMaxPerCategory) {
                std::ostringstream os;
                os << options.what << " records path number " << number
                   << " but the numbering has only " << plan.totalPaths
                   << " paths";
                if (kpath != nullptr) {
                    os << " (k=" << kpath->kEffective()
                       << " id space ends at " << id_limit << ")";
                }
                report("path-range", os.str());
            }
            continue;
        }
        if (kpath != nullptr && number >= kpath->base()) {
            // Composite id: every digit must reconstruct, and the
            // digits must chain — segment j ends at the header segment
            // j+1 starts from, and only the final segment may end at
            // method exit (exits always flush the window).
            const std::vector<std::uint64_t> digits =
                kpath->decode(number);
            cfg::BlockId prev_end = cfg::kInvalidBlock;
            for (std::size_t j = 0; j < digits.size(); ++j) {
                profile::ReconstructedPath segment;
                try {
                    segment = reconstructor.reconstruct(digits[j]);
                } catch (const support::PanicError &e) {
                    if (range_findings++ < kMaxPerCategory) {
                        std::ostringstream os;
                        os << options.what << " k-path id " << number
                           << " digit " << j << " (" << digits[j]
                           << ") does not reconstruct: " << e.what();
                        report("path-reconstruct", os.str());
                    }
                    break;
                }
                if (j > 0) {
                    if (prev_end == cfg::kInvalidBlock) {
                        if (range_findings++ < kMaxPerCategory) {
                            std::ostringstream os;
                            os << options.what << " k-path id "
                               << number << " has a segment ending at "
                                  "method exit before digit "
                               << j
                               << " — exits always close the window";
                            report("kpath-chain", os.str());
                        }
                        break;
                    }
                    if (segment.startHeader != prev_end) {
                        if (range_findings++ < kMaxPerCategory) {
                            std::ostringstream os;
                            os << options.what << " k-path id "
                               << number << " digit " << j
                               << " starts at header "
                               << segment.startHeader
                               << " but the previous segment ended at "
                               << prev_end
                               << " — no frame walks this window";
                            report("kpath-chain", os.str());
                        }
                        break;
                    }
                }
                prev_end = segment.endHeader;
            }
            continue;
        }
        try {
            (void)reconstructor.reconstructDagEdges(number);
        } catch (const support::PanicError &e) {
            if (range_findings++ < kMaxPerCategory) {
                std::ostringstream os;
                os << options.what << " path number " << number
                   << " does not reconstruct: " << e.what();
                report("path-reconstruct", os.str());
            }
        }
    }
    if (range_findings > kMaxPerCategory) {
        Diagnostic &d = diagnostics.report(
            Severity::Note, kPass, method_name,
            "further findings of this kind suppressed");
        d.check = "path-range";
        d.hasVersion = has_version;
        d.version = version;
    }

    if (max_total != 0 && total > max_total) {
        std::ostringstream os;
        os << options.what << " holds " << total
           << " path samples but at most " << max_total
           << " were recorded";
        report("walk-bound", os.str());
    }
    return diagnostics.errorCount() == before;
}

} // namespace pep::analysis
