#ifndef PEP_ANALYSIS_VERIFY_ENGINE_EQUIV_HH
#define PEP_ANALYSIS_VERIFY_ENGINE_EQUIV_HH

/**
 * @file
 * Pass 1 of pep-verify: symbolic cross-engine equivalence
 * (docs/ANALYSIS.md). The switch interpreter executes bytecode and
 * consults the installed CompiledMethod live; the threaded engine
 * executes the version's pre-decoded template stream
 * (vm/decoded_method.hh) with layouts, flat-edge bases, header flags
 * and segment charges baked in at translation time. The differ's
 * check 7 proves the two byte-identical *dynamically*, per run; this
 * pass proves it *statically*, for all inputs, by abstractly executing
 * both representations one basic block at a time and comparing their
 * observable effects:
 *
 *  - cycle charges: the per-instruction scaled costs the switch engine
 *    charges over a block must equal the folded segment sums the
 *    threaded engine charges on the block's segment-leader templates
 *    (a per-block strengthening of plan-checker check 9's global sum);
 *  - instruction counts: same, for the ninstr counter;
 *  - profile-counter effects: every block exit must fire the same CFG
 *    edge (src block, successor index) at the same dense flat id
 *    (`edgeBase[src] + index`), so every attached profiler's
 *    flatEdgeActions dispatch is identical under both engines;
 *  - yieldpoint/header placement: an exit transfers into a loop-header
 *    leader pc on one side iff the template carries the corresponding
 *    header flag, so onLoopHeader hooks and LoopHeader yieldpoints
 *    fire identically;
 *  - branch-layout reads: the layout the threaded engine baked into a
 *    Cond/Switch terminator template equals the version's live
 *    branchLayout, so layout-miss penalties agree;
 *  - baseline edge counters: the one-time-instrumentation flag on
 *    Cond/Switch terminators equals CompiledMethod::baselineEdgeInstr.
 *
 * Method entry (the {entry, 0} edge and entry-header events) is shared
 * pushFrame code outside the template stream, identical by
 * construction; it is out of scope here. Back-edge yieldpoints fire in
 * a helper shared by both engines keyed only on the CFG EdgeRef, so
 * edge equality above covers them.
 *
 * Findings are reported under pass "engine-equiv" with a per-category
 * check id, capped like the plan checker's.
 */

#include <cstdint>
#include <string>

#include "analysis/diagnostics.hh"
#include "bytecode/method.hh"

namespace pep::vm {
class CompiledMethod;
struct DecodedMethod;
struct MethodInfo;
}

namespace pep::analysis {

/** Everything the equivalence check inspects for one version. `code`
 *  and `info` must be the code the version executes (the inlined
 *  body's when the version has one). */
struct EngineEquivInput
{
    const bytecode::Method *code = nullptr;
    const vm::MethodInfo *info = nullptr;
    const vm::CompiledMethod *cm = nullptr;
    const vm::DecodedMethod *decoded = nullptr;

    /** Method name used in diagnostics. */
    std::string methodName;

    /** Compiled version number, when verifying an installed version. */
    bool hasVersion = false;
    std::uint32_t version = 0;
};

/**
 * Prove the template stream and the bytecode have identical abstract
 * effects per basic block (see file comment). Returns true if no
 * errors were added.
 */
bool checkEngineEquivalence(const EngineEquivInput &input,
                            DiagnosticList &diagnostics);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_VERIFY_ENGINE_EQUIV_HH
