#ifndef PEP_ANALYSIS_VERIFY_REALIZABILITY_HH
#define PEP_ANALYSIS_VERIFY_REALIZABILITY_HH

/**
 * @file
 * Pass 2 of pep-verify: profile realizability (docs/ANALYSIS.md). Any
 * edge profile a correct run can record satisfies flow-conservation
 * constraints over its CFG; any path profile satisfies numbering-range
 * constraints against its instrumentation plan. This pass checks a
 * *recorded* profile against those constraints and statically rejects
 * impossible ones — profiles no execution could have produced, i.e.
 * corrupted counters, misfired flat-edge ids, or broken sampling
 * bookkeeping.
 *
 * Edge-profile constraints:
 *  - shape: the count table must parallel the CFG's successor lists;
 *  - Kirchhoff flow conservation: at every non-header code block,
 *    inflow equals outflow. Full-frame truth profiles also conserve at
 *    loop headers (opt-in, `requireHeaderConservation`) — sampled and
 *    path-derived profiles do not, because paths start/end at headers;
 *  - reachability: edges leaving statically-unreachable blocks must
 *    have zero counts;
 *  - walk bounds (when `maxWalks` is known): each sampled path is an
 *    acyclic P-DAG walk, so it uses a CFG edge at most once. With at
 *    most `maxWalks` recorded walks, every edge count is at most
 *    `maxWalks`, as are the method-entry outflow and method-exit
 *    inflow.
 *
 * Path-profile constraints:
 *  - every recorded path number is in [0, plan.totalPaths) — or, when
 *    the profile was collected under a k-BLPP scheme, in
 *    [0, kpath.maxId());
 *  - every recorded path number reconstructs to a valid P-DAG walk
 *    (the reconstructor panics otherwise); composite k-path ids must
 *    reconstruct digit by digit *and* chain — each non-final segment
 *    ends at the header the next segment starts from, and never at
 *    method exit (a frame's exit always closes its window);
 *  - when `maxTotal` is known, the summed counts fit the sample budget.
 *
 * Findings are reported under pass "realizability".
 */

#include <cstdint>
#include <string>

#include "analysis/diagnostics.hh"
#include "bytecode/cfg_builder.hh"
#include "profile/edge_profile.hh"
#include "profile/instr_plan.hh"
#include "profile/kpath.hh"
#include "profile/path_profile.hh"

namespace pep::vm {
class Machine;
}

namespace pep::analysis {

/** Which constraints apply to the profile being checked. */
struct RealizabilityOptions
{
    /**
     * Require inflow == outflow at loop headers too. Sound only for
     * complete-frame edge counts (ground truth with no dropped or
     * adopted frames); path-derived profiles conserve only at
     * non-header blocks.
     */
    bool requireHeaderConservation = false;

    /**
     * Upper bound on the number of recorded walks (e.g. the sampler's
     * samplesRecorded, or a full profiler's pathsStored). 0 = unknown,
     * bounds are skipped.
     */
    std::uint64_t maxWalks = 0;

    /**
     * Per-edge crossings one recorded walk may contribute. 1 for
     * single-segment paths (acyclic walks use an edge at most once);
     * k for k-BLPP windows, which concatenate up to k acyclic
     * segments and so may cross one CFG edge up to k times. Method
     * entry/exit bounds are unaffected — every walk still enters and
     * leaves the method at most once.
     */
    std::uint64_t walkMultiplicity = 1;

    /** Label describing the profile's origin, used in messages
     *  (e.g. "truth", "pep-sampled"). */
    std::string what = "profile";
};

/**
 * Check one method's recorded edge profile against its CFG's flow
 * constraints. Returns true if no errors were added.
 */
bool checkEdgeProfileRealizability(
    const bytecode::MethodCfg &cfg,
    const profile::MethodEdgeProfile &profile,
    const RealizabilityOptions &options, const std::string &method_name,
    DiagnosticList &diagnostics);

/**
 * Check every method of a recorded EdgeProfileSet against the
 * machine's CFGs. Returns true if no errors were added.
 */
bool checkEdgeSetRealizability(const vm::Machine &machine,
                               const profile::EdgeProfileSet &set,
                               const RealizabilityOptions &options,
                               DiagnosticList &diagnostics);

/**
 * Check a recorded path profile against the plan it was collected
 * under. Returns true if no errors were added.
 *
 * @param maxTotal  upper bound on summed path counts (0 = unknown).
 * @param kpath     the k-BLPP id scheme the profile was collected
 *                  under; null means classic single-iteration ids.
 */
bool checkPathProfileRealizability(
    const profile::InstrumentationPlan &plan,
    const profile::PathReconstructor &reconstructor,
    const profile::MethodPathProfile &paths,
    const RealizabilityOptions &options, std::uint64_t max_total,
    const std::string &method_name, bool has_version,
    std::uint32_t version, DiagnosticList &diagnostics,
    const profile::KPathScheme *kpath = nullptr);

} // namespace pep::analysis

#endif // PEP_ANALYSIS_VERIFY_REALIZABILITY_HH
