#include "analysis/verify/verify.hh"

#include "analysis/plan_check.hh"
#include "analysis/verify/engine_equiv.hh"
#include "analysis/verify/invariants.hh"
#include "bytecode/cfg_builder.hh"
#include "bytecode/verifier.hh"
#include "vm/compiled_method.hh"
#include "vm/cost_model.hh"
#include "vm/decoded_method.hh"
#include "vm/inliner.hh"
#include "vm/machine.hh"

namespace pep::analysis {

namespace {

/** The canonical translation pep_lint's check 9 also uses: full-opt
 *  costs, no layout information, no baseline instrumentation. */
vm::CompiledMethod
canonicalVersion(const bytecode::MethodCfg &cfg)
{
    vm::CompiledMethod cm;
    cm.level = vm::OptLevel::Opt2;
    const vm::CostModel cost;
    cm.scaledCost.resize(bytecode::kNumOpcodes);
    for (std::size_t op = 0; op < bytecode::kNumOpcodes; ++op)
        cm.scaledCost[op] =
            cost.instrCost(static_cast<bytecode::Opcode>(op));
    cm.branchLayout.assign(cfg.graph.numBlocks(), -1);
    return cm;
}

} // namespace

bool
verifyProgram(bytecode::Program &program, DiagnosticList &diagnostics)
{
    const std::size_t before = diagnostics.errorCount();

    const bytecode::VerifyResult verified =
        bytecode::verifyProgram(program);
    for (const bytecode::VerifyDiagnostic &d : verified.diagnostics) {
        Diagnostic &out = diagnostics.report(Severity::Error, "verify",
                                             d.method, d.message);
        out.hasPc = d.hasPc;
        out.pc = d.pc;
    }
    // The CFG builder panics on unverified code; stop here.
    if (!verified.ok)
        return false;

    // The equivalence proof must hold under every fusion selection —
    // fused segments included (under the canonical all-fall-through
    // layout `traces` straightens real chains).
    const vm::FuseOptions fuse_matrix[] = {
        {false, false}, {true, false}, {false, true}, {true, true}};
    for (const bytecode::Method &method : program.methods) {
        const vm::MethodInfo info = vm::buildMethodInfo(method);
        const vm::CompiledMethod cm = canonicalVersion(info.cfg);
        for (const vm::FuseOptions &fuse : fuse_matrix) {
            const vm::DecodedMethod decoded =
                vm::translateMethod(method, info, cm, fuse);

            EngineEquivInput input;
            input.code = &method;
            input.info = &info;
            input.cm = &cm;
            input.decoded = &decoded;
            input.methodName = method.name;
            checkEngineEquivalence(input, diagnostics);

            FusedCheckInput fused;
            fused.decoded = &decoded;
            fused.methodName = method.name;
            checkFusedStream(fused, diagnostics);
        }
    }
    return diagnostics.errorCount() == before;
}

bool
verifyMachine(const vm::Machine &machine, DiagnosticList &diagnostics,
              const VerifyOptions &options)
{
    const std::size_t before = diagnostics.errorCount();

    if (options.checkEquivalence) {
        for (bytecode::MethodId m = 0; m < machine.numMethods(); ++m) {
            for (std::uint32_t v = 0; v < machine.numVersions(m); ++v) {
                const vm::CompiledMethod *cm = machine.versionAt(m, v);
                // The version executes its inlined body's code when it
                // has one; all block ids refer to that CFG.
                const bytecode::Method *code =
                    cm->inlinedBody ? &cm->inlinedBody->method
                                    : &machine.program().methods[m];
                const vm::MethodInfo *info = cm->inlinedBody
                                                 ? &cm->inlinedBody->info
                                                 : &machine.info(m);
                // Verify under the machine's live fusion selection —
                // the streams the threaded engine actually executes.
                const vm::DecodedMethod decoded = vm::translateMethod(
                    *code, *info, *cm, machine.params().fuse);

                EngineEquivInput input;
                input.code = code;
                input.info = info;
                input.cm = cm;
                input.decoded = &decoded;
                input.methodName = machine.program().methods[m].name;
                input.hasVersion = true;
                input.version = v;
                checkEngineEquivalence(input, diagnostics);

                FusedCheckInput fused;
                fused.decoded = &decoded;
                fused.methodName = machine.program().methods[m].name;
                checkFusedStream(fused, diagnostics);
            }
        }
    }

    if (options.checkCachedStreams)
        auditMachineDecoded(machine, diagnostics);
    if (options.checkJournal)
        auditMutationJournal(machine, diagnostics);
    if (options.checkClones) {
        auditCloneJournal(machine, diagnostics);
        for (bytecode::MethodId m = 0; m < machine.numMethods(); ++m) {
            for (std::uint32_t v = 0; v < machine.numVersions(m); ++v) {
                const vm::CompiledMethod *cm = machine.versionAt(m, v);
                if (!cm->cloneApplied || !cm->inlinedBody)
                    continue;
                CloneCheckInput input;
                input.rootMethod = m;
                input.originalCfg = &machine.info(m).cfg;
                input.body = cm->inlinedBody.get();
                input.methodName = machine.program().methods[m].name;
                checkClonedBody(input, diagnostics);
            }
        }
    }

    return diagnostics.errorCount() == before;
}

} // namespace pep::analysis
