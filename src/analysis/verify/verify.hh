#ifndef PEP_ANALYSIS_VERIFY_VERIFY_HH
#define PEP_ANALYSIS_VERIFY_VERIFY_HH

/**
 * @file
 * Driver for the pep-verify passes (docs/ANALYSIS.md):
 *
 *  1. engine equivalence  (verify/engine_equiv.hh)
 *  2. profile realizability (verify/realizability.hh)
 *  3. invariant escape audits (verify/invariants.hh)
 *
 * Two entry points:
 *
 *  - verifyProgram: static, no VM. Runs the bytecode verifier, then
 *    translates every method for the threaded engine exactly as the
 *    VM would at full opt (no layout information) and proves the
 *    template stream equivalent to the bytecode. This is what
 *    `pep_lint --verify` and `pep-verify --static-only` run.
 *
 *  - verifyMachine: inspects a live VM after (or during) a run. For
 *    every installed compiled version it re-translates the version
 *    (using the inlined body's code when the version has one) and
 *    proves engine equivalence against the *installed* state — baked
 *    layouts included — then audits cached template streams and the
 *    escape/sanitize journal. Realizability of recorded profiles is
 *    checked by the callers that own the profilers (the pep-verify
 *    tool and the differ), since the analysis layer does not depend
 *    on the profiler runtime.
 */

#include "analysis/diagnostics.hh"
#include "bytecode/method.hh"

namespace pep::vm {
class Machine;
}

namespace pep::analysis {

/** Which verifyMachine audits to run (all on by default). */
struct VerifyOptions
{
    bool checkEquivalence = true;
    bool checkCachedStreams = true;
    bool checkJournal = true;

    /** Clone discipline: compile-journal agreement for every version
     *  (auditCloneJournal) plus the check-11 origin audit of every
     *  clone-synthesized body. */
    bool checkClones = true;
};

/**
 * Static verification of a program: bytecode verifier + engine
 * equivalence of the canonical full-opt translation of every method.
 * The program is mutated only the way verification mutates it
 * (maxStack is filled in). Returns true if no errors were added.
 */
bool verifyProgram(bytecode::Program &program,
                   DiagnosticList &diagnostics);

/**
 * Verify a live machine's installed versions: engine equivalence per
 * version, cached-stream freshness, journal discipline. Returns true
 * if no errors were added.
 */
bool verifyMachine(const vm::Machine &machine,
                   DiagnosticList &diagnostics,
                   const VerifyOptions &options = {});

} // namespace pep::analysis

#endif // PEP_ANALYSIS_VERIFY_VERIFY_HH
