#include "analysis/verify/invariants.hh"

#include <map>
#include <sstream>

#include "vm/inliner.hh"

#include "vm/compiled_method.hh"
#include "vm/decoded_method.hh"
#include "vm/machine.hh"

namespace pep::analysis {

namespace {

constexpr std::size_t kMaxPerCategory = 8;
constexpr char kPass[] = "invariants";

Diagnostic &
reportError(DiagnosticList &diags, const char *check,
            const std::string &method, bool has_version,
            std::uint32_t version, const std::string &message)
{
    Diagnostic &d =
        diags.report(Severity::Error, kPass, method, message);
    d.check = check;
    d.hasVersion = has_version;
    d.version = version;
    return d;
}

bool
sameAction(const profile::EdgeAction &a, const profile::EdgeAction &b)
{
    return a.increment == b.increment && a.endsPath == b.endsPath &&
           a.endAdd == b.endAdd && a.restart == b.restart;
}

std::string
describeAction(const profile::EdgeAction &a)
{
    std::ostringstream os;
    os << "{increment " << a.increment << ", endsPath "
       << (a.endsPath ? "true" : "false") << ", endAdd " << a.endAdd
       << ", restart " << a.restart << "}";
    return os.str();
}

bool
sameTemplate(const vm::Template &a, const vm::Template &b)
{
    return a.op == b.op && a.flags == b.flags && a.sub == b.sub &&
           a.fuseLen == b.fuseLen && a.layout == b.layout &&
           a.cost == b.cost && a.ninstr == b.ninstr && a.a == b.a &&
           a.b == b.b && a.block == b.block &&
           a.flatBase == b.flatBase && a.taken == b.taken &&
           a.takenPc == b.takenPc && a.takenBlock == b.takenBlock &&
           a.fall == b.fall && a.fallPc == b.fallPc &&
           a.fallBlock == b.fallBlock && a.swFirst == b.swFirst &&
           a.swCount == b.swCount && a.pc == b.pc;
}

/** First difference between a cached stream and a fresh translation,
 *  or the empty string when they are identical. */
std::string
firstStreamDiff(const vm::DecodedMethod &cached,
                const vm::DecodedMethod &fresh)
{
    std::ostringstream os;
    if (cached.fuse != fresh.fuse)
        return "fusion options differ from a fresh translation";
    if (cached.traces != fresh.traces)
        return "trace selection differs from a fresh translation";
    if (cached.blockTrace != fresh.blockTrace)
        return "blockTrace differs from a fresh translation";
    if (cached.stream.size() != fresh.stream.size()) {
        os << "cached stream has " << cached.stream.size()
           << " templates, fresh translation " << fresh.stream.size();
        return os.str();
    }
    for (std::size_t i = 0; i < cached.stream.size(); ++i) {
        if (!sameTemplate(cached.stream[i], fresh.stream[i])) {
            const vm::Template &c = cached.stream[i];
            const vm::Template &f = fresh.stream[i];
            os << "template " << i << " (pc " << f.pc
               << ") differs from a fresh translation";
            if (c.layout != f.layout) {
                os << ": cached layout " << c.layout << ", fresh "
                   << f.layout;
            } else if (c.cost != f.cost) {
                os << ": cached cost " << c.cost << ", fresh " << f.cost;
            } else if (c.flags != f.flags) {
                os << ": cached flags " << int(c.flags) << ", fresh "
                   << int(f.flags);
            }
            return os.str();
        }
    }
    if (cached.pcToTemplate != fresh.pcToTemplate)
        return "pcToTemplate differs from a fresh translation";
    if (cached.edgeBase != fresh.edgeBase)
        return "edgeBase differs from a fresh translation";
    if (cached.switchCases.size() != fresh.switchCases.size())
        return "switchCases differs from a fresh translation";
    for (std::size_t i = 0; i < cached.switchCases.size(); ++i) {
        const vm::SwitchCase &c = cached.switchCases[i];
        const vm::SwitchCase &f = fresh.switchCases[i];
        if (c.tpl != f.tpl || c.pc != f.pc || c.block != f.block ||
            c.isHeader != f.isHeader) {
            os << "switch case " << i
               << " differs from a fresh translation";
            return os.str();
        }
    }
    return {};
}

} // namespace

bool
auditPlanMirror(const profile::InstrumentationPlan &plan,
                const std::string &method_name, bool has_version,
                std::uint32_t version, DiagnosticList &diagnostics)
{
    const std::size_t before = diagnostics.errorCount();

    // rebuildFlat is a pure function of edgeActions: re-derive on a
    // copy and require the installed mirror to match memberwise.
    profile::InstrumentationPlan derived = plan;
    derived.rebuildFlat();

    if (plan.edgeBase != derived.edgeBase) {
        reportError(diagnostics, "flat-mirror", method_name,
                    has_version, version,
                    "plan edgeBase is not what rebuildFlat() derives "
                    "from edgeActions (stale flat mirror)");
        return false;
    }
    if (plan.flatEdgeActions.size() != derived.flatEdgeActions.size()) {
        std::ostringstream os;
        os << "plan holds " << plan.flatEdgeActions.size()
           << " flat edge actions, rebuildFlat() derives "
           << derived.flatEdgeActions.size();
        reportError(diagnostics, "flat-mirror", method_name,
                    has_version, version, os.str());
        return false;
    }
    std::size_t findings = 0;
    for (std::size_t i = 0; i < plan.flatEdgeActions.size(); ++i) {
        if (sameAction(plan.flatEdgeActions[i],
                       derived.flatEdgeActions[i]))
            continue;
        if (findings++ >= kMaxPerCategory)
            break;
        std::ostringstream os;
        os << "flat action " << i << " is "
           << describeAction(plan.flatEdgeActions[i])
           << " but the nested edgeActions derive "
           << describeAction(derived.flatEdgeActions[i])
           << " (edgeActions mutated without rebuildFlat())";
        reportError(diagnostics, "flat-mirror", method_name,
                    has_version, version, os.str());
    }
    return diagnostics.errorCount() == before;
}

bool
auditMachineDecoded(const vm::Machine &machine,
                    DiagnosticList &diagnostics)
{
    const std::size_t before = diagnostics.errorCount();
    for (bytecode::MethodId m = 0; m < machine.numMethods(); ++m) {
        const std::string &name = machine.program().methods[m].name;
        for (std::uint32_t v = 0; v < machine.numVersions(m); ++v) {
            const vm::DecodedMethod *cached = machine.cachedDecoded(m, v);
            if (cached == nullptr)
                continue;
            const vm::CompiledMethod *cm = machine.versionAt(m, v);
            // Re-translate under the cached stream's own fusion tuple:
            // a fuse-option change is a cache *key* difference (the
            // machine drops the slot), not staleness.
            const vm::DecodedMethod fresh = vm::translateMethod(
                *cached->code, *cached->info, *cm, cached->fuse);
            const std::string diff = firstStreamDiff(*cached, fresh);
            if (!diff.empty()) {
                reportError(diagnostics, "stale-template", name,
                            /*has_version=*/true, v,
                            "cached template stream is stale: " + diff +
                                " (version mutated without "
                                "invalidateDecoded)");
            }
        }
    }
    return diagnostics.errorCount() == before;
}

bool
auditMutationJournal(const vm::Machine &machine,
                     DiagnosticList &diagnostics)
{
    const std::size_t before = diagnostics.errorCount();
    const std::vector<vm::PlanMutationEvent> &journal =
        machine.mutationJournal();
    std::size_t findings = 0;
    for (std::size_t i = 0; i < journal.size(); ++i) {
        const vm::PlanMutationEvent &event = journal[i];
        if (event.sanitize)
            continue;
        bool discharged = false;
        for (std::size_t j = i + 1; j < journal.size(); ++j) {
            if (journal[j].sanitize &&
                journal[j].method == event.method &&
                journal[j].version == event.version) {
                discharged = true;
                break;
            }
        }
        if (discharged)
            continue;
        if (findings++ >= kMaxPerCategory)
            break;
        std::ostringstream os;
        os << "versionForUpdate escape (journal entry " << i
           << ") was never followed by invalidateDecoded for this "
              "version";
        reportError(diagnostics, "escape-unsanitized",
                    machine.program().methods[event.method].name,
                    /*has_version=*/true, event.version, os.str());
    }
    return diagnostics.errorCount() == before;
}

bool
auditCloneJournal(const vm::Machine &machine,
                  DiagnosticList &diagnostics)
{
    const std::size_t before = diagnostics.errorCount();

    // Compile() appends exactly one journal entry per version, in
    // order; index them for the cross-check.
    std::map<std::pair<bytecode::MethodId, std::uint32_t>, bool>
        recorded;
    for (const vm::CompileEvent &event : machine.compileJournal())
        recorded[{event.method, event.version}] = event.cloneApplied;

    std::size_t findings = 0;
    for (bytecode::MethodId m = 0; m < machine.numMethods(); ++m) {
        const std::string &name = machine.program().methods[m].name;
        for (std::uint32_t v = 0; v < machine.numVersions(m); ++v) {
            if (findings >= kMaxPerCategory)
                return diagnostics.errorCount() == before;
            const vm::CompiledMethod *cm = machine.versionAt(m, v);
            const auto it = recorded.find({m, v});
            if (it == recorded.end()) {
                reportError(diagnostics, "clone-journal", name,
                            /*has_version=*/true, v,
                            "installed version was never recorded in "
                            "the compile journal — it did not come "
                            "through Machine::compile()");
                ++findings;
                continue;
            }
            if (cm->cloneApplied != it->second) {
                std::ostringstream os;
                os << "installed version's cloneApplied is "
                   << (cm->cloneApplied ? "true" : "false")
                   << " but its compile was recorded with "
                   << (it->second ? "true" : "false")
                   << " — a cloned body that bypassed the pass "
                      "pipeline (or a clone flag cleared in place)";
                reportError(diagnostics, "clone-journal", name,
                            /*has_version=*/true, v, os.str());
                ++findings;
                continue;
            }
            if (cm->cloneApplied && !cm->inlinedBody) {
                reportError(diagnostics, "clone-journal", name,
                            /*has_version=*/true, v,
                            "clone-applied version carries no "
                            "synthesized body");
                ++findings;
            }
        }
    }
    return diagnostics.errorCount() == before;
}

} // namespace pep::analysis
