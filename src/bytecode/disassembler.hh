#ifndef PEP_BYTECODE_DISASSEMBLER_HH
#define PEP_BYTECODE_DISASSEMBLER_HH

/**
 * @file
 * Disassembler: renders methods and programs back to assembler syntax.
 * Output round-trips through the assembler (modulo label names).
 */

#include <string>

#include "bytecode/method.hh"

namespace pep::bytecode {

/** Render one instruction (no label resolution; raw pc targets). */
std::string disassembleInstr(const Program &program, const Instr &instr);

/** Render one method with generated labels (L<pc>). */
std::string disassembleMethod(const Program &program,
                              const Method &method);

/** Render the whole program in assembler syntax. */
std::string disassembleProgram(const Program &program);

} // namespace pep::bytecode

#endif // PEP_BYTECODE_DISASSEMBLER_HH
