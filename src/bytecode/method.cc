#include "bytecode/method.hh"

namespace pep::bytecode {

bool
Program::findMethod(const std::string &name, MethodId &out) const
{
    for (std::size_t i = 0; i < methods.size(); ++i) {
        if (methods[i].name == name) {
            out = static_cast<MethodId>(i);
            return true;
        }
    }
    return false;
}

std::size_t
Program::totalCodeSize() const
{
    std::size_t total = 0;
    for (const Method &m : methods)
        total += m.code.size();
    return total;
}

} // namespace pep::bytecode
