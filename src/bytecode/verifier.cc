#include "bytecode/verifier.hh"

#include <deque>
#include <sstream>
#include <vector>

namespace pep::bytecode {

std::string
formatVerifyDiagnostic(const VerifyDiagnostic &diagnostic)
{
    if (diagnostic.method.empty())
        return diagnostic.message;
    std::ostringstream os;
    os << "method '" << diagnostic.method << "'";
    if (diagnostic.hasPc)
        os << " pc " << diagnostic.pc;
    os << ": " << diagnostic.message;
    return os.str();
}

void
VerifyResult::addError(std::string method, std::string message)
{
    VerifyDiagnostic d;
    d.method = std::move(method);
    d.message = std::move(message);
    if (ok) {
        ok = false;
        error = formatVerifyDiagnostic(d);
    }
    diagnostics.push_back(std::move(d));
}

void
VerifyResult::addErrorAtPc(std::string method, Pc pc,
                           std::string message)
{
    VerifyDiagnostic d;
    d.method = std::move(method);
    d.hasPc = true;
    d.pc = pc;
    d.message = std::move(message);
    if (ok) {
        ok = false;
        error = formatVerifyDiagnostic(d);
    }
    diagnostics.push_back(std::move(d));
}

void
VerifyResult::merge(const VerifyResult &other)
{
    for (const VerifyDiagnostic &d : other.diagnostics) {
        if (ok) {
            ok = false;
            error = formatVerifyDiagnostic(d);
        }
        diagnostics.push_back(d);
    }
}

namespace {

/** Stack effect bookkeeping for one instruction. */
struct StackEffect
{
    int pops = 0;
    int pushes = 0;
};

bool
stackEffect(const Program &program, const Instr &instr, StackEffect &out,
            std::string &error)
{
    switch (instr.op) {
      case Opcode::Iconst:
      case Opcode::Iload:
      case Opcode::Irnd:
        out = {0, 1};
        return true;
      case Opcode::Istore:
      case Opcode::Pop:
        out = {1, 0};
        return true;
      case Opcode::Iinc:
        out = {0, 0};
        return true;
      case Opcode::Dup:
        out = {1, 2};
        return true;
      case Opcode::Swap:
        out = {2, 2};
        return true;
      case Opcode::Iadd:
      case Opcode::Isub:
      case Opcode::Imul:
      case Opcode::Idiv:
      case Opcode::Irem:
      case Opcode::Iand:
      case Opcode::Ior:
      case Opcode::Ixor:
      case Opcode::Ishl:
      case Opcode::Ishr:
        out = {2, 1};
        return true;
      case Opcode::Ineg:
        out = {1, 1};
        return true;
      case Opcode::Gload:
        out = {1, 1};
        return true;
      case Opcode::Gstore:
        out = {2, 0};
        return true;
      case Opcode::Goto:
        out = {0, 0};
        return true;
      case Opcode::Tableswitch:
        out = {1, 0};
        return true;
      case Opcode::Invoke: {
        const auto callee = static_cast<std::size_t>(instr.a);
        if (instr.a < 0 || callee >= program.methods.size()) {
            error = "invoke of invalid method index";
            return false;
        }
        const Method &m = program.methods[callee];
        out = {static_cast<int>(m.numArgs), m.returnsValue ? 1 : 0};
        return true;
      }
      case Opcode::Return:
        out = {0, 0};
        return true;
      case Opcode::Ireturn:
        out = {1, 0};
        return true;
      default:
        if (isCmpBranch(instr.op)) {
            out = {2, 0};
            return true;
        }
        if (isCondBranch(instr.op)) {
            out = {1, 0};
            return true;
        }
        error = "unknown opcode";
        return false;
    }
}

} // namespace

VerifyResult
verifyMethod(const Program &program, Method &method)
{
    VerifyResult result;
    const auto &code = method.code;
    const std::size_t n = code.size();
    auto fail = [&](Pc pc, const std::string &message) {
        result.addErrorAtPc(method.name, pc, message);
    };

    if (n == 0) {
        fail(0, "empty code");
        return result;
    }
    if (method.numArgs > method.numLocals)
        fail(0, "numArgs exceeds numLocals");

    auto check_target = [&](Pc pc, std::int32_t target) -> bool {
        return target >= 0 && static_cast<std::size_t>(target) < n &&
               static_cast<Pc>(target) != pc;
    };

    // Structural checks: every rule, every pc — no early exit.
    for (Pc pc = 0; pc < n; ++pc) {
        const Instr &instr = code[pc];
        switch (instr.op) {
          case Opcode::Iload:
          case Opcode::Istore:
          case Opcode::Iinc:
            if (instr.a < 0 ||
                static_cast<std::uint32_t>(instr.a) >= method.numLocals) {
                fail(pc, "local slot out of range");
            }
            break;
          case Opcode::Goto:
            if (!check_target(pc, instr.a))
                fail(pc, "bad goto target");
            break;
          case Opcode::Tableswitch:
            for (std::int32_t target : instr.table) {
                if (!check_target(pc, target))
                    fail(pc, "bad switch case target");
            }
            if (!check_target(pc, instr.b))
                fail(pc, "bad switch default target");
            break;
          case Opcode::Return:
            if (method.returnsValue) {
                fail(pc, "void return in value-returning method");
            }
            break;
          case Opcode::Ireturn:
            if (!method.returnsValue) {
                fail(pc, "ireturn in void method");
            }
            break;
          default:
            if (isCondBranch(instr.op) && !check_target(pc, instr.a))
                fail(pc, "bad branch target");
            break;
        }
        // Fall-through off the end: any instruction that can fall
        // through must have a successor pc.
        const bool falls_through =
            !(instr.op == Opcode::Goto ||
              instr.op == Opcode::Tableswitch || isReturn(instr.op));
        if (falls_through && pc + 1 >= n)
            fail(pc, "code falls off the end");
    }

    // Stack propagation needs valid targets; stop here if any
    // structural rule failed.
    if (!result.ok)
        return result;

    // Stack discipline: breadth-first propagation of stack depth. A
    // broken pc is reported and stops propagating, but the rest of the
    // worklist still drains so independent problems all surface.
    constexpr int kUnknown = -1;
    std::vector<int> depth_at(n, kUnknown);
    std::vector<bool> reported(n, false);
    std::deque<Pc> worklist;
    depth_at[0] = 0;
    worklist.push_back(0);

    int max_depth = 0;
    while (!worklist.empty()) {
        const Pc pc = worklist.front();
        worklist.pop_front();
        const Instr &instr = code[pc];
        const int depth_in = depth_at[pc];
        auto fail_once = [&](const std::string &message) {
            if (!reported[pc]) {
                reported[pc] = true;
                fail(pc, message);
            }
        };

        StackEffect effect;
        std::string effect_error;
        if (!stackEffect(program, instr, effect, effect_error)) {
            fail_once(effect_error);
            continue;
        }

        if (depth_in < effect.pops) {
            fail_once("operand stack underflow");
            continue;
        }
        const int depth_out = depth_in - effect.pops + effect.pushes;
        max_depth = std::max(max_depth, depth_out);

        if (instr.op == Opcode::Return && depth_in != 0)
            fail_once("return with non-empty stack");
        if (instr.op == Opcode::Ireturn && depth_in != 1)
            fail_once("ireturn with extra stack values");

        auto propagate = [&](std::int32_t target) -> bool {
            const Pc t = static_cast<Pc>(target);
            if (depth_at[t] == kUnknown) {
                depth_at[t] = depth_out;
                worklist.push_back(t);
                return true;
            }
            return depth_at[t] == depth_out;
        };

        bool merged_ok = true;
        switch (instr.op) {
          case Opcode::Goto:
            merged_ok = propagate(instr.a);
            break;
          case Opcode::Tableswitch:
            for (std::int32_t target : instr.table)
                merged_ok = merged_ok && propagate(target);
            merged_ok = merged_ok && propagate(instr.b);
            break;
          case Opcode::Return:
          case Opcode::Ireturn:
            break;
          default:
            if (isCondBranch(instr.op))
                merged_ok = propagate(instr.a);
            merged_ok = merged_ok &&
                        propagate(static_cast<std::int32_t>(pc + 1));
            break;
        }
        if (!merged_ok)
            fail_once("inconsistent stack depth at merge point");
    }

    if (result.ok)
        method.maxStack = static_cast<std::uint32_t>(max_depth);
    return result;
}

VerifyResult
verifyProgram(Program &program)
{
    VerifyResult result;
    if (program.methods.empty()) {
        result.addError("", "program has no methods");
        return result;
    }
    if (program.mainMethod >= program.methods.size()) {
        result.addError("", "invalid main method index");
    } else if (program.methods[program.mainMethod].numArgs != 0) {
        result.addError("", "main method must take no arguments");
    }
    if (program.initialGlobals.size() > program.globalSize)
        result.addError("", "globals initializer exceeds size");

    for (Method &method : program.methods)
        result.merge(verifyMethod(program, method));
    return result;
}

} // namespace pep::bytecode
