#include "bytecode/cfg_builder.hh"

#include <algorithm>

#include "support/panic.hh"

namespace pep::bytecode {

std::size_t
MethodCfg::numLoopHeaders() const
{
    return static_cast<std::size_t>(
        std::count(isLoopHeader.begin(), isLoopHeader.end(), true));
}

MethodCfg
buildCfg(const Method &method)
{
    const auto &code = method.code;
    PEP_ASSERT_MSG(!code.empty(), "method " << method.name << " is empty");

    const std::size_t n = code.size();

    // Pass 1: find leaders.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (Pc pc = 0; pc < n; ++pc) {
        const Instr &instr = code[pc];
        switch (instr.op) {
          case Opcode::Goto:
            leader[static_cast<Pc>(instr.a)] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
            break;
          case Opcode::Tableswitch:
            for (std::int32_t target : instr.table)
                leader[static_cast<Pc>(target)] = true;
            leader[static_cast<Pc>(instr.b)] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
            break;
          case Opcode::Return:
          case Opcode::Ireturn:
            if (pc + 1 < n)
                leader[pc + 1] = true;
            break;
          default:
            if (isCondBranch(instr.op)) {
                leader[static_cast<Pc>(instr.a)] = true;
                PEP_ASSERT_MSG(pc + 1 < n,
                               "conditional branch at end of "
                                   << method.name);
                leader[pc + 1] = true;
            }
            break;
        }
    }

    // Pass 2: create blocks.
    MethodCfg result;
    cfg::Graph &graph = result.graph;
    result.blockOfPc.assign(n, cfg::kInvalidBlock);

    // Entry (0) and exit (1) come from the Graph constructor.
    result.firstPc = {0, 0};
    result.lastPc = {0, 0};
    result.terminator = {TerminatorKind::None, TerminatorKind::None};

    std::vector<cfg::BlockId> block_at_pc(n, cfg::kInvalidBlock);
    for (Pc pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            const cfg::BlockId b = graph.addBlock();
            block_at_pc[pc] = b;
            result.firstPc.push_back(pc);
            result.lastPc.push_back(pc);
            result.terminator.push_back(TerminatorKind::Fallthrough);
        }
    }

    // Pass 3: assign pcs to blocks and record block extents.
    cfg::BlockId current = cfg::kInvalidBlock;
    for (Pc pc = 0; pc < n; ++pc) {
        if (leader[pc])
            current = block_at_pc[pc];
        result.blockOfPc[pc] = current;
        result.lastPc[current] = pc;
    }

    // Pass 4: add edges in the documented successor order.
    graph.addEdge(graph.entry(), block_at_pc[0]);
    for (cfg::BlockId b = 2; b < graph.numBlocks(); ++b) {
        const Pc last = result.lastPc[b];
        const Instr &instr = code[last];
        switch (instr.op) {
          case Opcode::Goto:
            result.terminator[b] = TerminatorKind::Goto;
            graph.addEdge(b, result.blockOfPc[instr.a]);
            break;
          case Opcode::Tableswitch:
            result.terminator[b] = TerminatorKind::Switch;
            for (std::int32_t target : instr.table)
                graph.addEdge(b, result.blockOfPc[target]);
            graph.addEdge(b, result.blockOfPc[instr.b]);
            break;
          case Opcode::Return:
          case Opcode::Ireturn:
            result.terminator[b] = TerminatorKind::Return;
            graph.addEdge(b, graph.exit());
            break;
          default:
            if (isCondBranch(instr.op)) {
                result.terminator[b] = TerminatorKind::Cond;
                graph.addEdge(b, result.blockOfPc[instr.a]); // taken
                graph.addEdge(b, result.blockOfPc[last + 1]); // not taken
            } else {
                PEP_ASSERT_MSG(last + 1 < n,
                               "code falls off the end of "
                                   << method.name);
                result.terminator[b] = TerminatorKind::Fallthrough;
                graph.addEdge(b, result.blockOfPc[last + 1]);
            }
            break;
        }
    }

    // Pass 5: loop analysis.
    const cfg::DfsResult dfs = cfg::depthFirstSearch(graph);
    const cfg::LoopInfo loops = cfg::findLoops(graph, dfs);
    result.isLoopHeader = loops.loopHeader;
    result.backEdges = loops.backEdges;
    result.reducible = cfg::isReducible(graph);

    return result;
}

} // namespace pep::bytecode
