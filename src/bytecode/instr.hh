#ifndef PEP_BYTECODE_INSTR_HH
#define PEP_BYTECODE_INSTR_HH

/**
 * @file
 * The bytecode instruction set: a small integer stack machine modelled on
 * Java bytecode, which is what PEP's host VM (Jikes RVM) consumes. The
 * subset is chosen so that benchmarks exercise the control-flow shapes
 * that matter for path profiling: two-way conditional branches, gotos,
 * multiway switches, calls, and returns.
 *
 * Instructions are stored pre-decoded (one Instr per "pc"); branch
 * targets are instruction indices within the method.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace pep::bytecode {

/** Instruction index within a method's code vector. */
using Pc = std::uint32_t;

/** Index of a method within its Program. */
using MethodId = std::uint32_t;

/** Operation codes. */
enum class Opcode : std::uint8_t
{
    // Constants and locals.
    Iconst,     ///< push a
    Iload,      ///< push locals[a]
    Istore,     ///< locals[a] = pop
    Iinc,       ///< locals[a] += b

    // Stack manipulation.
    Dup,        ///< duplicate top of stack
    Pop,        ///< discard top of stack
    Swap,       ///< swap top two stack values

    // Arithmetic / logic (pop two, push one) unless noted.
    Iadd, Isub, Imul,
    Idiv,       ///< divide; division by zero yields 0 (defined semantics)
    Irem,       ///< remainder; by zero yields 0
    Iand, Ior, Ixor,
    Ishl,       ///< shift left by (rhs & 31)
    Ishr,       ///< arithmetic shift right by (rhs & 31)
    Ineg,       ///< pop one, push negation

    // Global integer array (the program's mutable data segment).
    Gload,      ///< pop index, push globals[index]
    Gstore,     ///< pop index, pop value, globals[index] = value

    // Deterministic pseudo-random source (stands in for data-dependent
    // behaviour the paper's benchmarks get from their inputs).
    Irnd,       ///< push next value from the VM's per-run random stream

    // Control flow. Conditional branches compare against zero (IfXX,
    // pop one) or compare two values (IfIcmpXX, pop two; lhs pushed
    // first). `a` is the taken target pc.
    Goto,       ///< unconditional jump to a
    Ifeq, Ifne, Iflt, Ifge, Ifgt, Ifle,
    IfIcmpeq, IfIcmpne, IfIcmplt, IfIcmpge, IfIcmpgt, IfIcmple,
    Tableswitch, ///< pop v; jump table[v - a] if in range else b (default);
                 ///< `table` holds the case targets for [a, a+len)

    // Calls. `a` is the callee MethodId; the callee's numArgs values are
    // popped (last argument on top) into the callee's first locals.
    Invoke,
    Return,     ///< return void
    Ireturn,    ///< pop result, push into caller
};

/** Number of opcodes (Ireturn is last); sizes dispatch tables. */
constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::Ireturn) + 1;

/** One pre-decoded instruction. */
struct Instr
{
    Opcode op = Opcode::Return;
    std::int32_t a = 0;
    std::int32_t b = 0;

    /** Case targets; used by Tableswitch only. */
    std::vector<std::int32_t> table;
};

/** True for instructions that end a basic block. */
bool isTerminator(Opcode op);

/** True for two-way conditional branches (IfXX / IfIcmpXX). */
bool isCondBranch(Opcode op);

/** True for IfIcmpXX (two-operand compares). */
bool isCmpBranch(Opcode op);

/** True for Return / Ireturn. */
bool isReturn(Opcode op);

/** Mnemonic text for an opcode. */
const char *mnemonic(Opcode op);

/** Parse a mnemonic; returns false if unknown. */
bool opcodeFromMnemonic(const std::string &name, Opcode &out);

} // namespace pep::bytecode

#endif // PEP_BYTECODE_INSTR_HH
