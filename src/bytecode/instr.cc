#include "bytecode/instr.hh"

#include <unordered_map>

namespace pep::bytecode {

bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Goto:
      case Opcode::Tableswitch:
      case Opcode::Return:
      case Opcode::Ireturn:
        return true;
      default:
        return isCondBranch(op);
    }
}

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::Ifeq:
      case Opcode::Ifne:
      case Opcode::Iflt:
      case Opcode::Ifge:
      case Opcode::Ifgt:
      case Opcode::Ifle:
      case Opcode::IfIcmpeq:
      case Opcode::IfIcmpne:
      case Opcode::IfIcmplt:
      case Opcode::IfIcmpge:
      case Opcode::IfIcmpgt:
      case Opcode::IfIcmple:
        return true;
      default:
        return false;
    }
}

bool
isCmpBranch(Opcode op)
{
    switch (op) {
      case Opcode::IfIcmpeq:
      case Opcode::IfIcmpne:
      case Opcode::IfIcmplt:
      case Opcode::IfIcmpge:
      case Opcode::IfIcmpgt:
      case Opcode::IfIcmple:
        return true;
      default:
        return false;
    }
}

bool
isReturn(Opcode op)
{
    return op == Opcode::Return || op == Opcode::Ireturn;
}

namespace {

const std::unordered_map<Opcode, const char *> &
mnemonicTable()
{
    static const std::unordered_map<Opcode, const char *> table = {
        {Opcode::Iconst, "iconst"},
        {Opcode::Iload, "iload"},
        {Opcode::Istore, "istore"},
        {Opcode::Iinc, "iinc"},
        {Opcode::Dup, "dup"},
        {Opcode::Pop, "pop"},
        {Opcode::Swap, "swap"},
        {Opcode::Iadd, "iadd"},
        {Opcode::Isub, "isub"},
        {Opcode::Imul, "imul"},
        {Opcode::Idiv, "idiv"},
        {Opcode::Irem, "irem"},
        {Opcode::Iand, "iand"},
        {Opcode::Ior, "ior"},
        {Opcode::Ixor, "ixor"},
        {Opcode::Ishl, "ishl"},
        {Opcode::Ishr, "ishr"},
        {Opcode::Ineg, "ineg"},
        {Opcode::Gload, "gload"},
        {Opcode::Gstore, "gstore"},
        {Opcode::Irnd, "irnd"},
        {Opcode::Goto, "goto"},
        {Opcode::Ifeq, "ifeq"},
        {Opcode::Ifne, "ifne"},
        {Opcode::Iflt, "iflt"},
        {Opcode::Ifge, "ifge"},
        {Opcode::Ifgt, "ifgt"},
        {Opcode::Ifle, "ifle"},
        {Opcode::IfIcmpeq, "if_icmpeq"},
        {Opcode::IfIcmpne, "if_icmpne"},
        {Opcode::IfIcmplt, "if_icmplt"},
        {Opcode::IfIcmpge, "if_icmpge"},
        {Opcode::IfIcmpgt, "if_icmpgt"},
        {Opcode::IfIcmple, "if_icmple"},
        {Opcode::Tableswitch, "tableswitch"},
        {Opcode::Invoke, "invoke"},
        {Opcode::Return, "return"},
        {Opcode::Ireturn, "ireturn"},
    };
    return table;
}

} // namespace

const char *
mnemonic(Opcode op)
{
    const auto &table = mnemonicTable();
    const auto it = table.find(op);
    return it == table.end() ? "<unknown>" : it->second;
}

bool
opcodeFromMnemonic(const std::string &name, Opcode &out)
{
    static const auto reverse = [] {
        std::unordered_map<std::string, Opcode> r;
        for (const auto &[op, text] : mnemonicTable())
            r.emplace(text, op);
        return r;
    }();
    const auto it = reverse.find(name);
    if (it == reverse.end())
        return false;
    out = it->second;
    return true;
}

} // namespace pep::bytecode
