#ifndef PEP_BYTECODE_METHOD_HH
#define PEP_BYTECODE_METHOD_HH

/**
 * @file
 * Method and Program containers. A Program is the unit the VM loads and
 * runs: a set of methods, a designated main method, and a global integer
 * array that serves as the program's mutable data segment (workload
 * generators initialize it to give branches data-dependent behaviour).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/instr.hh"

namespace pep::bytecode {

/** One method: name, signature, and pre-decoded code. */
struct Method
{
    std::string name;

    /** Number of integer arguments (stored in the first locals). */
    std::uint32_t numArgs = 0;

    /** Total local slots, including arguments. */
    std::uint32_t numLocals = 0;

    /** True if the method pushes a result (ends with ireturn). */
    bool returnsValue = false;

    /**
     * Operand-stack bound computed by the verifier; 0 until verified.
     */
    std::uint32_t maxStack = 0;

    std::vector<Instr> code;
};

/** A complete loadable program. */
struct Program
{
    std::vector<Method> methods;

    /** Index of the main method (entry point; must take no arguments). */
    MethodId mainMethod = 0;

    /** Size of the global integer array. */
    std::uint32_t globalSize = 0;

    /** Initial values for globals[0..initialGlobals.size()). */
    std::vector<std::int32_t> initialGlobals;

    /** Find a method by name; returns false if absent. */
    bool findMethod(const std::string &name, MethodId &out) const;

    /** Total instruction count across all methods. */
    std::size_t totalCodeSize() const;
};

} // namespace pep::bytecode

#endif // PEP_BYTECODE_METHOD_HH
