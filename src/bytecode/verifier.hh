#ifndef PEP_BYTECODE_VERIFIER_HH
#define PEP_BYTECODE_VERIFIER_HH

/**
 * @file
 * Bytecode verifier. Checks structural well-formedness (branch targets,
 * falling off the end), local-slot bounds, call targets, and operand
 * stack discipline (consistent depth at every pc, exact depth at
 * returns). Computes each method's maxStack as a side effect.
 *
 * The VM refuses to load unverified programs, so the interpreter and the
 * profilers may assume well-formed code.
 */

#include <string>

#include "bytecode/method.hh"

namespace pep::bytecode {

/** Outcome of verification. */
struct VerifyResult
{
    bool ok = true;

    /** Human-readable description of the first problem found. */
    std::string error;
};

/**
 * Verify one method against its program (needed to resolve call
 * signatures). On success, fills in method.maxStack.
 */
VerifyResult verifyMethod(const Program &program, Method &method);

/**
 * Verify a whole program: every method, plus program-level rules (valid
 * main taking no arguments, globals initializer fits).
 */
VerifyResult verifyProgram(Program &program);

} // namespace pep::bytecode

#endif // PEP_BYTECODE_VERIFIER_HH
