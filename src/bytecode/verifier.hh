#ifndef PEP_BYTECODE_VERIFIER_HH
#define PEP_BYTECODE_VERIFIER_HH

/**
 * @file
 * Bytecode verifier. Checks structural well-formedness (branch targets,
 * falling off the end), local-slot bounds, call targets, and operand
 * stack discipline (consistent depth at every pc, exact depth at
 * returns). Computes each method's maxStack as a side effect.
 *
 * Verification collects *every* problem it can find, not just the
 * first: structural rules are checked exhaustively, and the stack walk
 * stops propagating through a broken pc but keeps scanning the rest of
 * the worklist. `ok`/`error` remain as a compatibility view (`error`
 * is the first diagnostic, formatted).
 *
 * The VM refuses to load unverified programs, so the interpreter and
 * the profilers may assume well-formed code.
 */

#include <string>
#include <vector>

#include "bytecode/method.hh"

namespace pep::bytecode {

/** One verification problem, with its location. */
struct VerifyDiagnostic
{
    /** Method the problem is in; empty for program-level rules. */
    std::string method;

    /** Bytecode location, when the problem has one. */
    bool hasPc = false;
    Pc pc = 0;

    std::string message;
};

/** "method 'm' pc 3: message" (or just the message, program-level). */
std::string formatVerifyDiagnostic(const VerifyDiagnostic &diagnostic);

/** Outcome of verification. */
struct VerifyResult
{
    /** Every problem found, in discovery order. */
    std::vector<VerifyDiagnostic> diagnostics;

    /** Compatibility view: false iff any diagnostic was recorded. */
    bool ok = true;

    /** Compatibility view: the first problem, formatted. */
    std::string error;

    /** Record a problem, keeping ok/error in sync. */
    void addError(std::string method, std::string message);
    void addErrorAtPc(std::string method, Pc pc, std::string message);

    /** Append another result's diagnostics. */
    void merge(const VerifyResult &other);
};

/**
 * Verify one method against its program (needed to resolve call
 * signatures). On success, fills in method.maxStack.
 */
VerifyResult verifyMethod(const Program &program, Method &method);

/**
 * Verify a whole program: every method, plus program-level rules (valid
 * main taking no arguments, globals initializer fits).
 */
VerifyResult verifyProgram(Program &program);

} // namespace pep::bytecode

#endif // PEP_BYTECODE_VERIFIER_HH
