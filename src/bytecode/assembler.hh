#ifndef PEP_BYTECODE_ASSEMBLER_HH
#define PEP_BYTECODE_ASSEMBLER_HH

/**
 * @file
 * Text assembler for the bytecode, used by examples and tests to write
 * programs legibly. Grammar (line oriented; ';' and '#' start comments):
 *
 *   .globals <size>
 *   .data <int> <int> ...          ; appended to the globals initializer
 *   .method <name> <numArgs> <numLocals> [returns]
 *   <label>:
 *       <mnemonic> [operands]
 *   .end
 *   .main <name>
 *
 * Branch operands are labels; `invoke` takes a method name (forward
 * references to methods and labels are resolved). `tableswitch` takes:
 * lo, then the default label, then one label per case.
 */

#include <string>

#include "bytecode/method.hh"

namespace pep::bytecode {

/** Result of assembling a program. */
struct AssembleResult
{
    bool ok = true;
    std::string error;
    Program program;
};

/** Assemble the given source text (does not run the verifier). */
AssembleResult assemble(const std::string &source);

/**
 * Assemble and verify; calls support::fatal on any error. Convenient for
 * examples and tests with known-good sources.
 */
Program assembleOrDie(const std::string &source);

} // namespace pep::bytecode

#endif // PEP_BYTECODE_ASSEMBLER_HH
