#include "bytecode/assembler.hh"

#include <map>
#include <sstream>
#include <vector>

#include "bytecode/verifier.hh"
#include "support/panic.hh"
#include "support/strings.hh"

namespace pep::bytecode {

namespace {

using support::parseInt;
using support::splitChar;
using support::splitWhitespace;
using support::trim;

/** One parsed source line with its 1-based line number. */
struct Line
{
    int number;
    std::vector<std::string> tokens;
};

/** A pending label or method-name reference to patch. */
struct Fixup
{
    MethodId method;
    Pc pc;
    enum class Field { A, B, Table } field;
    std::size_t tableIndex;
    std::string symbol;
    int line;
};

std::string
stripComment(const std::string &line)
{
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '#')
            return line.substr(0, i);
    }
    return line;
}

AssembleResult
error(int line, const std::string &message)
{
    std::ostringstream os;
    os << "line " << line << ": " << message;
    return AssembleResult{false, os.str(), {}};
}

} // namespace

AssembleResult
assemble(const std::string &source)
{
    // Tokenize all lines up front.
    std::vector<Line> lines;
    {
        int number = 0;
        for (const std::string &raw : splitChar(source, '\n')) {
            ++number;
            auto tokens = splitWhitespace(stripComment(raw));
            if (!tokens.empty())
                lines.push_back(Line{number, std::move(tokens)});
        }
    }

    AssembleResult result;
    Program &program = result.program;

    // Pass 1: collect method names so `invoke` can forward-reference.
    std::map<std::string, MethodId> method_ids;
    for (const Line &line : lines) {
        if (line.tokens[0] != ".method")
            continue;
        if (line.tokens.size() < 4)
            return error(line.number, ".method needs name, args, locals");
        const std::string &name = line.tokens[1];
        if (method_ids.count(name))
            return error(line.number, "duplicate method '" + name + "'");
        method_ids[name] = static_cast<MethodId>(program.methods.size());
        Method method;
        method.name = name;
        std::int64_t args = 0;
        std::int64_t locals = 0;
        if (!parseInt(line.tokens[2], args) ||
            !parseInt(line.tokens[3], locals) || args < 0 || locals < 0) {
            return error(line.number, "bad .method counts");
        }
        method.numArgs = static_cast<std::uint32_t>(args);
        method.numLocals = static_cast<std::uint32_t>(locals);
        method.returnsValue =
            line.tokens.size() >= 5 && line.tokens[4] == "returns";
        program.methods.push_back(std::move(method));
    }

    // Pass 2: assemble bodies.
    std::vector<Fixup> fixups;
    Method *current = nullptr;
    MethodId current_id = 0;
    std::map<std::string, Pc> labels; // labels of the current method
    std::vector<std::pair<std::string, int>> pending_label_refs;
    std::string main_name;
    bool saw_main = false;

    auto resolve_labels = [&](int line_number) -> std::string {
        for (Fixup &fixup : fixups) {
            if (fixup.method != current_id)
                continue;
            const auto it = labels.find(fixup.symbol);
            if (it == labels.end()) {
                std::ostringstream os;
                os << "line " << fixup.line << ": undefined label '"
                   << fixup.symbol << "'";
                return os.str();
            }
            Instr &instr = current->code[fixup.pc];
            const auto target = static_cast<std::int32_t>(it->second);
            switch (fixup.field) {
              case Fixup::Field::A:
                instr.a = target;
                break;
              case Fixup::Field::B:
                instr.b = target;
                break;
              case Fixup::Field::Table:
                instr.table[fixup.tableIndex] = target;
                break;
            }
        }
        std::erase_if(fixups, [&](const Fixup &f) {
            return f.method == current_id;
        });
        (void)line_number;
        return {};
    };

    for (const Line &line : lines) {
        const std::string &head = line.tokens[0];

        if (head == ".globals") {
            std::int64_t size = 0;
            if (line.tokens.size() != 2 ||
                !parseInt(line.tokens[1], size) || size < 0) {
                return error(line.number, "bad .globals");
            }
            program.globalSize = static_cast<std::uint32_t>(size);
            continue;
        }
        if (head == ".data") {
            for (std::size_t i = 1; i < line.tokens.size(); ++i) {
                std::int64_t v = 0;
                if (!parseInt(line.tokens[i], v))
                    return error(line.number, "bad .data value");
                program.initialGlobals.push_back(
                    static_cast<std::int32_t>(v));
            }
            continue;
        }
        if (head == ".main") {
            if (line.tokens.size() != 2)
                return error(line.number, ".main needs a method name");
            main_name = line.tokens[1];
            saw_main = true;
            continue;
        }
        if (head == ".method") {
            if (current)
                return error(line.number, "nested .method");
            current_id = method_ids.at(line.tokens[1]);
            current = &program.methods[current_id];
            labels.clear();
            continue;
        }
        if (head == ".end") {
            if (!current)
                return error(line.number, ".end outside method");
            const std::string label_error = resolve_labels(line.number);
            if (!label_error.empty())
                return AssembleResult{false, label_error, {}};
            current = nullptr;
            continue;
        }

        if (!current)
            return error(line.number, "instruction outside .method");

        // Label definition(s): "name:" possibly followed by an
        // instruction on the same line.
        std::size_t first_token = 0;
        while (first_token < line.tokens.size() &&
               line.tokens[first_token].back() == ':') {
            std::string name = line.tokens[first_token];
            name.pop_back();
            if (labels.count(name)) {
                return error(line.number,
                             "duplicate label '" + name + "'");
            }
            labels[name] = static_cast<Pc>(current->code.size());
            ++first_token;
        }
        if (first_token == line.tokens.size())
            continue;

        // Instruction.
        Opcode op;
        if (!opcodeFromMnemonic(line.tokens[first_token], op)) {
            return error(line.number, "unknown mnemonic '" +
                                          line.tokens[first_token] + "'");
        }
        std::vector<std::string> operands(
            line.tokens.begin() +
                static_cast<std::ptrdiff_t>(first_token) + 1,
            line.tokens.end());

        Instr instr;
        instr.op = op;
        const Pc pc = static_cast<Pc>(current->code.size());

        auto label_operand = [&](const std::string &sym,
                                 Fixup::Field field,
                                 std::size_t table_index = 0) {
            fixups.push_back(Fixup{current_id, pc, field, table_index,
                                   sym, line.number});
        };

        auto int_operand = [&](const std::string &text,
                               std::int32_t &out) -> bool {
            std::int64_t v = 0;
            if (!parseInt(text, v))
                return false;
            out = static_cast<std::int32_t>(v);
            return true;
        };

        switch (op) {
          case Opcode::Iconst:
          case Opcode::Iload:
          case Opcode::Istore:
            if (operands.size() != 1 ||
                !int_operand(operands[0], instr.a)) {
                return error(line.number, "expected one int operand");
            }
            break;
          case Opcode::Iinc:
            if (operands.size() != 2 ||
                !int_operand(operands[0], instr.a) ||
                !int_operand(operands[1], instr.b)) {
                return error(line.number, "iinc needs slot and delta");
            }
            break;
          case Opcode::Goto:
            if (operands.size() != 1)
                return error(line.number, "goto needs a label");
            label_operand(operands[0], Fixup::Field::A);
            break;
          case Opcode::Tableswitch: {
            // tableswitch <lo> <defaultLabel> <caseLabel>...
            if (operands.size() < 3)
                return error(line.number,
                             "tableswitch needs lo, default, cases");
            if (!int_operand(operands[0], instr.a))
                return error(line.number, "bad tableswitch lo");
            label_operand(operands[1], Fixup::Field::B);
            instr.table.assign(operands.size() - 2, 0);
            for (std::size_t i = 2; i < operands.size(); ++i) {
                label_operand(operands[i], Fixup::Field::Table, i - 2);
            }
            break;
          }
          case Opcode::Invoke: {
            if (operands.size() != 1)
                return error(line.number, "invoke needs a method name");
            const auto it = method_ids.find(operands[0]);
            if (it == method_ids.end()) {
                return error(line.number, "unknown method '" +
                                              operands[0] + "'");
            }
            instr.a = static_cast<std::int32_t>(it->second);
            break;
          }
          default:
            if (isCondBranch(op)) {
                if (operands.size() != 1)
                    return error(line.number, "branch needs a label");
                label_operand(operands[0], Fixup::Field::A);
            } else if (!operands.empty()) {
                return error(line.number, "unexpected operand");
            }
            break;
        }

        current->code.push_back(std::move(instr));
    }

    if (current)
        return error(lines.back().number, "missing .end");

    if (saw_main) {
        const auto it = method_ids.find(main_name);
        if (it == method_ids.end()) {
            return AssembleResult{
                false, "unknown .main method '" + main_name + "'", {}};
        }
        program.mainMethod = it->second;
    }

    return result;
}

Program
assembleOrDie(const std::string &source)
{
    AssembleResult assembled = assemble(source);
    if (!assembled.ok)
        support::fatal("assembly failed: " + assembled.error);
    const VerifyResult verified = verifyProgram(assembled.program);
    if (!verified.ok)
        support::fatal("verification failed: " + verified.error);
    return std::move(assembled.program);
}

} // namespace pep::bytecode
