#ifndef PEP_BYTECODE_CFG_BUILDER_HH
#define PEP_BYTECODE_CFG_BUILDER_HH

/**
 * @file
 * Builds a control-flow graph from a method's bytecode. The CFG is the
 * input to PEP's instrumentation pass and to the interpreter's edge
 * events.
 *
 * Successor ordering conventions (relied on throughout the repository):
 *  - conditional branch: successor 0 = taken target, successor 1 =
 *    fall-through;
 *  - tableswitch: successors 0..k-1 = case targets in table order,
 *    successor k = default target;
 *  - goto / fall-through / return: single successor (return's successor
 *    is the synthetic exit block).
 */

#include <vector>

#include "bytecode/method.hh"
#include "cfg/analysis.hh"
#include "cfg/graph.hh"

namespace pep::bytecode {

/** How a basic block transfers control. */
enum class TerminatorKind : std::uint8_t
{
    Fallthrough, ///< last instruction is not a terminator; next pc is a
                 ///< leader (branch target)
    Goto,
    Cond,
    Switch,
    Return,
    None,        ///< entry/exit pseudo blocks
};

/** CFG plus the bytecode-level annotations profiling needs. */
struct MethodCfg
{
    cfg::Graph graph;

    /** First/last pc of each code block (entry/exit hold no pcs). */
    std::vector<Pc> firstPc;
    std::vector<Pc> lastPc;

    /** Terminator kind of each block. */
    std::vector<TerminatorKind> terminator;

    /** Owning block of each pc. */
    std::vector<cfg::BlockId> blockOfPc;

    /** True if some retreating edge targets the block (a loop header). */
    std::vector<bool> isLoopHeader;

    /** The retreating ("back") edges. */
    std::vector<cfg::EdgeRef> backEdges;

    /** True if the CFG is reducible. */
    bool reducible = true;

    /** True for blocks that hold bytecode (not entry/exit). */
    bool
    isCodeBlock(cfg::BlockId b) const
    {
        return terminator[b] != TerminatorKind::None;
    }

    /** The pc of a block's branch instruction (Cond/Switch blocks). */
    Pc
    branchPc(cfg::BlockId b) const
    {
        return lastPc[b];
    }

    /** Number of loop headers. */
    std::size_t numLoopHeaders() const;
};

/**
 * Build the CFG for a verified method. The method must already pass the
 * verifier; malformed code panics here.
 */
MethodCfg buildCfg(const Method &method);

} // namespace pep::bytecode

#endif // PEP_BYTECODE_CFG_BUILDER_HH
