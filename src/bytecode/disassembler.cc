#include "bytecode/disassembler.hh"

#include <set>
#include <sstream>

namespace pep::bytecode {

std::string
disassembleInstr(const Program &program, const Instr &instr)
{
    std::ostringstream os;
    os << mnemonic(instr.op);
    switch (instr.op) {
      case Opcode::Iconst:
      case Opcode::Iload:
      case Opcode::Istore:
        os << ' ' << instr.a;
        break;
      case Opcode::Iinc:
        os << ' ' << instr.a << ' ' << instr.b;
        break;
      case Opcode::Goto:
        os << " L" << instr.a;
        break;
      case Opcode::Tableswitch:
        os << ' ' << instr.a << " L" << instr.b;
        for (std::int32_t target : instr.table)
            os << " L" << target;
        break;
      case Opcode::Invoke: {
        const auto callee = static_cast<std::size_t>(instr.a);
        if (callee < program.methods.size())
            os << ' ' << program.methods[callee].name;
        else
            os << " <bad:" << instr.a << '>';
        break;
      }
      default:
        if (isCondBranch(instr.op))
            os << " L" << instr.a;
        break;
    }
    return os.str();
}

std::string
disassembleMethod(const Program &program, const Method &method)
{
    // Collect branch targets so we can emit labels.
    std::set<Pc> targets;
    for (const Instr &instr : method.code) {
        if (instr.op == Opcode::Goto || isCondBranch(instr.op)) {
            targets.insert(static_cast<Pc>(instr.a));
        } else if (instr.op == Opcode::Tableswitch) {
            targets.insert(static_cast<Pc>(instr.b));
            for (std::int32_t t : instr.table)
                targets.insert(static_cast<Pc>(t));
        }
    }

    std::ostringstream os;
    os << ".method " << method.name << ' ' << method.numArgs << ' '
       << method.numLocals;
    if (method.returnsValue)
        os << " returns";
    os << '\n';
    for (Pc pc = 0; pc < method.code.size(); ++pc) {
        if (targets.count(pc))
            os << "L" << pc << ":\n";
        os << "    " << disassembleInstr(program, method.code[pc])
           << '\n';
    }
    os << ".end\n";
    return os.str();
}

std::string
disassembleProgram(const Program &program)
{
    std::ostringstream os;
    os << ".globals " << program.globalSize << '\n';
    if (!program.initialGlobals.empty()) {
        os << ".data";
        for (std::int32_t v : program.initialGlobals)
            os << ' ' << v;
        os << '\n';
    }
    for (const Method &method : program.methods) {
        os << disassembleMethod(program, method);
    }
    if (program.mainMethod < program.methods.size()) {
        os << ".main " << program.methods[program.mainMethod].name
           << '\n';
    }
    return os.str();
}

} // namespace pep::bytecode
