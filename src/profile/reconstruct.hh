#ifndef PEP_PROFILE_RECONSTRUCT_HH
#define PEP_PROFILE_RECONSTRUCT_HH

/**
 * @file
 * Greedy path reconstruction (Section 3.3). Given a path number sampled
 * from the path register, recover the sequence of DAG edges making up
 * the path: starting at Entry, repeatedly take the outgoing edge with
 * the largest value not exceeding the remaining number. Because every
 * numbering scheme assigns edge values as prefix sums of successor path
 * counts, this inverts the numbering exactly.
 *
 * PEP uses this to derive the *edge* profile from sampled paths; the
 * expansion is computed the first time a path is sampled and cached in
 * the path profile thereafter (Section 4.3).
 */

#include <cstdint>
#include <vector>

#include "profile/numbering.hh"
#include "profile/pdag.hh"

namespace pep::profile {

/** A reconstructed path with its CFG interpretation. */
struct ReconstructedPath
{
    /** The DAG edges of the path, Entry to Exit. */
    std::vector<cfg::EdgeRef> dagEdges;

    /** The CFG edges the path executed (includes the ending back edge
     *  in BackEdgeTruncate mode). */
    std::vector<cfg::EdgeRef> cfgEdges;

    /** Header the path started at (kInvalidBlock if at method entry). */
    cfg::BlockId startHeader = cfg::kInvalidBlock;

    /** Header the path ended at (kInvalidBlock if at method exit). */
    cfg::BlockId endHeader = cfg::kInvalidBlock;

    /** Number of branch (Cond/Switch) blocks the path passed through;
     *  the b_p term of the paper's branch-flow metric. */
    std::uint32_t numBranches = 0;
};

/**
 * Reconstructs paths from numbers. Precomputes, per DAG node, the
 * outgoing edges sorted by descending value so each step is a short
 * scan.
 */
class PathReconstructor
{
  public:
    /**
     * The reconstructor keeps references to all three arguments; they
     * must outlive it.
     */
    PathReconstructor(const bytecode::MethodCfg &method_cfg,
                      const PDag &pdag, const Numbering &numbering);

    /**
     * Reconstruct the path with the given number. The number must be in
     * [0, totalPaths); panics otherwise (a sampled register value that
     * fails this indicates an instrumentation bug).
     */
    ReconstructedPath reconstruct(std::uint64_t path_number) const;

    /** Just the DAG edge walk, without CFG interpretation. */
    std::vector<cfg::EdgeRef> reconstructDagEdges(
        std::uint64_t path_number) const;

    /**
     * Reconstruct a *partial* path from a mid-path register value
     * (paper Section 3.2: systems without thread-switching points
     * sample the register at arbitrary points and identify the
     * partially taken path with the same greedy algorithm).
     *
     * The returned prefix is exact: edge values are prefix sums of
     * successor path counts, so a partial register value r pins every
     * edge up to the point where the remainder reaches zero. Beyond
     * that the walk would continue over zero-valued edges, which a
     * partial value cannot distinguish; `ambiguous` is true if such a
     * continuation exists. Requires Direct placement (chord increments
     * do not preserve mid-path prefix sums).
     */
    struct PartialPath
    {
        /** The uniquely determined DAG edge prefix (Entry outward). */
        std::vector<cfg::EdgeRef> dagEdges;

        /** DAG node the determined prefix ends at. */
        cfg::BlockId endNode = cfg::kInvalidBlock;

        /** True if the true path may extend along zero-valued edges
         *  beyond the determined prefix. */
        bool ambiguous = false;
    };

    /** Reconstruct the prefix implied by a partial register value.
     *  `partial_value` must be a real mid-path register value (panics
     *  if it exceeds every completable number). */
    PartialPath reconstructPartial(std::uint64_t partial_value) const;

  private:
    const bytecode::MethodCfg &methodCfg_;
    const PDag &pdag_;
    const Numbering &numbering_;

    /** Per node, successor indices sorted by descending edge value. */
    std::vector<std::vector<std::uint32_t>> byValueDesc_;
};

} // namespace pep::profile

#endif // PEP_PROFILE_RECONSTRUCT_HH
