#include "profile/reconstruct.hh"

#include <algorithm>
#include <numeric>

#include "support/panic.hh"

namespace pep::profile {

PathReconstructor::PathReconstructor(const bytecode::MethodCfg &method_cfg,
                                     const PDag &pdag,
                                     const Numbering &numbering)
    : methodCfg_(method_cfg), pdag_(pdag), numbering_(numbering)
{
    PEP_ASSERT_MSG(!numbering.overflow,
                   "cannot reconstruct paths after numbering overflow");
    const cfg::Graph &dag = pdag_.dag;
    byValueDesc_.resize(dag.numBlocks());
    for (cfg::BlockId v = 0; v < dag.numBlocks(); ++v) {
        auto &order = byValueDesc_[v];
        order.resize(dag.succs(v).size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return numbering_.val[v][a] >
                                    numbering_.val[v][b];
                         });
    }
}

std::vector<cfg::EdgeRef>
PathReconstructor::reconstructDagEdges(std::uint64_t path_number) const
{
    const cfg::Graph &dag = pdag_.dag;
    PEP_ASSERT_MSG(path_number < numbering_.totalPaths,
                   "path number " << path_number << " out of range [0, "
                                  << numbering_.totalPaths << ")");

    std::vector<cfg::EdgeRef> edges;
    std::uint64_t remaining = path_number;
    cfg::BlockId node = dag.entry();
    while (node != dag.exit()) {
        // Greedy step: largest edge value not exceeding the remainder.
        const auto &order = byValueDesc_[node];
        PEP_ASSERT(!order.empty());
        bool advanced = false;
        for (std::uint32_t idx : order) {
            const std::uint64_t value = numbering_.val[node][idx];
            if (value <= remaining) {
                remaining -= value;
                edges.push_back(cfg::EdgeRef{node, idx});
                node = dag.succs(node)[idx];
                advanced = true;
                break;
            }
        }
        PEP_ASSERT_MSG(advanced, "greedy reconstruction stuck at node "
                                     << node);
    }
    PEP_ASSERT_MSG(remaining == 0,
                   "path number residue " << remaining
                                          << " after reaching Exit");
    return edges;
}

PathReconstructor::PartialPath
PathReconstructor::reconstructPartial(std::uint64_t partial_value) const
{
    const cfg::Graph &dag = pdag_.dag;
    PEP_ASSERT_MSG(partial_value < numbering_.totalPaths,
                   "partial value " << partial_value
                                    << " exceeds every path number");

    PartialPath partial;
    std::uint64_t remaining = partial_value;
    cfg::BlockId node = dag.entry();

    // Greedy, but only while the choice is forced: the executed prefix
    // contributed `remaining` exactly, so while remaining > 0 the edge
    // with the largest value <= remaining is the one that was taken.
    while (remaining > 0) {
        PEP_ASSERT(node != dag.exit());
        const auto &order = byValueDesc_[node];
        bool advanced = false;
        for (std::uint32_t idx : order) {
            const std::uint64_t value = numbering_.val[node][idx];
            if (value <= remaining) {
                remaining -= value;
                partial.dagEdges.push_back(cfg::EdgeRef{node, idx});
                node = dag.succs(node)[idx];
                advanced = true;
                break;
            }
        }
        PEP_ASSERT_MSG(advanced,
                       "partial reconstruction stuck at node " << node);
    }

    partial.endNode = node;
    // The prefix may extend along zero-valued edges without changing
    // the register; a partial value cannot tell.
    if (node != dag.exit()) {
        for (std::uint32_t i = 0; i < dag.succs(node).size(); ++i) {
            if (numbering_.val[node][i] == 0) {
                partial.ambiguous = true;
                break;
            }
        }
    }
    return partial;
}

ReconstructedPath
PathReconstructor::reconstruct(std::uint64_t path_number) const
{
    ReconstructedPath path;
    path.dagEdges = reconstructDagEdges(path_number);

    for (const cfg::EdgeRef &dag_edge : path.dagEdges) {
        const DagEdgeMeta &meta = pdag_.meta(dag_edge);
        switch (meta.kind) {
          case DagEdgeKind::Real:
            path.cfgEdges.push_back(meta.cfgEdge);
            break;
          case DagEdgeKind::DummyEntry:
            // Path starts at the header this dummy enters.
            path.startHeader =
                pdag_.cfgBlock[pdag_.dag.edgeDst(dag_edge)];
            break;
          case DagEdgeKind::DummyExit:
            if (pdag_.mode == DagMode::HeaderSplit) {
                // Path ends at the split header's yieldpoint.
                path.endHeader = pdag_.cfgBlock[dag_edge.src];
            } else {
                // Path ends by taking the truncated back edge, which
                // did execute: credit it and note the header.
                path.cfgEdges.push_back(meta.cfgEdge);
                path.endHeader =
                    methodCfg_.graph.edgeDst(meta.cfgEdge);
            }
            break;
        }
    }

    for (const cfg::EdgeRef &cfg_edge : path.cfgEdges) {
        const auto kind = methodCfg_.terminator[cfg_edge.src];
        if (kind == bytecode::TerminatorKind::Cond ||
            kind == bytecode::TerminatorKind::Switch) {
            ++path.numBranches;
        }
    }
    return path;
}

} // namespace pep::profile
