#include "profile/spanning_placement.hh"

#include <algorithm>
#include <numeric>

#include "support/panic.hh"

namespace pep::profile {

namespace {

/** Union-find over DAG nodes. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    bool
    unite(std::size_t a, std::size_t b)
    {
        const std::size_t ra = find(a);
        const std::size_t rb = find(b);
        if (ra == rb)
            return false;
        parent_[ra] = rb;
        return true;
    }

  private:
    std::vector<std::size_t> parent_;
};

struct Candidate
{
    cfg::EdgeRef edge;
    double weight;
};

} // namespace

SpanningPlacement
computeSpanningPlacement(const PDag &pdag, const Numbering &numbering,
                         const DagEdgeFreqs *freqs)
{
    PEP_ASSERT_MSG(!numbering.overflow,
                   "spanning placement needs a valid numbering");
    const cfg::Graph &dag = pdag.dag;
    const std::size_t n = dag.numBlocks();

    SpanningPlacement placement;
    placement.increment.resize(n);
    placement.inTree.resize(n);
    for (cfg::BlockId v = 0; v < n; ++v) {
        placement.increment[v].assign(dag.succs(v).size(), 0);
        placement.inTree[v].assign(dag.succs(v).size(), false);
    }

    // Maximal-cost spanning tree (Kruskal). The virtual EXIT->ENTRY
    // edge is united first, forcing phi(Entry) == phi(Exit).
    UnionFind uf(n);
    uf.unite(dag.exit(), dag.entry());

    std::vector<Candidate> candidates;
    candidates.reserve(dag.numEdges());
    for (cfg::BlockId v = 0; v < n; ++v) {
        for (std::uint32_t i = 0; i < dag.succs(v).size(); ++i) {
            const double weight =
                freqs ? (*freqs)[v][i] : 1.0;
            candidates.push_back(Candidate{cfg::EdgeRef{v, i}, weight});
        }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         if (a.weight != b.weight)
                             return a.weight > b.weight;
                         return a.edge < b.edge;
                     });

    // Tree adjacency: (neighbor, edge, true if traversing along the
    // DAG direction).
    struct TreeLink
    {
        cfg::BlockId neighbor;
        cfg::EdgeRef edge;
        bool forward;
    };
    std::vector<std::vector<TreeLink>> tree(n);

    for (const Candidate &candidate : candidates) {
        const cfg::BlockId u = candidate.edge.src;
        const cfg::BlockId v = dag.edgeDst(candidate.edge);
        if (uf.unite(u, v)) {
            placement.inTree[u][candidate.edge.index] = true;
            tree[u].push_back(TreeLink{v, candidate.edge, true});
            tree[v].push_back(TreeLink{u, candidate.edge, false});
        }
    }

    // phi: signed (wrapping) sum of Val along the tree path from
    // Entry; the virtual edge makes phi(Exit) == phi(Entry) == 0.
    std::vector<std::uint64_t> phi(n, 0);
    std::vector<bool> visited(n, false);
    std::vector<cfg::BlockId> stack;
    auto seed = [&](cfg::BlockId root) {
        if (visited[root])
            return;
        visited[root] = true;
        phi[root] = 0;
        stack.push_back(root);
        while (!stack.empty()) {
            const cfg::BlockId node = stack.back();
            stack.pop_back();
            for (const TreeLink &link : tree[node]) {
                if (visited[link.neighbor])
                    continue;
                visited[link.neighbor] = true;
                const std::uint64_t val =
                    numbering.edgeValue(link.edge);
                phi[link.neighbor] =
                    link.forward ? phi[node] + val : phi[node] - val;
                stack.push_back(link.neighbor);
            }
        }
    };
    seed(dag.entry());
    seed(dag.exit()); // same component via the virtual edge; phi = 0
    for (cfg::BlockId v = 0; v < n; ++v)
        seed(v); // isolated (dead) components; phi = 0 locally

    // Chord increments: Inc(u->v) = phi(u) + Val - phi(v); zero on
    // tree edges by construction of phi.
    for (cfg::BlockId u = 0; u < n; ++u) {
        for (std::uint32_t i = 0; i < dag.succs(u).size(); ++i) {
            if (placement.inTree[u][i])
                continue;
            ++placement.numChords;
            const cfg::BlockId v = dag.succs(u)[i];
            const std::uint64_t inc =
                phi[u] + numbering.val[u][i] - phi[v];
            placement.increment[u][i] = inc;
            if (inc != 0)
                ++placement.numInstrumentedEdges;
        }
    }
    return placement;
}

void
applySpanningPlacement(const bytecode::MethodCfg &method_cfg,
                       const PDag &pdag,
                       const SpanningPlacement &placement,
                       InstrumentationPlan &plan)
{
    PEP_ASSERT(plan.enabled);
    const cfg::Graph &graph = method_cfg.graph;

    auto inc_of = [&](cfg::EdgeRef dag_edge) {
        return placement.increment[dag_edge.src][dag_edge.index];
    };

    plan.numInstrumentedEdges = 0;
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            const cfg::EdgeRef dag_edge = pdag.dagEdgeForCfgEdge[b][i];
            if (dag_edge.src == cfg::kInvalidBlock)
                continue; // truncated back edge: handled below
            EdgeAction &action = plan.edgeActions[b][i];
            action.increment = inc_of(dag_edge);
            if (action.increment != 0)
                ++plan.numInstrumentedEdges;
        }
    }

    if (pdag.mode == DagMode::HeaderSplit) {
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (!method_cfg.isLoopHeader[b])
                continue;
            HeaderAction &action = plan.headerActions[b];
            action.endAdd = inc_of(pdag.headerDummyExit[b]);
            action.restart = inc_of(pdag.headerDummyEntry[b]);
        }
    } else {
        for (std::size_t k = 0; k < method_cfg.backEdges.size(); ++k) {
            const cfg::EdgeRef back = method_cfg.backEdges[k];
            EdgeAction &action = plan.edgeActions[back.src][back.index];
            action.endAdd = inc_of(pdag.backEdgeDummyExit[k]);
            const cfg::BlockId header = graph.edgeDst(back);
            action.restart = inc_of(pdag.headerDummyEntry[header]);
        }
    }

    plan.rebuildFlat();
}

} // namespace pep::profile
