#ifndef PEP_PROFILE_KPATH_HH
#define PEP_PROFILE_KPATH_HH

/**
 * @file
 * k-iteration BLPP id space (D'Elia & Demetrescu, arXiv 1304.5197).
 *
 * Single-iteration BLPP numbers the acyclic path segments of one
 * method version 0..totalPaths-1. A *k-path* is a window of up to k
 * consecutive segments executed by one frame: the segment stream is
 * cut into tumbling windows of kEffective segments each (the final
 * window of a frame may be shorter — the frame exited, or OSR/park
 * flushed it). The Ball-Larus instrumentation itself is untouched for
 * every k; the window layer only composes the per-segment numbers the
 * existing plan already produces. That construction makes the k=1
 * degeneracy guarantee structural: with k==1 every window holds one
 * segment and the composite id *is* the raw Ball-Larus number, so
 * plans, profiles and engine observables are bit-for-bit identical to
 * the pre-k behavior.
 *
 * Composite encoding, base N = plan.totalPaths:
 *
 *   window [n_0, n_1, .., n_{l-1}]   (n_0 oldest)
 *   id = offset(l) + sum_j n_j * N^j
 *   offset(1) = 0,  offset(l+1) = offset(l) + N^l
 *
 * so ids of length-l windows occupy the contiguous range
 * [offset(l), offset(l+1)), length-1 ids equal raw segment numbers,
 * and maxId() == offset(kEffective+1) bounds the whole id space.
 * kEffective is the largest l <= k whose id space fits under kIdCap;
 * huge methods degrade gracefully toward plain BLPP instead of
 * overflowing.
 *
 * Smart-numbering interplay comes for free: the hottest segment gets
 * number 0 under NumberingScheme::Smart (zero-cost increments), so the
 * all-hot cross-iteration window has all-zero digits and its id is the
 * constant offset(l) — no multiplication chain ever executes at
 * runtime; engines only push the already-computed per-segment register
 * and fold digits once per window completion.
 */

#include <cstdint>
#include <vector>

#include "profile/reconstruct.hh"

namespace pep::profile {

/** Composite ids must stay well under 2^63 so count tables, deltas and
 *  serialized profiles keep using plain u64 arithmetic. */
constexpr std::uint64_t kKPathIdCap = 1ull << 62;

/** Largest l <= k_requested whose composite id space for the given
 *  base fits under kKPathIdCap. Always >= 1 (length-1 ids are raw
 *  Ball-Larus numbers, and totalPaths <= kMaxPaths < kKPathIdCap). */
std::uint32_t kEffectiveFor(std::uint64_t base, std::uint32_t k_requested);

class KPathScheme
{
  public:
    /** k == 1 and base == 0 (disabled plan) are both valid; the
     *  default scheme is the degenerate single-iteration one. */
    KPathScheme() = default;
    KPathScheme(std::uint64_t base, std::uint32_t k_requested);

    std::uint64_t base() const { return base_; }
    std::uint32_t kRequested() const { return kRequested_; }
    std::uint32_t kEffective() const { return kEffective_; }

    /** One past the largest valid composite id. Equals base() when
     *  kEffective() == 1 — the raw Ball-Larus range. */
    std::uint64_t maxId() const { return offsets_[kEffective_]; }

    /** First id of length-(l) windows, offsets()[l] == one past the
     *  ids of length <= l. size() == kEffective()+1, [0] == 0. */
    const std::vector<std::uint64_t> &offsets() const { return offsets_; }

    /** Compose a window of 1..kEffective() segment numbers (oldest
     *  first) into its id. Panics on empty/oversized windows or
     *  digits >= base(). */
    std::uint64_t encode(const std::uint64_t *digits,
                         std::size_t length) const;
    std::uint64_t encode(const std::vector<std::uint64_t> &digits) const
    {
        return encode(digits.data(), digits.size());
    }

    /** Split a composite id back into its segment numbers (oldest
     *  first). Panics on id >= maxId(). */
    std::vector<std::uint64_t> decode(std::uint64_t id) const;

    /** Window length of a composite id; panics on id >= maxId(). */
    std::uint32_t lengthOf(std::uint64_t id) const;

  private:
    std::uint64_t base_ = 0;
    std::uint32_t kRequested_ = 1;
    std::uint32_t kEffective_ = 1;
    /** offsets_[l] = number of ids of length <= l; prefix sums of
     *  base^l, size kEffective_+1. */
    std::vector<std::uint64_t> offsets_ = {0, 0};
};

/**
 * Reconstruct a composite k-path id to CFG edges: decode the digits,
 * reconstruct each segment with the plain single-iteration
 * reconstructor, and concatenate. startHeader comes from the first
 * segment, endHeader from the last; numBranches and the edge vectors
 * are the concatenation/sum over digits. Ids below scheme.base() take
 * the legacy reconstructor verbatim (the degenerate case).
 */
ReconstructedPath reconstructKPath(const KPathScheme &scheme,
                                   const PathReconstructor &reconstructor,
                                   std::uint64_t id);

} // namespace pep::profile

#endif // PEP_PROFILE_KPATH_HH
