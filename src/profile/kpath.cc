#include "profile/kpath.hh"

#include "support/panic.hh"

namespace pep::profile {

std::uint32_t
kEffectiveFor(std::uint64_t base, std::uint32_t k_requested)
{
    if (k_requested == 0)
        k_requested = 1;
    // base <= 1: the id space grows linearly with length and can never
    // overflow, so the full requested k is always effective.
    if (base <= 1 || k_requested == 1)
        return k_requested;
    std::uint32_t k_eff = 1;
    std::uint64_t power = base;  // base^k_eff
    std::uint64_t total = base;  // offset(k_eff + 1)
    while (k_eff < k_requested) {
        if (power > kKPathIdCap / base)
            break;
        power *= base;
        if (total > kKPathIdCap - power)
            break;
        total += power;
        ++k_eff;
    }
    return k_eff;
}

KPathScheme::KPathScheme(std::uint64_t base, std::uint32_t k_requested)
    : base_(base),
      kRequested_(k_requested == 0 ? 1 : k_requested),
      kEffective_(kEffectiveFor(base, kRequested_))
{
    offsets_.assign(kEffective_ + 1, 0);
    std::uint64_t power = 1;
    for (std::uint32_t length = 1; length <= kEffective_; ++length) {
        // base^length fits by construction of kEffectiveFor; base 0
        // (disabled plan) degenerates to an all-zero table.
        power *= base_;
        offsets_[length] = offsets_[length - 1] + power;
    }
}

std::uint64_t
KPathScheme::encode(const std::uint64_t *digits, std::size_t length) const
{
    PEP_ASSERT_MSG(length >= 1 && length <= kEffective_,
                   "k-path window length " << length
                       << " outside [1, " << kEffective_ << "]");
    std::uint64_t id = offsets_[length - 1];
    std::uint64_t power = 1;
    for (std::size_t j = 0; j < length; ++j) {
        PEP_ASSERT_MSG(digits[j] < base_,
                       "k-path digit " << digits[j]
                           << " >= base " << base_);
        id += digits[j] * power;
        power *= base_;
    }
    return id;
}

std::vector<std::uint64_t>
KPathScheme::decode(std::uint64_t id) const
{
    const std::uint32_t length = lengthOf(id);
    std::vector<std::uint64_t> digits(length);
    std::uint64_t rem = id - offsets_[length - 1];
    for (std::uint32_t j = 0; j < length; ++j) {
        digits[j] = base_ > 1 ? rem % base_ : 0;
        rem = base_ > 1 ? rem / base_ : 0;
    }
    return digits;
}

std::uint32_t
KPathScheme::lengthOf(std::uint64_t id) const
{
    PEP_ASSERT_MSG(id < maxId(),
                   "k-path id " << id << " >= maxId " << maxId());
    std::uint32_t length = 1;
    while (id >= offsets_[length])
        ++length;
    return length;
}

ReconstructedPath
reconstructKPath(const KPathScheme &scheme,
                 const PathReconstructor &reconstructor, std::uint64_t id)
{
    if (id < scheme.base())
        return reconstructor.reconstruct(id);
    const std::vector<std::uint64_t> digits = scheme.decode(id);
    ReconstructedPath joined;
    for (std::size_t j = 0; j < digits.size(); ++j) {
        ReconstructedPath segment = reconstructor.reconstruct(digits[j]);
        if (j == 0)
            joined.startHeader = segment.startHeader;
        if (j + 1 == digits.size())
            joined.endHeader = segment.endHeader;
        joined.numBranches += segment.numBranches;
        joined.dagEdges.insert(joined.dagEdges.end(),
                               segment.dagEdges.begin(),
                               segment.dagEdges.end());
        joined.cfgEdges.insert(joined.cfgEdges.end(),
                               segment.cfgEdges.begin(),
                               segment.cfgEdges.end());
    }
    return joined;
}

} // namespace pep::profile
