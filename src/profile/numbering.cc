#include "profile/numbering.hh"

#include <algorithm>
#include <numeric>

#include "cfg/analysis.hh"
#include "support/panic.hh"

namespace pep::profile {

Numbering
numberPaths(const PDag &pdag, NumberingScheme scheme,
            const DagEdgeFreqs *freqs)
{
    const cfg::Graph &dag = pdag.dag;
    PEP_ASSERT_MSG(scheme == NumberingScheme::BallLarus || freqs,
                   "frequency-guided numbering needs edge frequencies");

    Numbering numbering;
    numbering.numPaths.assign(dag.numBlocks(), 0);
    numbering.val.resize(dag.numBlocks());
    for (cfg::BlockId v = 0; v < dag.numBlocks(); ++v)
        numbering.val[v].assign(dag.succs(v).size(), 0);

    const std::vector<cfg::BlockId> topo = cfg::topologicalOrder(dag);

    // Reverse topological order: successors before predecessors.
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const cfg::BlockId v = *it;
        if (v == dag.exit()) {
            numbering.numPaths[v] = 1;
            continue;
        }
        const auto &succs = dag.succs(v);
        PEP_ASSERT_MSG(!succs.empty(),
                       "non-exit DAG node " << v << " has no successors");

        // Choose the edge processing order.
        std::vector<std::uint32_t> order(succs.size());
        std::iota(order.begin(), order.end(), 0);
        if (scheme != NumberingScheme::BallLarus) {
            const auto &edge_freqs = (*freqs)[v];
            PEP_ASSERT(edge_freqs.size() == succs.size());
            const bool decreasing = (scheme == NumberingScheme::Smart);
            std::stable_sort(
                order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                    if (edge_freqs[a] != edge_freqs[b]) {
                        return decreasing ? edge_freqs[a] > edge_freqs[b]
                                          : edge_freqs[a] < edge_freqs[b];
                    }
                    return false; // stable: keep successor order
                });
        }

        std::uint64_t total = 0;
        for (std::uint32_t idx : order) {
            numbering.val[v][idx] = total;
            const std::uint64_t succ_paths =
                numbering.numPaths[succs[idx]];
            if (__builtin_add_overflow(total, succ_paths, &total) ||
                total > kMaxPaths) {
                numbering.overflow = true;
                return numbering;
            }
        }
        numbering.numPaths[v] = total;
    }

    numbering.totalPaths = numbering.numPaths[dag.entry()];
    return numbering;
}

DagEdgeFreqs
estimateDagEdgeFrequencies(
    const bytecode::MethodCfg &method_cfg, const PDag &pdag,
    const std::vector<std::vector<std::uint64_t>> &cfg_edge_counts)
{
    const cfg::Graph &graph = method_cfg.graph;
    const cfg::Graph &dag = pdag.dag;

    // Total flow into each CFG block.
    std::vector<double> inflow(graph.numBlocks(), 0.0);
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        const auto &succs = graph.succs(b);
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            inflow[succs[i]] +=
                static_cast<double>(cfg_edge_counts[b][i]);
        }
    }

    DagEdgeFreqs freqs(dag.numBlocks());
    for (cfg::BlockId v = 0; v < dag.numBlocks(); ++v)
        freqs[v].assign(dag.succs(v).size(), 0.0);

    // Real edges carry their CFG edge's count.
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            const cfg::EdgeRef dag_edge = pdag.dagEdgeForCfgEdge[b][i];
            if (dag_edge.src == cfg::kInvalidBlock)
                continue; // truncated back edge
            freqs[dag_edge.src][dag_edge.index] =
                static_cast<double>(cfg_edge_counts[b][i]);
        }
    }

    // Dummy edges: header path-start/path-end flow.
    if (pdag.mode == DagMode::HeaderSplit) {
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (!method_cfg.isLoopHeader[b])
                continue;
            const cfg::EdgeRef entry_e = pdag.headerDummyEntry[b];
            const cfg::EdgeRef exit_e = pdag.headerDummyExit[b];
            freqs[entry_e.src][entry_e.index] = inflow[b];
            freqs[exit_e.src][exit_e.index] = inflow[b];
        }
    } else {
        // DummyEntry per header: total back-edge flow into the header.
        std::vector<double> back_inflow(graph.numBlocks(), 0.0);
        for (std::size_t k = 0; k < method_cfg.backEdges.size(); ++k) {
            const cfg::EdgeRef back = method_cfg.backEdges[k];
            const double count = static_cast<double>(
                cfg_edge_counts[back.src][back.index]);
            back_inflow[graph.edgeDst(back)] += count;
            const cfg::EdgeRef exit_e = pdag.backEdgeDummyExit[k];
            freqs[exit_e.src][exit_e.index] = count;
        }
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            const cfg::EdgeRef entry_e = pdag.headerDummyEntry[b];
            if (entry_e.src == cfg::kInvalidBlock)
                continue;
            freqs[entry_e.src][entry_e.index] = back_inflow[b];
        }
    }

    return freqs;
}

} // namespace pep::profile
