#include "profile/instr_plan.hh"

#include "support/panic.hh"

namespace pep::profile {

void
InstrumentationPlan::rebuildFlat()
{
    edgeBase.resize(edgeActions.size() + 1);
    std::uint32_t next = 0;
    for (std::size_t b = 0; b < edgeActions.size(); ++b) {
        edgeBase[b] = next;
        next += static_cast<std::uint32_t>(edgeActions[b].size());
    }
    edgeBase.back() = next;

    flatEdgeActions.clear();
    flatEdgeActions.reserve(next);
    for (const std::vector<EdgeAction> &block : edgeActions)
        flatEdgeActions.insert(flatEdgeActions.end(), block.begin(),
                               block.end());
}

InstrumentationPlan
buildInstrumentationPlan(const bytecode::MethodCfg &method_cfg,
                         const PDag &pdag, const Numbering &numbering)
{
    const cfg::Graph &graph = method_cfg.graph;

    InstrumentationPlan plan;
    plan.mode = pdag.mode;
    plan.headerActions.assign(graph.numBlocks(), HeaderAction{});
    plan.edgeActions.resize(graph.numBlocks());
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b)
        plan.edgeActions[b].assign(graph.succs(b).size(), EdgeAction{});

    if (numbering.overflow) {
        plan.enabled = false;
        plan.rebuildFlat();
        return plan;
    }
    plan.totalPaths = numbering.totalPaths;

    // Edge increments from the DAG edge values.
    for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
        for (std::uint32_t i = 0; i < graph.succs(b).size(); ++i) {
            const cfg::EdgeRef dag_edge = pdag.dagEdgeForCfgEdge[b][i];
            if (dag_edge.src == cfg::kInvalidBlock)
                continue; // truncated back edge; handled below
            const std::uint64_t value = numbering.edgeValue(dag_edge);
            plan.edgeActions[b][i].increment = value;
            if (value != 0)
                ++plan.numInstrumentedEdges;
        }
    }

    if (pdag.mode == DagMode::HeaderSplit) {
        for (cfg::BlockId b = 0; b < graph.numBlocks(); ++b) {
            if (!method_cfg.isLoopHeader[b])
                continue;
            HeaderAction &action = plan.headerActions[b];
            action.endsPath = true;
            action.endAdd =
                numbering.edgeValue(pdag.headerDummyExit[b]);
            action.restart =
                numbering.edgeValue(pdag.headerDummyEntry[b]);
        }
    } else {
        for (std::size_t k = 0; k < method_cfg.backEdges.size(); ++k) {
            const cfg::EdgeRef back = method_cfg.backEdges[k];
            EdgeAction &action = plan.edgeActions[back.src][back.index];
            action.endsPath = true;
            action.endAdd =
                numbering.edgeValue(pdag.backEdgeDummyExit[k]);
            const cfg::BlockId header = graph.edgeDst(back);
            action.restart =
                numbering.edgeValue(pdag.headerDummyEntry[header]);
        }
    }

    plan.rebuildFlat();
    return plan;
}

} // namespace pep::profile
