#include "profile/pdag.hh"

#include "cfg/analysis.hh"
#include "support/panic.hh"

namespace pep::profile {

namespace {

constexpr cfg::EdgeRef kNoEdge{cfg::kInvalidBlock, 0};

void
recordMeta(PDag &pdag, cfg::EdgeRef dag_edge, DagEdgeMeta meta)
{
    auto &per_src = pdag.edgeMeta[dag_edge.src];
    PEP_ASSERT(dag_edge.index == per_src.size());
    per_src.push_back(meta);
}

} // namespace

PDag
buildPDag(const bytecode::MethodCfg &method_cfg, DagMode mode)
{
    const cfg::Graph &graph = method_cfg.graph;
    PDag pdag;
    pdag.mode = mode;

    const std::size_t num_blocks = graph.numBlocks();
    pdag.nodeForBlockEntry.assign(num_blocks, cfg::kInvalidBlock);
    pdag.nodeForBlockExit.assign(num_blocks, cfg::kInvalidBlock);
    pdag.headerDummyExit.assign(num_blocks, kNoEdge);
    pdag.headerDummyEntry.assign(num_blocks, kNoEdge);
    pdag.dagEdgeForCfgEdge.resize(num_blocks);

    // The Graph constructor made dag entry (0) and exit (1).
    pdag.role = {NodeRole::Entry, NodeRole::Exit};
    pdag.cfgBlock = {cfg::kInvalidBlock, cfg::kInvalidBlock};
    pdag.edgeMeta.resize(2);

    auto add_node = [&](NodeRole role, cfg::BlockId block) {
        const cfg::BlockId node = pdag.dag.addBlock();
        pdag.role.push_back(role);
        pdag.cfgBlock.push_back(block);
        pdag.edgeMeta.emplace_back();
        return node;
    };

    pdag.nodeForBlockEntry[graph.entry()] = pdag.dag.entry();
    pdag.nodeForBlockExit[graph.entry()] = pdag.dag.entry();
    pdag.nodeForBlockEntry[graph.exit()] = pdag.dag.exit();
    pdag.nodeForBlockExit[graph.exit()] = pdag.dag.exit();

    const bool split_headers = (mode == DagMode::HeaderSplit);

    // Create DAG nodes for code blocks.
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
        if (b == graph.entry() || b == graph.exit())
            continue;
        if (split_headers && method_cfg.isLoopHeader[b]) {
            const cfg::BlockId top = add_node(NodeRole::HeaderTop, b);
            const cfg::BlockId rest = add_node(NodeRole::HeaderRest, b);
            pdag.nodeForBlockEntry[b] = top;
            pdag.nodeForBlockExit[b] = rest;
        } else {
            const cfg::BlockId node = add_node(NodeRole::Plain, b);
            pdag.nodeForBlockEntry[b] = node;
            pdag.nodeForBlockExit[b] = node;
        }
    }

    // Mark back edges for BackEdgeTruncate mode.
    std::vector<std::vector<bool>> is_back_edge(num_blocks);
    for (cfg::BlockId b = 0; b < num_blocks; ++b)
        is_back_edge[b].assign(graph.succs(b).size(), false);
    if (mode == DagMode::BackEdgeTruncate) {
        for (const cfg::EdgeRef &e : method_cfg.backEdges)
            is_back_edge[e.src][e.index] = true;
    }

    // Real edges, in CFG (block, index) order.
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
        const auto &succs = graph.succs(b);
        pdag.dagEdgeForCfgEdge[b].assign(succs.size(), kNoEdge);
        for (std::uint32_t i = 0; i < succs.size(); ++i) {
            if (is_back_edge[b][i])
                continue; // truncated; dummies added below
            const cfg::BlockId src = pdag.nodeForBlockExit[b];
            const cfg::BlockId dst = pdag.nodeForBlockEntry[succs[i]];
            const cfg::EdgeRef dag_edge = pdag.dag.addEdge(src, dst);
            recordMeta(pdag, dag_edge,
                       DagEdgeMeta{DagEdgeKind::Real, cfg::EdgeRef{b, i}});
            pdag.dagEdgeForCfgEdge[b][i] = dag_edge;
        }
    }

    // Dummy edges.
    if (split_headers) {
        for (cfg::BlockId b = 0; b < num_blocks; ++b) {
            if (b == graph.entry() || b == graph.exit() ||
                !method_cfg.isLoopHeader[b]) {
                continue;
            }
            const cfg::BlockId top = pdag.nodeForBlockEntry[b];
            const cfg::BlockId rest = pdag.nodeForBlockExit[b];
            const cfg::EdgeRef entry_edge =
                pdag.dag.addEdge(pdag.dag.entry(), rest);
            recordMeta(pdag, entry_edge,
                       DagEdgeMeta{DagEdgeKind::DummyEntry, kNoEdge});
            pdag.headerDummyEntry[b] = entry_edge;

            const cfg::EdgeRef exit_edge =
                pdag.dag.addEdge(top, pdag.dag.exit());
            recordMeta(pdag, exit_edge,
                       DagEdgeMeta{DagEdgeKind::DummyExit, kNoEdge});
            pdag.headerDummyExit[b] = exit_edge;
        }
    } else {
        // One shared DummyEntry per header, in block order.
        for (cfg::BlockId b = 0; b < num_blocks; ++b) {
            if (!method_cfg.isLoopHeader[b])
                continue;
            const cfg::EdgeRef entry_edge = pdag.dag.addEdge(
                pdag.dag.entry(), pdag.nodeForBlockEntry[b]);
            recordMeta(pdag, entry_edge,
                       DagEdgeMeta{DagEdgeKind::DummyEntry, kNoEdge});
            pdag.headerDummyEntry[b] = entry_edge;
        }
        // One DummyExit per back edge, in MethodCfg::backEdges order.
        // The meta records the back edge the dummy replaces, so that
        // path->edge expansion can credit the executed back edge.
        pdag.backEdgeDummyExit.reserve(method_cfg.backEdges.size());
        for (const cfg::EdgeRef &back : method_cfg.backEdges) {
            const cfg::EdgeRef exit_edge = pdag.dag.addEdge(
                pdag.nodeForBlockExit[back.src], pdag.dag.exit());
            recordMeta(pdag, exit_edge,
                       DagEdgeMeta{DagEdgeKind::DummyExit, back});
            pdag.backEdgeDummyExit.push_back(exit_edge);
        }
    }

    // The construction must yield an acyclic graph: every cycle in the
    // CFG contains a retreating edge, and both modes cut all of them.
    const cfg::DfsResult dfs = cfg::depthFirstSearch(pdag.dag);
    PEP_ASSERT_MSG(dfs.retreatingEdges.empty(),
                   "P-DAG construction left a cycle");

    return pdag;
}

} // namespace pep::profile
