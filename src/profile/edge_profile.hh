#ifndef PEP_PROFILE_EDGE_PROFILE_HH
#define PEP_PROFILE_EDGE_PROFILE_HH

/**
 * @file
 * Edge profiles. Counts are kept per CFG edge (block, successor index).
 * For conditional branches this directly yields the taken / not-taken
 * counters that the paper's VM keeps per bytecode branch (successor 0 is
 * the taken target, successor 1 the fall-through; see cfg_builder.hh).
 */

#include <cstdint>
#include <vector>

#include "bytecode/cfg_builder.hh"
#include "cfg/graph.hh"

namespace pep::profile {

/** Taken / not-taken counters of one conditional branch. */
struct BranchCounts
{
    std::uint64_t taken = 0;
    std::uint64_t notTaken = 0;

    std::uint64_t total() const { return taken + notTaken; }

    /**
     * Fraction of executions that took the branch; 0.5 when the branch
     * was never observed (an unbiased default prediction).
     */
    double
    takenBias() const
    {
        const std::uint64_t t = total();
        return t == 0 ? 0.5
                      : static_cast<double>(taken) /
                            static_cast<double>(t);
    }
};

/** Edge counts for one method. */
class MethodEdgeProfile
{
  public:
    MethodEdgeProfile() = default;

    /** Size the count table for a method's CFG. */
    explicit MethodEdgeProfile(const bytecode::MethodCfg &method_cfg);

    /** Add `n` to an edge's count. */
    void
    addEdge(cfg::EdgeRef e, std::uint64_t n = 1)
    {
        counts_[e.src][e.index] += n;
    }

    /** Count of one edge. */
    std::uint64_t
    edgeCount(cfg::EdgeRef e) const
    {
        return counts_[e.src][e.index];
    }

    /** The full count table, parallel to CFG successor lists. */
    const std::vector<std::vector<std::uint64_t>> &
    counts() const
    {
        return counts_;
    }

    /** Taken / not-taken counters of a Cond block. */
    BranchCounts branch(cfg::BlockId b) const;

    /** Total count across all edges. */
    std::uint64_t totalCount() const;

    /** Reset all counts to zero. */
    void clear();

    /** Add another profile's counts into this one (same CFG shape). */
    void merge(const MethodEdgeProfile &other);

    /**
     * A copy with every conditional branch's taken/not-taken counters
     * exchanged — the paper's "flipped" profile (Section 6.5), used to
     * show that profile-guided optimization is accuracy-sensitive.
     */
    MethodEdgeProfile flipped(const bytecode::MethodCfg &method_cfg) const;

    /** True if no counts have been recorded. */
    bool empty() const { return totalCount() == 0; }

  private:
    std::vector<std::vector<std::uint64_t>> counts_;
};

/** Edge profiles for every method of a program. */
struct EdgeProfileSet
{
    std::vector<MethodEdgeProfile> perMethod;

    EdgeProfileSet() = default;

    /** Size for a program's CFGs. */
    explicit EdgeProfileSet(
        const std::vector<bytecode::MethodCfg> &cfgs);

    /** Same, from borrowed CFGs — callers that only hold the program's
     *  method infos can size the tables without copying each CFG. */
    explicit EdgeProfileSet(
        const std::vector<const bytecode::MethodCfg *> &cfgs);

    void clear();

    /**
     * Add another set's counts into this one. Both sets must describe
     * the same program: same method count and per-method CFG shapes
     * (asserted). This is the epoch-flush primitive of the concurrent
     * runtime: shard-local sets merge into the global set.
     */
    void merge(const EdgeProfileSet &other);

    /** Total count across all methods. */
    std::uint64_t totalCount() const;
};

} // namespace pep::profile

#endif // PEP_PROFILE_EDGE_PROFILE_HH
